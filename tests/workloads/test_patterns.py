"""Data pattern tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.program import PageProgrammer
from repro.workloads.patterns import (
    compressible_page,
    level_pattern_page,
    pattern_for_level,
    random_page,
)


class TestPatterns:
    def test_level_bytes(self):
        assert pattern_for_level(0) == 0xFF
        assert pattern_for_level(1) == 0xAA
        assert pattern_for_level(2) == 0x00
        assert pattern_for_level(3) == 0x55
        with pytest.raises(ConfigurationError):
            pattern_for_level(4)

    def test_pattern_pages_map_to_single_level(self):
        programmer = PageProgrammer(rng=np.random.default_rng(1))
        for level in range(4):
            page = level_pattern_page(level, 32)
            assert len(page) == 32
            levels = programmer.levels_from_page(page)
            assert np.all(levels == level)

    def test_random_page_deterministic_with_seed(self):
        a = random_page(128, np.random.default_rng(9))
        b = random_page(128, np.random.default_rng(9))
        assert a == b
        assert len(a) == 128

    def test_compressible_page_runs(self):
        page = compressible_page(256, run_length=32, rng=np.random.default_rng(3))
        assert len(page) == 256
        # First 32 bytes identical (one run).
        assert len(set(page[:32])) == 1
        with pytest.raises(ConfigurationError):
            compressible_page(64, run_length=0)
