"""Workload trace generator tests."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import (
    TraceOpKind,
    mixed_trace,
    multimedia_playback_trace,
    os_upgrade_trace,
)


def op_counts(trace):
    counts = {kind: 0 for kind in TraceOpKind}
    for op in trace:
        counts[op.kind] += 1
    return counts


class TestTraces:
    def test_multimedia_is_read_intensive(self):
        trace = multimedia_playback_trace(blocks=2, pages_per_block=8, read_passes=4)
        counts = op_counts(trace)
        assert counts[TraceOpKind.WRITE] == 16
        assert counts[TraceOpKind.READ] == 64
        assert counts[TraceOpKind.READ] > 3 * counts[TraceOpKind.WRITE]

    def test_reads_follow_writes(self):
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=1)
        written = set()
        for op in trace:
            if op.kind is TraceOpKind.WRITE:
                written.add((op.block, op.page))
            elif op.kind is TraceOpKind.READ:
                assert (op.block, op.page) in written

    def test_os_upgrade_full_verification(self):
        trace = os_upgrade_trace(blocks=2, pages_per_block=4)
        counts = op_counts(trace)
        assert counts[TraceOpKind.WRITE] == counts[TraceOpKind.READ] == 8

    def test_mixed_trace_respects_fraction(self):
        trace = mixed_trace(blocks=2, pages_per_block=8, read_fraction=0.5)
        counts = op_counts(trace)
        total = counts[TraceOpKind.READ] + counts[TraceOpKind.WRITE]
        assert counts[TraceOpKind.READ] / total == pytest.approx(0.5, abs=0.2)

    def test_mixed_trace_reads_only_written_pages(self):
        trace = mixed_trace(blocks=1, pages_per_block=8)
        written = set()
        for op in trace:
            if op.kind is TraceOpKind.WRITE:
                written.add((op.block, op.page))
            elif op.kind is TraceOpKind.READ:
                assert (op.block, op.page) in written

    def test_write_data_attached(self):
        trace = os_upgrade_trace(blocks=1, pages_per_block=2, page_bytes=512)
        for op in trace:
            if op.kind is TraceOpKind.WRITE:
                assert len(op.data) == 512

    def test_deterministic_by_seed(self):
        a = mixed_trace(seed=5)
        b = mixed_trace(seed=5)
        assert [(o.kind, o.block, o.page) for o in a] == [
            (o.kind, o.block, o.page) for o in b
        ]

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            multimedia_playback_trace(blocks=0)
        with pytest.raises(ConfigurationError):
            mixed_trace(read_fraction=1.5)


class TestInterleaveOrderProperties:
    """Property tests: interleaving preserves per-stream op order."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_per_stream_order_preserved_under_interleaving(self, seed):
        import numpy as np

        from repro.workloads.traces import TraceOp, interleave_streams

        rng = np.random.default_rng(seed)
        streams = []
        for stream_id in range(int(rng.integers(1, 6))):
            length = int(rng.integers(0, 12))
            streams.append([
                TraceOp(TraceOpKind.READ, block=stream_id, page=position)
                for position in range(length)
            ])
        merged = interleave_streams(streams)
        assert sorted(
            (op.block, op.page) for op in merged
        ) == sorted(
            (op.block, op.page) for stream in streams for op in stream
        )
        for stream_id, stream in enumerate(streams):
            replayed = [op for op in merged if op.block == stream_id]
            assert replayed == stream  # order within a stream survives

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_queued_playback_streams_stay_sequential(self, seed):
        from repro.workloads.traces import queued_playback_trace

        trace = queued_playback_trace(
            streams=3, blocks_per_stream=1, pages_per_block=4,
            read_passes=2, seed=seed,
        )
        assert trace.queue_depth == 3
        for block in range(3):
            pages = [
                op.page for op in trace.operations
                if op.block == block and op.kind is TraceOpKind.READ
            ]
            # Each stream re-reads its pages sequentially, pass by pass.
            assert pages == list(range(4)) * 2


class TestArrivalGenerators:
    """Seeded open-loop arrival stamping must be deterministic."""

    def _ops(self, count=32):
        from repro.workloads.traces import TraceOp

        return [TraceOp(TraceOpKind.READ, 0, page) for page in range(count)]

    def test_fixed_rate_is_deterministic_and_monotonic(self):
        from repro.workloads.traces import fixed_rate_arrivals

        ops = self._ops()
        first = fixed_rate_arrivals(ops, 1000.0, start_s=0.5)
        second = fixed_rate_arrivals(ops, 1000.0, start_s=0.5)
        assert first == second
        times = [op.issue_s for op in first]
        assert times[0] == 0.5
        assert all(b - a == pytest.approx(1e-3) for a, b in zip(times, times[1:]))

    def test_poisson_same_seed_same_arrivals(self):
        from repro.workloads.traces import poisson_arrivals

        ops = self._ops()
        first = poisson_arrivals(ops, 500.0, seed=42)
        second = poisson_arrivals(ops, 500.0, seed=42)
        assert first == second
        times = [op.issue_s for op in first]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(t > 0 for t in times)

    def test_poisson_different_seeds_differ(self):
        from repro.workloads.traces import poisson_arrivals

        ops = self._ops()
        assert poisson_arrivals(ops, 500.0, seed=1) != poisson_arrivals(
            ops, 500.0, seed=2
        )

    def test_stamping_preserves_op_identity_and_order(self):
        from repro.workloads.traces import poisson_arrivals

        ops = mixed_trace(blocks=2, pages_per_block=3, seed=5)
        stamped = poisson_arrivals(ops, 2000.0, seed=3)
        assert [
            (op.kind, op.block, op.page, op.data) for op in stamped
        ] == [
            (op.kind, op.block, op.page, op.data) for op in ops
        ]

    def test_invalid_rate_rejected(self):
        from repro.workloads.traces import (
            fixed_rate_arrivals, poisson_arrivals,
        )

        with pytest.raises(ConfigurationError):
            fixed_rate_arrivals(self._ops(), 0.0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(self._ops(), -1.0)
