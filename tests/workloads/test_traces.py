"""Workload trace generator tests."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import (
    TraceOpKind,
    mixed_trace,
    multimedia_playback_trace,
    os_upgrade_trace,
)


def op_counts(trace):
    counts = {kind: 0 for kind in TraceOpKind}
    for op in trace:
        counts[op.kind] += 1
    return counts


class TestTraces:
    def test_multimedia_is_read_intensive(self):
        trace = multimedia_playback_trace(blocks=2, pages_per_block=8, read_passes=4)
        counts = op_counts(trace)
        assert counts[TraceOpKind.WRITE] == 16
        assert counts[TraceOpKind.READ] == 64
        assert counts[TraceOpKind.READ] > 3 * counts[TraceOpKind.WRITE]

    def test_reads_follow_writes(self):
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=1)
        written = set()
        for op in trace:
            if op.kind is TraceOpKind.WRITE:
                written.add((op.block, op.page))
            elif op.kind is TraceOpKind.READ:
                assert (op.block, op.page) in written

    def test_os_upgrade_full_verification(self):
        trace = os_upgrade_trace(blocks=2, pages_per_block=4)
        counts = op_counts(trace)
        assert counts[TraceOpKind.WRITE] == counts[TraceOpKind.READ] == 8

    def test_mixed_trace_respects_fraction(self):
        trace = mixed_trace(blocks=2, pages_per_block=8, read_fraction=0.5)
        counts = op_counts(trace)
        total = counts[TraceOpKind.READ] + counts[TraceOpKind.WRITE]
        assert counts[TraceOpKind.READ] / total == pytest.approx(0.5, abs=0.2)

    def test_mixed_trace_reads_only_written_pages(self):
        trace = mixed_trace(blocks=1, pages_per_block=8)
        written = set()
        for op in trace:
            if op.kind is TraceOpKind.WRITE:
                written.add((op.block, op.page))
            elif op.kind is TraceOpKind.READ:
                assert (op.block, op.page) in written

    def test_write_data_attached(self):
        trace = os_upgrade_trace(blocks=1, pages_per_block=2, page_bytes=512)
        for op in trace:
            if op.kind is TraceOpKind.WRITE:
                assert len(op.data) == 512

    def test_deterministic_by_seed(self):
        a = mixed_trace(seed=5)
        b = mixed_trace(seed=5)
        assert [(o.kind, o.block, o.page) for o in a] == [
            (o.kind, o.block, o.page) for o in b
        ]

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            multimedia_playback_trace(blocks=0)
        with pytest.raises(ConfigurationError):
            mixed_trace(read_fraction=1.5)
