"""Throughput model tests."""

import pytest

from repro.controller.throughput import ThroughputModel
from repro.errors import ConfigurationError


class TestThroughput:
    def test_serial_point(self):
        model = ThroughputModel(4096)
        point = model.serial_point(75e-6, 100e-6, 51e-6, 700e-6)
        assert point.read_latency_s == pytest.approx(175e-6)
        assert point.write_latency_s == pytest.approx(751e-6)
        assert point.read_bytes_per_s == pytest.approx(4096 / 175e-6)

    def test_pipelined_point_uses_slowest_stage(self):
        model = ThroughputModel(4096)
        point = model.pipelined_point(75e-6, 100e-6, 51e-6, 700e-6)
        assert point.read_latency_s == pytest.approx(100e-6)
        assert point.write_latency_s == pytest.approx(700e-6)

    def test_pipelining_never_slower(self):
        model = ThroughputModel()
        serial = model.serial_point(75e-6, 150e-6, 51e-6, 1.5e-3)
        pipe = model.pipelined_point(75e-6, 150e-6, 51e-6, 1.5e-3)
        assert pipe.read_bytes_per_s >= serial.read_bytes_per_s
        assert pipe.write_bytes_per_s >= serial.write_bytes_per_s

    def test_gain_and_loss_percent(self):
        assert ThroughputModel.gain_percent(130.0, 100.0) == pytest.approx(30.0)
        assert ThroughputModel.loss_percent(60.0, 100.0) == pytest.approx(40.0)
        with pytest.raises(ConfigurationError):
            ThroughputModel.gain_percent(1.0, 0.0)

    def test_paper_read_numbers(self):
        # Baseline EOL: 75 us read + ~162 us decode -> ~17 MB/s;
        # max-read mode: ~104 us decode -> ~23 MB/s (+~30%).
        model = ThroughputModel(4096)
        baseline = model.serial_point(75e-6, 162e-6, 0, 1)
        relaxed = model.serial_point(75e-6, 104e-6, 0, 1)
        gain = ThroughputModel.gain_percent(
            relaxed.read_bytes_per_s, baseline.read_bytes_per_s
        )
        assert gain == pytest.approx(32, abs=3)

    def test_invalid_page_size(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel(0)
