"""Controller-side reliability manager tests."""

import pytest

from repro.bch.codec import AdaptiveBCHCodec
from repro.controller.reliability import ReliabilityManager, ReliabilityPolicy
from repro.core.modes import OperatingMode
from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm
from tests.conftest import flip_bits


def feed_decodes(codec: AdaptiveBCHCodec, rng, pages: int, errors_per_page: int):
    """Push decode traffic through the codec to build an RBER estimate."""
    codec.set_correction_capability(max(8, errors_per_page))
    message = rng.bytes(codec.k // 8)
    codeword = codec.encode(message)
    n = codec.spec.n_stored
    for _ in range(pages):
        positions = rng.choice(n, errors_per_page, replace=False).tolist()
        codec.decode(flip_bits(codeword, positions))


class TestReliabilityManager:
    def test_epoch_triggering(self, rng):
        codec = AdaptiveBCHCodec(k=1024, t_max=16)
        manager = ReliabilityManager(
            codec, ReliabilityPolicy(epoch_reads=4, min_bits_for_estimate=1)
        )
        assert manager.after_read(IsppAlgorithm.SV) is None
        assert manager.after_read(IsppAlgorithm.SV) is None
        assert manager.after_read(IsppAlgorithm.SV) is None
        decision = manager.after_read(IsppAlgorithm.SV)
        assert decision is not None
        assert len(manager.adaptations) == 1

    def test_conservative_without_feedback(self, rng):
        codec = AdaptiveBCHCodec(k=1024, t_max=16)
        manager = ReliabilityManager(codec)
        decision = manager.set_mode(OperatingMode.BASELINE, IsppAlgorithm.SV)
        # No decode history: worst-case provisioning.
        assert decision.config.ecc_t == codec.t_max
        assert decision.config.algorithm is IsppAlgorithm.SV

    def test_adapts_t_to_observed_rber(self, rng):
        codec = AdaptiveBCHCodec(k=1024, t_max=16)
        # ~1 error per ~1200-bit word: observed RBER ~8e-4, well inside
        # what t <= 16 covers on this short code.
        feed_decodes(codec, rng, pages=40, errors_per_page=1)
        manager = ReliabilityManager(
            codec, ReliabilityPolicy(min_bits_for_estimate=10_000)
        )
        decision = manager.set_mode(OperatingMode.BASELINE, IsppAlgorithm.SV)
        assert decision.config.ecc_t < codec.t_max
        assert decision.estimated_rber > 0

    def test_mode_switch_changes_algorithm(self, rng):
        codec = AdaptiveBCHCodec(k=1024, t_max=16)
        feed_decodes(codec, rng, pages=40, errors_per_page=2)
        manager = ReliabilityManager(
            codec, ReliabilityPolicy(min_bits_for_estimate=10_000)
        )
        baseline = manager.set_mode(OperatingMode.BASELINE, IsppAlgorithm.SV)
        min_uber = manager.set_mode(OperatingMode.MIN_UBER, IsppAlgorithm.SV)
        assert baseline.config.algorithm is IsppAlgorithm.SV
        assert min_uber.config.algorithm is IsppAlgorithm.DV
        assert min_uber.config.ecc_t == baseline.config.ecc_t

    def test_max_read_relaxes_t(self, rng):
        codec = AdaptiveBCHCodec(k=1024, t_max=16)
        feed_decodes(codec, rng, pages=40, errors_per_page=3)
        manager = ReliabilityManager(
            codec, ReliabilityPolicy(min_bits_for_estimate=10_000)
        )
        baseline = manager.set_mode(OperatingMode.BASELINE, IsppAlgorithm.SV)
        max_read = manager.set_mode(
            OperatingMode.MAX_READ_THROUGHPUT, IsppAlgorithm.SV
        )
        assert max_read.config.algorithm is IsppAlgorithm.DV
        assert max_read.config.ecc_t <= baseline.config.ecc_t

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            ReliabilityPolicy(epoch_reads=0)
