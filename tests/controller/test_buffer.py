"""Page buffer tests."""

import pytest

from repro.controller.buffer import PageBuffer
from repro.errors import ControllerError


class TestPageBuffer:
    def test_load_peek_drain(self):
        buffer = PageBuffer(128)
        buffer.load(b"data")
        assert buffer.occupied
        assert buffer.peek() == b"data"
        assert buffer.drain() == b"data"
        assert not buffer.occupied

    def test_structural_hazard(self):
        buffer = PageBuffer(128)
        buffer.load(b"one")
        with pytest.raises(ControllerError):
            buffer.load(b"two")

    def test_capacity_enforced(self):
        buffer = PageBuffer(4)
        with pytest.raises(ControllerError):
            buffer.load(b"too large")

    def test_empty_access_rejected(self):
        buffer = PageBuffer(16)
        with pytest.raises(ControllerError):
            buffer.peek()
        with pytest.raises(ControllerError):
            buffer.drain()

    def test_invalid_capacity(self):
        with pytest.raises(ControllerError):
            PageBuffer(0)
