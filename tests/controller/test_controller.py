"""Top-level NandController tests."""

import numpy as np
import pytest

from repro.controller.controller import ControllerConfig, NandController
from repro.core.modes import OperatingMode
from repro.errors import ControllerError
from repro.nand.geometry import NandGeometry
from repro.nand.ispp import IsppAlgorithm
from repro.workloads.patterns import random_page


@pytest.fixture()
def controller(rng):
    return NandController(
        NandGeometry(blocks=4, pages_per_block=4), rng=rng
    )


class TestController:
    def test_initial_baseline_config(self, controller):
        status = controller.status()
        assert status["mode"] == "baseline"
        assert status["program_algorithm"] == "ispp-sv"
        assert status["ecc_t"] == 6  # required t at fresh SV RBER 1e-5

    def test_write_read_round_trip(self, controller, rng):
        data = random_page(4096, rng)
        report = controller.write(0, 0, data)
        assert report.algorithm is IsppAlgorithm.SV
        out, read_report = controller.read(0, 0)
        assert out == data
        assert read_report.success

    def test_mode_switching_reconfigures_both_layers(self, controller):
        controller.set_mode(OperatingMode.MIN_UBER)
        status = controller.status()
        assert status["program_algorithm"] == "ispp-dv"
        assert status["ecc_t"] == 6  # baseline t kept (section 6.3.1)

        controller.set_mode(OperatingMode.MAX_READ_THROUGHPUT)
        status = controller.status()
        assert status["program_algorithm"] == "ispp-dv"
        assert status["ecc_t"] == 3  # relaxed t (section 6.3.2)

    def test_mode_tracks_device_age(self, controller):
        controller.set_mode(OperatingMode.BASELINE, pe_reference=1e5)
        assert controller.status()["ecc_t"] == 65

    def test_cross_mode_read_back(self, controller, rng):
        data = random_page(4096, rng)
        controller.write(0, 0, data)
        controller.set_mode(OperatingMode.MAX_READ_THROUGHPUT)
        # Page written in baseline mode must still decode (stored t).
        out, report = controller.read(0, 0)
        assert out == data

    def test_register_telemetry_updates(self, controller, rng):
        data = random_page(4096, rng)
        controller.write(1, 0, data)
        controller.read(1, 0)
        status = controller.status()
        assert status["decode_failures"] == 0

    def test_erase_and_rewrite(self, controller, rng):
        data = random_page(4096, rng)
        controller.write(2, 0, data)
        latency = controller.erase(2)
        assert latency > 0
        controller.write(2, 0, data)
        out, _ = controller.read(2, 0)
        assert out == data

    def test_apply_config_validates_spare(self, rng):
        controller = NandController(
            NandGeometry(blocks=2, pages_per_block=2, page_spare_bytes=64),
            rng=rng,
        )
        with pytest.raises(ControllerError):
            controller.apply_config(IsppAlgorithm.SV, 65)

    def test_self_adaptive_epoch(self, rng):
        controller = NandController(
            NandGeometry(blocks=2, pages_per_block=2),
            config=ControllerConfig(self_adaptive=True),
            rng=rng,
        )
        controller.reliability.policy = type(controller.reliability.policy)(
            epoch_reads=2, min_bits_for_estimate=1
        )
        data = random_page(4096, rng)
        controller.write(0, 0, data)
        controller.read(0, 0)
        controller.read(0, 0)
        assert len(controller.reliability.adaptations) >= 1
