"""Core controller FSM tests (datapath flows)."""

import numpy as np
import pytest

from repro.bch.codec import AdaptiveBCHCodec
from repro.controller.core import CoreControllerFsm
from repro.controller.ocp import OcpInterface
from repro.errors import ControllerError
from repro.nand.device import NandFlashDevice
from repro.nand.geometry import NandGeometry


@pytest.fixture()
def fsm(rng):
    geometry = NandGeometry(blocks=4, pages_per_block=4)
    device = NandFlashDevice(geometry, rng=rng)
    codec = AdaptiveBCHCodec(k=geometry.page_data_bits, t_max=16)
    codec.set_correction_capability(4)
    return CoreControllerFsm(codec, device, OcpInterface())


class TestWriteFlow:
    def test_write_then_read_round_trip(self, fsm, rng):
        data = rng.bytes(4096)
        write = fsm.write_page(0, 0, data)
        assert write.latencies.transfer_s > 0
        assert write.latencies.encode_s > 0
        assert write.latencies.program_s > 0
        read = fsm.read_page(0, 0)
        assert read.data == data
        assert read.latencies.read_array_s == pytest.approx(75e-6)

    def test_wrong_size_rejected(self, fsm):
        with pytest.raises(ControllerError):
            fsm.write_page(0, 0, b"short")

    def test_oversized_t_rejected_by_spare_budget(self, rng):
        geometry = NandGeometry(blocks=2, pages_per_block=2, page_spare_bytes=64)
        device = NandFlashDevice(geometry, rng=rng)
        codec = AdaptiveBCHCodec(k=geometry.page_data_bits, t_max=65)
        codec.set_correction_capability(65)  # 130 B parity > 64 B spare
        fsm = CoreControllerFsm(codec, device, OcpInterface())
        with pytest.raises(ControllerError):
            fsm.write_page(0, 0, bytes(4096))


class TestReadFlow:
    def test_read_unwritten_page_rejected(self, fsm):
        with pytest.raises(ControllerError):
            fsm.read_page(3, 3)

    def test_decode_uses_written_t(self, fsm, rng):
        data = rng.bytes(4096)
        fsm.write_page(0, 0, data)          # written at t = 4
        fsm.codec.set_correction_capability(9)
        read = fsm.read_page(0, 0)          # must still decode with t = 4
        assert read.data == data
        assert fsm.codec.t == 9             # current selection untouched

    def test_erase_forgets_page_metadata(self, fsm, rng):
        data = rng.bytes(4096)
        fsm.write_page(1, 0, data)
        fsm.erase_block(1)
        with pytest.raises(ControllerError):
            fsm.read_page(1, 0)

    def test_latency_total(self, fsm, rng):
        fsm.write_page(0, 1, rng.bytes(4096))
        read = fsm.read_page(0, 1)
        lat = read.latencies
        assert lat.total_s == pytest.approx(
            lat.transfer_s + lat.encode_s + lat.program_s
            + lat.read_array_s + lat.decode_s
        )


class TestPipelinedFsm:
    """Pipelined FSM variant: same data/stage accounting, overlapped clock."""

    @pytest.fixture()
    def pipelined(self, rng):
        from repro.controller.core import PipelinedCoreFsm

        geometry = NandGeometry(blocks=4, pages_per_block=4)
        device = NandFlashDevice(geometry, rng=rng)
        codec = AdaptiveBCHCodec(k=geometry.page_data_bits, t_max=16)
        codec.set_correction_capability(4)
        return PipelinedCoreFsm(codec, device, OcpInterface())

    def test_data_identical_to_serial_fsm(self, fsm, pipelined, rng):
        payloads = [rng.bytes(4096) for _ in range(4)]
        ops = [(0, i, data) for i, data in enumerate(payloads)]
        serial_writes = fsm.write_pages(ops)
        pipe_writes = pipelined.write_pages(ops)
        for serial, pipe in zip(serial_writes, pipe_writes):
            assert pipe.data == serial.data
        reads = pipelined.read_pages([(0, i) for i in range(4)])
        for read, payload in zip(reads, payloads):
            assert read.data == payload

    def test_batch_elapsed_is_pipelined(self, pipelined, rng):
        from repro.controller.core import pipeline_elapsed_s

        ops = [(0, i, rng.bytes(4096)) for i in range(4)]
        flows = pipelined.write_pages(ops)
        expected = pipeline_elapsed_s(
            (f.latencies.transfer_s + f.latencies.encode_s,
             f.latencies.program_s)
            for f in flows
        )
        assert pipelined.last_batch_elapsed_s == pytest.approx(expected)
        assert pipelined.last_batch_elapsed_s < pipelined.serial_elapsed_s(flows)
        reads = pipelined.read_pages([(0, i) for i in range(4)])
        read_expected = pipeline_elapsed_s(
            (f.latencies.read_array_s,
             f.latencies.transfer_s + f.latencies.decode_s)
            for f in reads
        )
        assert pipelined.last_batch_elapsed_s == pytest.approx(read_expected)

    def test_recurrence_against_hand_computed(self):
        from repro.controller.core import pipeline_elapsed_s

        # A=10, B=5 each: handoffs gate on the slower stage A.
        assert pipeline_elapsed_s([(10.0, 5.0)] * 3) == pytest.approx(35.0)
        # B dominates: first A fills, then B serialises.
        assert pipeline_elapsed_s([(5.0, 10.0)] * 3) == pytest.approx(35.0)
        assert pipeline_elapsed_s([]) == 0.0
