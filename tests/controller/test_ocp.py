"""OCP interface tests."""

import pytest

from repro.controller.ocp import OcpInterface, OcpParams
from repro.errors import ControllerError


class TestOcp:
    def test_transfer_time_scales_with_size(self):
        ocp = OcpInterface()
        small = ocp.transfer_time_s(64)
        large = ocp.transfer_time_s(4096)
        assert large > small
        assert large == pytest.approx(
            ocp.params.burst_overhead_s + 4096 / ocp.params.bandwidth_bytes_per_s
        )

    def test_page_transfer_much_faster_than_flash(self):
        # "The network is typically much faster than the Flash device."
        ocp = OcpInterface()
        assert ocp.transfer_time_s(4096) < 20e-6 < 75e-6

    def test_accounting(self):
        ocp = OcpInterface()
        ocp.data_burst(100)
        ocp.data_burst(200)
        assert ocp.bytes_transferred == 300
        assert ocp.transactions == 2

    def test_config_commands_reach_registers(self):
        ocp = OcpInterface()
        address = ocp.registers.field("ECC_T").address
        ocp.config_write(address, 12)
        value, _ = ocp.config_read(address)
        assert value == 12
        assert ocp.transactions == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ControllerError):
            OcpInterface().transfer_time_s(-1)

    def test_invalid_params(self):
        with pytest.raises(ControllerError):
            OcpParams(bandwidth_bytes_per_s=0)
