"""Spare-area budget tests."""

import pytest

from repro.controller.spare import SpareAreaLayout
from repro.errors import ConfigurationError


class TestSpareArea:
    def test_paper_configuration_fits_t65(self):
        spare = SpareAreaLayout()
        # t = 65 parity = 130 bytes must fit 224 - 16 = 208 bytes.
        assert spare.fits(130)
        assert spare.max_t(m=16) >= 65

    def test_max_t(self):
        spare = SpareAreaLayout(spare_bytes=224, reserved_metadata_bytes=16)
        assert spare.max_t(m=16) == (208 * 8) // 16 == 104

    def test_leftover(self):
        spare = SpareAreaLayout()
        assert spare.leftover_bytes(130) == 208 - 130
        with pytest.raises(ConfigurationError):
            spare.leftover_bytes(1000)

    def test_utilisation_monotone(self):
        spare = SpareAreaLayout()
        assert spare.utilisation(16) < spare.utilisation(130) <= 1.0

    def test_small_block_code_saturates_spare(self):
        # Section 2: 512 B blocks with per-block parity overflow the spare.
        spare = SpareAreaLayout()
        # 8 blocks x (13 bits * 20 errors / 8) bytes ~ 260 B > budget.
        per_block_parity = (13 * 20 + 7) // 8
        assert not spare.fits(8 * per_block_parity)

    def test_invalid_layout(self):
        with pytest.raises(ConfigurationError):
            SpareAreaLayout(spare_bytes=0)
        with pytest.raises(ConfigurationError):
            SpareAreaLayout(spare_bytes=16, reserved_metadata_bytes=16)
