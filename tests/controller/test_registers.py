"""Register file tests."""

import pytest

from repro.controller.registers import REGISTER_MAP, CommandStatusRegisters
from repro.errors import ControllerError


class TestRegisters:
    def test_map_addresses_unique(self):
        addresses = [f.address for f in REGISTER_MAP]
        assert len(addresses) == len(set(addresses))

    def test_write_read_round_trip(self):
        regs = CommandStatusRegisters()
        ecc_t = regs.field("ECC_T")
        regs.write(ecc_t.address, 42)
        assert regs.read(ecc_t.address) == 42

    def test_read_only_register_rejects_bus_write(self):
        regs = CommandStatusRegisters()
        status = regs.field("STATUS")
        with pytest.raises(ControllerError):
            regs.write(status.address, 1)
        # Internal (core-controller) path may still set it.
        regs.set_named("STATUS", 1)
        assert regs.get_named("STATUS") == 1

    def test_width_enforced(self):
        regs = CommandStatusRegisters()
        with pytest.raises(ControllerError):
            regs.set_named("PROGRAM_ALGORITHM", 2)  # 1-bit field
        with pytest.raises(ControllerError):
            regs.write(regs.field("ECC_T").address, 256)

    def test_unmapped_access(self):
        regs = CommandStatusRegisters()
        with pytest.raises(ControllerError):
            regs.write(0x7F, 0)
        with pytest.raises(ControllerError):
            regs.read(0x7F)
        with pytest.raises(ControllerError):
            regs.field("NOPE")
