"""Logical map tests."""

import pytest

from repro.errors import ControllerError
from repro.ftl.mapping import LogicalMap, PhysicalLocation


@pytest.fixture()
def mapping():
    return LogicalMap(blocks=[0, 1, 2], pages_per_block=4)


class TestLogicalMap:
    def test_bind_and_lookup(self, mapping):
        loc = PhysicalLocation(0, 0)
        mapping.bind(7, loc)
        assert mapping.lookup(7) == loc
        assert mapping.lpn_at(loc) == 7
        assert mapping.valid_pages(0) == 1

    def test_update_invalidates_previous(self, mapping):
        first = PhysicalLocation(0, 0)
        second = PhysicalLocation(1, 0)
        mapping.bind(7, first)
        mapping.bind(7, second)
        assert mapping.lookup(7) == second
        assert mapping.lpn_at(first) is None
        assert mapping.stale_pages(0) == 1
        assert mapping.valid_pages(0) == 0
        assert mapping.valid_pages(1) == 1

    def test_cannot_reuse_physical_page(self, mapping):
        mapping.bind(1, PhysicalLocation(0, 0))
        with pytest.raises(ControllerError):
            mapping.bind(2, PhysicalLocation(0, 0))

    def test_stale_page_not_reusable(self, mapping):
        mapping.bind(1, PhysicalLocation(0, 0))
        mapping.bind(1, PhysicalLocation(0, 1))  # 0/0 now stale
        with pytest.raises(ControllerError):
            mapping.bind(2, PhysicalLocation(0, 0))

    def test_unbind(self, mapping):
        mapping.bind(3, PhysicalLocation(2, 1))
        stale = mapping.unbind(3)
        assert stale == PhysicalLocation(2, 1)
        assert mapping.lookup(3) is None
        assert mapping.stale_pages(2) == 1
        with pytest.raises(ControllerError):
            mapping.unbind(3)

    def test_release_block(self, mapping):
        mapping.bind(1, PhysicalLocation(0, 0))
        mapping.bind(1, PhysicalLocation(0, 1))
        orphans = mapping.release_block(0)
        assert orphans == [1]  # still-valid page reported
        assert mapping.stale_pages(0) == 0
        assert mapping.valid_pages(0) == 0
        mapping.bind(9, PhysicalLocation(0, 0))  # reusable again

    def test_capacity_and_mapped(self, mapping):
        assert mapping.capacity_pages == 12
        mapping.bind(5, PhysicalLocation(1, 2))
        assert mapping.mapped_lpns() == [5]

    def test_unmanaged_block_rejected(self, mapping):
        with pytest.raises(ControllerError):
            mapping.bind(0, PhysicalLocation(9, 0))
        with pytest.raises(ControllerError):
            mapping.valid_pages(9)

    def test_invalid_construction(self):
        with pytest.raises(ControllerError):
            LogicalMap([], 4)
        with pytest.raises(ControllerError):
            LogicalMap([0, 0], 4)
        with pytest.raises(ControllerError):
            LogicalMap([0], 0)
