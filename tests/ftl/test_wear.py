"""Wear-aware allocator tests."""

import numpy as np
import pytest

from repro.errors import ControllerError
from repro.ftl.wear import WearAwareAllocator
from repro.nand.device import NandFlashDevice
from repro.nand.geometry import NandGeometry


@pytest.fixture()
def device(rng):
    return NandFlashDevice(NandGeometry(blocks=4, pages_per_block=4), rng=rng)


class TestAllocator:
    def test_sequential_allocation_within_block(self, device):
        allocator = WearAwareAllocator(device, [0, 1])
        pages = [allocator.allocate() for _ in range(4)]
        assert len({p.block for p in pages}) == 1
        assert [p.page for p in pages] == [0, 1, 2, 3]

    def test_opens_next_block_when_full(self, device):
        allocator = WearAwareAllocator(device, [0, 1])
        for _ in range(5):
            last = allocator.allocate()
        assert last.page == 0
        assert allocator.free_pages() == 3

    def test_prefers_least_worn_block(self, device):
        device.array._wear[0] = 10
        device.array._wear[1] = 2
        allocator = WearAwareAllocator(device, [0, 1])
        assert allocator.allocate().block == 1

    def test_exhaustion_raises(self, device):
        allocator = WearAwareAllocator(device, [0])
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(ControllerError):
            allocator.allocate()

    def test_reclaim_returns_block_to_pool(self, device):
        allocator = WearAwareAllocator(device, [0, 1])
        for _ in range(8):
            allocator.allocate()
        with pytest.raises(ControllerError):
            allocator.allocate()
        # Can't reclaim the open block, but the other one is fine.
        other = 0 if allocator.open_block == 1 else 1
        allocator.reclaim(other)
        assert allocator.allocate().block == other

    def test_wear_spread(self, device):
        device.array._wear[0] = 7
        allocator = WearAwareAllocator(device, [0, 1, 2])
        assert allocator.wear_spread() == 7

    def test_unmanaged_reclaim_rejected(self, device):
        allocator = WearAwareAllocator(device, [0])
        with pytest.raises(ControllerError):
            allocator.reclaim(3)


@pytest.fixture()
def plane_device(rng):
    return NandFlashDevice(
        NandGeometry(blocks=4, pages_per_block=4, planes=2), rng=rng
    )


class TestPlaneInterleave:
    def test_consecutive_allocations_alternate_planes(self, plane_device):
        allocator = WearAwareAllocator(
            plane_device, [0, 1, 2, 3], plane_interleave=True
        )
        planes = [
            plane_device.geometry.plane_of_block(allocator.allocate().block)
            for _ in range(8)
        ]
        assert planes == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_open_blocks_one_per_plane(self, plane_device):
        allocator = WearAwareAllocator(
            plane_device, [0, 1, 2, 3], plane_interleave=True
        )
        allocator.allocate()
        allocator.allocate()
        open_blocks = allocator.open_blocks
        assert len(open_blocks) == 2
        assert {
            plane_device.geometry.plane_of_block(b) for b in open_blocks
        } == {0, 1}

    def test_starved_plane_is_skipped(self, plane_device):
        # Only even (plane-0) blocks available: allocation still works.
        allocator = WearAwareAllocator(
            plane_device, [0, 2], plane_interleave=True
        )
        blocks = {allocator.allocate().block for _ in range(8)}
        assert blocks == {0, 2}

    def test_free_pages_counts_every_open_cursor(self, plane_device):
        allocator = WearAwareAllocator(
            plane_device, [0, 1, 2, 3], plane_interleave=True
        )
        assert allocator.free_pages() == 16
        allocator.allocate()
        allocator.allocate()
        assert allocator.free_pages() == 14

    def test_open_blocks_cannot_be_reclaimed(self, plane_device):
        allocator = WearAwareAllocator(
            plane_device, [0, 1, 2, 3], plane_interleave=True
        )
        allocator.allocate()
        open_block = allocator.open_block
        with pytest.raises(ControllerError):
            allocator.reclaim(open_block)

    def test_full_cursor_closes_so_gc_can_reclaim_it(self, plane_device):
        allocator = WearAwareAllocator(
            plane_device, [0, 1, 2, 3], plane_interleave=True
        )
        for _ in range(16):  # drain every block through both planes
            allocator.allocate()
        # Full interleaved cursors close eagerly: nothing stays shielded
        # from GC while its starved plane waits for a free block.
        assert allocator.open_blocks == set()
        allocator.reclaim(0)
        assert allocator.allocate().block == 0

    def test_interleaved_ftl_survives_overwrite_pressure(self, rng):
        # Regression: a full open block starved of free plane blocks used
        # to stay shielded from GC forever, wedging the partition; the
        # reserve also has to cover one block per open cursor.
        from repro.controller.controller import NandController
        from repro.ftl.ftl import FlashTranslationLayer

        geometry = NandGeometry(blocks=4, pages_per_block=4, planes=2)
        ftl = FlashTranslationLayer(
            NandController(geometry, rng=rng),
            [0, 1, 2, 3],
            plane_interleave=True,
        )
        written = {}
        for _ in range(8):
            for lpn in range(ftl.logical_capacity):
                data = rng.bytes(4096)
                ftl.write(lpn, data)
                written[lpn] = data
        for lpn, data in written.items():
            assert ftl.read(lpn)[0] == data
