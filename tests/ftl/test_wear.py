"""Wear-aware allocator tests."""

import numpy as np
import pytest

from repro.errors import ControllerError
from repro.ftl.wear import WearAwareAllocator
from repro.nand.device import NandFlashDevice
from repro.nand.geometry import NandGeometry


@pytest.fixture()
def device(rng):
    return NandFlashDevice(NandGeometry(blocks=4, pages_per_block=4), rng=rng)


class TestAllocator:
    def test_sequential_allocation_within_block(self, device):
        allocator = WearAwareAllocator(device, [0, 1])
        pages = [allocator.allocate() for _ in range(4)]
        assert len({p.block for p in pages}) == 1
        assert [p.page for p in pages] == [0, 1, 2, 3]

    def test_opens_next_block_when_full(self, device):
        allocator = WearAwareAllocator(device, [0, 1])
        for _ in range(5):
            last = allocator.allocate()
        assert last.page == 0
        assert allocator.free_pages() == 3

    def test_prefers_least_worn_block(self, device):
        device.array._wear[0] = 10
        device.array._wear[1] = 2
        allocator = WearAwareAllocator(device, [0, 1])
        assert allocator.allocate().block == 1

    def test_exhaustion_raises(self, device):
        allocator = WearAwareAllocator(device, [0])
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(ControllerError):
            allocator.allocate()

    def test_reclaim_returns_block_to_pool(self, device):
        allocator = WearAwareAllocator(device, [0, 1])
        for _ in range(8):
            allocator.allocate()
        with pytest.raises(ControllerError):
            allocator.allocate()
        # Can't reclaim the open block, but the other one is fine.
        other = 0 if allocator.open_block == 1 else 1
        allocator.reclaim(other)
        assert allocator.allocate().block == other

    def test_wear_spread(self, device):
        device.array._wear[0] = 7
        allocator = WearAwareAllocator(device, [0, 1, 2])
        assert allocator.wear_spread() == 7

    def test_unmanaged_reclaim_rejected(self, device):
        allocator = WearAwareAllocator(device, [0])
        with pytest.raises(ControllerError):
            allocator.reclaim(3)
