"""Batched GC migration tests (ISSUE 3 satellite).

``GarbageCollector._migrate_and_reclaim`` now moves the victim's live
set through one ``read_batch`` + one ``write_batch``; these tests pin
the invariants the serial page-at-a-time loop guaranteed: per-page
mapping rebinds, migration statistics, data integrity under churn, and
identical allocation order to a serial replica.
"""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.errors import ControllerError
from repro.ftl.ftl import FlashTranslationLayer
from repro.ftl.mapping import PhysicalLocation
from repro.nand.geometry import NandGeometry
from repro.workloads.patterns import random_page

GEOMETRY = NandGeometry(blocks=6, pages_per_block=4)


def _ftl(seed=123, blocks=(0, 1, 2, 3)):
    controller = NandController(
        GEOMETRY, rng=np.random.default_rng(seed)
    )
    return FlashTranslationLayer(controller, blocks=list(blocks))


def _serial_migrate(gc, victim):
    """The pre-batch migration loop, for allocation-order comparison."""
    moves = []
    for page in range(gc.mapping.pages_per_block):
        lpn = gc.mapping.lpn_at(PhysicalLocation(victim, page))
        if lpn is None:
            continue
        target = gc.allocator.allocate()
        moves.append((lpn, target))
    return moves


class TestBatchedMigration:
    def test_live_pages_survive_collection(self, rng):
        ftl = _ftl()
        capacity = ftl.logical_capacity
        payloads = {
            lpn: random_page(4096, rng) for lpn in range(capacity)
        }
        ftl.write_many(list(payloads.items()))
        # Overwrite half the space repeatedly to force collections.
        for _ in range(3):
            for lpn in range(0, capacity, 2):
                payloads[lpn] = random_page(4096, rng)
            ftl.write_many(
                [(lpn, payloads[lpn]) for lpn in range(0, capacity, 2)]
            )
        assert ftl.gc.stats.collections > 0
        assert ftl.gc.stats.pages_migrated > 0
        for lpn, expected in payloads.items():
            data, _ = ftl.read(lpn)
            assert data == expected

    def test_migration_rebinds_every_live_page(self, rng):
        ftl = _ftl()
        lpns = list(range(ftl.logical_capacity))
        ftl.write_many([(lpn, random_page(4096, rng)) for lpn in lpns])
        victim = next(
            block for block in ftl.mapping.blocks
            if block != ftl.allocator.open_block
            and ftl.mapping.valid_pages(block) > 0
        )
        live_before = [
            ftl.mapping.lpn_at(PhysicalLocation(victim, page))
            for page in range(GEOMETRY.pages_per_block)
        ]
        live_before = [lpn for lpn in live_before if lpn is not None]
        # Stale one page so the victim is collectible, then collect it.
        ftl.write(live_before[0], random_page(4096, rng))
        collected = None
        while collected != victim:
            collected = ftl.gc.collect()
            if collected is None:
                pytest.skip("victim never selected under this layout")
        for lpn in live_before:
            location = ftl.mapping.lookup(lpn)
            assert location is not None
            assert location.block != victim

    def test_stats_accounting_matches_live_set(self, rng):
        ftl = _ftl()
        lpns = list(range(ftl.logical_capacity))
        ftl.write_many([(lpn, random_page(4096, rng)) for lpn in lpns])
        ftl.write(0, random_page(4096, rng))  # one stale page somewhere
        before_migrated = ftl.gc.stats.pages_migrated
        before_time = ftl.gc.stats.migration_time_s
        victim = ftl.gc.pick_victim()
        live = ftl.mapping.valid_pages(victim)
        assert ftl.gc.collect() == victim
        assert ftl.gc.stats.pages_migrated == before_migrated + live
        assert ftl.gc.stats.migration_time_s > before_time
        assert ftl.gc.stats.blocks_erased >= 1

    def test_allocation_order_matches_serial_replica(self, rng):
        # Two identical FTLs: one migrates for real, the other replays
        # the serial loop's allocation sequence for the same victim.
        real, replica = _ftl(seed=9), _ftl(seed=9)
        for ftl in (real, replica):
            ftl.write_many([
                (lpn, bytes([lpn]) * 4096)
                for lpn in range(ftl.logical_capacity)
            ])
            ftl.write(1, bytes([0xAB]) * 4096)
        victim = real.gc.pick_victim()
        assert victim == replica.gc.pick_victim()
        expected = _serial_migrate(replica.gc, victim)
        assert real.gc.collect() == victim
        for lpn, target in expected:
            assert real.mapping.lookup(lpn) == target

    def test_over_capacity_batch_still_rejected(self):
        # Batched migration must not loosen the capacity diagnostics.
        ftl = _ftl(blocks=(0, 1))
        with pytest.raises(ControllerError):
            ftl.write_many([
                (lpn, bytes(4096))
                for lpn in range(ftl.logical_capacity + 1)
            ])
