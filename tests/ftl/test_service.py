"""Differentiated storage service tests — the paper's future work."""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.errors import ControllerError
from repro.ftl.service import DifferentiatedStorage, ServiceClass
from repro.nand.geometry import NandGeometry
from repro.nand.ispp import IsppAlgorithm
from repro.workloads.patterns import random_page


@pytest.fixture()
def storage():
    controller = NandController(
        NandGeometry(blocks=12, pages_per_block=4),
        rng=np.random.default_rng(321),
    )
    return DifferentiatedStorage(controller)


class TestProvisioning:
    def test_service_class_mode_mapping(self):
        assert ServiceClass.MISSION_CRITICAL.operating_mode.value == "min-uber"
        assert ServiceClass.STREAMING.operating_mode.value == "max-read-throughput"
        assert ServiceClass.DEFAULT.operating_mode.value == "baseline"

    def test_namespace_configs(self, storage):
        critical = storage.create_namespace(
            "vault", ServiceClass.MISSION_CRITICAL, blocks=3
        )
        stream = storage.create_namespace("media", ServiceClass.STREAMING, blocks=3)
        default = storage.create_namespace("misc", ServiceClass.DEFAULT, blocks=3)
        assert critical.config.algorithm is IsppAlgorithm.DV
        assert stream.config.algorithm is IsppAlgorithm.DV
        assert default.config.algorithm is IsppAlgorithm.SV
        # Fresh device: baseline/min-UBER share t=6, streaming relaxes to 3.
        assert critical.config.ecc_t == default.config.ecc_t == 6
        assert stream.config.ecc_t == 3

    def test_partitions_disjoint(self, storage):
        a = storage.create_namespace("a", ServiceClass.DEFAULT, blocks=3)
        b = storage.create_namespace("b", ServiceClass.STREAMING, blocks=3)
        assert set(a.ftl.mapping.blocks).isdisjoint(b.ftl.mapping.blocks)

    def test_over_provisioning_rejected(self, storage):
        storage.create_namespace("big", ServiceClass.DEFAULT, blocks=10)
        with pytest.raises(ControllerError):
            storage.create_namespace("more", ServiceClass.DEFAULT, blocks=3)

    def test_duplicate_name_rejected(self, storage):
        storage.create_namespace("x", ServiceClass.DEFAULT, blocks=2)
        with pytest.raises(ControllerError):
            storage.create_namespace("x", ServiceClass.DEFAULT, blocks=2)


class TestDataPath:
    def test_round_trip_per_namespace(self, storage, rng):
        storage.create_namespace("vault", ServiceClass.MISSION_CRITICAL, blocks=3)
        storage.create_namespace("media", ServiceClass.STREAMING, blocks=3)
        vault_data = random_page(4096, rng)
        media_data = random_page(4096, rng)
        storage.write("vault", 0, vault_data)
        storage.write("media", 0, media_data)
        assert storage.read("vault", 0)[0] == vault_data
        assert storage.read("media", 0)[0] == media_data

    def test_writes_use_namespace_algorithm(self, storage, rng):
        storage.create_namespace("vault", ServiceClass.MISSION_CRITICAL, blocks=3)
        storage.create_namespace("misc", ServiceClass.DEFAULT, blocks=3)
        storage.write("vault", 0, random_page(4096, rng))
        assert storage.controller.device.program_algorithm is IsppAlgorithm.DV
        storage.write("misc", 0, random_page(4096, rng))
        assert storage.controller.device.program_algorithm is IsppAlgorithm.SV

    def test_interleaved_namespaces_stay_consistent(self, storage, rng):
        storage.create_namespace("a", ServiceClass.STREAMING, blocks=3)
        storage.create_namespace("b", ServiceClass.DEFAULT, blocks=3)
        payloads = {}
        for i in range(6):
            name = "a" if i % 2 == 0 else "b"
            payloads[(name, i)] = random_page(4096, rng)
            storage.write(name, i % 4, payloads[(name, i)])
        # Last write per (name, lpn) wins.
        assert storage.read("a", 0)[0] == payloads[("a", 4)]
        assert storage.read("b", 1)[0] == payloads[("b", 5)]

    def test_unknown_namespace(self, storage):
        with pytest.raises(ControllerError):
            storage.read("ghost", 0)

    def test_report(self, storage, rng):
        storage.create_namespace("media", ServiceClass.STREAMING, blocks=3)
        storage.write("media", 0, random_page(4096, rng))
        storage.read("media", 0)
        rows = storage.report()
        assert rows[0]["namespace"] == "media"
        assert rows[0]["host_writes"] == 1
        assert rows[0]["host_reads"] == 1
        assert "ispp-dv" in rows[0]["config"]

    def test_refresh_configs_with_age(self, storage):
        ns = storage.create_namespace("media", ServiceClass.STREAMING, blocks=3)
        assert ns.config.ecc_t == 3
        storage.controller.device.array._wear[:] = 100_000
        storage.refresh_configs()
        assert ns.config.ecc_t == 14
