"""Flash translation layer tests (including GC correctness)."""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.errors import ControllerError
from repro.ftl.ftl import FlashTranslationLayer
from repro.nand.geometry import NandGeometry
from repro.workloads.patterns import random_page


@pytest.fixture()
def controller():
    return NandController(
        NandGeometry(blocks=6, pages_per_block=4),
        rng=np.random.default_rng(123),
    )


@pytest.fixture()
def ftl(controller):
    return FlashTranslationLayer(controller, blocks=[0, 1, 2, 3])


class TestBasicOperations:
    def test_write_read_round_trip(self, ftl, rng):
        data = random_page(4096, rng)
        ftl.write(0, data)
        out, latency = ftl.read(0)
        assert out == data
        assert latency > 0
        assert ftl.stats.host_writes == 1
        assert ftl.stats.host_reads == 1

    def test_update_in_place_semantics(self, ftl, rng):
        first = random_page(4096, rng)
        second = random_page(4096, rng)
        ftl.write(5, first)
        ftl.write(5, second)
        out, _ = ftl.read(5)
        assert out == second

    def test_unmapped_read_rejected(self, ftl):
        with pytest.raises(ControllerError):
            ftl.read(0)

    def test_trim(self, ftl, rng):
        ftl.write(2, random_page(4096, rng))
        assert ftl.is_mapped(2)
        ftl.trim(2)
        assert not ftl.is_mapped(2)
        with pytest.raises(ControllerError):
            ftl.read(2)

    def test_lpn_bounds(self, ftl, rng):
        with pytest.raises(ControllerError):
            ftl.write(ftl.logical_capacity, random_page(4096, rng))

    def test_logical_capacity_reserves_gc_space(self, ftl):
        # 4 blocks x 4 pages minus one reserved block.
        assert ftl.logical_capacity == 12


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc(self, ftl, rng):
        payloads = {}
        # Fill the logical space, then overwrite it twice: must GC.
        for round_index in range(3):
            for lpn in range(ftl.logical_capacity):
                payloads[lpn] = random_page(4096, rng)
                ftl.write(lpn, payloads[lpn])
        assert ftl.gc.stats.collections >= 1
        for lpn, expected in payloads.items():
            out, _ = ftl.read(lpn)
            assert out == expected, f"LPN {lpn} corrupted by GC"

    def test_write_amplification_reported(self, ftl, rng):
        for round_index in range(3):
            for lpn in range(ftl.logical_capacity):
                ftl.write(lpn, random_page(4096, rng))
        wa = ftl.stats.write_amplification(ftl.gc.stats)
        assert wa >= 1.0

    def test_full_partition_without_stale_pages(self, controller, rng):
        ftl = FlashTranslationLayer(controller, blocks=[4, 5])
        # 2 blocks x 4 pages, one block reserved -> 4 logical pages.
        for lpn in range(ftl.logical_capacity):
            ftl.write(lpn, random_page(4096, rng))
        # Everything valid, nothing stale: a further new LPN must fail...
        with pytest.raises(ControllerError):
            ftl.write(ftl.logical_capacity, random_page(4096, rng))
        # ...but overwriting existing data still works (creates staleness).
        ftl.write(0, random_page(4096, rng))

    def test_gc_uses_wear_levelling(self, ftl, rng):
        from repro.ftl.gc import GarbageCollector

        for round_index in range(5):
            for lpn in range(ftl.logical_capacity):
                ftl.write(lpn, random_page(4096, rng))
        # Static levelling bounds the spread at its trigger threshold.
        assert ftl.allocator.wear_spread() <= GarbageCollector.LEVELING_THRESHOLD + 1
        # Sanity: without levelling the same workload concentrated ~15.
        assert ftl.gc.stats.pages_migrated > 0

    def test_too_few_blocks_rejected(self, controller):
        with pytest.raises(ControllerError):
            FlashTranslationLayer(controller, blocks=[0])


class TestBatchOperations:
    def test_write_many_read_many_round_trip(self, ftl, rng):
        items = [(lpn, random_page(4096, rng)) for lpn in range(6)]
        latencies = ftl.write_many(items)
        assert len(latencies) == 6 and all(l > 0 for l in latencies)
        reads = ftl.read_many([lpn for lpn, _ in items])
        for (data, latency), (_, expected) in zip(reads, items):
            assert data == expected
            assert latency > 0
        assert ftl.stats.host_writes == 6
        assert ftl.stats.host_reads == 6

    def test_write_many_matches_serial_writes(self, controller, rng):
        serial = FlashTranslationLayer(controller, blocks=[0, 1, 2, 3])
        controller2 = NandController(
            NandGeometry(blocks=6, pages_per_block=4),
            rng=np.random.default_rng(123),
        )
        batched = FlashTranslationLayer(controller2, blocks=[0, 1, 2, 3])
        payloads = [random_page(4096, rng) for _ in range(5)]
        for lpn, data in enumerate(payloads):
            serial.write(lpn, data)
        batched.write_many(list(enumerate(payloads)))
        for lpn, expected in enumerate(payloads):
            assert serial.read(lpn)[0] == expected
            assert batched.read(lpn)[0] == expected
        assert serial.mapping.mapped_lpns() == batched.mapping.mapped_lpns()

    def test_read_many_unmapped_rejected(self, ftl, rng):
        ftl.write(0, random_page(4096, rng))
        with pytest.raises(ControllerError):
            ftl.read_many([0, 99])

    def test_write_many_checks_lpns_up_front(self, ftl, rng):
        with pytest.raises(ControllerError):
            ftl.write_many([
                (0, random_page(4096, rng)),
                (ftl.logical_capacity, random_page(4096, rng)),
            ])
        assert ftl.stats.host_writes == 0

    def test_batch_larger_than_free_space_triggers_gc(self, ftl, rng):
        # Fill the logical space once, then overwrite it all in one batch:
        # the batch exceeds the remaining free pages, so GC must run
        # mid-batch and every page must still land correctly.
        first = {lpn: random_page(4096, rng) for lpn in range(ftl.logical_capacity)}
        ftl.write_many(list(first.items()))
        second = {lpn: random_page(4096, rng) for lpn in range(ftl.logical_capacity)}
        ftl.write_many(list(second.items()))
        assert ftl.gc.stats.collections >= 1
        for lpn, expected in second.items():
            assert ftl.read(lpn)[0] == expected

    def test_single_gc_check_per_batch(self, ftl, rng, monkeypatch):
        calls = []
        original = ftl._provision

        def counting(pages):
            calls.append(pages)
            return original(pages)

        monkeypatch.setattr(ftl, "_provision", counting)
        ftl.write_many([(lpn, random_page(4096, rng)) for lpn in range(6)])
        assert calls == [6]

    def test_reserve_dip_batches_leave_gc_viable(self):
        # Regression: a batch must not drain the reserve in one go when
        # nothing is collectible — each dip write creates staleness that
        # GC needs a chance to reclaim before the next write, otherwise
        # the greedy victim ends up with more valid pages than free
        # pages and migration wedges ("out of free blocks").
        controller = NandController(
            NandGeometry(blocks=4, pages_per_block=16),
            rng=np.random.default_rng(1),
        )
        ftl = FlashTranslationLayer(controller, blocks=[0, 1])
        rng = np.random.default_rng(3)
        cap = ftl.logical_capacity
        ftl.write_many([(lpn, random_page(4096, rng)) for lpn in range(cap)])
        for _ in range(10):
            # Hot-spot overwrites: every write of LPN 0 immediately
            # staleness-invalidates the previous copy.
            ftl.write_many([(0, random_page(4096, rng)) for _ in range(8)])
        assert ftl.read(0)[0] is not None
        assert ftl.gc.stats.collections >= 1
