"""GC victim-policy and background-collection guard tests (ISSUE 9).

Covers the collector surface the scheduled-GC session relies on: the
``cost_benefit`` victim policy diverging from ``greedy`` under hot/cold
skew, ``victim_score``'s non-victim filtering, the ``collect_block``
legality guards that keep background collection from wedging a shard,
the ``maybe_level`` free-pages guard, and :class:`GcConfig` validation.
"""

import numpy as np
import pytest
from math import inf

from repro.controller.controller import NandController
from repro.errors import ControllerError
from repro.ftl.ftl import FlashTranslationLayer
from repro.ftl.gc import GC_POLICIES, GcConfig
from repro.nand.geometry import NandGeometry


def _ftl(blocks=10, pages_per_block=8, seed=123):
    controller = NandController(
        NandGeometry(blocks=blocks, pages_per_block=pages_per_block),
        rng=np.random.default_rng(seed),
    )
    return FlashTranslationLayer(controller, blocks=list(range(blocks)))


def _page(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * 4096


class TestGcConfig:
    def test_defaults_are_valid(self):
        config = GcConfig()
        assert config.policy in GC_POLICIES
        assert config.low_water_blocks < config.high_water_blocks

    def test_unknown_policy_rejected(self):
        with pytest.raises(ControllerError):
            GcConfig(policy="youngest-first")

    def test_low_watermark_must_be_positive(self):
        with pytest.raises(ControllerError):
            GcConfig(low_water_blocks=0)

    def test_watermarks_must_form_a_band(self):
        with pytest.raises(ControllerError):
            GcConfig(low_water_blocks=3, high_water_blocks=3)


class TestVictimPolicies:
    def _hot_cold_state(self):
        """Old mildly-stale block A vs young heavily-stale block B.

        Greedy must chase B's larger stale count; cost-benefit must
        prefer A — half empty and long since written, so its live set
        is cold and the reclaim pays off for longer.
        """
        ftl = _ftl()
        ppb = ftl.mapping.pages_per_block
        # Fill A early, then age it with fresh (non-staling) writes,
        # then fill B late.
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(ppb)])
        a_block = ftl.mapping.lookup(0).block
        ftl.write_many(
            [(lpn, _page(lpn)) for lpn in range(2 * ppb, 4 * ppb)]
        )
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(ppb, 2 * ppb)])
        b_block = ftl.mapping.lookup(ppb).block
        assert a_block != b_block
        # Stale half of A, and more than half of B (B stays > A).
        ftl.write_many([(lpn, _page(99)) for lpn in range(ppb // 2)])
        ftl.write_many(
            [(lpn, _page(99)) for lpn in range(ppb, ppb + ppb // 2 + 1)]
        )
        assert ftl.mapping.stale_pages(a_block) == ppb // 2
        assert ftl.mapping.stale_pages(b_block) == ppb // 2 + 1
        assert a_block not in ftl.allocator.open_blocks
        assert b_block not in ftl.allocator.open_blocks
        return ftl, a_block, b_block

    def test_greedy_chases_stale_count_cost_benefit_age(self):
        ftl, a_block, b_block = self._hot_cold_state()
        ftl.gc.policy = "greedy"
        assert ftl.gc.pick_victim() == b_block
        ftl.gc.policy = "cost_benefit"
        assert ftl.gc.pick_victim() == a_block

    def test_cost_benefit_score_matches_formula(self):
        ftl, a_block, _ = self._hot_cold_state()
        ftl.gc.policy = "cost_benefit"
        valid = ftl.mapping.valid_pages(a_block)
        u = valid / ftl.mapping.pages_per_block
        expected = ((1.0 - u) / (2.0 * u)) * (
            1 + ftl.mapping.block_age(a_block)
        )
        assert ftl.gc.victim_score(a_block) == pytest.approx(expected)

    def test_greedy_score_is_stale_count(self):
        ftl, a_block, _ = self._hot_cold_state()
        ftl.gc.policy = "greedy"
        assert ftl.gc.victim_score(a_block) == float(
            ftl.mapping.stale_pages(a_block)
        )

    def test_fully_stale_block_scores_infinite(self):
        ftl = _ftl()
        ppb = ftl.mapping.pages_per_block
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(ppb)])
        victim = ftl.mapping.lookup(0).block
        ftl.write_many([(lpn, _page(99)) for lpn in range(ppb)])
        assert ftl.mapping.valid_pages(victim) == 0
        ftl.gc.policy = "cost_benefit"
        assert ftl.gc.victim_score(victim) == inf
        assert ftl.gc.pick_victim() == victim

    def test_victim_score_none_for_non_victims(self):
        ftl = _ftl()
        ppb = ftl.mapping.pages_per_block
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(ppb + 1)])
        full_valid = ftl.mapping.lookup(0).block
        open_block = ftl.mapping.lookup(ppb).block
        free_block = next(iter(ftl.allocator.free_blocks))
        for policy in GC_POLICIES:
            ftl.gc.policy = policy
            assert ftl.gc.victim_score(open_block) is None
            assert ftl.gc.victim_score(free_block) is None
            assert ftl.gc.victim_score(full_valid) is None


class TestCollectBlockGuards:
    def test_rejects_open_free_and_clean_blocks(self):
        ftl = _ftl()
        ppb = ftl.mapping.pages_per_block
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(ppb + 1)])
        before = ftl.gc.stats.collections
        assert ftl.gc.collect_block(ftl.mapping.lookup(ppb).block) is None
        assert ftl.gc.collect_block(
            next(iter(ftl.allocator.free_blocks))
        ) is None
        assert ftl.gc.collect_block(ftl.mapping.lookup(0).block) is None
        assert ftl.gc.stats.collections == before

    def test_rejects_victim_larger_than_free_pool(self):
        # 3 blocks x 4 pages, both closed blocks full.  Trim creates
        # staleness without a provisioning write (which would collect
        # on its own); two raw allocations stand in for concurrently
        # staged host writes holding pages.  The 2-page pool cannot
        # take a 3-page live set, so background collection must refuse
        # rather than wedge the shard.
        ftl = _ftl(blocks=3, pages_per_block=4)
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(8)])
        a_block = ftl.mapping.lookup(0).block
        ftl.trim(0)
        assert ftl.mapping.valid_pages(a_block) == 3
        ftl.allocator.allocate()
        ftl.allocator.allocate()
        assert ftl.allocator.free_pages() == 2
        assert ftl.gc.collect_block(a_block) is None
        # Shrink the live set below the pool and the same victim goes.
        ftl.trim(1)
        ftl.trim(2)
        assert ftl.gc.collect_block(a_block) == a_block

    def test_collects_legal_victim_without_levelling(self):
        ftl = _ftl()
        ppb = ftl.mapping.pages_per_block
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(ppb)])
        victim = ftl.mapping.lookup(0).block
        ftl.write(0, _page(90))
        # Force a wear spread past the levelling threshold: collect()
        # would trigger a static-levelling pass, collect_block must not.
        wear = ftl.controller.device.array._wear
        wear[:] = 0
        wear[victim] = ftl.gc.LEVELING_THRESHOLD + 4
        migrated = ftl.gc.stats.pages_migrated
        assert ftl.gc.collect_block(victim) == victim
        assert ftl.gc.stats.collections == 1
        # Only the victim's live set moved — no levelling migration.
        assert ftl.gc.stats.pages_migrated == migrated + ppb - 1
        assert ftl.allocator.is_free(victim)
        for lpn in range(ppb):
            assert ftl.read(lpn)[0] == (_page(90) if lpn == 0 else _page(lpn))


class TestMaybeLevel:
    def test_levels_cold_block_when_spread_exceeds_threshold(self):
        ftl = _ftl(blocks=6, pages_per_block=4)
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(8)])
        coldest = ftl.mapping.lookup(0).block
        wear = ftl.controller.device.array._wear
        wear[:] = ftl.gc.LEVELING_THRESHOLD + 5
        wear[coldest] = 0
        assert ftl.gc.maybe_level() == coldest
        for lpn in range(4):
            assert ftl.mapping.lookup(lpn).block != coldest

    def test_free_pages_guard_blocks_levelling(self):
        # Fill to capacity plus one overwrite: 3 free pages remain,
        # but the coldest closed block holds 4 valid pages — levelling
        # must refuse (migrating it would exhaust the pool).
        ftl = _ftl(blocks=6, pages_per_block=4)
        ftl.write_many([
            (lpn, _page(lpn)) for lpn in range(ftl.logical_capacity)
        ])
        ftl.write(0, _page(77))
        assert ftl.allocator.free_pages() == 3
        coldest = ftl.mapping.lookup(5).block
        assert ftl.mapping.valid_pages(coldest) == 4
        wear = ftl.controller.device.array._wear
        wear[:] = ftl.gc.LEVELING_THRESHOLD + 5
        wear[coldest] = 0
        migrated = ftl.gc.stats.pages_migrated
        assert ftl.gc.maybe_level() is None
        assert ftl.gc.stats.pages_migrated == migrated

    def test_no_levelling_inside_threshold(self):
        ftl = _ftl(blocks=6, pages_per_block=4)
        ftl.write_many([(lpn, _page(lpn)) for lpn in range(8)])
        wear = ftl.controller.device.array._wear
        wear[:] = ftl.gc.LEVELING_THRESHOLD  # spread == threshold: no-op
        wear[ftl.mapping.lookup(0).block] = 0
        assert ftl.gc.maybe_level() is None
