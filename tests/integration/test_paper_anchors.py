"""The paper's headline numbers, asserted in one place.

Every quantitative claim of the abstract/evaluation that the reproduction
targets (DESIGN.md section 4) is pinned here; if a refactor moves any of
these, this file is the tripwire.
"""

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentSuite

GRID = np.logspace(0, 5, 7)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(seed=20120316)


class TestHeadlineClaims:
    def test_adaptive_ecc_range_3_to_65(self, suite):
        """'a BCH codec architecture ... with correction capability in the
        range t = 3..65' (section 6.2)."""
        fig07 = suite.run_fig07()
        assert fig07.data["t_min"] == 3
        assert fig07.data["t_sv_max"] == 65
        assert fig07.data["t_dv_max"] == 14

    def test_rber_improvement_one_order_of_magnitude(self, suite):
        """'improve RBER figures up to one order of magnitude' (Fig. 5)."""
        model = suite.rber_model
        for n in (0, 1e3, 1e5):
            ratio = model.rber_sv(n) / model.rber_dv(n)
            assert 10 <= ratio <= 15

    def test_power_shift_about_7mw(self, suite):
        """'A shift of just 7.5 mW between the two algorithms' (Fig. 6)."""
        result = suite.run_fig06(grid=np.logspace(0, 5, 3), n_cells=8192)
        delta_match = [
            w for w in result.notes.split() if w.startswith(("+", "-"))
        ]
        series = result.data["series"]
        sv = np.mean([series.columns[f"ispp-sv-L{l}"] for l in (1, 2, 3)])
        dv = np.mean([series.columns[f"ispp-dv-L{l}"] for l in (1, 2, 3)])
        assert (dv - sv) * 1e3 == pytest.approx(7.5, abs=3.0)

    def test_decode_dominates_page_read(self, suite):
        """'page read ... 75 us against the 150 us of the decoding
        operation' (section 6.3.2)."""
        point = suite.analyzer.point(
            __import__("repro.core.modes", fromlist=["OperatingMode"]).OperatingMode.BASELINE,
            1e5,
        )
        assert point.read_array_s == pytest.approx(75e-6)
        assert point.decode_s > 1.5e-4  # >150 us at end of life

    def test_read_gain_up_to_30_percent(self, suite):
        """'improve the memory read throughput of up to 30% at the end of
        memory lifetime' (Fig. 11)."""
        result = suite.run_fig11(GRID)
        gains = result.data["gains"]
        assert gains[-1] == pytest.approx(31, abs=5)
        assert np.max(gains) == gains[-1]

    def test_write_loss_about_40_percent(self, suite):
        """'the write throughput loss ... on average amounts to 40%'
        (Fig. 9)."""
        result = suite.run_fig09(GRID)
        losses = result.data["losses"]
        assert np.mean(losses) == pytest.approx(44, abs=6)
        assert losses.min() > 30 and losses.max() < 55

    def test_uber_improvement_without_read_penalty(self, suite):
        """Section 6.3.1: min-UBER mode boosts UBER at identical decode
        latency (same t, same decoding time)."""
        from repro.core.modes import OperatingMode

        for age in (0.0, 1e4, 1e5):
            base = suite.analyzer.point(OperatingMode.BASELINE, age)
            boost = suite.analyzer.point(OperatingMode.MIN_UBER, age)
            assert boost.decode_s == base.decode_s        # no read penalty
            assert boost.log10_uber < base.log10_uber - 5  # UBER boost
            assert boost.program_s > base.program_s        # write price

    def test_constant_uber_in_max_read_mode(self, suite):
        """Section 6.3.2: relaxed ECC still meets UBER = 1e-11."""
        from repro.core.modes import OperatingMode

        for age in (0.0, 1e4, 1e5):
            point = suite.analyzer.point(OperatingMode.MAX_READ_THROUGHPUT, age)
            assert point.log10_uber <= -11

    def test_ecc_power_relaxation_7mw_to_1mw(self, suite):
        """'the power consumption of the ECC can be reduced ... from 7 mW
        to 1 mW' (section 6.3.2)."""
        from repro.core.pareto import ecc_power_w

        assert ecc_power_w(65) * 1e3 == pytest.approx(7.0, abs=0.5)
        assert ecc_power_w(3) * 1e3 == pytest.approx(1.3, abs=0.5)

    def test_dv_program_time_about_1_5_ms(self, suite):
        """'1.5 ms against the ECC encoder latency' (section 6.3.3)."""
        from repro.nand.ispp import IsppAlgorithm

        program_s = suite.analyzer.program_time_s(IsppAlgorithm.DV, 0.0)
        assert 1.0e-3 < program_s < 1.8e-3
        encode_s = suite.analyzer.latency_model.encode_latency_s(
            suite.analyzer.spec(14)
        )
        # "about two orders of magnitude lower" -- within a factor ~30x.
        assert program_s / encode_s > 20

    def test_parity_fits_spare_area(self, suite):
        """Section 6.2's 4 KiB-block design keeps parity within the spare."""
        from repro.controller.spare import SpareAreaLayout

        spare = SpareAreaLayout()
        assert spare.fits(suite.analyzer.spec(65).parity_bytes)
