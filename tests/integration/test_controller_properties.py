"""Property-based end-to-end controller round trips (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.controller import NandController
from repro.core.modes import OperatingMode
from repro.nand.geometry import NandGeometry


@pytest.fixture(scope="module")
def controller():
    return NandController(
        NandGeometry(blocks=8, pages_per_block=8),
        rng=np.random.default_rng(98765),
    )


# Tile a small seed pattern into a full page: keeps hypothesis examples
# small/shrinkable while still exercising arbitrary page contents.
page_payloads = st.binary(min_size=1, max_size=64).map(
    lambda seed: (seed * (4096 // len(seed) + 1))[:4096]
)
modes = st.sampled_from(list(OperatingMode))
ages = st.sampled_from([0.0, 1e3, 1e4, 1e5])


class TestControllerRoundTripProperties:
    _next_page = 0

    def _fresh_address(self, controller):
        geometry = controller.geometry
        flat = TestControllerRoundTripProperties._next_page
        TestControllerRoundTripProperties._next_page += 1
        block, page = geometry.split_address(flat % geometry.pages)
        if controller.device.array.is_programmed(block, page):
            controller.erase(block)
        return block, page

    @given(data=page_payloads, mode=modes, age=ages)
    @settings(max_examples=25, deadline=None)
    def test_any_payload_any_mode_any_age_round_trips(
        self, controller, data, mode, age
    ):
        controller.device.array._wear[:] = int(age)
        controller.set_mode(mode, pe_reference=age)
        block, page = self._fresh_address(controller)
        controller.write(block, page, data)
        out, report = controller.read(block, page)
        assert out == data
        assert report.success
