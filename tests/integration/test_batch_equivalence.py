"""Stack-level equivalence: the batched controller/host datapath must be
observably identical to the serial one (same data, same latency
accounting, same telemetry).

Since the storage substrate injects read-back errors with a vectorized
batch draw, exact serial/batch identity holds at RBER = 0 (the device
model is pinned to an error-free lifetime curve here); the rber > 0
equivalence — binomially consistent error counts, identical wear and
read-disturb bookkeeping — is covered statistically in
``tests/nand/test_device_batch.py``."""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.nand.device import NandFlashDevice
from repro.nand.geometry import NandGeometry
from repro.nand.rber import LifetimeRberModel
from repro.sim.host import HostWorkload, run_host_workload
from repro.workloads.patterns import random_page
from repro.workloads.traces import mixed_trace


class _ZeroRber(LifetimeRberModel):
    """Error-free lifetime curve: serial and batch reads are bit-exact."""

    def rber(self, algorithm, pe_cycles):
        return 0.0

    def rber_batch(self, pe_cycles, dv=None):
        return np.zeros(np.asarray(pe_cycles, dtype=float).shape)


def _controller(seed: int = 404) -> NandController:
    geometry = NandGeometry(blocks=4, pages_per_block=8)
    device = NandFlashDevice(
        geometry, rber_model=_ZeroRber(), rng=np.random.default_rng(seed)
    )
    return NandController(geometry, device=device,
                          rng=np.random.default_rng(seed))


class TestControllerBatchFlows:
    def test_write_batch_matches_serial(self):
        serial, batched = _controller(), _controller()
        rng = np.random.default_rng(11)
        pages = [(0, p, random_page(4096, rng)) for p in range(6)]
        serial_reports = [serial.write(*op) for op in pages]
        batch_reports = batched.write_batch(pages)
        assert batch_reports == serial_reports
        for _, page, _ in pages:
            assert (
                batched.device.array.read_page(0, page)
                == serial.device.array.read_page(0, page)
            )

    def test_read_batch_matches_serial(self):
        serial, batched = _controller(), _controller()
        rng = np.random.default_rng(12)
        pages = [(0, p, random_page(4096, rng)) for p in range(6)]
        for controller in (serial, batched):
            controller.write_batch(pages)
        addresses = [(0, p) for p in range(6)]
        serial_reads = [serial.read(*a) for a in addresses]
        batch_reads = batched.read_batch(addresses)
        for (s_data, s_report), (b_data, b_report) in zip(
            serial_reads, batch_reads
        ):
            assert b_data == s_data
            assert b_report == s_report
        assert batched.status() == serial.status()

    def test_read_batch_groups_mixed_stored_t(self):
        controller = _controller()
        rng = np.random.default_rng(13)
        controller.apply_config(controller.device.program_algorithm, 4)
        controller.write(0, 0, random_page(4096, rng))
        controller.apply_config(controller.device.program_algorithm, 9)
        controller.write(0, 1, random_page(4096, rng))
        reads = controller.read_batch([(0, 0), (0, 1), (0, 0)])
        assert [report.success for _, report in reads] == [True] * 3
        # Per-page decode still honours the capability each page was
        # written with, not the currently-configured one.
        assert reads[0][0] == reads[2][0]


class TestHostBatching:
    @pytest.mark.parametrize("batch_pages", [2, 4, 16])
    def test_batched_workload_matches_serial(self, batch_pages):
        trace = mixed_trace(blocks=2, pages_per_block=4)
        serial = run_host_workload(
            _controller(), HostWorkload("serial", trace)
        )
        batched = run_host_workload(
            _controller(),
            HostWorkload("batched", trace, batch_pages=batch_pages),
        )
        assert batched.elapsed_s == pytest.approx(serial.elapsed_s)
        assert batched.stats.reads == serial.stats.reads
        assert batched.stats.writes == serial.stats.writes
        assert batched.stats.bytes_read == serial.stats.bytes_read
        assert batched.corrected_bits == serial.corrected_bits
        assert batched.uncorrectable_pages == serial.uncorrectable_pages
