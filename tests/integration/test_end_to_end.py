"""End-to-end integration: controller + codec + device across modes."""

import numpy as np
import pytest

from repro.controller.controller import ControllerConfig, NandController
from repro.core.modes import OperatingMode
from repro.nand.geometry import NandGeometry
from repro.nand.ispp import IsppAlgorithm
from repro.workloads.patterns import random_page


def controller_at_age(age: float, seed: int = 55, **kwargs) -> NandController:
    rng = np.random.default_rng(seed)
    controller = NandController(
        NandGeometry(blocks=4, pages_per_block=8), rng=rng, **kwargs
    )
    # Pre-age block 0 directly (simulating prior lifetime).
    controller.device.array._wear[0] = int(age)
    return controller


class TestLifecycle:
    def test_all_modes_round_trip_fresh(self, rng):
        for mode in OperatingMode:
            controller = controller_at_age(0)
            controller.set_mode(mode)
            data = random_page(4096, rng)
            controller.write(1, 0, data)
            out, report = controller.read(1, 0)
            assert out == data, mode

    def test_aged_device_errors_are_corrected(self, rng):
        controller = controller_at_age(100_000)
        controller.set_mode(OperatingMode.BASELINE, pe_reference=1e5)
        assert controller.codec.t == 65
        data = random_page(4096, rng)
        controller.write(0, 0, data)
        total_corrected = 0
        for _ in range(4):
            out, report = controller.read(0, 0)
            assert out == data
            assert report.success
            total_corrected += report.corrected_bits
        # RBER ~1e-3 over ~34.8k stored bits: ~35 errors per read.
        assert total_corrected > 60

    def test_underprovisioned_ecc_fails_on_aged_device(self, rng):
        controller = controller_at_age(
            100_000, config=ControllerConfig(strict_decode=False)
        )
        # Force the fresh-device configuration onto an end-of-life block.
        controller.apply_config(IsppAlgorithm.SV, 3)
        data = random_page(4096, rng)
        controller.write(0, 0, data)
        failures = 0
        for _ in range(6):
            _, report = controller.read(0, 0)
            if not report.success:
                failures += 1
        assert failures >= 1  # t=3 cannot stand ~35 errors/page

    def test_min_uber_mode_reduces_errors_on_aged_device(self, rng):
        corrected = {}
        for mode in (OperatingMode.BASELINE, OperatingMode.MIN_UBER):
            controller = controller_at_age(100_000, seed=77)
            controller.set_mode(mode, pe_reference=1e5)
            data = random_page(4096, rng)
            controller.write(0, 0, data)
            total = 0
            for _ in range(6):
                out, report = controller.read(0, 0)
                assert out == data
                total += report.corrected_bits
            corrected[mode] = total
        # ISPP-DV pages exhibit ~12.5x fewer raw errors.
        assert corrected[OperatingMode.MIN_UBER] < corrected[OperatingMode.BASELINE] / 3

    def test_max_read_latency_advantage_on_aged_device(self, rng):
        latencies = {}
        for mode in (OperatingMode.BASELINE, OperatingMode.MAX_READ_THROUGHPUT):
            controller = controller_at_age(100_000, seed=88)
            controller.set_mode(mode, pe_reference=1e5)
            data = random_page(4096, rng)
            controller.write(0, 0, data)
            _, report = controller.read(0, 0)
            latencies[mode] = report.latencies.read_array_s + report.latencies.decode_s
        gain = (
            latencies[OperatingMode.BASELINE]
            / latencies[OperatingMode.MAX_READ_THROUGHPUT]
            - 1.0
        )
        assert gain == pytest.approx(0.32, abs=0.06)  # paper: up to ~30%

    def test_write_latency_penalty(self, rng):
        latencies = {}
        for mode in (OperatingMode.BASELINE, OperatingMode.MAX_READ_THROUGHPUT):
            controller = controller_at_age(0, seed=99)
            controller.set_mode(mode)
            data = random_page(4096, rng)
            report = controller.write(0, 0, data)
            latencies[mode] = (
                report.latencies.encode_s + report.latencies.program_s
            )
        loss = 1.0 - (
            latencies[OperatingMode.BASELINE]
            / latencies[OperatingMode.MAX_READ_THROUGHPUT]
        )
        assert 0.30 < loss < 0.55  # paper: ~40-48%
