"""SsdSession tests: closed-loop equivalence oracle + open-loop streams.

The oracle below reproduces the PR 4 batch-drain host path verbatim: a
``DieStripedFtl`` whose ``_schedule`` spins up a fresh run-to-drain
``CommandScheduler`` per batch, driven by a copy of the PR 4
``_ssd_process`` loop.  The session-backed ``run_ssd_workload`` must
reproduce its per-op latencies and makespans **bit-exact** on randomized
mixed traces — the guarantee that lets the open-loop redesign ride on
the same timing model.
"""

import numpy as np
import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.errors import SimulationError
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTimingModel
from repro.sim.engine import SimEngine
from repro.sim.host import (
    HostWorkload,
    OpenLoopWorkload,
    WorkloadResult,
    run_open_loop_workload,
    run_ssd_workload,
)
from repro.sim.stats import ThroughputStats
from repro.ssd import (
    CommandScheduler,
    DieStripedFtl,
    IoCommand,
    PipelineConfig,
    SsdDevice,
    SsdSession,
    SsdTopology,
)
from repro.ssd.scheduler import CommandKind, DieCommand
from repro.workloads.traces import (
    TraceOp,
    TraceOpKind,
    fixed_rate_arrivals,
    mixed_trace,
)


# ---------------------------------------------------------------------------
# Oracle: the PR 4 batch-drain host path, kept verbatim.
# ---------------------------------------------------------------------------


class Pr4StripedFtl(DieStripedFtl):
    """PR 4 scheduling: a fresh run-to-drain scheduler pass per batch."""

    def _schedule(self, commands, count, queue_depth):
        commands.sort(key=lambda command: command.tag)
        if queue_depth is None:
            queue_depth = self.queue_depth
        self.last_schedule = self.ssd.scheduler.run(commands, queue_depth)
        by_tag = self.last_schedule.latency_by_tag()
        return [by_tag[tag] for tag in range(count)]


def _pr4_batched_ops(operations, batch_pages):
    group = []
    for op in operations:
        if group and (op.kind is not group[0].kind or len(group) >= batch_pages):
            yield group
            group = []
        group.append(op)
    if group:
        yield group


def _pr4_ssd_process(ftl, workload, result):
    """Verbatim copy of the PR 4 ``_ssd_process`` batch-drain loop."""
    page_bytes = ftl.geometry.page_data_bytes
    batch_pages = max(1, workload.batch_pages)
    queue_depth = workload.queue_depth if workload.queue_depth > 0 else None
    lpns = {}

    def lpn_of(op):
        return lpns.setdefault((op.block, op.page), len(lpns))

    for group in _pr4_batched_ops(workload.operations, batch_pages):
        kind = group[0].kind
        elapsed = 0.0
        if kind is TraceOpKind.WRITE:
            for op_latency in ftl.write_many(
                [(lpn_of(op), op.data) for op in group],
                queue_depth=queue_depth,
            ):
                result.stats.observe_write(page_bytes, op_latency)
        elif kind is TraceOpKind.READ:
            for _, op_latency in ftl.read_many(
                [lpn_of(op) for op in group], queue_depth=queue_depth
            ):
                result.stats.observe_read(page_bytes, op_latency)
        else:
            for op in group:
                for (block, _), lpn in list(lpns.items()):
                    if block == op.block and ftl.is_mapped(lpn):
                        ftl.trim(lpn)
        if kind is not TraceOpKind.ERASE and ftl.last_schedule is not None:
            elapsed = ftl.last_schedule.makespan_s
        result.corrected_bits = ftl.stats.corrected_bits
        yield elapsed + len(group) * workload.think_time_s


def _pr4_run_ssd_workload(ftl, workload):
    result = WorkloadResult(
        name=workload.name, elapsed_s=0.0, stats=ThroughputStats()
    )
    engine = SimEngine()
    engine.spawn(_pr4_ssd_process(ftl, workload, result))
    result.elapsed_s = engine.run()
    return result


# ---------------------------------------------------------------------------
# Shared builders
# ---------------------------------------------------------------------------


def _build(
    channels=1,
    dies_per_channel=2,
    pipeline=None,
    cls=DieStripedFtl,
    seed=2012,
    wear=10_000,
):
    topology = SsdTopology(
        channels=channels,
        dies_per_channel=dies_per_channel,
        geometry=NandGeometry(blocks=8, pages_per_block=8),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=seed, pipeline=pipeline
    )
    for controller in ssd.controllers:
        controller.device.array._wear[:] = wear
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(wear))
    return cls(ssd)


def _erase_spiced(trace, seed):
    """Append scratch writes + host-side ERASE ops to a mixed trace.

    The erased trace block is never read afterwards (a trimmed LPN may
    not be re-read), and one erase targets a block the trace never
    named — both paths must treat it as a no-op.
    """
    rng = np.random.default_rng(seed)
    scratch = [
        TraceOp(TraceOpKind.WRITE, 9, page, rng.bytes(4096))
        for page in range(2)
    ]
    return (
        list(trace)
        + scratch
        + [TraceOp(TraceOpKind.ERASE, 9), TraceOp(TraceOpKind.ERASE, 7)]
    )


def _read_commands(count, dies, tags=None):
    tags = range(count) if tags is None else tags
    return [
        DieCommand.from_phases(
            CommandKind.READ,
            die=index % dies,
            tag=tag,
            phases=NandTimingModel.read_phases(
                sense_s=75e-6, transfer_s=10e-6, decode_s=100e-6,
                decode_hold_s=60e-6,
            ),
            plane=index % 2,
            cache_busy_s=3e-6,
        )
        for index, tag in enumerate(tags)
    ]


# ---------------------------------------------------------------------------
# Closed-loop equivalence (the acceptance-criterion oracle test)
# ---------------------------------------------------------------------------


class TestClosedLoopEquivalence:
    @pytest.mark.parametrize("channels,dies_per_channel,pipeline", [
        (1, 1, None),
        (1, 2, PipelineConfig.full()),
        (2, 2, PipelineConfig(cache_read=True, pipelined_ecc=True)),
    ])
    @pytest.mark.parametrize("batch_pages,queue_depth", [
        (4, 0), (8, 2),
    ])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_session_reproduces_pr4_batch_drain_bit_exact(
        self, channels, dies_per_channel, pipeline, batch_pages,
        queue_depth, seed,
    ):
        trace = _erase_spiced(
            mixed_trace(blocks=2, pages_per_block=4, seed=seed), seed
        )
        workload = HostWorkload(
            "equiv", trace, batch_pages=batch_pages, queue_depth=queue_depth
        )
        oracle = _pr4_run_ssd_workload(
            _build(channels, dies_per_channel, pipeline, cls=Pr4StripedFtl),
            workload,
        )
        session_backed = run_ssd_workload(
            _build(channels, dies_per_channel, pipeline), workload
        )
        assert (
            session_backed.stats.read_latency.samples
            == oracle.stats.read_latency.samples
        )
        assert (
            session_backed.stats.write_latency.samples
            == oracle.stats.write_latency.samples
        )
        assert session_backed.elapsed_s == oracle.elapsed_s
        assert session_backed.corrected_bits == oracle.corrected_bits
        assert (
            session_backed.uncorrectable_pages == oracle.uncorrectable_pages
        )

    @pytest.mark.parametrize("queue_depth", [None, 1, 3])
    def test_execute_matches_run_to_drain_scheduler(self, queue_depth):
        topology = SsdTopology(
            channels=2, dies_per_channel=2,
            geometry=NandGeometry(blocks=4, pages_per_block=8),
        )
        config = PipelineConfig.full()
        commands = _read_commands(24, topology.dies)
        reference = CommandScheduler(topology, config).run(
            commands, queue_depth
        )
        ssd = SsdDevice(topology, seed=1, pipeline=config)
        for _ in range(2):  # the resident core must reproduce it repeatedly
            result = ssd.session.execute(commands, queue_depth)
            assert [
                (c.tag, c.admit_s, c.done_s) for c in result.completions
            ] == [
                (c.tag, c.admit_s, c.done_s) for c in reference.completions
            ]
            assert result.makespan_s == reference.makespan_s
            assert result.die_busy_s == reference.die_busy_s
            assert result.channel_busy_s == reference.channel_busy_s
            assert result.ecc_busy_s == reference.ecc_busy_s

    def test_closed_batch_queue_breakdown_is_admission_wait(self):
        ftl = _build(1, 1)
        ftl.write_many([(lpn, bytes(4096)) for lpn in range(6)])
        ftl.read_many(list(range(6)), queue_depth=2)
        completions = ftl.last_schedule.completions
        # Everything was submitted at the (re-based) batch start...
        assert all(c.submit_s == 0.0 for c in completions)
        # ...so later commands show a growing submit->dispatch wait.
        assert max(c.queue_s for c in completions) > 0.0
        assert all(
            c.total_latency_s == pytest.approx(c.queue_s + c.latency_s)
            for c in completions
        )


# ---------------------------------------------------------------------------
# Open-loop submission/completion streams
# ---------------------------------------------------------------------------


class TestOpenLoopSession:
    def test_submit_completes_with_data(self):
        ftl = _build()
        payloads = {lpn: bytes([lpn]) * 4096 for lpn in range(8)}
        ftl.write_many(list(payloads.items()))
        session = SsdSession(ftl)
        tags = {
            session.submit(IoCommand(TraceOpKind.READ, lpn)): lpn
            for lpn in payloads
        }
        session.drain()
        done = session.take_completions()
        assert len(done) == len(payloads)
        for completion in done:
            assert completion.lpn == tags[completion.tag]
            assert completion.data == payloads[completion.lpn]
            assert completion.done_s >= completion.dispatch_s
            assert completion.dispatch_s >= completion.submit_s
        assert session.take_completions() == []

    def test_mixed_reads_and_writes_overlap_in_flight(self):
        """A write stream and a read stream share the timeline open loop."""
        ftl = _build(1, 2, PipelineConfig.full())
        ftl.write_many([(lpn, bytes(4096)) for lpn in range(8)])
        session = SsdSession(ftl)
        for lpn in range(8):
            session.submit(IoCommand(TraceOpKind.READ, lpn))
            session.submit(
                IoCommand(TraceOpKind.WRITE, 8 + lpn, bytes(4096))
            )
        open_elapsed = session.drain()

        drained = _build(1, 2, PipelineConfig.full())
        drained.write_many([(lpn, bytes(4096)) for lpn in range(8)])
        total = 0.0
        for lpn in range(8):  # batch-drain: each op runs to completion
            drained.read_many([lpn])
            total += drained.last_schedule.makespan_s
            drained.write_many([(8 + lpn, bytes(4096))])
            total += drained.last_schedule.makespan_s
        assert open_elapsed < total

    def test_queue_depth_clamps_dispatch(self):
        ftl = _build(1, 1)
        ftl.write_many([(lpn, bytes(4096)) for lpn in range(8)])
        session = SsdSession(ftl, queue_depth=1)
        for lpn in range(8):
            session.submit(IoCommand(TraceOpKind.READ, lpn))
        assert session.in_flight == 1
        assert session.backlog == 7
        session.drain()
        done = session.take_completions()
        # QD-1: each command dispatches only when its predecessor is done.
        for earlier, later in zip(done, done[1:]):
            assert later.dispatch_s >= earlier.done_s
        assert max(c.queue_s for c in done) > 0.0

    def test_deterministic_replay(self):
        def run():
            ftl = _build(2, 2, PipelineConfig.full())
            ftl.write_many([(lpn, bytes(4096)) for lpn in range(16)])
            trace = fixed_rate_arrivals(
                [TraceOp(TraceOpKind.READ, 0, lpn) for lpn in range(16)] * 2,
                rate_ops_s=20_000,
            )
            result = run_open_loop_workload(
                ftl, OpenLoopWorkload("det", trace, queue_depth=4),
                exact_latencies=True,
            )
            return (
                result.elapsed_s,
                result.stats.read_latency.samples,
                result.latency_percentiles(),
            )

        assert run() == run()

    def test_open_loop_runner_percentiles_and_erase(self):
        ftl = _build()
        ops = [
            TraceOp(TraceOpKind.WRITE, 0, page, bytes(4096))
            for page in range(8)
        ]
        ops += [TraceOp(TraceOpKind.READ, 0, page) for page in range(8)]
        ops += [TraceOp(TraceOpKind.ERASE, 0)]
        result = run_open_loop_workload(
            ftl, OpenLoopWorkload("ol", fixed_rate_arrivals(ops, 5_000))
        )
        assert result.stats.writes == 8
        assert result.stats.reads == 8
        assert result.elapsed_s > 0
        tails = result.latency_percentiles()
        assert tails["service_p50_s"] > 0
        # The ERASE op trimmed every page at its arrival instant.
        assert not any(ftl.is_mapped(lpn) for lpn in range(8))

    def test_overload_latency_dominated_by_queueing(self):
        def at_rate(rate):
            ftl = _build(1, 1)
            ftl.write_many([(lpn, bytes(4096)) for lpn in range(8)])
            trace = fixed_rate_arrivals(
                [TraceOp(TraceOpKind.READ, 0, lpn) for lpn in range(8)] * 4,
                rate_ops_s=rate,
            )
            return run_open_loop_workload(
                ftl, OpenLoopWorkload("rate", trace, queue_depth=2)
            )

        relaxed = at_rate(500)       # well under saturation
        slammed = at_rate(500_000)   # far past saturation
        assert (
            relaxed.queue_latency.p95_s < slammed.queue_latency.p95_s
        )
        assert (
            slammed.stats.read_latency.p95_s
            > relaxed.stats.read_latency.p95_s
        )

    def test_runner_on_shared_session_rebases_and_restores_depth(self):
        """A used device-wide session paces arrivals like a fresh one."""
        def trace():
            return fixed_rate_arrivals(
                [TraceOp(TraceOpKind.READ, 0, lpn) for lpn in range(8)] * 2,
                rate_ops_s=2_000,
            )

        private_ftl = _build()
        private_ftl.write_many([(lpn, bytes(4096)) for lpn in range(8)])
        private = run_open_loop_workload(
            private_ftl, OpenLoopWorkload("p", trace(), queue_depth=2),
            exact_latencies=True,
        )

        shared_ftl = _build()
        shared_ftl.write_many([(lpn, bytes(4096)) for lpn in range(8)])
        session = shared_ftl.session
        assert session.engine.now_s > 0.0  # clock left at the prewrite
        shared = run_open_loop_workload(
            shared_ftl,
            OpenLoopWorkload("s", trace(), queue_depth=2),
            session=session,
            exact_latencies=True,
        )
        assert shared.elapsed_s == private.elapsed_s
        assert (
            shared.stats.read_latency.samples
            == private.stats.read_latency.samples
        )
        # The per-run queue-depth override must not outlive the run.
        assert session.queue_depth is None

    def test_runner_rejects_busy_shared_session(self):
        ftl = _build()
        ftl.write_many([(0, bytes(4096))])
        session = ftl.session
        session.submit(IoCommand(TraceOpKind.READ, 0), ftl=ftl)
        with pytest.raises(SimulationError):
            run_open_loop_workload(
                ftl, OpenLoopWorkload("busy", []), session=session
            )
        session.drain()

    def test_reaper_parked_on_doorbell_is_not_a_deadlock(self):
        """The documented pattern: a host process parked on the doorbell."""
        ftl = _build()
        ftl.write_many([(lpn, bytes(4096)) for lpn in range(4)])
        session = SsdSession(ftl)
        seen = []

        def reaper():
            while True:
                yield session.completion
                seen.extend(session.take_completions())

        session.engine.spawn(reaper())
        for lpn in range(4):
            session.submit(IoCommand(TraceOpKind.READ, lpn))
        session.drain()  # the reaper stays parked on the daemon doorbell
        assert len(seen) == 4

    def test_invalid_open_loop_queue_depth_rejected_up_front(self):
        with pytest.raises(SimulationError):
            OpenLoopWorkload("bad", [], queue_depth=0)

    def test_elapsed_is_last_completion_not_last_arrival(self):
        ftl = _build()
        ftl.write_many([(0, bytes(4096))])
        ops = [
            TraceOp(TraceOpKind.READ, 0, 0),
            # An I/O-free erase arriving much later must not stretch
            # the measured interval (and so deflate MB/s).
            TraceOp(TraceOpKind.ERASE, 5, issue_s=5.0),
        ]
        result = run_open_loop_workload(ftl, OpenLoopWorkload("tail", ops))
        assert result.elapsed_s < 1.0
        assert result.elapsed_s == pytest.approx(
            result.stats.read_latency.max_s
        )
        assert result.read_mb_s > 1.0

    def test_preread_lpns_matches_runner_naming(self):
        from repro.sim.host import preread_lpns

        ops = [
            TraceOp(TraceOpKind.READ, 0, 0),       # name 0: pre-read
            TraceOp(TraceOpKind.WRITE, 1, 0, b""),  # name 1: written first
            TraceOp(TraceOpKind.ERASE, 2),          # names nothing
            TraceOp(TraceOpKind.READ, 0, 1),        # name 2: pre-read
            TraceOp(TraceOpKind.READ, 1, 0),        # name 1 again: covered
        ]
        assert preread_lpns(ops) == [0, 2]

    def test_submit_rejects_erase_kind(self):
        session = SsdSession(_build())
        with pytest.raises(SimulationError):
            session.submit(IoCommand(TraceOpKind.ERASE, 0))

    def test_execute_requires_idle_session(self):
        ftl = _build()
        ftl.write_many([(0, bytes(4096))])
        session = ftl.session  # device-wide: routes I/O per explicit FTL
        session.submit(IoCommand(TraceOpKind.READ, 0), ftl=ftl)
        with pytest.raises(SimulationError):
            ftl.read_many([0])
        session.drain()
        assert ftl.read_many([0])[0][0] == bytes(4096)

    def test_namespaces_share_device_session(self):
        from repro.ftl.service import DifferentiatedStorage, ServiceClass

        ssd = _build(1, 2).ssd
        storage = DifferentiatedStorage(ssd=ssd)
        media = storage.create_namespace("media", ServiceClass.STREAMING, 3)
        logs = storage.create_namespace(
            "logs", ServiceClass.MISSION_CRITICAL, 3
        )
        assert media.ftl.session is logs.ftl.session is ssd.session
        assert storage.session is ssd.session
