"""DES command scheduler tests: arbitration, overlap, determinism."""

import pytest

from repro.errors import SimulationError
from repro.nand.geometry import NandGeometry
from repro.ssd.scheduler import (
    CommandKind,
    CommandScheduler,
    DieCommand,
)
from repro.ssd.topology import SsdTopology


def _reads(count: int, dies: list[int], die_s=100e-6, channel_s=50e-6):
    return [
        DieCommand(
            kind=CommandKind.READ,
            die=dies[i % len(dies)],
            tag=i,
            die_s=die_s,
            channel_s=channel_s,
        )
        for i in range(count)
    ]


def _topology(channels: int, dies_per_channel: int) -> SsdTopology:
    return SsdTopology(
        channels=channels,
        dies_per_channel=dies_per_channel,
        geometry=NandGeometry(blocks=2, pages_per_block=8),
    )


class TestSingleDie:
    def test_serialises_phases(self):
        scheduler = CommandScheduler(_topology(1, 1))
        result = scheduler.run(_reads(4, [0]))
        # One die, one bus: sense and transfer never overlap.
        assert result.makespan_s == pytest.approx(4 * 150e-6)
        assert result.completion_order() == [0, 1, 2, 3]
        assert result.die_busy_s[0] == pytest.approx(4 * 100e-6)
        assert result.channel_busy_s[0] == pytest.approx(4 * 50e-6)

    def test_program_order_is_bus_then_die(self):
        scheduler = CommandScheduler(_topology(1, 1))
        command = DieCommand(
            kind=CommandKind.PROGRAM, die=0, tag=0,
            die_s=600e-6, channel_s=60e-6,
        )
        result = scheduler.run([command])
        assert result.makespan_s == pytest.approx(660e-6)

    def test_erase_skips_the_bus(self):
        scheduler = CommandScheduler(_topology(1, 1))
        command = DieCommand(
            kind=CommandKind.ERASE, die=0, tag=0, die_s=2.5e-3,
        )
        result = scheduler.run([command])
        assert result.makespan_s == pytest.approx(2.5e-3)
        assert result.channel_busy_s[0] == 0.0


class TestParallelism:
    def test_dies_on_separate_channels_scale_linearly(self):
        serial = CommandScheduler(_topology(1, 1)).run(_reads(8, [0]))
        spread = CommandScheduler(_topology(4, 1)).run(
            _reads(8, [0, 1, 2, 3])
        )
        assert spread.makespan_s == pytest.approx(serial.makespan_s / 4)

    def test_dies_behind_one_bus_saturate_the_channel(self):
        # Sense overlaps, but every transfer serialises on the bus: the
        # makespan floor is the total bus time plus the first sense.
        result = CommandScheduler(_topology(1, 4)).run(
            _reads(8, [0, 1, 2, 3])
        )
        total_bus = 8 * 50e-6
        assert result.makespan_s == pytest.approx(total_bus + 100e-6)

    def test_channel_utilisation_reported(self):
        result = CommandScheduler(_topology(1, 2)).run(_reads(6, [0, 1]))
        (utilisation,) = result.channel_utilisation()
        assert 0.0 < utilisation <= 1.0

    def test_programs_overlap_across_dies(self):
        programs = [
            DieCommand(
                kind=CommandKind.PROGRAM, die=die, tag=die,
                die_s=600e-6, channel_s=60e-6,
            )
            for die in range(4)
        ]
        result = CommandScheduler(_topology(1, 4)).run(programs)
        # Transfers serialise (4 x 60us); programs run concurrently.
        assert result.makespan_s == pytest.approx(4 * 60e-6 + 600e-6)


class TestQueueDepth:
    def test_queue_depth_one_serialises_everything(self):
        result = CommandScheduler(_topology(4, 1)).run(
            _reads(8, [0, 1, 2, 3]), queue_depth=1
        )
        assert result.makespan_s == pytest.approx(8 * 150e-6)

    def test_deeper_queue_is_never_slower(self):
        scheduler = CommandScheduler(_topology(2, 2))
        commands = _reads(12, [0, 1, 2, 3])
        makespans = [
            scheduler.run(commands, queue_depth=depth).makespan_s
            for depth in (1, 2, 4, 8, None)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(makespans, makespans[1:]))

    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(SimulationError):
            CommandScheduler(_topology(1, 1)).run(_reads(1, [0]), queue_depth=0)


class TestDeterminism:
    def test_same_inputs_same_timeline(self):
        scheduler = CommandScheduler(_topology(2, 2))
        commands = _reads(16, [0, 1, 2, 3], die_s=75e-6, channel_s=170e-6)
        first = scheduler.run(commands, queue_depth=4)
        second = scheduler.run(commands, queue_depth=4)
        assert first.completion_order() == second.completion_order()
        assert first.makespan_s == second.makespan_s
        assert [c.done_s for c in first.completions] == [
            c.done_s for c in second.completions
        ]

    def test_every_command_completes_once(self):
        result = CommandScheduler(_topology(2, 4)).run(
            _reads(32, list(range(8))), queue_depth=5
        )
        assert sorted(result.completion_order()) == list(range(32))

    def test_latencies_include_queueing(self):
        result = CommandScheduler(_topology(1, 1)).run(
            _reads(3, [0]), queue_depth=3
        )
        latencies = result.latency_by_tag()
        # All admitted at t=0 on one die: each waits behind the previous.
        assert latencies[0] == pytest.approx(150e-6)
        assert latencies[1] == pytest.approx(300e-6)
        assert latencies[2] == pytest.approx(450e-6)


class TestValidation:
    def test_die_outside_topology_rejected(self):
        with pytest.raises(SimulationError):
            CommandScheduler(_topology(1, 1)).run(_reads(1, [3]))

    def test_negative_phase_rejected(self):
        with pytest.raises(SimulationError):
            DieCommand(kind=CommandKind.READ, die=0, tag=0, die_s=-1.0)

    def test_empty_batch(self):
        result = CommandScheduler(_topology(2, 2)).run([])
        assert result.makespan_s == 0.0
        assert result.completions == []
