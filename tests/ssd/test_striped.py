"""Die-striped FTL tests: routing, single-die equivalence, determinism.

The ISSUE 3 satellite coverage: a 1-channel x 1-die SSD must return
byte-identical data and identical error statistics (seeded RNG) to the
direct single-device path, and scheduler runs must be deterministic
(same seed + topology => same completion order and clock).
"""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.errors import ControllerError
from repro.ftl.ftl import FlashTranslationLayer
from repro.ftl.service import DifferentiatedStorage, ServiceClass
from repro.nand.geometry import NandGeometry
from repro.sim.host import HostWorkload, run_ssd_workload
from repro.ssd import DieStripedFtl, SsdDevice, SsdTopology, spawn_die_rngs
from repro.workloads.traces import queued_playback_trace

GEOMETRY = NandGeometry(blocks=6, pages_per_block=8)
EOL_WEAR = 100_000


def _ssd(channels=1, dies_per_channel=1, seed=11, wear=EOL_WEAR):
    topology = SsdTopology(
        channels=channels, dies_per_channel=dies_per_channel, geometry=GEOMETRY
    )
    ssd = SsdDevice(topology, policy=CrossLayerPolicy(), seed=seed)
    for controller in ssd.controllers:
        controller.device.array._wear[:] = wear
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(wear))
    return ssd


def _payloads(count, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.bytes(GEOMETRY.page_data_bytes) for _ in range(count)]


class TestRouting:
    def test_round_robin_over_dies(self):
        ftl = DieStripedFtl(_ssd(channels=2, dies_per_channel=2))
        assert [ftl.route(lpn).die for lpn in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]
        assert [ftl.route(lpn).shard_lpn for lpn in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_capacity_spans_every_die(self):
        single = DieStripedFtl(_ssd())
        quad = DieStripedFtl(_ssd(channels=2, dies_per_channel=2))
        assert quad.logical_capacity == 4 * single.logical_capacity

    def test_out_of_range_lpn_rejected(self):
        ftl = DieStripedFtl(_ssd())
        with pytest.raises(ControllerError):
            ftl.route(ftl.logical_capacity)


class TestSingleDieEquivalence:
    """1x1 topology == direct single-controller FTL, bit for bit."""

    def _reference_ftl(self, seed):
        controller = NandController(
            GEOMETRY,
            policy=CrossLayerPolicy(),
            rng=spawn_die_rngs(seed, 1)[0],
        )
        controller.device.array._wear[:] = EOL_WEAR
        controller.set_mode(OperatingMode.BASELINE, pe_reference=float(EOL_WEAR))
        return FlashTranslationLayer(
            controller, list(range(GEOMETRY.blocks))
        )

    def test_byte_identical_data_and_error_counts(self):
        seed = 29
        striped = DieStripedFtl(_ssd(seed=seed))
        reference = self._reference_ftl(seed)
        payloads = _payloads(24)
        items = list(enumerate(payloads))
        striped.write_many(items)
        reference.write_many(items)
        for _ in range(2):  # repeated reads advance disturb identically
            striped_reads = striped.read_many(list(range(24)))
            reference_reads = reference.read_many(list(range(24)))
            for (got, _), (expected, _), payload in zip(
                striped_reads, reference_reads, payloads
            ):
                assert got == expected == payload
        assert (
            striped.stats.corrected_bits > 0
        ), "EOL RBER should exercise the ECC"
        assert striped.stats.corrected_bits == reference.stats.corrected_bits

    def test_scalar_ops_match_reference(self):
        seed = 31
        striped = DieStripedFtl(_ssd(seed=seed))
        reference = self._reference_ftl(seed)
        payload = _payloads(1, seed=5)[0]
        striped.write(0, payload)
        reference.write(0, payload)
        assert striped.read(0)[0] == reference.read(0)[0] == payload
        striped.trim(0)
        assert not striped.is_mapped(0)


class TestMultiDie:
    def test_data_integrity_across_dies(self):
        ftl = DieStripedFtl(_ssd(channels=2, dies_per_channel=2))
        payloads = _payloads(32)
        ftl.write_many(list(enumerate(payloads)))
        for (data, _), payload in zip(
            ftl.read_many(list(range(32))), payloads
        ):
            assert data == payload

    def test_reads_overlap_across_dies(self):
        items = list(enumerate(_payloads(32)))
        lpns = [lpn for lpn, _ in items]
        single = DieStripedFtl(_ssd())
        single.write_many(items)
        single.read_many(lpns)
        quad = DieStripedFtl(_ssd(channels=4, dies_per_channel=1))
        quad.write_many(items)
        quad.read_many(lpns)
        speedup = (
            single.last_schedule.makespan_s / quad.last_schedule.makespan_s
        )
        assert speedup >= 2.0

    def test_stats_aggregate_across_shards(self):
        ftl = DieStripedFtl(_ssd(channels=2, dies_per_channel=2))
        ftl.write_many(list(enumerate(_payloads(16))))
        ftl.read_many(list(range(16)))
        assert ftl.stats.host_writes == 16
        assert ftl.stats.host_reads == 16
        assert ftl.gc_stats.collections == sum(
            shard.gc.stats.collections for shard in ftl.shards
        )

    def test_queue_depth_one_is_slowest(self):
        ftl = DieStripedFtl(_ssd(channels=2, dies_per_channel=2))
        items = list(enumerate(_payloads(16)))
        ftl.write_many(items)
        ftl.read_many(list(range(16)), queue_depth=1)
        serial = ftl.last_schedule.makespan_s
        ftl.read_many(list(range(16)))
        deep = ftl.last_schedule.makespan_s
        assert serial > deep


class TestDeterminism:
    def test_same_seed_same_completion_order_and_clock(self):
        def run_once():
            ftl = DieStripedFtl(_ssd(channels=2, dies_per_channel=2, seed=17))
            ftl.write_many(list(enumerate(_payloads(24))), queue_depth=6)
            ftl.read_many(list(range(24)), queue_depth=6)
            return ftl.last_schedule

        first, second = run_once(), run_once()
        assert first.completion_order() == second.completion_order()
        assert first.makespan_s == second.makespan_s
        assert [c.done_s for c in first.completions] == [
            c.done_s for c in second.completions
        ]


class TestServiceIntegration:
    def test_namespaces_stripe_over_the_ssd(self):
        storage = DifferentiatedStorage(ssd=_ssd(channels=2, dies_per_channel=2))
        vault = storage.create_namespace("vault", ServiceClass.MISSION_CRITICAL, 3)
        media = storage.create_namespace("media", ServiceClass.STREAMING, 3)
        assert isinstance(vault.ftl, DieStripedFtl)
        assert vault.logical_capacity == 4 * (3 * 8 - 8)
        payloads = _payloads(8)
        storage.write_many("vault", list(enumerate(payloads)))
        storage.write_many("media", list(enumerate(payloads)))
        for (data, _), payload in zip(
            storage.read_many("vault", list(range(8))), payloads
        ):
            assert data == payload
        report = {row["namespace"]: row for row in storage.report()}
        assert report["vault"]["host_writes"] == 8
        assert media.config.algorithm.name == "DV"

    def test_backend_must_be_exactly_one(self):
        with pytest.raises(ControllerError):
            DifferentiatedStorage()
        with pytest.raises(ControllerError):
            DifferentiatedStorage(
                NandController(GEOMETRY), ssd=_ssd()
            )


class TestHostRunner:
    def test_run_ssd_workload_scales_with_topology(self):
        trace = queued_playback_trace(
            streams=4, blocks_per_stream=1, pages_per_block=4, read_passes=2
        )
        results = {}
        for channels, dies in ((1, 1), (4, 1)):
            ftl = DieStripedFtl(_ssd(channels=channels, dies_per_channel=dies))
            workload = HostWorkload.from_trace("playback", trace, batch_pages=16)
            results[(channels, dies)] = run_ssd_workload(ftl, workload)
        single, quad = results[(1, 1)], results[(4, 1)]
        assert quad.read_mb_s / single.read_mb_s >= 2.0
        assert quad.stats.reads == single.stats.reads
        assert quad.corrected_bits > 0
