"""SSD topology description tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.geometry import NandGeometry
from repro.ssd.topology import (
    ChannelTimingParams,
    DieAddress,
    SsdTopology,
    spawn_die_rngs,
)


class TestTopology:
    def test_defaults_single_die(self):
        topology = SsdTopology()
        assert topology.dies == 1
        assert topology.channel_of(0) == 0
        assert topology.capacity_bytes == topology.geometry.capacity_bytes

    def test_die_enumeration_is_channel_first(self):
        topology = SsdTopology(channels=4, dies_per_channel=2)
        # Consecutive die indices alternate channels before stacking
        # dies behind one bus (round-robin striping hits every bus).
        assert [topology.channel_of(i) for i in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_die_address_round_trip(self):
        topology = SsdTopology(channels=3, dies_per_channel=4)
        for index in range(topology.dies):
            assert topology.die_index(topology.die_address(index)) == index

    def test_capacity_scales_with_dies(self):
        geometry = NandGeometry(blocks=4, pages_per_block=8)
        topology = SsdTopology(
            channels=2, dies_per_channel=3, geometry=geometry
        )
        assert topology.pages == 6 * geometry.pages
        assert topology.capacity_bytes == 6 * geometry.capacity_bytes

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            SsdTopology(channels=0)
        with pytest.raises(ConfigurationError):
            SsdTopology(dies_per_channel=0)
        with pytest.raises(ConfigurationError):
            SsdTopology(channels=2).channel_of(2)
        with pytest.raises(ConfigurationError):
            SsdTopology(channels=2).die_index(DieAddress(channel=2, die=0))

    def test_describe(self):
        assert SsdTopology(channels=2, dies_per_channel=4).describe() == (
            "2ch x 4die"
        )


class TestChannelTiming:
    def test_transfer_time_includes_overhead(self):
        params = ChannelTimingParams(
            bandwidth_bytes_per_s=100e6, burst_overhead_s=1e-6
        )
        assert params.transfer_time_s(100) == pytest.approx(2e-6)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelTimingParams(bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigurationError):
            ChannelTimingParams(burst_overhead_s=-1e-9)
        with pytest.raises(ConfigurationError):
            ChannelTimingParams().transfer_time_s(-1)


class TestRngSpawning:
    def test_streams_are_reproducible(self):
        first = spawn_die_rngs(42, 4)
        second = spawn_die_rngs(42, 4)
        for a, b in zip(first, second):
            assert a.bytes(64) == b.bytes(64)

    def test_streams_are_independent(self):
        rngs = spawn_die_rngs(42, 4)
        draws = {rng.bytes(64) for rng in rngs}
        assert len(draws) == 4

    def test_single_die_matches_prefix_of_wider_spawn(self):
        # Die d of an N-die SSD keeps its stream as the SSD widens.
        narrow = spawn_die_rngs(7, 1)[0]
        wide = spawn_die_rngs(7, 4)[0]
        assert narrow.bytes(64) == wide.bytes(64)
