"""Scheduled-GC session tests (ISSUE 9).

The contract under test, per mode:

* ``sync`` — the locked baseline: a session built with GC kwargs but
  ``gc_mode="sync"`` is **bit-exact** (host data and timelines) with a
  plain session, on both dispatch paths and both event-list backends.
* ``foreground`` — collections stall the host window: the classic
  synchronous-GC device the sustained-write benchmark baselines on.
* ``background`` — watermark/idle-triggered, die-parallel, deterministic
  across flat/generator dispatch and calendar/heap event lists, faster
  than foreground on the same churn, observable via GC-origin trace
  spans and SMART counters.

Plus the watermark hysteresis state machine (unit-tested against a stub
FTL) and the opt-in ``read_ahead`` pipeline tier.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.ftl.gc import GcConfig, GcStats
from repro.nand.geometry import NandGeometry
from repro.obs.trace import KIND_NAMES, TRACK_PLANE, TraceRecorder
from repro.sim.engine import SimEngine
from repro.sim.host import OpenLoopWorkload, run_open_loop_workload
from repro.ssd import (
    DieStripedFtl,
    PipelineConfig,
    SsdDevice,
    SsdSession,
    SsdTopology,
)
from repro.workloads.traces import TraceOp, TraceOpKind

QUEUE_DEPTH = 4

DISPATCH_GRID = [
    (fast_batch, event_list)
    for fast_batch in (True, False)
    for event_list in ("calendar", "heap")
]


def _page(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * 4096


def _build(
    gc_mode="background",
    *,
    dies=2,
    fast_batch=True,
    event_list="calendar",
    recorder=None,
    gc_config=None,
    plain=False,
    pipeline=None,
    plane_interleave=True,
):
    """1ch x ``dies``-die SSD with a session in the requested GC mode.

    ``plain=True`` omits every GC kwarg — the historical constructor
    call the sync mode must stay bit-exact with.
    """
    topology = SsdTopology(
        channels=1,
        dies_per_channel=dies,
        geometry=NandGeometry(blocks=6, pages_per_block=4),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=2012,
        pipeline=PipelineConfig.full() if pipeline is None else pipeline,
    )
    ssd.set_mode(OperatingMode.BASELINE)
    kwargs = {} if plain else {
        "gc_mode": gc_mode,
        "gc_config": (
            GcConfig(policy="cost_benefit") if gc_config is None
            else gc_config
        ),
    }
    session = SsdSession(
        ssd=ssd,
        engine=SimEngine(event_list=event_list),
        queue_depth=QUEUE_DEPTH,
        fast_batch=fast_batch,
        recorder=recorder,
        **kwargs,
    )
    ftl = DieStripedFtl(
        ssd, plane_interleave=plane_interleave, session=session
    )
    session.ftl = ftl
    return ftl, session


def _churn(capacity: int, passes: float = 1.5, seed: int = 11):
    """Sequential fill, then random overwrites with a read every 4th."""
    rng = random.Random(seed)
    ops = [
        TraceOp(TraceOpKind.WRITE, 0, lpn, _page(lpn))
        for lpn in range(capacity)
    ]
    for index in range(int(capacity * passes)):
        if index % 4 == 3:
            ops.append(TraceOp(TraceOpKind.READ, 0, rng.randrange(capacity)))
        else:
            ops.append(TraceOp(
                TraceOpKind.WRITE, 0, rng.randrange(capacity),
                _page(96 + index),
            ))
    return ops


def _run(ftl, session, ops):
    """Run the stream; returns (WorkloadResult, host completions)."""
    done = []
    result = run_open_loop_workload(
        ftl,
        OpenLoopWorkload("churn", ops, queue_depth=QUEUE_DEPTH),
        session=session,
        on_completion=done.append,
    )
    return result, done


def _fingerprint(completions):
    """Full host-visible record: data AND the three timestamps."""
    return [
        (c.tag, c.kind, c.lpn, c.data, c.submit_s, c.dispatch_s, c.done_s)
        for c in completions
    ]


def _expected_read_datas(ops):
    """Per-READ expected payload, replaying the stream in order."""
    last: dict[tuple, bytes] = {}
    expected = []
    for op in ops:
        if op.kind is TraceOpKind.WRITE:
            last[(op.block, op.page)] = op.data
        elif op.kind is TraceOpKind.READ:
            expected.append(last[(op.block, op.page)])
    return expected


# ---------------------------------------------------------------------------
# Equivalence locks
# ---------------------------------------------------------------------------


class TestSyncEquivalence:
    @pytest.mark.parametrize("fast_batch,event_list", DISPATCH_GRID)
    def test_sync_mode_bit_exact_with_plain_session(
        self, fast_batch, event_list
    ):
        """GC kwargs are inert in sync mode: same data, same timeline."""
        ftl, session = _build(
            plain=True, fast_batch=fast_batch, event_list=event_list
        )
        ops = _churn(ftl.logical_capacity)
        baseline, base_done = _run(ftl, session, ops)

        gc_ftl, gc_session = _build(
            "sync",
            fast_batch=fast_batch,
            event_list=event_list,
            gc_config=GcConfig(
                policy="cost_benefit", low_water_blocks=1,
                high_water_blocks=3,
            ),
        )
        locked, locked_done = _run(gc_ftl, gc_session, ops)

        # The lock must be exercised *under* collection pressure.
        assert ftl.gc_stats.collections > 0
        assert _fingerprint(locked_done) == _fingerprint(base_done)
        assert locked.elapsed_s == baseline.elapsed_s
        # Sync collections stay on the serial clock, not the timeline.
        assert gc_ftl.gc_stats.migration_time_s > 0.0
        assert gc_ftl.gc_stats.scheduled_busy_s == 0.0
        assert gc_ftl.gc_stats.background_collections == 0

    def test_invalid_gc_mode_rejected(self):
        from repro.errors import SimulationError

        ftl, _ = _build(plain=True)
        with pytest.raises(SimulationError):
            SsdSession(ftl, gc_mode="idle")


class TestBackgroundDeterminism:
    def test_timeline_identical_across_dispatch_and_event_lists(self):
        """Die-parallel GC replays bit-exactly on all four machineries."""
        prints = []
        for fast_batch, event_list in DISPATCH_GRID:
            ftl, session = _build(
                "background", fast_batch=fast_batch, event_list=event_list
            )
            result, done = _run(ftl, session, _churn(ftl.logical_capacity))
            assert ftl.gc_stats.background_collections > 0
            prints.append((result.elapsed_s, _fingerprint(done)))
        assert all(p == prints[0] for p in prints[1:])


class TestCrossModeEquivalence:
    def test_host_data_identical_across_gc_modes(self):
        """Reads return the stream-order data in every GC mode."""
        ops = None
        for mode in ("sync", "foreground", "background"):
            ftl, session = _build(mode)
            if ops is None:
                ops = _churn(ftl.logical_capacity)
            _, done = _run(ftl, session, ops)
            reads = sorted(
                (c for c in done if c.kind is TraceOpKind.READ),
                key=lambda c: c.tag,
            )
            # Host tags grow in submission order (GC tags interleave in
            # the scheduled modes but never reach the host queue), so
            # sorting by tag restores stream order.
            assert [c.data for c in reads] == _expected_read_datas(ops)
            writes = [c for c in done if c.kind is TraceOpKind.WRITE]
            assert len(done) == len(reads) + len(writes)
            assert ftl.gc_stats.collections > 0

    def test_background_overlap_beats_foreground_stalls(self):
        fg_ftl, fg_session = _build("foreground")
        ops = _churn(fg_ftl.logical_capacity)
        fg, _ = _run(fg_ftl, fg_session, ops)
        bg_ftl, bg_session = _build("background")
        bg, _ = _run(bg_ftl, bg_session, ops)

        assert bg.elapsed_s < fg.elapsed_s
        assert bg_ftl.gc_stats.background_collections > 0
        # Foreground has no watermark trigger: provisioning only.
        assert fg_ftl.gc_stats.background_collections == 0
        # Both scheduled modes charge the timeline, not the serial sum
        # (the migration_time_s double-count fix).
        for ftl in (fg_ftl, bg_ftl):
            assert ftl.gc_stats.scheduled_busy_s > 0.0
            assert ftl.gc_stats.migration_time_s == 0.0


# ---------------------------------------------------------------------------
# Watermark hysteresis (stub-FTL unit tests)
# ---------------------------------------------------------------------------


def _stub_shard(free_blocks: int, victim: int = 3):
    calls = []
    shard = SimpleNamespace(
        allocator=SimpleNamespace(free_block_count=free_blocks),
        gc=SimpleNamespace(
            pick_victim=lambda: victim,
            collect_block=lambda block: (calls.append(block), block)[1],
            stats=GcStats(),
        ),
    )
    return shard, calls


class TestWatermarkHysteresis:
    def _session(self, shards, **config):
        config.setdefault("policy", "greedy")
        config.setdefault("low_water_blocks", 2)
        config.setdefault("high_water_blocks", 4)
        _, session = _build(
            "background",
            dies=len(shards),
            gc_config=GcConfig(**config),
        )
        session._gc_ftls.append(SimpleNamespace(shards=shards))
        return session

    def test_band_does_not_thrash_and_low_water_latches(self):
        shard, calls = _stub_shard(free_blocks=5)
        session = self._session([shard], superblock=False)
        free = shard.allocator

        # Above the high watermark: nothing to do, idle or not.
        session._maybe_background_collect()
        assert calls == [] and not session._gc_active[0]

        # In the band with the die busy: inactive, and no idle trigger.
        free.free_block_count = 3
        session.core.die_inflight[0] = 1
        session._maybe_background_collect()
        assert calls == [] and not session._gc_active[0]

        # Same band, die idle: eager idle collection, still *inactive*.
        session.core.die_inflight[0] = 0
        session._maybe_background_collect()
        assert calls == [3] and not session._gc_active[0]

        # At the low watermark the die latches active: collects even
        # with host commands in flight.
        free.free_block_count = 2
        session.core.die_inflight[0] = 1
        session._maybe_background_collect()
        assert calls == [3, 3] and session._gc_active[0]

        # Back in the band, still busy: hysteresis keeps it active.
        free.free_block_count = 3
        session._maybe_background_collect()
        assert calls == [3, 3, 3] and session._gc_active[0]

        # Refilled to the high watermark: deactivates, no collection.
        free.free_block_count = 4
        session._maybe_background_collect()
        assert calls == [3, 3, 3] and not session._gc_active[0]
        assert shard.gc.stats.background_collections == 3

    def test_idle_collect_off_waits_for_the_low_watermark(self):
        shard, calls = _stub_shard(free_blocks=3)
        session = self._session(
            [shard], superblock=False, idle_collect=False
        )
        session._maybe_background_collect()  # idle die, band: no trigger
        assert calls == []
        shard.allocator.free_block_count = 2
        session._maybe_background_collect()
        assert calls == [3]

    def test_superblock_collects_one_stripe_across_dies(self):
        shard_a, calls_a = _stub_shard(free_blocks=1)
        shard_b, calls_b = _stub_shard(free_blocks=1)
        stub = SimpleNamespace(
            shards=[shard_a, shard_b],
            pick_striped_victim=lambda dies: [7] * len(dies),
        )
        session = self._session([shard_a, shard_b], superblock=True)
        session._gc_ftls[-1] = stub
        session._maybe_background_collect()
        assert calls_a == [7] and calls_b == [7]
        assert shard_a.gc.stats.background_collections == 1
        assert shard_b.gc.stats.background_collections == 1


# ---------------------------------------------------------------------------
# Observability: GC-origin spans, die overlap, SMART counters
# ---------------------------------------------------------------------------


class TestObservability:
    @pytest.fixture(scope="class")
    def traced_run(self):
        recorder = TraceRecorder()
        ftl, session = _build("background", recorder=recorder)
        _run(ftl, session, _churn(ftl.logical_capacity))
        return ftl, session, recorder

    def test_gc_span_kinds_recorded(self, traced_run):
        _, _, recorder = traced_run
        kinds = {span[6] for span in recorder.spans}
        gc_kinds = {k for k in kinds if k >= 3}
        assert gc_kinds, "no GC-origin spans recorded"
        assert all(KIND_NAMES[k].startswith("gc-") for k in gc_kinds)
        assert any(k < 3 for k in kinds)  # host spans on the same trace
        events = recorder.to_chrome_trace()["traceEvents"]
        assert any(e["name"].startswith("gc-") for e in events)

    def test_background_gc_overlaps_host_io_on_another_die(
        self, traced_run
    ):
        _, _, recorder = traced_run
        planes = [s for s in recorder.spans if s[0] == TRACK_PLANE]
        gc_spans = [s for s in planes if s[6] >= 3]
        host_spans = [s for s in planes if s[6] < 3]
        assert any(
            g[1] != h[1] and g[3] < h[4] and h[3] < g[4]
            for g in gc_spans for h in host_spans
        ), "no GC span overlapped host I/O on a different die"

    def test_metrics_expose_background_gc_state(self, traced_run):
        ftl, session, _ = traced_run
        registry = session.metrics()
        assert registry.get("session_gc_mode") == "background"
        assert registry.get("session_gc_in_flight") == 0
        assert registry.get("gc_background_collections") >= 1
        assert registry.get("gc_free_blocks") == [
            shard.allocator.free_block_count for shard in ftl.shards
        ]
        assert registry.get("gc_scheduled_busy_s") > 0.0
        assert registry.get("write_amplification") > 1.0


# ---------------------------------------------------------------------------
# Tiered read-ahead (opt-in pipeline flag)
# ---------------------------------------------------------------------------


def _read_ahead_config(on: bool) -> PipelineConfig:
    return PipelineConfig(
        cache_read=True, multi_plane=True, pipelined_ecc=True,
        read_ahead=on,
    )


def _sequential_reads(capacity: int):
    ops = [
        TraceOp(TraceOpKind.WRITE, 0, lpn, _page(lpn))
        for lpn in range(capacity)
    ]
    ops += [TraceOp(TraceOpKind.READ, 0, lpn) for lpn in range(capacity)]
    return ops


class TestReadAhead:
    def test_full_pipeline_keeps_read_ahead_off(self):
        """``full()`` is equivalence-locked: read-ahead stays opt-in."""
        assert PipelineConfig.full().read_ahead is False
        assert "ra" not in PipelineConfig.full().describe()
        assert _read_ahead_config(True).describe().endswith("+ra")

    def test_flat_matches_generator_with_read_ahead(self):
        prints = []
        for fast_batch in (True, False):
            ftl, session = _build(
                plain=True, dies=1, fast_batch=fast_batch,
                pipeline=_read_ahead_config(True), plane_interleave=False,
            )
            result, done = _run(
                ftl, session, _sequential_reads(ftl.logical_capacity)
            )
            prints.append((result.elapsed_s, _fingerprint(done)))
        assert prints[0] == prints[1]

    def test_read_ahead_never_slower_on_sequential_reads(self):
        def makespan(on: bool) -> float:
            ftl, session = _build(
                plain=True, dies=1, pipeline=_read_ahead_config(on),
                plane_interleave=False,
            )
            result, _ = _run(
                ftl, session, _sequential_reads(ftl.logical_capacity)
            )
            return result.elapsed_s

        assert makespan(True) <= makespan(False)
