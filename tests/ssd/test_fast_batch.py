"""Flat dispatch core: bit-exact equivalence tests.

The flat core (``SchedulerCore(flat=True)`` driving ``_flat_burst``) is
a transliteration of the generator workers onto coroutine-free
state-machine frames; these tests pin the contract that it is
*bit-exact*, not merely close: identical completion order, identical
timestamps, identical busy accounting and makespan, for every pipeline
configuration, command kind (homogeneous and mixed), queue depth and
topology — on the fresh :class:`CommandScheduler` surface, the resident
:meth:`SsdSession.execute` surface, and the open-loop
:meth:`SchedulerCore.submit_stream` stream (mid-flight admission,
window backpressure and tie-heavy arrival regimes included), on both
event-list backends.

The last section is the replay contract for the event-list backends: a
full open-loop session (FTL data path, ECC, error injection, backlog,
doorbell) must produce byte-identical completions whether the engine
runs on the reference heap or the calendar queue.
"""

import random

import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.errors import SimulationError
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTimingModel
from repro.sim.engine import SimEngine
from repro.ssd import (
    DieStripedFtl,
    IoCommand,
    PipelineConfig,
    SsdDevice,
    SsdSession,
    SsdTopology,
)
from repro.ssd.scheduler import (
    CommandKind,
    CommandScheduler,
    DieCommand,
    SchedulerCore,
    open_admission,
)
from repro.workloads.traces import TraceOpKind

# Neat-number phase shapes: durations are exact multiples of 5 us so
# independent command chains collide on identical timestamps constantly
# — the regime where a tie-break divergence between the fast path and
# the generator path would surface immediately.
READ_PHASES = NandTimingModel.read_phases(
    sense_s=50e-6, transfer_s=20e-6, decode_s=40e-6, decode_hold_s=25e-6
)
PROGRAM_PHASES = NandTimingModel.program_phases(
    program_s=200e-6, transfer_s=20e-6, encode_s=15e-6
)
ERASE_PHASES = NandTimingModel.erase_phases(2e-3)

PIPELINES = [
    PipelineConfig.serial(),
    PipelineConfig(cache_read=True),
    PipelineConfig(pipelined_ecc=True),
    PipelineConfig.full(),
]


def _stream(kind: CommandKind, n: int, dies: int, seed: int) -> list[DieCommand]:
    """Homogeneous random die/plane stream of one command kind."""
    rng = random.Random(seed)
    phases = {
        CommandKind.READ: READ_PHASES,
        CommandKind.PROGRAM: PROGRAM_PHASES,
        CommandKind.ERASE: ERASE_PHASES,
    }[kind]
    cache_busy_s = 3e-6 if kind is CommandKind.READ else 0.0
    return [
        DieCommand.from_phases(
            kind, die=rng.randrange(dies), tag=tag, phases=phases,
            plane=rng.randrange(2), cache_busy_s=cache_busy_s,
        )
        for tag in range(n)
    ]


def _assert_identical(fast, slow) -> None:
    """Every observable of a ScheduleResult, compared bit-for-bit."""
    assert fast.completions == slow.completions
    assert fast.makespan_s == slow.makespan_s
    assert fast.die_busy_s == slow.die_busy_s
    assert fast.channel_busy_s == slow.channel_busy_s
    assert fast.ecc_busy_s == slow.ecc_busy_s


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES, ids=lambda p: p.describe())
    @pytest.mark.parametrize(
        "kind", [CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE]
    )
    @pytest.mark.parametrize("channels,dies_per_channel,queue_depth,seed", [
        (1, 1, None, 3),
        (2, 2, 4, 11),
        (4, 2, 32, 23),
    ])
    def test_fresh_run_bit_exact(
        self, pipeline, kind, channels, dies_per_channel, queue_depth, seed
    ):
        topology = SsdTopology(
            channels=channels, dies_per_channel=dies_per_channel
        )
        commands = _stream(kind, 48, topology.dies, seed)
        fast = CommandScheduler(
            topology, pipeline=pipeline, fast_batch=True
        ).run(commands, queue_depth)
        slow = CommandScheduler(
            topology, pipeline=pipeline, fast_batch=False
        ).run(commands, queue_depth)
        _assert_identical(fast, slow)

    def test_mixed_batch_runs_flat_and_matches(self):
        # Mixed-kind batches used to fall back to the generator
        # workers; the flat core replays heterogeneous phase plans
        # directly and must still match the generators bit-for-bit.
        topology = SsdTopology(channels=2, dies_per_channel=2)
        rng = random.Random(5)
        commands = []
        for tag in range(40):
            kind = rng.choice([CommandKind.READ, CommandKind.PROGRAM])
            commands.append(_stream(kind, 1, topology.dies, tag)[0])
        commands = [
            DieCommand.from_phases(
                c.kind, die=c.die, tag=tag, phases=c.phases, plane=c.plane,
                cache_busy_s=c.cache_busy_s,
            )
            for tag, c in enumerate(commands)
        ]
        fast = CommandScheduler(
            topology, pipeline=PipelineConfig.full(), fast_batch=True
        ).run(commands, queue_depth=8)
        slow = CommandScheduler(
            topology, pipeline=PipelineConfig.full(), fast_batch=False
        ).run(commands, queue_depth=8)
        _assert_identical(fast, slow)


class TestSessionEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES, ids=lambda p: p.describe())
    @pytest.mark.parametrize(
        "kind", [CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE]
    )
    def test_resident_execute_bit_exact(self, pipeline, kind):
        # Back-to-back batches through one resident session, checked
        # against a fast_batch=False twin AND a fresh scheduler — the
        # rebase()/reset_accounting() reuse path must not drift.
        topology = SsdTopology(channels=2, dies_per_channel=2)
        fast_session = SsdSession(
            ssd=SsdDevice(topology, seed=0, pipeline=pipeline),
            fast_batch=True,
        )
        slow_session = SsdSession(
            ssd=SsdDevice(topology, seed=0, pipeline=pipeline),
            fast_batch=False,
        )
        for round_seed in (7, 41):
            commands = _stream(kind, 32, topology.dies, round_seed)
            fast = fast_session.execute(list(commands), queue_depth=6)
            slow = slow_session.execute(list(commands), queue_depth=6)
            _assert_identical(fast, slow)
            fresh = CommandScheduler(
                topology, pipeline=pipeline, fast_batch=False
            ).run(list(commands), queue_depth=6)
            _assert_identical(fast, fresh)


# ---------------------------------------------------------------------------
# Open-loop streams: the flat core vs the generator oracle, bit-for-bit.
# ---------------------------------------------------------------------------

BACKENDS = ["heap", "calendar"]

ALL_KINDS = (CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE)


def _mixed_stream(
    n: int, dies: int, seed: int, kinds=ALL_KINDS, first_tag: int = 0
) -> list[DieCommand]:
    """Random mixed-kind die/plane stream (reads, programs, erases)."""
    rng = random.Random(seed)
    phases = {
        CommandKind.READ: READ_PHASES,
        CommandKind.PROGRAM: PROGRAM_PHASES,
        CommandKind.ERASE: ERASE_PHASES,
    }
    return [
        DieCommand.from_phases(
            kind, die=rng.randrange(dies), tag=first_tag + i,
            phases=phases[kind], plane=rng.randrange(2),
            cache_busy_s=3e-6 if kind is CommandKind.READ else 0.0,
        )
        for i, kind in enumerate(
            kinds[rng.randrange(len(kinds))] for _ in range(n)
        )
    ]


def _stream_core(flat: bool, backend: str, pipeline) -> SchedulerCore:
    """A started, parked scheduler core on a drained engine."""
    engine = SimEngine(event_list=backend)
    topology = SsdTopology(channels=2, dies_per_channel=2)
    core = SchedulerCore(engine, topology, pipeline, flat=flat)
    core.start()
    engine.run()
    return core


def _observe(core: SchedulerCore):
    """Every observable of a drained open-loop run, bit-comparable."""
    return (
        core.engine.now_s,
        list(core.completions),
        core.engine.events_processed,
        list(core.die_busy_s),
        list(core.channel_busy_s),
        list(core.ecc_busy_s),
    )


class TestOpenLoopEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES, ids=lambda p: p.describe())
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_open_stream_bit_exact(self, pipeline, backend):
        results = {}
        for flat in (True, False):
            core = _stream_core(flat, backend, pipeline)
            commands = _mixed_stream(64, core.topology.dies, seed=17)
            core.submit_stream(commands, window=8, arrival_s=5e-6)
            core.engine.run()
            results[flat] = _observe(core)
            if flat:
                assert core.fast_commands == len(commands)
                assert core.fallback_commands == 0
            else:
                assert core.fallback_commands == len(commands)
                assert core.fast_commands == 0
        assert results[True] == results[False]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_flight_enqueue_bit_exact(self, backend):
        # New commands admitted while the stream is mid-flight (the
        # engine paused at an arbitrary instant) must replay exactly.
        results = {}
        for flat in (True, False):
            core = _stream_core(flat, backend, PipelineConfig.full())
            commands = _mixed_stream(40, core.topology.dies, seed=29)
            core.submit_stream(commands, window=16, arrival_s=4e-6)
            core.engine.run(until_s=120e-6)
            assert core.in_flight > 0  # genuinely mid-flight
            for extra in _mixed_stream(
                6, core.topology.dies, seed=31, first_tag=1000
            ):
                core.enqueue(extra, submit_s=core.engine.now_s)
            core.engine.run()
            results[flat] = _observe(core)
        assert results[True] == results[False]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_window_backpressure_bit_exact(self, backend):
        # A tiny in-flight window forces the admission stream to park
        # on the completion doorbell between almost every command.
        results = {}
        for flat in (True, False):
            core = _stream_core(flat, backend, PipelineConfig.full())
            commands = _mixed_stream(48, core.topology.dies, seed=43)
            core.submit_stream(commands, window=2, arrival_s=1e-6)
            makespan = core.engine.run()
            results[flat] = _observe(core)
            # Backpressure genuinely engaged: the stream took far
            # longer than the unimpeded arrival schedule.
            assert makespan > len(commands) * 1e-6 * 2
        assert results[True] == results[False]

    def test_submit_stream_matches_manual_oracle(self):
        # On a generator core, submit_stream is sugar for spawning the
        # open_admission oracle — pin that they allocate identically.
        sugar = _stream_core(False, "heap", PipelineConfig.full())
        commands = _mixed_stream(32, sugar.topology.dies, seed=53)
        sugar.submit_stream(commands, window=4, arrival_s=3e-6)
        sugar.engine.run()
        manual = _stream_core(False, "heap", PipelineConfig.full())
        manual.engine.spawn(
            open_admission(manual, list(commands), 4, 3e-6)
        )
        manual.engine.run()
        assert _observe(sugar) == _observe(manual)

    def test_one_stream_at_a_time(self):
        core = _stream_core(True, "heap", PipelineConfig.full())
        commands = _mixed_stream(24, core.topology.dies, seed=59)
        core.submit_stream(commands, window=2, arrival_s=1e-6)
        with pytest.raises(SimulationError, match="one stream at a time"):
            core.submit_stream(commands, window=2, arrival_s=1e-6)
        core.engine.run()
        # Drained: a follow-up stream is accepted and replays exactly.
        follow = _mixed_stream(
            24, core.topology.dies, seed=61, first_tag=100
        )
        core.submit_stream(follow, window=4, arrival_s=2e-6)
        core.engine.run()
        assert len(core.completions) == 48


class TestTieHeavyDeterminism:
    """Completion-order determinism when everything collides.

    Same-instant arrivals (``arrival_s=0``) with neat-multiple phase
    durations put dozens of frames on identical timestamps — the regime
    where the flat core's deferred-wake and strict-minimum elisions
    would surface any sequence-order divergence from the generators.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [3, 19, 71])
    def test_same_instant_arrivals_deterministic_and_exact(
        self, backend, seed
    ):
        traces = {}
        for flat in (True, False):
            runs = []
            for _ in range(2):
                core = _stream_core(flat, backend, PipelineConfig.full())
                commands = _mixed_stream(56, core.topology.dies, seed=seed)
                core.submit_stream(commands, window=None, arrival_s=0.0)
                core.engine.run()
                runs.append(_observe(core))
            assert runs[0] == runs[1]  # deterministic replay
            traces[flat] = runs[0]
        assert traces[True] == traces[False]  # and oracle-exact

    @pytest.mark.parametrize("pipeline", PIPELINES, ids=lambda p: p.describe())
    def test_zero_arrival_window_one_serialises_exactly(self, pipeline):
        # Window 1 under same-instant arrivals: every admission waits
        # on the previous completion — pure doorbell traffic.
        results = {}
        for flat in (True, False):
            core = _stream_core(flat, "heap", pipeline)
            commands = _mixed_stream(20, core.topology.dies, seed=83)
            core.submit_stream(commands, window=1, arrival_s=0.0)
            core.engine.run()
            results[flat] = _observe(core)
        assert results[True] == results[False]


class TestSessionFastPathStats:
    def test_flat_session_counts_fast_commands(self):
        topology = SsdTopology(channels=2, dies_per_channel=2)
        session = SsdSession(
            ssd=SsdDevice(topology, seed=0, pipeline=PipelineConfig.full()),
            fast_batch=True,
        )
        commands = _stream(CommandKind.READ, 24, topology.dies, 5)
        session.execute(list(commands), queue_depth=4)
        stats = session.fast_path_stats
        assert stats.fast == 24
        assert stats.fallback == 0
        assert stats.total == 24

    def test_generator_session_counts_fallback_commands(self):
        topology = SsdTopology(channels=2, dies_per_channel=2)
        session = SsdSession(
            ssd=SsdDevice(topology, seed=0, pipeline=PipelineConfig.full()),
            fast_batch=False,
        )
        commands = _stream(CommandKind.READ, 24, topology.dies, 5)
        session.execute(list(commands), queue_depth=4)
        stats = session.fast_path_stats
        assert stats.fast == 0
        assert stats.fallback == 24
        assert stats.total == 24


class TestEngineFlatSurface:
    def test_attach_flat_twice_raises(self):
        engine = SimEngine()
        engine.attach_flat(lambda event, until_s: (None, 1))
        with pytest.raises(SimulationError, match="already attached"):
            engine.attach_flat(lambda event, until_s: (None, 1))

    def test_schedule_at_past_raises(self):
        topology = SsdTopology(channels=1, dies_per_channel=1)
        engine = SimEngine()
        core = SchedulerCore(
            engine, topology, PipelineConfig.full(), flat=True
        )
        core.start()
        engine.run()
        core.submit_stream(
            _mixed_stream(4, topology.dies, seed=2), arrival_s=1e-6
        )
        engine.run()
        with pytest.raises(SimulationError, match="into the past"):
            engine.schedule_at(engine.now_s - 1e-6, [0])


# ---------------------------------------------------------------------------
# Event-list backend replay: full open-loop sessions, byte-identical.
# ---------------------------------------------------------------------------


def _build_ftl(pipeline, seed=2012, wear=10_000):
    topology = SsdTopology(
        channels=2,
        dies_per_channel=2,
        geometry=NandGeometry(blocks=8, pages_per_block=8),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=seed, pipeline=pipeline
    )
    for controller in ssd.controllers:
        controller.device.array._wear[:] = wear
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(wear))
    return DieStripedFtl(ssd)


def _open_loop_trace(backend: str):
    """One full open-loop session on the given backend; returns its trace."""
    ftl = _build_ftl(PipelineConfig.full())
    page = ftl.geometry.page_data_bytes
    rng = random.Random(99)
    ftl.write_many([(lpn, bytes([lpn]) * page) for lpn in range(8)])
    session = SsdSession(
        ftl, engine=SimEngine(event_list=backend), queue_depth=4
    )
    ops = []
    for _ in range(48):
        if rng.random() < 0.6:
            ops.append(IoCommand(TraceOpKind.READ, rng.randrange(8)))
        else:
            ops.append(IoCommand(
                TraceOpKind.WRITE, rng.randrange(8), rng.randbytes(page)
            ))

    def arrivals():
        for io in ops:
            session.submit(io)
            yield 15e-6  # fast arrivals: keeps the backlog exercised

    session.engine.spawn(arrivals())
    session.drain()
    completions = session.take_completions()
    assert len(completions) == len(ops)
    return (
        [
            (c.tag, c.kind, c.lpn, c.data, c.submit_s, c.dispatch_s, c.done_s)
            for c in completions
        ],
        session.engine.now_s,
        session.engine.events_processed,
    )


class TestBackendReplay:
    def test_open_loop_session_identical_on_heap_and_calendar(self):
        assert _open_loop_trace("calendar") == _open_loop_trace("heap")
