"""Batched stripe-reservation fast path: bit-exact equivalence tests.

The fast path (``_run_fast_batch``) is a transliteration of the
generator workers into a flat mini-DES; these tests pin the contract
that it is *bit-exact*, not merely close: identical completion order,
identical timestamps, identical busy accounting and makespan, for every
pipeline configuration, command kind, queue depth and topology — on
both the fresh :class:`CommandScheduler` surface and the resident
:meth:`SsdSession.execute` surface.

The second half is the replay contract for the event-list backends: a
full open-loop session (FTL data path, ECC, error injection, backlog,
doorbell) must produce byte-identical completions whether the engine
runs on the reference heap or the calendar queue.
"""

import random

import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTimingModel
from repro.sim.engine import SimEngine
from repro.ssd import (
    DieStripedFtl,
    IoCommand,
    PipelineConfig,
    SsdDevice,
    SsdSession,
    SsdTopology,
)
from repro.ssd.scheduler import CommandKind, CommandScheduler, DieCommand
from repro.workloads.traces import TraceOpKind

# Neat-number phase shapes: durations are exact multiples of 5 us so
# independent command chains collide on identical timestamps constantly
# — the regime where a tie-break divergence between the fast path and
# the generator path would surface immediately.
READ_PHASES = NandTimingModel.read_phases(
    sense_s=50e-6, transfer_s=20e-6, decode_s=40e-6, decode_hold_s=25e-6
)
PROGRAM_PHASES = NandTimingModel.program_phases(
    program_s=200e-6, transfer_s=20e-6, encode_s=15e-6
)
ERASE_PHASES = NandTimingModel.erase_phases(2e-3)

PIPELINES = [
    PipelineConfig.serial(),
    PipelineConfig(cache_read=True),
    PipelineConfig(pipelined_ecc=True),
    PipelineConfig.full(),
]


def _stream(kind: CommandKind, n: int, dies: int, seed: int) -> list[DieCommand]:
    """Homogeneous random die/plane stream of one command kind."""
    rng = random.Random(seed)
    phases = {
        CommandKind.READ: READ_PHASES,
        CommandKind.PROGRAM: PROGRAM_PHASES,
        CommandKind.ERASE: ERASE_PHASES,
    }[kind]
    cache_busy_s = 3e-6 if kind is CommandKind.READ else 0.0
    return [
        DieCommand.from_phases(
            kind, die=rng.randrange(dies), tag=tag, phases=phases,
            plane=rng.randrange(2), cache_busy_s=cache_busy_s,
        )
        for tag in range(n)
    ]


def _assert_identical(fast, slow) -> None:
    """Every observable of a ScheduleResult, compared bit-for-bit."""
    assert fast.completions == slow.completions
    assert fast.makespan_s == slow.makespan_s
    assert fast.die_busy_s == slow.die_busy_s
    assert fast.channel_busy_s == slow.channel_busy_s
    assert fast.ecc_busy_s == slow.ecc_busy_s


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES, ids=lambda p: p.describe())
    @pytest.mark.parametrize(
        "kind", [CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE]
    )
    @pytest.mark.parametrize("channels,dies_per_channel,queue_depth,seed", [
        (1, 1, None, 3),
        (2, 2, 4, 11),
        (4, 2, 32, 23),
    ])
    def test_fresh_run_bit_exact(
        self, pipeline, kind, channels, dies_per_channel, queue_depth, seed
    ):
        topology = SsdTopology(
            channels=channels, dies_per_channel=dies_per_channel
        )
        commands = _stream(kind, 48, topology.dies, seed)
        fast = CommandScheduler(
            topology, pipeline=pipeline, fast_batch=True
        ).run(commands, queue_depth)
        slow = CommandScheduler(
            topology, pipeline=pipeline, fast_batch=False
        ).run(commands, queue_depth)
        _assert_identical(fast, slow)

    def test_mixed_batch_falls_back_to_generators(self):
        # A mixed-kind batch is not fast-eligible; with fast_batch=True
        # it must transparently take (and match) the generator path.
        topology = SsdTopology(channels=2, dies_per_channel=2)
        rng = random.Random(5)
        commands = []
        for tag in range(40):
            kind = rng.choice([CommandKind.READ, CommandKind.PROGRAM])
            commands.append(_stream(kind, 1, topology.dies, tag)[0])
        commands = [
            DieCommand.from_phases(
                c.kind, die=c.die, tag=tag, phases=c.phases, plane=c.plane,
                cache_busy_s=c.cache_busy_s,
            )
            for tag, c in enumerate(commands)
        ]
        fast = CommandScheduler(
            topology, pipeline=PipelineConfig.full(), fast_batch=True
        ).run(commands, queue_depth=8)
        slow = CommandScheduler(
            topology, pipeline=PipelineConfig.full(), fast_batch=False
        ).run(commands, queue_depth=8)
        _assert_identical(fast, slow)


class TestSessionEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES, ids=lambda p: p.describe())
    @pytest.mark.parametrize(
        "kind", [CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE]
    )
    def test_resident_execute_bit_exact(self, pipeline, kind):
        # Back-to-back batches through one resident session, checked
        # against a fast_batch=False twin AND a fresh scheduler — the
        # rebase()/reset_accounting() reuse path must not drift.
        topology = SsdTopology(channels=2, dies_per_channel=2)
        fast_session = SsdSession(
            ssd=SsdDevice(topology, seed=0, pipeline=pipeline),
            fast_batch=True,
        )
        slow_session = SsdSession(
            ssd=SsdDevice(topology, seed=0, pipeline=pipeline),
            fast_batch=False,
        )
        for round_seed in (7, 41):
            commands = _stream(kind, 32, topology.dies, round_seed)
            fast = fast_session.execute(list(commands), queue_depth=6)
            slow = slow_session.execute(list(commands), queue_depth=6)
            _assert_identical(fast, slow)
            fresh = CommandScheduler(
                topology, pipeline=pipeline, fast_batch=False
            ).run(list(commands), queue_depth=6)
            _assert_identical(fast, fresh)


# ---------------------------------------------------------------------------
# Event-list backend replay: full open-loop sessions, byte-identical.
# ---------------------------------------------------------------------------


def _build_ftl(pipeline, seed=2012, wear=10_000):
    topology = SsdTopology(
        channels=2,
        dies_per_channel=2,
        geometry=NandGeometry(blocks=8, pages_per_block=8),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=seed, pipeline=pipeline
    )
    for controller in ssd.controllers:
        controller.device.array._wear[:] = wear
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(wear))
    return DieStripedFtl(ssd)


def _open_loop_trace(backend: str):
    """One full open-loop session on the given backend; returns its trace."""
    ftl = _build_ftl(PipelineConfig.full())
    page = ftl.geometry.page_data_bytes
    rng = random.Random(99)
    ftl.write_many([(lpn, bytes([lpn]) * page) for lpn in range(8)])
    session = SsdSession(
        ftl, engine=SimEngine(event_list=backend), queue_depth=4
    )
    ops = []
    for _ in range(48):
        if rng.random() < 0.6:
            ops.append(IoCommand(TraceOpKind.READ, rng.randrange(8)))
        else:
            ops.append(IoCommand(
                TraceOpKind.WRITE, rng.randrange(8), rng.randbytes(page)
            ))

    def arrivals():
        for io in ops:
            session.submit(io)
            yield 15e-6  # fast arrivals: keeps the backlog exercised

    session.engine.spawn(arrivals())
    session.drain()
    completions = session.take_completions()
    assert len(completions) == len(ops)
    return (
        [
            (c.tag, c.kind, c.lpn, c.data, c.submit_s, c.dispatch_s, c.done_s)
            for c in completions
        ],
        session.engine.now_s,
        session.engine.events_processed,
    )


class TestBackendReplay:
    def test_open_loop_session_identical_on_heap_and_calendar(self):
        assert _open_loop_trace("calendar") == _open_loop_trace("heap")
