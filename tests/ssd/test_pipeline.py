"""Phase-scheduler tests: PR 3 equivalence, pipeline modes, determinism.

The reference implementation below is a verbatim copy of the PR 3
two-scalar scheduler (one die process per die, fused transfer+ECC bus
section).  With every pipeline flag disabled, the phase scheduler must
reproduce its timelines *exactly* — same completion order, same
per-command completion times, same final clock — on arbitrary command
mixes.  The pipelined modes are then checked against closed-form
makespans and for run-to-run determinism.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.controller.core import pipeline_elapsed_s
from repro.nand.geometry import NandGeometry
from repro.nand.timing import CommandPhase, NandTimingModel, PhaseResource
from repro.sim.engine import Process, SimEngine, Signal
from repro.ssd.scheduler import (
    CommandKind,
    CommandScheduler,
    DieCommand,
    PipelineConfig,
)
from repro.ssd.topology import SsdTopology


# ---------------------------------------------------------------------------
# Reference: the PR 3 scheduler, kept verbatim as the equivalence oracle.
# ---------------------------------------------------------------------------


class _Pr3Bus:
    def __init__(self, engine: SimEngine):
        self.busy = False
        self.freed = engine.signal()


class Pr3Scheduler:
    """The pre-phase two-scalar scheduler (PR 3), used as an oracle."""

    def __init__(self, topology: SsdTopology):
        self.topology = topology

    def run(self, commands, queue_depth=None):
        topology = self.topology
        engine = SimEngine()
        completions = []
        buses = [_Pr3Bus(engine) for _ in range(topology.channels)]
        queues = [[] for _ in range(topology.dies)]
        work = [engine.signal() for _ in range(topology.dies)]
        completed = engine.signal()
        state = {"in_flight": 0, "closed": False}
        admit_s = {}

        def hold_bus(bus, duration_s) -> Process:
            while bus.busy:
                yield bus.freed
            bus.busy = True
            yield duration_s
            bus.busy = False
            bus.freed.fire()

        def admission() -> Process:
            limit = len(commands) if queue_depth is None else queue_depth
            for command in commands:
                while state["in_flight"] >= limit:
                    yield completed
                state["in_flight"] += 1
                admit_s[command.tag] = engine.now_s
                queues[command.die].append(command)
                work[command.die].fire()
            state["closed"] = True
            for signal in work:
                signal.fire()

        def die_process(die: int) -> Process:
            channel = topology.channel_of(die)
            bus = buses[channel]
            while True:
                while not queues[die]:
                    if state["closed"]:
                        return
                    yield work[die]
                command = queues[die].pop(0)
                if command.kind is CommandKind.READ:
                    yield command.die_s
                    yield from hold_bus(bus, command.channel_s)
                elif command.kind is CommandKind.PROGRAM:
                    yield from hold_bus(bus, command.channel_s)
                    yield command.die_s
                else:
                    yield command.die_s
                completions.append(
                    (command.tag, admit_s[command.tag], engine.now_s)
                )
                state["in_flight"] -= 1
                completed.fire()

        engine.spawn(admission())
        for die in range(topology.dies):
            engine.spawn(die_process(die))
        makespan = engine.run()
        return completions, makespan


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _topology(channels, dies_per_channel, planes=2):
    return SsdTopology(
        channels=channels,
        dies_per_channel=dies_per_channel,
        geometry=NandGeometry(blocks=4, pages_per_block=8, planes=planes),
    )


def _random_commands(rng, count, dies, phase_built=True):
    """Mixed random command list; tags are submission order."""
    commands = []
    for tag in range(count):
        die = int(rng.integers(dies))
        plane = int(rng.integers(2))
        kind = (CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE)[
            int(rng.integers(3))
        ]
        die_s = float(rng.uniform(20e-6, 600e-6))
        transfer_s = float(rng.uniform(5e-6, 20e-6))
        ecc_s = float(rng.uniform(20e-6, 160e-6))
        hold_s = ecc_s * float(rng.uniform(0.3, 1.0))
        if not phase_built:
            channel_s = 0.0 if kind is CommandKind.ERASE else transfer_s + ecc_s
            commands.append(DieCommand(
                kind=kind, die=die, tag=tag, die_s=die_s,
                channel_s=channel_s, plane=plane,
            ))
        elif kind is CommandKind.READ:
            commands.append(DieCommand.from_phases(
                kind, die, tag,
                NandTimingModel.read_phases(die_s, transfer_s, ecc_s, hold_s),
                plane=plane,
            ))
        elif kind is CommandKind.PROGRAM:
            commands.append(DieCommand.from_phases(
                kind, die, tag,
                NandTimingModel.program_phases(die_s, transfer_s, ecc_s, hold_s),
                plane=plane,
            ))
        else:
            commands.append(DieCommand.from_phases(
                kind, die, tag, NandTimingModel.erase_phases(die_s),
                plane=plane,
            ))
    return commands


def _reads(count, dies, sense=100e-6, transfer=10e-6, decode=100e-6,
           hold=60e-6, cache_busy=0.0):
    return [
        DieCommand.from_phases(
            CommandKind.READ,
            dies[i % len(dies)],
            i,
            NandTimingModel.read_phases(sense, transfer, decode, hold),
            cache_busy_s=cache_busy,
        )
        for i in range(count)
    ]


def _programs(count, plane_of, program=600e-6, transfer=10e-6,
              encode=50e-6, hold=40e-6, die=0):
    return [
        DieCommand.from_phases(
            CommandKind.PROGRAM,
            die,
            i,
            NandTimingModel.program_phases(program, transfer, encode, hold),
            plane=plane_of(i),
        )
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# PR 3 equivalence (the refactor's safety net)
# ---------------------------------------------------------------------------


class TestPr3Equivalence:
    @pytest.mark.parametrize("channels,dies_per_channel", [
        (1, 1), (1, 4), (2, 2), (4, 1), (2, 4),
    ])
    @pytest.mark.parametrize("queue_depth", [None, 1, 3, 8])
    def test_serial_config_matches_pr3_exactly(
        self, channels, dies_per_channel, queue_depth
    ):
        topology = _topology(channels, dies_per_channel)
        rng = np.random.default_rng(channels * 100 + dies_per_channel)
        commands = _random_commands(rng, 40, topology.dies)
        reference, ref_makespan = Pr3Scheduler(topology).run(
            commands, queue_depth
        )
        result = CommandScheduler(topology, PipelineConfig.serial()).run(
            commands, queue_depth
        )
        assert [
            (c.tag, c.admit_s, c.done_s) for c in result.completions
        ] == reference
        assert result.makespan_s == ref_makespan

    def test_scalar_and_phase_built_commands_agree_in_serial_mode(self):
        topology = _topology(2, 2)
        rng = np.random.default_rng(7)
        state = rng.bit_generator.state
        phase_built = _random_commands(rng, 30, topology.dies)
        rng.bit_generator.state = state
        scalar = _random_commands(rng, 30, topology.dies, phase_built=False)
        scheduler = CommandScheduler(topology)
        first = scheduler.run(phase_built, queue_depth=4)
        second = scheduler.run(scalar, queue_depth=4)
        assert first.completion_order() == second.completion_order()
        assert first.makespan_s == pytest.approx(second.makespan_s)

    def test_serial_mode_ignores_planes(self):
        # Same commands on different planes: serial config serialises on
        # the die anyway (the single-page-buffer hazard).
        topology = _topology(1, 1)
        spread = _programs(4, lambda i: i % 2)
        stacked = _programs(4, lambda i: 0)
        scheduler = CommandScheduler(topology)
        assert scheduler.run(spread).makespan_s == pytest.approx(
            scheduler.run(stacked).makespan_s
        )


# ---------------------------------------------------------------------------
# Cache reads
# ---------------------------------------------------------------------------


class TestCacheRead:
    def test_sense_overlaps_transfer(self):
        # Double-buffered: makespan = first sense + N x channel section
        # when the channel section dominates the sense.
        scheduler = CommandScheduler(
            _topology(1, 1), PipelineConfig(cache_read=True)
        )
        result = scheduler.run(_reads(4, [0], sense=100e-6))
        assert result.makespan_s == pytest.approx(100e-6 + 4 * 110e-6)

    def test_matches_pipelined_fsm_recurrence(self):
        rng = np.random.default_rng(3)
        stages = [
            (float(rng.uniform(50e-6, 150e-6)),
             float(rng.uniform(50e-6, 150e-6)))
            for _ in range(12)
        ]
        commands = [
            DieCommand.from_phases(
                CommandKind.READ, 0, i,
                NandTimingModel.read_phases(a, b, 0.0),
            )
            for i, (a, b) in enumerate(stages)
        ]
        scheduler = CommandScheduler(
            _topology(1, 1), PipelineConfig(cache_read=True)
        )
        result = scheduler.run(commands)
        assert result.makespan_s == pytest.approx(pipeline_elapsed_s(stages))

    def test_cache_busy_charged_on_handoff(self):
        plain = CommandScheduler(
            _topology(1, 1), PipelineConfig(cache_read=True)
        ).run(_reads(4, [0]))
        with_busy = CommandScheduler(
            _topology(1, 1), PipelineConfig(cache_read=True)
        ).run(_reads(4, [0], cache_busy=3e-6))
        assert with_busy.makespan_s > plain.makespan_s

    def test_serial_mode_unaffected_by_cache_fields(self):
        scheduler = CommandScheduler(_topology(1, 1))
        result = scheduler.run(_reads(4, [0], cache_busy=3e-6))
        assert result.makespan_s == pytest.approx(4 * 210e-6)


# ---------------------------------------------------------------------------
# Multi-plane
# ---------------------------------------------------------------------------


class TestMultiPlane:
    def test_programs_overlap_across_planes(self):
        config = PipelineConfig(multi_plane=True)
        alternating = CommandScheduler(_topology(1, 1), config).run(
            _programs(4, lambda i: i % 2)
        )
        stacked = CommandScheduler(_topology(1, 1), config).run(
            _programs(4, lambda i: 0)
        )
        serial = CommandScheduler(_topology(1, 1)).run(
            _programs(4, lambda i: i % 2)
        )
        assert stacked.makespan_s == pytest.approx(serial.makespan_s)
        # Two planes halve the array-bound section of the makespan.
        assert alternating.makespan_s < 0.6 * serial.makespan_s

    def test_reads_overlap_sensing_across_planes(self):
        config = PipelineConfig(multi_plane=True)
        commands = [
            DieCommand.from_phases(
                CommandKind.READ, 0, i,
                NandTimingModel.read_phases(100e-6, 10e-6, 40e-6),
                plane=i % 2,
            )
            for i in range(6)
        ]
        overlapped = CommandScheduler(_topology(1, 1), config).run(commands)
        serial = CommandScheduler(_topology(1, 1)).run(commands)
        assert overlapped.makespan_s < serial.makespan_s

    def test_die_busy_accounting_covers_both_planes(self):
        config = PipelineConfig(multi_plane=True)
        result = CommandScheduler(_topology(1, 1), config).run(
            _programs(4, lambda i: i % 2)
        )
        assert result.die_busy_s[0] == pytest.approx(4 * 600e-6)


# ---------------------------------------------------------------------------
# Pipelined ECC
# ---------------------------------------------------------------------------


class TestPipelinedEcc:
    def test_engine_interval_sets_the_channel_ceiling(self):
        # 8 reads over 4 dies on one channel: the serial fused section is
        # transfer+decode per page; pipelined, the bus holds only the
        # transfer and the engine accepts a page every hold interval.
        topology = _topology(1, 4)
        commands = _reads(8, [0, 1, 2, 3])
        serial = CommandScheduler(topology).run(commands)
        pipelined = CommandScheduler(
            topology, PipelineConfig(cache_read=True, pipelined_ecc=True)
        ).run(commands)
        assert serial.makespan_s == pytest.approx(8 * 110e-6 + 100e-6)
        # Steady state: one page per 60 us engine interval, after the
        # first sense; the last page pays its decode drain + transfer.
        assert pipelined.makespan_s == pytest.approx(
            100e-6 + 8 * 60e-6 + 40e-6 + 10e-6
        )

    def test_ecc_busy_accounted_separately(self):
        topology = _topology(1, 2)
        result = CommandScheduler(
            topology, PipelineConfig(pipelined_ecc=True)
        ).run(_reads(6, [0, 1]))
        assert result.channel_busy_s[0] == pytest.approx(6 * 10e-6)
        assert result.ecc_busy_s[0] == pytest.approx(6 * 60e-6)
        serial = CommandScheduler(topology).run(_reads(6, [0, 1]))
        assert serial.channel_busy_s[0] == pytest.approx(6 * 110e-6)
        assert serial.ecc_busy_s[0] == 0.0

    def test_encode_pipelines_on_writes(self):
        topology = _topology(1, 4)
        programs = [
            DieCommand.from_phases(
                CommandKind.PROGRAM, die, die,
                NandTimingModel.program_phases(600e-6, 10e-6, 50e-6, 40e-6),
            )
            for die in range(4)
        ]
        serial = CommandScheduler(topology).run(programs)
        pipelined = CommandScheduler(
            topology, PipelineConfig(pipelined_ecc=True)
        ).run(programs)
        # Serial: 4 fused 60 us bus sections + the last 600 us program.
        assert serial.makespan_s == pytest.approx(4 * 60e-6 + 600e-6)
        assert pipelined.makespan_s < serial.makespan_s


# ---------------------------------------------------------------------------
# Determinism + validation
# ---------------------------------------------------------------------------


class TestDeterminismAndValidation:
    @pytest.mark.parametrize("config", [
        PipelineConfig(cache_read=True),
        PipelineConfig(multi_plane=True),
        PipelineConfig(pipelined_ecc=True),
        PipelineConfig.full(),
    ])
    def test_same_inputs_same_timeline(self, config):
        topology = _topology(2, 2)
        rng = np.random.default_rng(23)
        commands = _random_commands(rng, 48, topology.dies)
        scheduler = CommandScheduler(topology, config)
        first = scheduler.run(commands, queue_depth=6)
        second = scheduler.run(commands, queue_depth=6)
        assert first.completion_order() == second.completion_order()
        assert first.makespan_s == second.makespan_s
        assert [c.done_s for c in first.completions] == [
            c.done_s for c in second.completions
        ]

    @pytest.mark.parametrize("config", [
        PipelineConfig.serial(), PipelineConfig.full(),
    ])
    def test_every_command_completes_once(self, config):
        topology = _topology(2, 4)
        rng = np.random.default_rng(5)
        commands = _random_commands(rng, 64, topology.dies)
        result = CommandScheduler(topology, config).run(
            commands, queue_depth=5
        )
        assert sorted(result.completion_order()) == list(range(64))

    def test_pipelining_never_hurts_makespan(self):
        topology = _topology(1, 4)
        rng = np.random.default_rng(41)
        commands = _random_commands(rng, 40, topology.dies)
        serial = CommandScheduler(topology).run(commands).makespan_s
        full = CommandScheduler(
            topology, PipelineConfig(multi_plane=True, pipelined_ecc=True)
        ).run(commands).makespan_s
        assert full <= serial + 1e-12

    def test_duplicate_tags_rejected(self):
        scheduler = CommandScheduler(_topology(1, 1))
        duplicate = [
            DieCommand(kind=CommandKind.READ, die=0, tag=4,
                       die_s=10e-6, channel_s=10e-6),
            DieCommand(kind=CommandKind.READ, die=0, tag=4,
                       die_s=10e-6, channel_s=10e-6),
        ]
        with pytest.raises(SimulationError, match="duplicate command tag"):
            scheduler.run(duplicate)

    def test_invalid_phase_fields_rejected(self):
        with pytest.raises(SimulationError):
            DieCommand(kind=CommandKind.READ, die=0, tag=0,
                       die_s=1e-6, plane=-1)
        with pytest.raises(SimulationError):
            DieCommand(kind=CommandKind.READ, die=0, tag=0,
                       die_s=1e-6, cache_busy_s=-1e-6)
        with pytest.raises(SimulationError):
            CommandPhase(PhaseResource.ECC, 10e-6, hold_s=20e-6)

    def test_describe_labels(self):
        assert PipelineConfig.serial().describe() == "serial"
        assert PipelineConfig(cache_read=True).describe() == "cache"
        assert PipelineConfig.full().describe() == "cache+mplane+ecc"
