"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bch.params import BCHCodeSpec, design_code
from repro.gf.field import GF2m, get_field
from repro.nand.program import PageProgrammer


@pytest.fixture(scope="session")
def gf16() -> GF2m:
    """GF(2^4): small enough for exhaustive checks."""
    return get_field(4)


@pytest.fixture(scope="session")
def gf256() -> GF2m:
    """GF(2^8)."""
    return get_field(8)


@pytest.fixture(scope="session")
def small_spec() -> BCHCodeSpec:
    """A small code for fast decode round-trips: k = 64, t = 3."""
    return design_code(64, 3)


@pytest.fixture(scope="session")
def medium_spec() -> BCHCodeSpec:
    """A medium code: k = 1024 bits, t = 8."""
    return design_code(1024, 8)


@pytest.fixture(scope="session")
def page_spec() -> BCHCodeSpec:
    """The paper's page-sized code at a moderate capability."""
    return design_code(32768, 8)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def programmer(rng: np.random.Generator) -> PageProgrammer:
    """Page programmer with a deterministic RNG."""
    return PageProgrammer(rng=rng)


def flip_bits(codeword: bytes, positions: list[int]) -> bytes:
    """Return a copy of ``codeword`` with the given bit positions flipped."""
    corrupted = bytearray(codeword)
    for pos in positions:
        corrupted[pos // 8] ^= 0x80 >> (pos % 8)
    return bytes(corrupted)
