"""Read-disturb model tests."""

import numpy as np
import pytest

from repro.errors import NandOperationError
from repro.nand.device import NandFlashDevice, ReadDisturbParams
from repro.nand.geometry import NandGeometry


class TestReadDisturbParams:
    def test_factor_growth(self):
        params = ReadDisturbParams(coefficient=1.0, reads_ref=1000.0)
        assert params.factor(0) == 1.0
        assert params.factor(500) == pytest.approx(1.5)
        assert params.factor(2000) == pytest.approx(3.0)

    def test_negative_reads_rejected(self):
        with pytest.raises(NandOperationError):
            ReadDisturbParams().factor(-1)


class TestDeviceIntegration:
    @pytest.fixture()
    def device(self, rng):
        return NandFlashDevice(
            NandGeometry(blocks=2, pages_per_block=2),
            disturb=ReadDisturbParams(coefficient=1.0, reads_ref=100.0),
            rng=rng,
        )

    def test_reads_counted_and_reset_on_erase(self, device):
        device.program_page(0, 0, bytes(64))
        for _ in range(5):
            device.read_page(0, 0)
        assert device.array.reads_since_erase(0) == 5
        device.erase_block(0)
        assert device.array.reads_since_erase(0) == 0

    def test_rber_grows_with_reads(self, device):
        device.array._wear[0] = 10_000  # measurable base RBER
        device.program_page(0, 0, bytes(4096))
        _, first = device.read_page(0, 0)
        for _ in range(200):
            device.read_page(0, 0)
        _, later = device.read_page(0, 0)
        assert later.rber > 2.5 * first.rber

    def test_scrub_by_erase_restores_rber(self, device, rng):
        device.array._wear[0] = 10_000
        device.program_page(0, 0, bytes(4096))
        for _ in range(150):
            device.read_page(0, 0)
        _, disturbed = device.read_page(0, 0)
        device.erase_block(0)
        device.program_page(0, 0, bytes(4096))
        _, fresh = device.read_page(0, 0)
        assert fresh.rber < disturbed.rber
