"""MLC level plan and Gray-mapping tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.levels import GRAY_MAP, LEVEL_OF_PATTERN, MlcLevels


class TestGrayMap:
    def test_adjacent_levels_differ_by_one_bit(self):
        for a, b in zip(GRAY_MAP[:-1], GRAY_MAP[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_inverse_map(self):
        for level, pattern in enumerate(GRAY_MAP):
            assert LEVEL_OF_PATTERN[pattern] == level

    def test_bits_round_trip(self):
        levels = np.array([0, 1, 2, 3, 2, 1])
        upper, lower = MlcLevels.bits_from_levels(levels)
        assert np.array_equal(MlcLevels.levels_from_bits(upper, lower), levels)


class TestLevelPlan:
    def test_default_plan_is_ordered(self):
        plan = MlcLevels()
        assert plan.read[0] < plan.verify[0] < plan.read[1] < plan.verify[1]
        assert plan.read[2] < plan.verify[2] < plan.over_program

    def test_verify_targets(self):
        plan = MlcLevels()
        assert plan.verify_target(0) is None
        assert plan.verify_target(1) == plan.verify[0]
        assert plan.verify_target(3) == plan.verify[2]
        with pytest.raises(ConfigurationError):
            plan.verify_target(4)

    def test_classification(self):
        plan = MlcLevels()
        vth = np.array([-3.0, 0.9, 2.2, 3.5])
        assert plan.classify(vth).tolist() == [0, 1, 2, 3]

    def test_bit_errors_counts_gray_distance(self):
        plan = MlcLevels()
        programmed = np.array([1, 1, 2])
        # First cell reads correctly, second reads as L2 (1 bit),
        # third reads as L0 (2 bits away in the Gray map: 00 vs 11).
        vth = np.array([0.9, 2.0, -3.0])
        assert plan.bit_errors(programmed, vth) == 0 + 1 + 2

    def test_over_programming_counts_two_bits(self):
        plan = MlcLevels()
        programmed = np.array([3])
        vth = np.array([plan.over_program + 0.5])
        # Reads as L3 (no gray error) but OP adds a whole-cell failure.
        assert plan.bit_errors(programmed, vth) == 2

    def test_margins_positive(self):
        margins = MlcLevels().margins()
        assert all(v > 0 for v in margins.values())
        # Sensing margins should be roughly symmetric (~0.6 V).
        assert margins["L2_lower"] == pytest.approx(0.6, abs=0.1)
        assert margins["L2_upper"] == pytest.approx(0.6, abs=0.1)

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            MlcLevels(verify=(2.0, 0.8, 3.2))
        with pytest.raises(ConfigurationError):
            MlcLevels(read=(-1.0, 2.845, 1.645))
        with pytest.raises(ConfigurationError):
            MlcLevels(over_program=1.0)
        with pytest.raises(ConfigurationError):
            MlcLevels(read=(-4.0, 1.645, 2.845))
