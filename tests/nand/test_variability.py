"""Variability sampler tests."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.variability import VariabilityParams, VariabilitySampler


class TestParams:
    def test_sigma_onset_quadrature(self):
        p = VariabilityParams(sigma_geometry=0.3, sigma_oxide=0.4, sigma_doping=0.0)
        assert p.sigma_onset == pytest.approx(0.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            VariabilityParams(sigma_geometry=-0.1)
        with pytest.raises(ConfigurationError):
            VariabilityParams(granularity_coeff=-1e-3)


class TestSampler:
    def test_onset_statistics(self, rng):
        params = VariabilityParams()
        sampler = VariabilitySampler(params, rng)
        onsets = sampler.sample_onsets(200_000)
        assert onsets.mean() == pytest.approx(params.onset_mean, abs=0.01)
        assert onsets.std() == pytest.approx(params.sigma_onset, rel=0.02)

    def test_onset_shift_applied(self, rng):
        params = VariabilityParams()
        sampler = VariabilitySampler(params, rng)
        onsets = sampler.sample_onsets(50_000, onset_shift=-0.3)
        assert onsets.mean() == pytest.approx(params.onset_mean - 0.3, abs=0.02)

    def test_step_noise_shot_scaling(self, rng):
        params = VariabilityParams(granularity_coeff=0.01)
        sampler = VariabilitySampler(params, rng)
        small = sampler.step_noise(np.full(100_000, 0.1))
        large = sampler.step_noise(np.full(100_000, 0.4))
        # Variance proportional to step: sigma ratio = sqrt(4) = 2.
        assert large.std() / small.std() == pytest.approx(2.0, rel=0.05)
        assert small.std() == pytest.approx(math.sqrt(0.01 * 0.1), rel=0.05)

    def test_zero_step_no_noise(self, rng):
        sampler = VariabilitySampler(VariabilityParams(), rng)
        noise = sampler.step_noise(np.zeros(100))
        assert np.all(noise == 0.0)

    def test_explicit_coefficient_override(self, rng):
        sampler = VariabilitySampler(VariabilityParams(granularity_coeff=0.001), rng)
        noisy = sampler.step_noise(np.full(100_000, 0.25), coeff=0.04)
        assert noisy.std() == pytest.approx(math.sqrt(0.04 * 0.25), rel=0.05)
