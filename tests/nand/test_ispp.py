"""ISPP engine tests (ISPP-SV and ISPP-DV mechanics)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NandOperationError
from repro.nand.ispp import IsppAlgorithm, IsppEngine, IsppSchedule


@pytest.fixture()
def engine(rng):
    return IsppEngine(rng=rng)


def random_targets(rng, n=4096):
    return rng.integers(0, 4, n)


class TestSchedule:
    def test_vpp_staircase_and_clamp(self):
        sched = IsppSchedule()
        assert sched.vpp_at(0) == 14.0
        assert sched.vpp_at(4) == 15.0
        assert sched.vpp_at(100) == 19.0  # clamped at the pump ceiling

    def test_invalid_schedules(self):
        with pytest.raises(ConfigurationError):
            IsppSchedule(vpp_end=13.0)
        with pytest.raises(ConfigurationError):
            IsppSchedule(delta=0)
        with pytest.raises(ConfigurationError):
            IsppSchedule(dv_attenuation=1.0)
        with pytest.raises(ConfigurationError):
            IsppSchedule(dv_preverify_offset=0)


class TestProgramPage:
    def test_all_cells_reach_verify(self, engine, rng):
        targets = random_targets(rng)
        result = engine.program_page(targets, IsppAlgorithm.SV)
        assert result.failed_cells == 0
        vfy = np.array([np.nan, 0.8, 2.0, 3.2])
        programmed = targets > 0
        assert np.all(result.vth[programmed] >= vfy[targets[programmed]] - 1e-9)

    def test_erased_cells_untouched(self, engine, rng):
        targets = np.zeros(2048, dtype=np.int64)
        result = engine.program_page(targets, IsppAlgorithm.SV)
        assert result.pulses == 0
        assert np.all(np.abs(result.deltas) < 1e-12)

    def test_levels_ordered(self, engine, rng):
        targets = random_targets(rng)
        result = engine.program_page(targets, IsppAlgorithm.SV)
        means = [result.vth[targets == lv].mean() for lv in range(4)]
        assert means[0] < means[1] < means[2] < means[3]

    def test_dv_compacts_distributions(self, rng):
        engine = IsppEngine(rng=np.random.default_rng(11))
        targets = np.full(8192, 2)
        sv = engine.program_page(targets, IsppAlgorithm.SV)
        dv = engine.program_page(targets, IsppAlgorithm.DV)
        assert dv.vth.std() < sv.vth.std()

    def test_dv_centres_match_sv(self, rng):
        engine = IsppEngine(rng=np.random.default_rng(12))
        targets = np.full(8192, 2)
        sv = engine.program_page(targets, IsppAlgorithm.SV).vth.mean()
        dv = engine.program_page(targets, IsppAlgorithm.DV).vth.mean()
        assert dv == pytest.approx(sv, abs=0.05)

    def test_dv_needs_more_pulses_and_verifies(self, engine, rng):
        targets = random_targets(rng)
        sv = engine.program_page(targets, IsppAlgorithm.SV)
        dv = engine.program_page(targets, IsppAlgorithm.DV)
        assert dv.pulses >= sv.pulses
        assert dv.preverify_ops > 0
        assert sv.preverify_ops == 0
        assert dv.verify_ops + dv.preverify_ops > 1.8 * sv.verify_ops

    def test_activity_traces_consistent(self, engine, rng):
        targets = random_targets(rng)
        result = engine.program_page(targets, IsppAlgorithm.DV)
        assert len(result.pulse_vpp) == result.pulses
        assert len(result.active_cells_per_pulse) == result.pulses
        assert result.verify_ops == int(result.verifies_per_pulse.sum())
        assert result.preverify_ops == int(result.preverifies_per_pulse.sum())
        # Active population shrinks monotonically.
        assert np.all(np.diff(result.active_cells_per_pulse) <= 0)

    def test_aging_speeds_up_programming(self, rng):
        engine = IsppEngine(rng=np.random.default_rng(13))
        targets = np.full(8192, 3)
        fresh = engine.program_page(targets, IsppAlgorithm.SV, pe_cycles=0)
        aged = engine.program_page(targets, IsppAlgorithm.SV, pe_cycles=1e5)
        assert aged.pulses <= fresh.pulses

    def test_invalid_targets(self, engine):
        with pytest.raises(NandOperationError):
            engine.program_page(np.array([4]), IsppAlgorithm.SV)
        with pytest.raises(NandOperationError):
            engine.program_page(np.array([]), IsppAlgorithm.SV)
        with pytest.raises(NandOperationError):
            engine.program_page(np.zeros((2, 2), dtype=int), IsppAlgorithm.SV)

    def test_read_noise_scales_with_age(self, engine):
        fresh = engine.read_noise(100_000, 0.0).std()
        aged = engine.read_noise(100_000, 1e5).std()
        assert aged > fresh
