"""Distribution statistics tests (Fig. 3 machinery)."""

import numpy as np

from repro.nand.distributions import (
    distribution_report,
    histogram_per_level,
    level_statistics,
)
from repro.nand.ispp import IsppAlgorithm


class TestLevelStatistics:
    def test_basic_stats(self, rng):
        levels = np.array([0] * 100 + [1] * 100)
        vth = np.concatenate([
            rng.normal(-3.0, 0.3, 100), rng.normal(1.0, 0.1, 100)
        ])
        stats = level_statistics(levels, vth)
        assert stats[0].count == 100
        assert abs(stats[0].mean + 3.0) < 0.15
        assert abs(stats[1].mean - 1.0) < 0.05
        assert stats[2].count == 0
        assert np.isnan(stats[2].mean)

    def test_from_real_program(self, programmer):
        outcome = programmer.program_random_page(8192, IsppAlgorithm.SV)
        stats = level_statistics(outcome.levels, outcome.vth)
        assert all(s.count > 1500 for s in stats)
        # Sigma of programmed levels dominated by the ISPP overshoot.
        for s in stats[1:]:
            assert 0.02 < s.sigma < 0.3

    def test_histograms_cover_population(self, programmer):
        outcome = programmer.program_random_page(4096, IsppAlgorithm.SV)
        hists = histogram_per_level(outcome.levels, outcome.vth)
        total = sum(int(counts.sum()) for _, counts in hists.values())
        assert total == 4096

    def test_report_renders(self, programmer):
        outcome = programmer.program_random_page(2048, IsppAlgorithm.SV)
        report = distribution_report(outcome.levels, outcome.vth)
        assert "L0" in report and "L3" in report
        assert "read levels" in report
