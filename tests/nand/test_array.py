"""Behavioural NAND array tests (array-backed store + batch datapath)."""

import numpy as np
import pytest

from repro.errors import NandOperationError
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry


def _pad(data: bytes, page_bytes: int) -> bytes:
    """Expected read-back image of a short program (0xFF-filled tail)."""
    return data + bytes([0xFF]) * (page_bytes - len(data))


@pytest.fixture()
def array(rng):
    return NandArray(NandGeometry(blocks=4, pages_per_block=4), rng)


class TestArray:
    def test_program_read_round_trip(self, array):
        data = bytes(range(256)) * 16
        array.program_page(0, 0, data)
        assert array.read_page(0, 0) == _pad(data, array.geometry.page_bytes)
        assert array.is_programmed(0, 0)

    def test_full_page_round_trip_exact(self, array, rng):
        data = rng.bytes(array.geometry.page_bytes)
        array.program_page(0, 1, data)
        assert array.read_page(0, 1) == data

    def test_short_program_reads_full_page(self, array):
        # Regression: a short program used to read back short; stored
        # pages are now padded to page_bytes with 0xFF (erased state).
        data = b"\x00\x5a\xa5"
        array.program_page(1, 0, data)
        out = array.read_page(1, 0)
        assert len(out) == array.geometry.page_bytes
        assert out == _pad(data, array.geometry.page_bytes)

    def test_reprogram_without_erase_forbidden(self, array):
        array.program_page(1, 2, b"abc")
        with pytest.raises(NandOperationError):
            array.program_page(1, 2, b"xyz")

    def test_erase_clears_and_wears(self, array):
        array.program_page(2, 0, b"abc")
        assert array.wear(2) == 0
        array.erase_block(2)
        assert array.wear(2) == 1
        assert not array.is_programmed(2, 0)
        array.program_page(2, 0, b"new")  # now allowed again

    def test_erased_page_reads_ff(self, array):
        data = array.read_page(3, 3)
        assert data == bytes([0xFF]) * array.geometry.page_bytes

    def test_oversized_data_rejected(self, array):
        with pytest.raises(NandOperationError):
            array.program_page(0, 1, bytes(array.geometry.page_bytes + 1))

    def test_error_injection_rate(self, rng):
        array = NandArray(NandGeometry(blocks=1, pages_per_block=1), rng)
        data = bytes(4320)
        array.program_page(0, 0, data)
        rber = 0.01
        n_bits = len(data) * 8
        flipped = []
        for _ in range(20):
            read = array.read_page(0, 0, rber=rber)
            errors = sum(
                bin(a ^ b).count("1") for a, b in zip(read, data)
            )
            flipped.append(errors)
        mean_errors = np.mean(flipped)
        assert mean_errors == pytest.approx(n_bits * rber, rel=0.2)

    def test_zero_rber_returns_exact_data(self, array):
        data = b"\x12\x34" * 100
        array.program_page(0, 3, data)
        assert array.read_page(0, 3, rber=0.0) == _pad(
            data, array.geometry.page_bytes
        )

    def test_invalid_rber(self, array):
        array.program_page(0, 0, b"x")
        with pytest.raises(NandOperationError):
            array.read_page(0, 0, rber=1.0)

    def test_max_wear(self, array):
        array.erase_block(0)
        array.erase_block(0)
        array.erase_block(1)
        assert array.max_wear() == 2

    def test_block_bounds(self, array):
        with pytest.raises(NandOperationError):
            array.erase_block(4)
        with pytest.raises(NandOperationError):
            array.wear(-1)


class TestBatchDatapath:
    def test_program_pages_batch_round_trip(self, array, rng):
        page_bytes = array.geometry.page_bytes
        flats = np.array([0, 1, 5, 9])
        datas = [rng.bytes(page_bytes) for _ in flats]
        array.program_pages(flats, datas)
        out = array.read_pages(flats, np.zeros(len(flats)))
        assert out.shape == (len(flats), page_bytes)
        for row, data in zip(out, datas):
            assert row.tobytes() == data

    def test_batch_read_matches_scalar_at_zero_rber(self, array, rng):
        datas = [rng.bytes(64), rng.bytes(4320), rng.bytes(1)]
        flats = np.array([2, 3, 7])
        array.program_pages(flats, datas)
        batch = array.read_pages(flats, np.zeros(3))
        for flat, row in zip(flats, batch):
            block, page = array.geometry.split_address(int(flat))
            assert row.tobytes() == array.read_page(block, page, rber=0.0)

    def test_mixed_programmed_and_erased(self, array):
        array.program_page(0, 0, b"live")
        out = array.read_pages(np.array([0, 1]), np.zeros(2))
        assert out[0].tobytes().startswith(b"live")
        assert out[1].tobytes() == bytes([0xFF]) * array.geometry.page_bytes

    def test_erased_pages_never_get_errors(self, array):
        out = array.read_pages(np.array([4, 5]), np.array([0.3, 0.3]))
        assert (out == 0xFF).all()

    def test_batch_counts_reads_per_block(self, array):
        array.read_pages(np.array([0, 1, 4, 0]), np.zeros(4))
        assert array.reads_since_erase(0) == 3  # pages 0, 1 and 0 again
        assert array.reads_since_erase(1) == 1

    def test_duplicate_batch_program_rejected(self, array):
        with pytest.raises(NandOperationError):
            array.program_pages(np.array([3, 3]), [b"a", b"b"])

    def test_batch_program_validates_before_writing(self, array):
        array.program_page(0, 1, b"old")
        with pytest.raises(NandOperationError):
            array.program_pages(np.array([0, 1]), [b"new0", b"new1"])
        # The failed batch must not have touched page 0.
        assert not array.is_programmed(0, 0)

    def test_batch_error_counts_binomially_consistent(self, rng):
        geometry = NandGeometry(blocks=1, pages_per_block=64)
        array = NandArray(geometry, rng)
        n_pages, page_bytes = 64, geometry.page_bytes
        flats = np.arange(n_pages)
        reference = rng.integers(0, 256, (n_pages, page_bytes), dtype=np.uint8)
        array.program_pages(flats, [row.tobytes() for row in reference])
        rber = 2e-3
        n_bits = page_bytes * 8
        counts = []
        for _ in range(12):
            out = array.read_pages(flats, np.full(n_pages, rber))
            diff = np.unpackbits(out ^ reference, axis=1)
            counts.append(diff.sum(axis=1))
        counts = np.concatenate(counts)
        expected = n_bits * rber
        # Binomial(n_bits, rber): check mean and variance within tolerance.
        assert counts.mean() == pytest.approx(expected, rel=0.1)
        assert counts.var() == pytest.approx(expected * (1 - rber), rel=0.35)

    def test_heterogeneous_rbers_per_page(self, rng):
        geometry = NandGeometry(blocks=1, pages_per_block=4)
        array = NandArray(geometry, rng)
        flats = np.arange(4)
        blank = bytes(geometry.page_bytes)
        array.program_pages(flats, [blank] * 4)
        rbers = np.array([0.0, 1e-3, 5e-3, 2e-2])
        n_bits = geometry.page_bytes * 8
        totals = np.zeros(4)
        rounds = 40
        for _ in range(rounds):
            out = array.read_pages(flats, rbers)
            totals += np.unpackbits(out, axis=1).sum(axis=1)
        means = totals / rounds
        assert means[0] == 0.0
        for i in (1, 2, 3):
            assert means[i] == pytest.approx(n_bits * rbers[i], rel=0.25)

    def test_dense_fallback_high_rber(self, rng):
        geometry = NandGeometry(blocks=1, pages_per_block=2)
        array = NandArray(geometry, rng)
        array.program_pages(np.arange(2), [bytes(geometry.page_bytes)] * 2)
        out = array.read_pages(np.arange(2), np.array([0.5, 0.5]))
        ones = np.unpackbits(out, axis=1).sum(axis=1)
        n_bits = geometry.page_bytes * 8
        assert ones[0] == pytest.approx(n_bits * 0.5, rel=0.05)
        assert ones[1] == pytest.approx(n_bits * 0.5, rel=0.05)

    def test_batch_rber_validation(self, array):
        with pytest.raises(NandOperationError):
            array.read_pages(np.array([0]), np.array([1.0]))
        with pytest.raises(NandOperationError):
            array.read_pages(np.array([0]), np.array([-0.1]))

    def test_batch_address_bounds(self, array):
        with pytest.raises(NandOperationError):
            array.read_pages(np.array([array.geometry.pages]), np.zeros(1))
