"""Behavioural NAND array tests."""

import numpy as np
import pytest

from repro.errors import NandOperationError
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry


@pytest.fixture()
def array(rng):
    return NandArray(NandGeometry(blocks=4, pages_per_block=4), rng)


class TestArray:
    def test_program_read_round_trip(self, array):
        data = bytes(range(256)) * 16
        array.program_page(0, 0, data)
        assert array.read_page(0, 0) == data
        assert array.is_programmed(0, 0)

    def test_reprogram_without_erase_forbidden(self, array):
        array.program_page(1, 2, b"abc")
        with pytest.raises(NandOperationError):
            array.program_page(1, 2, b"xyz")

    def test_erase_clears_and_wears(self, array):
        array.program_page(2, 0, b"abc")
        assert array.wear(2) == 0
        array.erase_block(2)
        assert array.wear(2) == 1
        assert not array.is_programmed(2, 0)
        array.program_page(2, 0, b"new")  # now allowed again

    def test_erased_page_reads_ff(self, array):
        data = array.read_page(3, 3)
        assert data == bytes([0xFF]) * array.geometry.page_bytes

    def test_oversized_data_rejected(self, array):
        with pytest.raises(NandOperationError):
            array.program_page(0, 1, bytes(array.geometry.page_bytes + 1))

    def test_error_injection_rate(self, rng):
        array = NandArray(NandGeometry(blocks=1, pages_per_block=1), rng)
        data = bytes(4320)
        array.program_page(0, 0, data)
        rber = 0.01
        n_bits = len(data) * 8
        flipped = []
        for _ in range(20):
            read = array.read_page(0, 0, rber=rber)
            errors = sum(
                bin(a ^ b).count("1") for a, b in zip(read, data)
            )
            flipped.append(errors)
        mean_errors = np.mean(flipped)
        assert mean_errors == pytest.approx(n_bits * rber, rel=0.2)

    def test_zero_rber_returns_exact_data(self, array):
        data = b"\x12\x34" * 100
        array.program_page(0, 3, data)
        assert array.read_page(0, 3, rber=0.0) == data

    def test_invalid_rber(self, array):
        array.program_page(0, 0, b"x")
        with pytest.raises(NandOperationError):
            array.read_page(0, 0, rber=1.0)

    def test_max_wear(self, array):
        array.erase_block(0)
        array.erase_block(0)
        array.erase_block(1)
        assert array.max_wear() == 2

    def test_block_bounds(self, array):
        with pytest.raises(NandOperationError):
            array.erase_block(4)
        with pytest.raises(NandOperationError):
            array.wear(-1)
