"""NAND geometry tests."""

import pytest

from repro.errors import ConfigurationError
from repro.nand.geometry import NandGeometry


class TestGeometry:
    def test_defaults_match_paper_device(self):
        g = NandGeometry()
        assert g.page_data_bytes == 4096
        assert g.page_spare_bytes == 224
        assert g.page_bytes == 4320
        assert g.bits_per_cell == 2
        assert g.cells_per_page == 16384

    def test_capacity(self):
        g = NandGeometry(blocks=4, pages_per_block=8)
        assert g.pages == 32
        assert g.capacity_bytes == 32 * 4096

    def test_address_round_trip(self):
        g = NandGeometry(blocks=16, pages_per_block=64)
        for block, page in ((0, 0), (3, 17), (15, 63)):
            flat = g.page_address(block, page)
            assert g.split_address(flat) == (block, page)

    def test_out_of_range_addresses(self):
        g = NandGeometry(blocks=4, pages_per_block=8)
        with pytest.raises(ConfigurationError):
            g.page_address(4, 0)
        with pytest.raises(ConfigurationError):
            g.page_address(0, 8)
        with pytest.raises(ConfigurationError):
            g.split_address(32)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            NandGeometry(page_data_bytes=0)
        with pytest.raises(ConfigurationError):
            NandGeometry(bits_per_cell=4)
        with pytest.raises(ConfigurationError):
            NandGeometry(blocks=0)


class TestPlanes:
    def test_default_is_two_plane(self):
        assert NandGeometry().planes == 2

    def test_block_interleaved_plane_addressing(self):
        g = NandGeometry(blocks=8, pages_per_block=4, planes=2)
        assert [g.plane_of_block(b) for b in range(4)] == [0, 1, 0, 1]
        assert g.plane_of_page(g.page_address(3, 2)) == 1
        assert g.plane_blocks(0) == [0, 2, 4, 6]
        assert g.plane_blocks(1) == [1, 3, 5, 7]

    def test_plane_bounds_checked(self):
        g = NandGeometry(blocks=4, pages_per_block=4, planes=2)
        with pytest.raises(ConfigurationError):
            g.plane_of_block(4)
        with pytest.raises(ConfigurationError):
            g.plane_blocks(2)
        with pytest.raises(ConfigurationError):
            NandGeometry(planes=0)

    def test_single_plane_geometry(self):
        g = NandGeometry(blocks=4, pages_per_block=4, planes=1)
        assert all(g.plane_of_block(b) == 0 for b in range(4))
