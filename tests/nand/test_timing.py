"""NAND timing model tests."""

import numpy as np
import pytest

from repro.nand.ispp import IsppAlgorithm, IsppEngine
from repro.nand.timing import NandTimingModel
from repro.params import NandTimingParams


@pytest.fixture()
def sv_result(rng):
    engine = IsppEngine(rng=rng)
    return engine.program_page(rng.integers(0, 4, 8192), IsppAlgorithm.SV)


class TestTimingModel:
    def test_program_decomposition(self, sv_result):
        model = NandTimingModel()
        timing = model.program_timing(sv_result)
        p = model.params
        assert timing.pulse_time_s == pytest.approx(
            sv_result.pulses * (p.t_pulse_setup + p.t_program_pulse)
        )
        assert timing.verify_time_s == pytest.approx(
            sv_result.verify_ops * p.t_verify
        )
        assert timing.total_s == pytest.approx(
            timing.pulse_time_s + timing.verify_time_s + timing.overhead_s
        )

    def test_sv_program_time_in_expected_band(self, sv_result):
        timing = NandTimingModel().program_timing(sv_result)
        # Calibrated ISPP-SV program time: several hundred microseconds.
        assert 0.4e-3 < timing.total_s < 1.2e-3

    def test_dv_program_time_near_paper_value(self, rng):
        engine = IsppEngine(rng=rng)
        result = engine.program_page(rng.integers(0, 4, 8192), IsppAlgorithm.DV)
        timing = NandTimingModel().program_timing(result)
        # Paper quotes ~1.5 ms for the ISPP-DV program.
        assert 1.0e-3 < timing.total_s < 1.8e-3

    def test_preverify_charged_separately(self, rng):
        engine = IsppEngine(rng=rng)
        result = engine.program_page(rng.integers(0, 4, 4096), IsppAlgorithm.DV)
        params = NandTimingParams()
        timing = NandTimingModel(params).program_timing(result)
        expected = (
            result.verify_ops * params.t_verify
            + result.preverify_ops * params.t_preverify
        )
        assert timing.verify_time_s == pytest.approx(expected)

    def test_read_and_erase_times(self):
        model = NandTimingModel()
        assert model.read_time_s() == pytest.approx(75e-6)
        assert model.erase_time_s() == pytest.approx(2.5e-3)

    def test_invalid_params(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            NandTimingParams(t_verify=0)
