"""NAND timing model tests."""

import numpy as np
import pytest

from repro.nand.ispp import IsppAlgorithm, IsppEngine
from repro.nand.timing import NandTimingModel
from repro.params import NandTimingParams


@pytest.fixture()
def sv_result(rng):
    engine = IsppEngine(rng=rng)
    return engine.program_page(rng.integers(0, 4, 8192), IsppAlgorithm.SV)


class TestTimingModel:
    def test_program_decomposition(self, sv_result):
        model = NandTimingModel()
        timing = model.program_timing(sv_result)
        p = model.params
        assert timing.pulse_time_s == pytest.approx(
            sv_result.pulses * (p.t_pulse_setup + p.t_program_pulse)
        )
        assert timing.verify_time_s == pytest.approx(
            sv_result.verify_ops * p.t_verify
        )
        assert timing.total_s == pytest.approx(
            timing.pulse_time_s + timing.verify_time_s + timing.overhead_s
        )

    def test_sv_program_time_in_expected_band(self, sv_result):
        timing = NandTimingModel().program_timing(sv_result)
        # Calibrated ISPP-SV program time: several hundred microseconds.
        assert 0.4e-3 < timing.total_s < 1.2e-3

    def test_dv_program_time_near_paper_value(self, rng):
        engine = IsppEngine(rng=rng)
        result = engine.program_page(rng.integers(0, 4, 8192), IsppAlgorithm.DV)
        timing = NandTimingModel().program_timing(result)
        # Paper quotes ~1.5 ms for the ISPP-DV program.
        assert 1.0e-3 < timing.total_s < 1.8e-3

    def test_preverify_charged_separately(self, rng):
        engine = IsppEngine(rng=rng)
        result = engine.program_page(rng.integers(0, 4, 4096), IsppAlgorithm.DV)
        params = NandTimingParams()
        timing = NandTimingModel(params).program_timing(result)
        expected = (
            result.verify_ops * params.t_verify
            + result.preverify_ops * params.t_preverify
        )
        assert timing.verify_time_s == pytest.approx(expected)

    def test_read_and_erase_times(self):
        model = NandTimingModel()
        assert model.read_time_s() == pytest.approx(75e-6)
        assert model.erase_time_s() == pytest.approx(2.5e-3)

    def test_invalid_params(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            NandTimingParams(t_verify=0)


class TestCommandPhases:
    def test_read_phase_decomposition(self):
        from repro.nand.timing import PhaseResource

        phases = NandTimingModel.read_phases(
            75e-6, 10e-6, 160e-6, decode_hold_s=106e-6
        )
        assert [p.resource for p in phases] == [
            PhaseResource.PLANE, PhaseResource.CHANNEL, PhaseResource.ECC,
        ]
        assert phases[0].duration_s == pytest.approx(75e-6)
        assert phases[2].occupancy_s == pytest.approx(106e-6)
        # Hold is clamped to the duration.
        clamped = NandTimingModel.read_phases(
            75e-6, 10e-6, 50e-6, decode_hold_s=106e-6
        )
        assert clamped[2].occupancy_s == pytest.approx(50e-6)

    def test_raw_read_drops_the_ecc_phase(self):
        from repro.nand.timing import PhaseResource

        phases = NandTimingModel.read_phases(75e-6, 10e-6)
        assert [p.resource for p in phases] == [
            PhaseResource.PLANE, PhaseResource.CHANNEL,
        ]

    def test_program_phase_decomposition(self):
        from repro.nand.timing import PhaseResource

        phases = NandTimingModel.program_phases(
            600e-6, 10e-6, 52e-6, encode_hold_s=51e-6
        )
        assert [p.resource for p in phases] == [
            PhaseResource.ECC, PhaseResource.CHANNEL, PhaseResource.PLANE,
        ]
        assert phases[0].occupancy_s == pytest.approx(51e-6)

    def test_erase_phase_and_cache_busy(self):
        from repro.nand.timing import PhaseResource

        (phase,) = NandTimingModel.erase_phases(2.5e-3)
        assert phase.resource is PhaseResource.PLANE
        assert NandTimingModel().cache_busy_s() == pytest.approx(3e-6)

    def test_invalid_phase_rejected(self):
        from repro.errors import SimulationError
        from repro.nand.timing import CommandPhase, PhaseResource

        with pytest.raises(SimulationError):
            CommandPhase(PhaseResource.PLANE, -1.0)
        with pytest.raises(SimulationError):
            CommandPhase(PhaseResource.ECC, 1e-6, hold_s=2e-6)
