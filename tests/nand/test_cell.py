"""Compact cell model tests (the Fig. 4 physics)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.cell import CellParams, ispp_staircase, pulse_update


class TestPulseUpdate:
    def test_strong_overdrive_tracks_asymptote(self):
        vth = np.array([0.0])
        out = pulse_update(vth, np.array([20.0]), np.array([14.0]), softness=0.1)
        assert out[0] == pytest.approx(6.0, abs=0.05)

    def test_below_onset_barely_moves(self):
        vth = np.array([0.0])
        out = pulse_update(vth, np.array([10.0]), np.array([14.0]), softness=0.5)
        assert out[0] < 0.01

    def test_monotone_non_decreasing(self):
        vth = np.linspace(-4, 4, 50)
        out = pulse_update(vth, np.full(50, 16.0), np.full(50, 14.0), 0.3)
        assert np.all(out >= vth)

    def test_numerical_stability_extreme_overdrive(self):
        vth = np.array([-100.0])
        out = pulse_update(vth, np.array([25.0]), np.array([14.0]), 0.5)
        assert np.isfinite(out).all()


class TestStaircase:
    def test_steady_state_slope_equals_delta(self):
        params = CellParams(onset=16.0, softness=0.3, vth_initial=-4.0)
        vcg, vth = ispp_staircase(params, 10.0, 26.0, 1.0)
        # Once well past onset, consecutive pulses advance by exactly delta.
        steps = np.diff(vth[-5:])
        assert np.allclose(steps, 1.0, atol=1e-3)

    def test_plateau_before_onset(self):
        params = CellParams(onset=18.0, softness=0.3, vth_initial=-4.0)
        _, vth = ispp_staircase(params, 6.0, 24.0, 1.0)
        assert vth[0] == pytest.approx(-4.0, abs=0.05)

    def test_vcg_axis(self):
        params = CellParams()
        vcg, vth = ispp_staircase(params, 6.0, 24.0, 1.0)
        assert vcg[0] == 6.0
        assert vcg[-1] == 24.0
        assert len(vcg) == len(vth) == 19

    def test_monotone_trace(self):
        params = CellParams(onset=15.0, softness=0.5, vth_initial=-3.0)
        _, vth = ispp_staircase(params, 10.0, 22.0, 0.5)
        assert np.all(np.diff(vth) >= -1e-12)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ispp_staircase(CellParams(), 10.0, 20.0, 0.0)
        with pytest.raises(ConfigurationError):
            CellParams(softness=0.0)
