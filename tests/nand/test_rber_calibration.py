"""Monte-Carlo vs canonical RBER calibration (the Fig. 5 cross-check).

The physics-based Monte-Carlo and the canonical analytic lifetime model
are independent paths to RBER(N, algorithm); they must agree within a
small factor across the lifetime for both program algorithms, and the MC
must reproduce the qualitative Fig. 5 statements (DV below SV, growth
with cycling).
"""

import math

import numpy as np
import pytest

from repro.nand.ispp import IsppAlgorithm
from repro.nand.program import PageProgrammer
from repro.nand.rber import LifetimeRberModel, MonteCarloRber

#: Maximum tolerated |log10(MC / canonical)| — a factor of ~3.5.
TOLERANCE_DECADES = 0.55


@pytest.fixture(scope="module")
def mc():
    return MonteCarloRber(PageProgrammer(rng=np.random.default_rng(20120312)))


@pytest.fixture(scope="module")
def canonical():
    return LifetimeRberModel()


class TestCalibration:
    @pytest.mark.parametrize("pe_cycles", [0.0, 1e2, 1e4, 1e5])
    @pytest.mark.parametrize("algorithm", list(IsppAlgorithm))
    def test_mc_tracks_canonical(self, mc, canonical, pe_cycles, algorithm):
        estimate = mc.estimate(pe_cycles, algorithm, n_cells=16384, pages=2)
        expected = canonical.rber(algorithm, pe_cycles)
        deviation = abs(math.log10(estimate.rber) - math.log10(expected))
        assert deviation <= TOLERANCE_DECADES, (
            f"{algorithm.value} at N={pe_cycles:g}: MC {estimate.rber:.2e} vs "
            f"canonical {expected:.2e} ({deviation:.2f} decades)"
        )

    def test_dv_always_better_than_sv(self, mc):
        for pe_cycles in (0.0, 1e4, 1e5):
            sv = mc.estimate(pe_cycles, IsppAlgorithm.SV).rber
            dv = mc.estimate(pe_cycles, IsppAlgorithm.DV).rber
            assert dv < sv

    def test_rber_grows_with_cycling(self, mc):
        fresh = mc.estimate(0.0, IsppAlgorithm.SV).rber
        aged = mc.estimate(1e5, IsppAlgorithm.SV).rber
        assert aged > 10 * fresh

    def test_estimate_structure(self, mc):
        est = mc.estimate(1e4, IsppAlgorithm.SV)
        assert est.rber == pytest.approx(est.tail_rber + est.outlier_rber)
        assert est.cells == 2 * 16384
        assert all(s > 0 for s in est.level_sigmas)

    def test_empirical_matches_analytic_at_high_rber(self, mc, canonical):
        # At end of life the SV RBER is ~1e-3: direct counting is viable.
        empirical = mc.empirical(1e5, IsppAlgorithm.SV, n_cells=16384, pages=4)
        expected = canonical.rber_sv(1e5)
        assert empirical == pytest.approx(expected, rel=3.0)
