"""Endurance/aging model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.nand.aging import AgingModel, AgingParams


class TestAgingModel:
    def test_fresh_device_floor(self):
        model = AgingModel()
        assert model.sigma_instability(0.0) == pytest.approx(
            model.params.sigma_fresh
        )
        assert model.onset_shift(0.0) == 0.0
        assert model.granularity_growth(0.0) == 1.0

    def test_sigma_monotone_in_cycles(self):
        model = AgingModel()
        values = [model.sigma_instability(n) for n in (0, 1e2, 1e4, 1e5)]
        assert values == sorted(values)

    def test_onset_shift_negative_and_log_scaled(self):
        model = AgingModel()
        shift_1e2 = model.onset_shift(1e2)
        shift_1e4 = model.onset_shift(1e4)
        assert shift_1e4 < shift_1e2 < 0.0
        assert shift_1e4 == pytest.approx(2 * shift_1e2, rel=1e-6)

    def test_granularity_growth_monotone(self):
        model = AgingModel()
        values = [model.granularity_growth(n) for n in (0, 1e3, 1e4, 1e5)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(
            1.0 + model.params.granularity_growth_coeff, rel=1e-6
        )

    def test_negative_cycles_rejected(self):
        model = AgingModel()
        with pytest.raises(ConfigurationError):
            model.sigma_instability(-1)
        with pytest.raises(ConfigurationError):
            model.onset_shift(-1)
        with pytest.raises(ConfigurationError):
            model.granularity_growth(-1)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            AgingParams(sigma_coeff=-0.1)
        with pytest.raises(ConfigurationError):
            AgingParams(n_ref=0)
        with pytest.raises(ConfigurationError):
            AgingParams(granularity_growth_coeff=-1)
