"""Lifetime RBER model tests — Fig. 5 anchors."""

import pytest

from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm
from repro.nand.rber import LifetimeRberModel


class TestLifetimeModel:
    @pytest.fixture(scope="class")
    def model(self):
        return LifetimeRberModel()

    def test_fresh_values(self, model):
        assert model.rber_sv(0.0) == pytest.approx(1e-5)
        assert model.rber_dv(0.0) == pytest.approx(8e-7)

    def test_dv_is_one_order_below_sv(self, model):
        for n in (0, 1e2, 1e4, 1e5):
            assert model.rber_sv(n) / model.rber_dv(n) == pytest.approx(12.5)

    def test_rated_endurance_hits_t_max_exactly(self, model):
        assert model.required_t(IsppAlgorithm.SV, model.n_ref) == 65

    def test_dv_end_of_life_t(self, model):
        assert model.required_t(IsppAlgorithm.DV, model.n_ref) == 14

    def test_fresh_required_t(self, model):
        assert model.required_t(IsppAlgorithm.DV, 0.0) == 3   # paper tMIN
        assert model.required_t(IsppAlgorithm.SV, 0.0) == 6

    def test_monotone_in_cycles(self, model):
        values = [model.rber_sv(n) for n in (0, 10, 1e3, 1e5, 1e6)]
        assert values == sorted(values)

    def test_algorithm_dispatch(self, model):
        assert model.rber(IsppAlgorithm.SV, 1e4) == model.rber_sv(1e4)
        assert model.rber(IsppAlgorithm.DV, 1e4) == model.rber_dv(1e4)

    def test_lifetime_grid(self, model):
        grid = model.lifetime_grid(points=10)
        assert len(grid) == 10
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(model.n_ref)

    def test_negative_cycles_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.rber_sv(-1)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LifetimeRberModel(floor_sv=0)
        with pytest.raises(ConfigurationError):
            LifetimeRberModel(dv_ratio=0.5)
