"""Data-retention model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm
from repro.nand.program import PageProgrammer
from repro.nand.rber import MonteCarloRber
from repro.nand.retention import RetentionModel, RetentionParams


class TestRetentionModel:
    def test_no_shift_before_onset(self):
        model = RetentionModel()
        assert model.mean_shift(0.5) == 0.0
        assert model.sigma(0.5) == 0.0

    def test_charge_loss_is_downward_and_log_time(self):
        model = RetentionModel()
        at_10h = model.mean_shift(10.0)
        at_1000h = model.mean_shift(1000.0)
        assert at_10h < 0
        assert at_1000h == pytest.approx(3 * at_10h, rel=1e-6)

    def test_cycling_accelerates_loss(self):
        model = RetentionModel()
        fresh = model.mean_shift(1000.0, pe_cycles=0)
        worn = model.mean_shift(1000.0, pe_cycles=1e5)
        assert worn < fresh  # more negative
        assert worn / fresh == pytest.approx(2 ** 0.62, rel=0.01)

    def test_sigma_grows_with_time(self):
        model = RetentionModel()
        values = [model.sigma(h) for h in (1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values)

    def test_shift_sample_statistics(self, rng):
        model = RetentionModel()
        shifts = model.shift_sample(100_000, 1000.0, 1e4, rng)
        assert shifts.mean() == pytest.approx(
            model.mean_shift(1000.0, 1e4), abs=2e-3
        )
        assert shifts.std() == pytest.approx(model.sigma(1000.0, 1e4), rel=0.05)

    def test_invalid_inputs(self):
        model = RetentionModel()
        with pytest.raises(ConfigurationError):
            model.mean_shift(-1.0)
        with pytest.raises(ConfigurationError):
            model.sigma(10.0, pe_cycles=-1)
        with pytest.raises(ConfigurationError):
            RetentionParams(mean_loss_per_decade=-0.1)


class TestRetentionRberImpact:
    @pytest.fixture(scope="class")
    def mc(self):
        return MonteCarloRber(PageProgrammer(rng=np.random.default_rng(2003)))

    def test_retention_degrades_rber(self, mc):
        baseline = mc.estimate(1e4, IsppAlgorithm.SV, 8192).rber
        stored = mc.estimate(1e4, IsppAlgorithm.SV, 8192, retention_h=5000.0).rber
        assert stored > 2 * baseline

    def test_dv_retains_headroom(self, mc):
        """The cross-layer consequence: ISPP-DV after long storage still
        beats ISPP-SV after the same storage."""
        sv = mc.estimate(1e4, IsppAlgorithm.SV, 8192, retention_h=5000.0).rber
        dv = mc.estimate(1e4, IsppAlgorithm.DV, 8192, retention_h=5000.0).rber
        assert dv < sv
