"""Cell-to-cell interference tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nand.cci import CciModel, CciParams


class TestCci:
    def test_shift_is_non_negative(self, rng):
        model = CciModel(rng=rng)
        vth = rng.normal(1.0, 0.1, 1000)
        deltas = rng.uniform(0, 4, 1000)
        shifted = model.apply(vth, deltas)
        assert np.all(shifted >= vth)

    def test_x_coupling_deterministic(self, rng):
        model = CciModel(CciParams(gamma_x=0.1, gamma_y=0.0, enable_y=False), rng)
        vth = np.zeros(3)
        deltas = np.array([0.0, 2.0, 0.0])
        shifted = model.apply(vth, deltas)
        # Middle cell has no aggressor swing next to it except itself;
        # neighbours each receive gamma_x * 2.0.
        assert shifted[0] == pytest.approx(0.2)
        assert shifted[2] == pytest.approx(0.2)
        assert shifted[1] == pytest.approx(0.0)

    def test_zero_coupling_identity(self, rng):
        model = CciModel(CciParams(gamma_x=0.0, gamma_y=0.0, enable_y=False), rng)
        vth = rng.normal(0, 1, 100)
        assert np.array_equal(model.apply(vth, np.ones(100)), vth)

    def test_mean_shift_scales_with_gamma(self, rng):
        deltas = np.full(10_000, 3.0)
        vth = np.zeros(10_000)
        weak = CciModel(CciParams(gamma_x=0.005, gamma_y=0.01), np.random.default_rng(1))
        strong = CciModel(CciParams(gamma_x=0.01, gamma_y=0.02), np.random.default_rng(1))
        weak_shift = (weak.apply(vth, deltas) - vth).mean()
        strong_shift = (strong.apply(vth, deltas) - vth).mean()
        assert strong_shift == pytest.approx(2 * weak_shift, rel=0.05)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CciParams(gamma_x=0.6)
        with pytest.raises(ConfigurationError):
            CciParams(gamma_y=-0.1)
