"""Property-based ISPP invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand.ispp import IsppAlgorithm, IsppEngine

level_arrays = st.lists(
    st.integers(min_value=0, max_value=3), min_size=64, max_size=256
)
cycle_counts = st.sampled_from([0.0, 1e2, 1e4, 1e5])
algorithms = st.sampled_from(list(IsppAlgorithm))


def make_engine(seed: int) -> IsppEngine:
    return IsppEngine(rng=np.random.default_rng(seed))


class TestIsppInvariants:
    @given(levels=level_arrays, algorithm=algorithms, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_programming_never_lowers_vth(self, levels, algorithm, seed):
        engine = make_engine(seed)
        result = engine.program_page(np.array(levels), algorithm)
        assert np.all(result.deltas >= -1e-9)

    @given(levels=level_arrays, algorithm=algorithms,
           pe=cycle_counts, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_inhibited_cells_meet_verify(self, levels, algorithm, pe, seed):
        engine = make_engine(seed)
        targets = np.array(levels)
        result = engine.program_page(targets, algorithm, pe)
        vfy = np.array([np.nan, 0.8, 2.0, 3.2])
        reached = targets > 0
        if result.failed_cells == 0 and reached.any():
            assert np.all(result.vth[reached] >= vfy[targets[reached]] - 1e-9)

    @given(levels=level_arrays, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_erased_cells_never_programmed(self, levels, seed):
        engine = make_engine(seed)
        targets = np.array(levels)
        result = engine.program_page(targets, IsppAlgorithm.DV)
        erased = targets == 0
        if erased.any():
            assert np.all(np.abs(result.deltas[erased]) < 1e-12)

    @given(levels=level_arrays, algorithm=algorithms, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_activity_bookkeeping_consistent(self, levels, algorithm, seed):
        engine = make_engine(seed)
        result = engine.program_page(np.array(levels), algorithm)
        assert result.pulses == len(result.pulse_vpp)
        assert result.verify_ops == int(result.verifies_per_pulse.sum())
        assert result.preverify_ops == int(result.preverifies_per_pulse.sum())
        if algorithm is IsppAlgorithm.SV:
            assert result.preverify_ops == 0
        assert np.all(np.diff(result.active_cells_per_pulse) <= 0)
