"""Command-level NAND device tests."""

import numpy as np
import pytest

from repro.errors import NandOperationError
from repro.nand.device import NandFlashDevice
from repro.nand.geometry import NandGeometry
from repro.nand.ispp import IsppAlgorithm


@pytest.fixture()
def device(rng):
    return NandFlashDevice(NandGeometry(blocks=4, pages_per_block=4), rng=rng)


class TestDevice:
    def test_algorithm_register(self, device):
        assert device.program_algorithm is IsppAlgorithm.SV
        device.select_program_algorithm(IsppAlgorithm.DV)
        assert device.program_algorithm is IsppAlgorithm.DV
        with pytest.raises(NandOperationError):
            device.select_program_algorithm("not-an-algorithm")

    def test_program_reports_algorithm_and_latency(self, device):
        report = device.program_page(0, 0, bytes(4096))
        assert report.algorithm is IsppAlgorithm.SV
        assert 0.3e-3 < report.latency_s < 2.5e-3

    def test_dv_program_slower(self, device):
        sv = device.program_page(0, 0, bytes(4096))
        device.select_program_algorithm(IsppAlgorithm.DV)
        dv = device.program_page(0, 1, bytes(4096))
        assert dv.latency_s > 1.3 * sv.latency_s

    def test_read_injects_errors_by_stored_algorithm(self, rng):
        device = NandFlashDevice(
            NandGeometry(blocks=2, pages_per_block=2), rng=rng
        )
        # Age the block heavily so the RBER is measurable.
        for _ in range(50):
            device.erase_block(0)
        # Bypass: set wear directly for speed.
        device.array._wear[0] = 100_000
        data = bytes(4096)
        device.program_page(0, 0, data)
        read, report = device.read_page(0, 0)
        errors = sum(bin(a ^ b).count("1") for a, b in zip(read, data))
        expected = report.rber * len(data) * 8
        assert report.rber == pytest.approx(device.rber_model.rber_sv(100_000))
        assert errors == pytest.approx(expected, rel=0.8, abs=10)

    def test_unwritten_page_reads_clean(self, device):
        data, report = device.read_page(1, 1)
        assert data == bytes([0xFF]) * device.geometry.page_bytes
        assert report.rber == 0.0

    def test_erase_resets_page_metadata(self, device):
        device.program_page(0, 0, b"payload")
        device.erase_block(0)
        data, report = device.read_page(0, 0)
        assert report.rber == 0.0
        assert report.algorithm is None

    def test_timing_cache_reuse(self, device):
        t1 = device.program_time_s(IsppAlgorithm.SV, 0)
        t2 = device.program_time_s(IsppAlgorithm.SV, 0)
        assert t1 == t2
        assert len(device._timing_cache) == 1
        device.program_time_s(IsppAlgorithm.SV, 5e4)  # new decade
        assert len(device._timing_cache) == 2

    def test_rber_now(self, device):
        fresh = device.rber_now(0)
        device.array._wear[0] = 100_000
        assert device.rber_now(0) > fresh
