"""Batch-vs-scalar device equivalence (ISSUE 2 satellite coverage).

* ``read_pages`` with RBER = 0 is byte-identical to serial ``read_page``;
* with RBER > 0, injected error counts per page are binomially
  consistent with the reported rate;
* wear and read-disturb counters advance identically in both paths,
  including the reset on erase.
"""

import numpy as np
import pytest

from repro.nand.device import NandFlashDevice, ReadDisturbParams
from repro.nand.geometry import NandGeometry
from repro.nand.ispp import IsppAlgorithm
from repro.nand.rber import LifetimeRberModel


class _ZeroRber(LifetimeRberModel):
    """Deterministic device: reads never inject errors."""

    def rber(self, algorithm, pe_cycles):
        return 0.0

    def rber_batch(self, pe_cycles, dv=None):
        return np.zeros(np.asarray(pe_cycles, dtype=float).shape)


def _device(rng, zero_rber=False, **kwargs):
    geometry = kwargs.pop("geometry", NandGeometry(blocks=4, pages_per_block=8))
    if zero_rber:
        kwargs["rber_model"] = _ZeroRber()
    return NandFlashDevice(geometry, rng=rng, **kwargs)


class TestZeroRberByteIdentity:
    def test_batch_read_identical_to_serial(self, rng):
        batched = _device(np.random.default_rng(7), zero_rber=True)
        serial = _device(np.random.default_rng(7), zero_rber=True)
        payloads = [np.random.default_rng(i).bytes(4320) for i in range(6)]
        addresses = [(0, p) for p in range(4)] + [(1, 0), (1, 1)]
        for device in (batched, serial):
            device.program_pages(addresses, payloads)
        raw, batch = batched.read_pages(addresses)
        for row, (block, page), payload in zip(raw, addresses, payloads):
            data, report = serial.read_page(block, page)
            assert row.tobytes() == data == payload
            assert report.rber == 0.0
        assert all(r.rber == 0.0 for r in batch.reports())

    def test_batch_program_identical_to_serial(self, rng):
        batched = _device(np.random.default_rng(9), zero_rber=True)
        serial = _device(np.random.default_rng(9), zero_rber=True)
        payloads = [bytes([i]) * 4320 for i in range(5)]
        addresses = [(2, p) for p in range(5)]
        batch_reports = batched.program_pages(addresses, payloads)
        serial_reports = [
            serial.program_page(b, p, d)
            for (b, p), d in zip(addresses, payloads)
        ]
        assert batch_reports == serial_reports
        for block, page in addresses:
            assert (
                batched.array.read_page(block, page)
                == serial.array.read_page(block, page)
            )


class TestErrorInjectionConsistency:
    def test_error_counts_binomially_consistent(self):
        rng = np.random.default_rng(11)
        geometry = NandGeometry(blocks=2, pages_per_block=32)
        device = NandFlashDevice(geometry, rng=rng)
        device.array._wear[:] = 100_000  # end of life: RBER ~1e-3
        addresses = [(0, p) for p in range(32)]
        payload = bytes(4320)
        device.program_pages(addresses, [payload] * 32)
        counts = []
        rbers = []
        for _ in range(8):
            raw, batch = device.read_pages(addresses)
            errors = np.unpackbits(raw, axis=1).sum(axis=1)
            counts.extend(errors.tolist())
            rbers.extend(report.rber for report in batch.reports())
        n_bits = 4320 * 8
        expected = np.mean(rbers) * n_bits
        counts = np.asarray(counts, dtype=float)
        assert counts.mean() == pytest.approx(expected, rel=0.15)
        # Binomial variance check (loose; 256 samples).
        assert counts.var() == pytest.approx(expected, rel=0.6)

    def test_batch_reports_match_scalar_rber(self):
        """Reported per-page RBER is identical between the two paths."""
        batched = _device(np.random.default_rng(3))
        serial = _device(np.random.default_rng(3))
        for device in (batched, serial):
            device.array._wear[:] = 10_000
            device.select_program_algorithm(IsppAlgorithm.DV)
            device.program_pages(
                [(0, 0), (0, 1), (1, 0)], [bytes(4096)] * 3
            )
        addresses = [(0, 0), (0, 1), (0, 0), (1, 0)]
        _, batch = batched.read_pages(addresses)
        serial_reports = [serial.read_page(b, p)[1] for b, p in addresses]
        for batch_report, serial_report in zip(batch.reports(), serial_reports):
            assert batch_report.rber == pytest.approx(
                serial_report.rber, rel=1e-12
            )
            assert batch_report.algorithm is serial_report.algorithm


class TestCounterEquivalence:
    def test_wear_and_disturb_counters_advance_identically(self):
        batched = _device(np.random.default_rng(5), zero_rber=True)
        serial = _device(np.random.default_rng(5), zero_rber=True)
        addresses = [(0, 0), (0, 1), (1, 0), (0, 0)]
        for device in (batched, serial):
            device.program_pages([(0, 0), (0, 1), (1, 0)], [b"x"] * 3)
        batched.read_pages(addresses)
        for block, page in addresses:
            serial.read_page(block, page)
        for block in range(2):
            assert (
                batched.array.reads_since_erase(block)
                == serial.array.reads_since_erase(block)
            )
            assert batched.array.wear(block) == serial.array.wear(block)

    def test_erase_resets_counters_in_both_paths(self):
        batched = _device(np.random.default_rng(6), zero_rber=True)
        serial = _device(np.random.default_rng(6), zero_rber=True)
        for device in (batched, serial):
            device.program_pages([(0, 0)], [b"x"])
        batched.read_pages([(0, 0)] * 5)
        for _ in range(5):
            serial.read_page(0, 0)
        for device in (batched, serial):
            device.erase_block(0)
        assert batched.array.reads_since_erase(0) == 0
        assert serial.array.reads_since_erase(0) == 0
        assert batched.array.wear(0) == serial.array.wear(0) == 1
        # Metadata gone: next read is a clean erased-page read.
        _, batch = batched.read_pages([(0, 0)])
        report = batch.report(0)
        assert report.rber == 0.0 and report.algorithm is None
        _, report = serial.read_page(0, 0)
        assert report.rber == 0.0 and report.algorithm is None

    def test_disturb_growth_within_batch_matches_serial(self):
        """The i-th same-block read in a batch sees the serial counter."""
        disturb = ReadDisturbParams(coefficient=1.0, reads_ref=10.0)
        batched = _device(np.random.default_rng(8), disturb=disturb)
        serial = _device(np.random.default_rng(8), disturb=disturb)
        for device in (batched, serial):
            device.array._wear[:] = 10_000
            device.program_pages([(0, 0), (0, 1)], [bytes(64)] * 2)
        addresses = [(0, 0), (0, 1), (0, 0), (0, 1)]
        _, batch = batched.read_pages(addresses)
        serial_reports = [serial.read_page(b, p)[1] for b, p in addresses]
        batch_rbers = [r.rber for r in batch.reports()]
        serial_rbers = [r.rber for r in serial_reports]
        assert batch_rbers == pytest.approx(serial_rbers, rel=1e-12)
        # Growth is strictly monotonic with the pre-read counter.
        assert batch_rbers[2] > batch_rbers[0]
        assert batch_rbers[3] > batch_rbers[1]
