"""PageProgrammer integration tests."""

import numpy as np
import pytest

from repro.nand.ispp import IsppAlgorithm
from repro.nand.program import PageProgrammer
from repro.workloads.patterns import level_pattern_page


class TestDataMapping:
    def test_levels_from_known_bytes(self, programmer):
        # 0xAA = bit pairs (1,0) -> L1; 0x00 -> L2; 0x55 -> L3; 0xFF -> L0.
        levels = programmer.levels_from_page(bytes([0xAA, 0x00, 0x55, 0xFF]))
        assert levels[:4].tolist() == [1, 1, 1, 1]
        assert levels[4:8].tolist() == [2, 2, 2, 2]
        assert levels[8:12].tolist() == [3, 3, 3, 3]
        assert levels[12:16].tolist() == [0, 0, 0, 0]

    def test_pattern_page_maps_uniformly(self, programmer):
        for level in range(4):
            page = level_pattern_page(level, 64)
            levels = programmer.levels_from_page(page)
            assert np.all(levels == level)

    def test_empty_page_rejected(self, programmer):
        from repro.errors import NandOperationError

        with pytest.raises(NandOperationError):
            programmer.levels_from_page(b"")

    def test_uniform_pattern_levels(self, programmer):
        levels = programmer.uniform_pattern_levels(2, 100)
        assert np.all(levels == 2)
        from repro.errors import NandOperationError

        with pytest.raises(NandOperationError):
            programmer.uniform_pattern_levels(5, 10)


class TestProgramming:
    def test_program_page_produces_timing(self, programmer):
        outcome = programmer.program_random_page(4096, IsppAlgorithm.SV)
        assert outcome.timing.total_s > 0
        assert outcome.timing.pulses == outcome.ispp.pulses
        assert outcome.cells == 4096

    def test_dv_slower_than_sv(self, programmer):
        sv = programmer.program_random_page(8192, IsppAlgorithm.SV)
        dv = programmer.program_random_page(8192, IsppAlgorithm.DV)
        ratio = dv.timing.total_s / sv.timing.total_s
        assert 1.4 < ratio < 2.3  # the write-loss band of Fig. 9

    def test_cci_can_be_disabled(self, programmer):
        targets = programmer.uniform_pattern_levels(2, 2048)
        with_cci = programmer.program_levels(targets, apply_cci=True)
        without = programmer.program_levels(targets, apply_cci=False)
        assert with_cci.vth.mean() > without.vth.mean()

    def test_read_vth_adds_noise(self, programmer):
        outcome = programmer.program_random_page(4096, IsppAlgorithm.SV)
        read1 = programmer.read_vth(outcome)
        read2 = programmer.read_vth(outcome)
        assert not np.array_equal(read1, read2)

    def test_fresh_page_has_few_bit_errors(self, programmer):
        outcome = programmer.program_random_page(16384, IsppAlgorithm.SV, 0.0)
        errors = programmer.count_bit_errors(outcome)
        # 32768 bits at RBER ~1e-5: expect 0-3 errors.
        assert errors <= 5

    def test_aged_page_has_more_errors(self):
        programmer = PageProgrammer(rng=np.random.default_rng(77))
        fresh = sum(
            programmer.count_bit_errors(
                programmer.program_random_page(16384, IsppAlgorithm.SV, 0.0)
            )
            for _ in range(3)
        )
        aged = sum(
            programmer.count_bit_errors(
                programmer.program_random_page(16384, IsppAlgorithm.SV, 1e5)
            )
            for _ in range(3)
        )
        assert aged > fresh
