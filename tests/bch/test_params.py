"""BCH code design tests."""

import pytest

from repro.bch.params import (
    design_code,
    generator_polynomial,
    minimum_field_degree,
)
from repro.errors import CodeDesignError
from repro.gf.poly2 import poly2_deg, poly2_eval_in_field, poly2_mod


class TestGeneratorPolynomial:
    def test_known_bch_15_7_2(self):
        # Classic BCH(15, 7) double-error-correcting code:
        # g(x) = x^8 + x^7 + x^6 + x^4 + 1.
        assert generator_polynomial(4, 2) == 0b111010001

    def test_known_bch_15_5_3(self):
        # BCH(15, 5) t=3: g(x) = x^10 + x^8 + x^5 + x^4 + x^2 + x + 1.
        assert generator_polynomial(4, 3) == 0b10100110111

    def test_generator_has_required_roots(self):
        m, t = 6, 4
        generator = generator_polynomial(m, t)
        from repro.gf.field import get_field

        field = get_field(m)
        for i in range(1, 2 * t + 1):
            assert poly2_eval_in_field(generator, field.alpha_pow(i), field) == 0

    def test_generator_divides_x_n_plus_1(self):
        m, t = 5, 3
        n = (1 << m) - 1
        generator = generator_polynomial(m, t)
        assert poly2_mod((1 << n) | 1, generator) == 0

    def test_degree_at_most_m_times_t(self):
        for m, t in ((8, 5), (10, 12), (16, 20)):
            assert poly2_deg(generator_polynomial(m, t)) <= m * t

    def test_invalid_t_rejected(self):
        with pytest.raises(CodeDesignError):
            generator_polynomial(8, 0)


class TestDesignCode:
    def test_paper_code_dimensions(self):
        spec = design_code(32768, 65)
        assert spec.m == 16
        assert spec.r == 16 * 65 == 1040
        assert spec.n == 33808
        assert spec.parity_bytes == 130
        assert spec.pad_bits == 0
        assert spec.n_stored == spec.n
        assert spec.shortening == spec.n_full - spec.n

    def test_minimum_field_degree_page(self):
        assert minimum_field_degree(32768, 65) == 16
        assert minimum_field_degree(32768, 1) == 16

    def test_small_code_byte_padding(self):
        spec = design_code(64, 3)
        assert spec.pad_bits == 8 * spec.parity_bytes - spec.r
        assert spec.n_stored == spec.k + 8 * spec.parity_bytes

    def test_code_rate(self):
        spec = design_code(32768, 8)
        assert 0.99 < spec.code_rate < 1.0

    def test_infeasible_design_rejected(self):
        # k too large for any supported field.
        with pytest.raises(CodeDesignError):
            design_code(70000, 4)
        # Explicit m too small for the message.
        with pytest.raises(CodeDesignError):
            design_code(32768, 65, m=15)

    def test_invalid_message_length(self):
        with pytest.raises(CodeDesignError):
            design_code(0, 3)

    def test_generator_cached_across_designs(self):
        a = design_code(1024, 8)
        b = design_code(2048, 8)
        # Same m means literally the same generator polynomial object value.
        if a.m == b.m:
            assert a.generator == b.generator
