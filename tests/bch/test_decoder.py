"""Full decoder pipeline tests."""

import pytest

from repro.bch.decoder import BCHDecoder
from repro.bch.encoder import BCHEncoder
from repro.errors import DecodingFailure
from tests.conftest import flip_bits


class TestDecoder:
    def test_clean_word_early_exit(self, small_spec, rng):
        encoder, decoder = BCHEncoder(small_spec), BCHDecoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        result = decoder.decode(encoder.encode_codeword(message))
        assert result.early_exit
        assert result.corrected_bits == 0
        assert result.data == message

    @pytest.mark.parametrize("n_errors", [1, 2, 3])
    def test_corrects_up_to_t(self, small_spec, rng, n_errors):
        encoder, decoder = BCHEncoder(small_spec), BCHDecoder(small_spec)
        for _ in range(5):
            message = rng.bytes(small_spec.k // 8)
            codeword = encoder.encode_codeword(message)
            positions = sorted(
                rng.choice(small_spec.n_stored, n_errors, replace=False).tolist()
            )
            result = decoder.decode(flip_bits(codeword, positions))
            assert result.data == message
            assert result.corrected_bits == n_errors
            assert list(result.error_positions) == positions

    def test_errors_in_parity_only(self, small_spec, rng):
        encoder, decoder = BCHEncoder(small_spec), BCHDecoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        codeword = encoder.encode_codeword(message)
        parity_positions = [small_spec.k + 1, small_spec.k + 9]
        result = decoder.decode(flip_bits(codeword, parity_positions))
        assert result.data == message
        assert result.corrected_bits == 2

    def test_overload_raises_in_strict_mode(self, small_spec, rng):
        encoder, decoder = BCHEncoder(small_spec), BCHDecoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        codeword = encoder.encode_codeword(message)
        failures = 0
        for trial in range(8):
            positions = (
                rng.choice(small_spec.n_stored, small_spec.t + 2, replace=False)
                .tolist()
            )
            try:
                result = decoder.decode(flip_bits(codeword, positions))
            except DecodingFailure:
                failures += 1
            else:
                # Miscorrection is possible beyond t, but the corrected word
                # must then be a *different* valid codeword, not the original.
                assert result.data != message
        assert failures >= 1

    def test_permissive_mode_returns_failure(self, small_spec, rng):
        encoder, decoder = BCHEncoder(small_spec), BCHDecoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        codeword = encoder.encode_codeword(message)
        # Collect one genuine failure (retrying patterns until detection).
        for trial in range(20):
            positions = rng.choice(
                small_spec.n_stored, small_spec.t + 2, replace=False
            ).tolist()
            try:
                decoder.decode(flip_bits(codeword, positions))
            except DecodingFailure:
                result = decoder.decode(flip_bits(codeword, positions), strict=False)
                assert not result.success
                assert result.corrected_bits == 0
                return
        pytest.skip("no detectable overload pattern found (extremely unlikely)")

    def test_wrong_length_rejected(self, small_spec):
        decoder = BCHDecoder(small_spec)
        with pytest.raises(ValueError):
            decoder.decode(bytes(3))

    def test_stats_accumulate(self, small_spec, rng):
        encoder, decoder = BCHEncoder(small_spec), BCHDecoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        codeword = encoder.encode_codeword(message)
        decoder.decode(codeword)
        decoder.decode(flip_bits(codeword, [4, 40]))
        stats = decoder.stats
        assert stats.words_decoded == 2
        assert stats.words_clean == 1
        assert stats.bits_corrected == 2
        assert stats.max_errors_in_word == 2
        assert stats.observed_rber > 0

    def test_page_code_full_capability(self, rng):
        from repro.bch.params import design_code

        spec = design_code(32768, 12)
        encoder, decoder = BCHEncoder(spec), BCHDecoder(spec)
        message = rng.bytes(4096)
        codeword = encoder.encode_codeword(message)
        positions = rng.choice(spec.n_stored, 12, replace=False).tolist()
        result = decoder.decode(flip_bits(codeword, positions))
        assert result.data == message
        assert result.corrected_bits == 12
