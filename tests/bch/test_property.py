"""Property-based BCH round-trip tests (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bch.decoder import BCHDecoder
from repro.bch.encoder import BCHEncoder
from repro.bch.params import design_code
from tests.conftest import flip_bits

#: Shared small code: k = 64 bits, t = 3 (m = 7).
_SPEC = design_code(64, 3)
_ENCODER = BCHEncoder(_SPEC)
_DECODER = BCHDecoder(_SPEC)

messages = st.binary(min_size=8, max_size=8)
position_sets = st.sets(
    st.integers(min_value=0, max_value=_SPEC.n_stored - 1),
    min_size=0, max_size=_SPEC.t,
)


class TestRoundTripProperties:
    @given(message=messages, positions=position_sets)
    @settings(max_examples=250, deadline=None)
    def test_any_message_any_error_pattern_round_trips(self, message, positions):
        codeword = _ENCODER.encode_codeword(message)
        corrupted = flip_bits(codeword, sorted(positions))
        result = _DECODER.decode(corrupted)
        assert result.data == message
        assert result.corrected_bits == len(positions)
        assert set(result.error_positions) == positions

    @given(message=messages)
    @settings(max_examples=100, deadline=None)
    def test_every_codeword_is_valid(self, message):
        assert _ENCODER.is_codeword(_ENCODER.encode_codeword(message))

    @given(a=messages, b=messages)
    @settings(max_examples=100, deadline=None)
    def test_code_linearity(self, a, b):
        xor = bytes(x ^ y for x, y in zip(a, b))
        pa = _ENCODER.parity_int(a)
        pb = _ENCODER.parity_int(b)
        assert _ENCODER.parity_int(xor) == pa ^ pb

    @given(
        message=messages,
        position=st.integers(min_value=0, max_value=_SPEC.n_stored - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_error_never_escapes(self, message, position):
        codeword = _ENCODER.encode_codeword(message)
        corrupted = flip_bits(codeword, [position])
        assert not _ENCODER.is_codeword(corrupted)
        result = _DECODER.decode(corrupted)
        assert result.data == message


class TestMinimumDistanceProperty:
    @given(message=messages, positions=position_sets)
    @settings(max_examples=150, deadline=None)
    def test_corrupted_word_within_t_is_never_a_codeword(self, message, positions):
        if not positions:
            return
        codeword = _ENCODER.encode_codeword(message)
        corrupted = flip_bits(codeword, sorted(positions))
        # d_min >= 2t+1 > t, so no pattern of weight <= t maps a codeword
        # onto another codeword.
        assert not _ENCODER.is_codeword(corrupted)
