"""UBER model tests — anchored to the paper's Fig. 7 checkpoints."""

import math

import pytest

from repro.bch.uber import (
    monte_carlo_uber,
    achieved_uber,
    log10_uber_eq1,
    max_rber_for_t,
    required_t,
    uber_eq1,
    uber_exact,
)
from repro.errors import CodeDesignError


class TestEq1:
    def test_zero_rber(self):
        assert uber_eq1(0.0, 33000, 5) == 0.0
        assert log10_uber_eq1(0.0, 33000, 5) == -math.inf

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            log10_uber_eq1(1.5, 33000, 5)
        with pytest.raises(ValueError):
            log10_uber_eq1(1e-5, 5, 5)

    def test_monotone_decreasing_in_t_on_valid_branch(self):
        rber = 1e-4
        previous = 0.0
        for t in range(10, 40):
            value = log10_uber_eq1(rber, 32768 + 16 * t, t)
            if t > 10:
                assert value < previous
            previous = value

    def test_monotone_increasing_in_rber(self):
        n, t = 32768 + 16 * 8, 8
        values = [log10_uber_eq1(r, n, t) for r in (1e-6, 1e-5, 1e-4)]
        assert values == sorted(values)

    def test_linear_scale_consistency(self):
        n, t = 33000, 10
        assert uber_eq1(1e-4, n, t) == pytest.approx(
            10 ** log10_uber_eq1(1e-4, n, t)
        )


class TestPaperCheckpoints:
    """The exact required-t values of Fig. 7 / 'Fig. ??'."""

    @pytest.mark.parametrize(
        "rber,expected_t",
        [
            (1e-6, 3),      # best case, tMIN = 3
            (2.5e-6, 4),
            (2.75e-4, 27),
            (1e-3, 65),     # ISPP-SV worst case, tMAX = 65
            (8e-5, 14),     # ISPP-DV worst case, tMAX = 14
        ],
    )
    def test_required_t_matches_paper(self, rber, expected_t):
        assert required_t(rber) == expected_t

    def test_required_t_meets_target(self):
        for rber in (1e-6, 1e-5, 1e-4, 5e-4):
            t = required_t(rber)
            assert achieved_uber(rber, t) <= 1e-11

    def test_required_t_minimality(self):
        rber = 1e-4
        t = required_t(rber)
        assert achieved_uber(rber, t - 1) > 1e-11

    def test_unreachable_target_raises(self):
        with pytest.raises(CodeDesignError):
            required_t(5e-2)

    def test_zero_rber_returns_t_min(self):
        assert required_t(0.0, t_min=2) == 2


class TestMaxRber:
    def test_inverse_of_required_t(self):
        for t in (3, 14, 30):
            edge = max_rber_for_t(t)
            assert required_t(edge) <= t
            assert required_t(edge * 1.05) > t
        # t = 65 is the provisioned ceiling: just past its edge nothing fits.
        edge = max_rber_for_t(65)
        assert required_t(edge) <= 65
        with pytest.raises(CodeDesignError):
            required_t(edge * 1.05)

    def test_monotone_in_t(self):
        values = [max_rber_for_t(t) for t in (3, 10, 30, 65)]
        assert values == sorted(values)

    def test_t65_edge_near_1e_minus_3(self):
        assert max_rber_for_t(65) == pytest.approx(1e-3, rel=0.05)


class TestExactTail:
    def test_exact_upper_bounds_eq1_regime(self):
        # Where errors are rare, the (t+1)-term dominates but the exact
        # tail includes the heavier patterns too: exact >= eq1.
        n, t = 32768 + 16 * 6, 6
        rber = 1e-5
        assert uber_exact(rber, n, t) >= uber_eq1(rber, n, t)

    def test_exact_close_to_eq1_when_rare(self):
        n, t = 32768 + 16 * 10, 10
        rber = 1e-5
        ratio = uber_exact(rber, n, t) / uber_eq1(rber, n, t)
        assert 1.0 <= ratio < 2.0

    def test_exact_diverges_at_high_load(self):
        # n*p >> t: Eq. (1) underestimates catastrophically (DESIGN.md note).
        n, t = 32768 + 16 * 6, 6
        rber = 1e-3
        assert uber_exact(rber, n, t) > 1e3 * uber_eq1(rber, n, t)

    def test_zero_rber(self):
        assert uber_exact(0.0, 1000, 2) == 0.0


class TestMonteCarloUber:
    """Process-pool MC fan-out: determinism and statistical sanity."""

    def test_deterministic_across_worker_counts(self):
        kwargs = dict(rber=2e-3, t=6, pages=24, k=2048, seed=11, chunk_pages=6)
        inline = monte_carlo_uber(workers=None, **kwargs)
        pooled = monte_carlo_uber(workers=3, **kwargs)
        assert inline == pooled

    def test_deterministic_across_chunking_runs(self):
        first = monte_carlo_uber(1e-3, 4, pages=16, k=2048, seed=3, chunk_pages=4)
        second = monte_carlo_uber(1e-3, 4, pages=16, k=2048, seed=3, chunk_pages=4)
        assert first == second

    def test_low_stress_recovers_everything(self):
        result = monte_carlo_uber(1e-4, 8, pages=16, k=2048, seed=5)
        assert result.failed_pages == 0
        assert result.corrected_bits == result.injected_bits

    def test_high_stress_fails_pages(self):
        # n*rber far above t: essentially every page is uncorrectable.
        result = monte_carlo_uber(2e-2, 4, pages=8, k=2048, seed=9)
        assert result.failed_pages == result.pages
        assert result.page_failure_rate == 1.0
        assert result.uber == pytest.approx(result.pages * 1.0 / (result.pages * result.n))

    def test_tracks_binomial_tail(self):
        # Stress point near the knee: MC page-failure rate within a loose
        # band of the exact binomial tail.
        t, k = 6, 2048
        result = monte_carlo_uber(3.4e-3, t, pages=96, k=k, seed=17, chunk_pages=24)
        exact = uber_exact(3.4e-3, result.n, t) * result.n
        assert 0.05 < exact < 0.95
        assert abs(result.page_failure_rate - exact) < 0.25

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            monte_carlo_uber(1e-3, 4, pages=0, k=2048)
        with pytest.raises(ValueError):
            monte_carlo_uber(1e-3, 4, pages=8, k=2048, chunk_pages=0)
