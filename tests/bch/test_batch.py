"""Property tests: batch/vectorized kernels agree bit-for-bit with the
scalar reference across capabilities and error weights (0..t+2, i.e.
including uncorrectable words)."""

import numpy as np
import pytest

from repro.bch.decoder import BCHDecoder, DecoderStats
from repro.bch.encoder import BCHEncoder
from repro.bch.codec import AdaptiveBCHCodec
from repro.bch.params import design_code
from repro.errors import DecodingFailure
from tests.conftest import flip_bits

#: (k, t) matrix covering the required t range; page-sized at high t.
SPECS = [(1024, 1), (1024, 3), (8192, 14), (32768, 65)]


def _random_weights(t: int, rng: np.random.Generator, samples: int = 6):
    """Random error weights drawn from 0..t+2 (always includes the ends)."""
    extremes = [0, 1, t, t + 2]
    drawn = rng.integers(0, t + 3, size=samples).tolist()
    return sorted(set(extremes + drawn))


@pytest.mark.parametrize("k,t", SPECS)
class TestBatchAgainstScalar:
    def test_encode_batch_matches_scalar(self, k, t, rng):
        encoder = BCHEncoder(design_code(k, t))
        messages = [rng.bytes(k // 8) for _ in range(5)]
        assert encoder.encode_batch(messages) == [
            encoder.encode(m) for m in messages
        ]
        assert encoder.encode_codeword_batch(messages) == [
            encoder.encode_codeword(m) for m in messages
        ]

    def test_syndromes_vectorized_and_batch_match_reference(self, k, t, rng):
        spec = design_code(k, t)
        encoder = BCHEncoder(spec)
        calc = BCHDecoder(spec).syndrome_calculator
        words = []
        for weight in _random_weights(t, rng):
            codeword = encoder.encode_codeword(rng.bytes(k // 8))
            positions = rng.choice(
                spec.n_stored, size=weight, replace=False
            ).tolist()
            words.append(flip_bits(codeword, positions))
        batch = calc.syndromes_batch(words)
        for row, word in zip(batch, words):
            reference = calc.syndromes(word)
            assert calc.syndromes_vectorized(word) == reference
            assert row.tolist() == reference

    def test_decode_batch_matches_scalar_permissive(self, k, t, rng):
        spec = design_code(k, t)
        encoder = BCHEncoder(spec)
        batch_decoder = BCHDecoder(spec)
        scalar_decoder = BCHDecoder(spec, vectorized=False)
        words = []
        for weight in _random_weights(t, rng):
            codeword = encoder.encode_codeword(rng.bytes(k // 8))
            positions = rng.choice(
                spec.n_stored, size=weight, replace=False
            ).tolist()
            words.append(flip_bits(codeword, positions))
        batch_results = batch_decoder.decode_batch(words, strict=False)
        for word, batch_result in zip(words, batch_results):
            scalar_result = scalar_decoder.decode(word, strict=False)
            assert scalar_result.data == batch_result.data
            assert scalar_result.corrected_bits == batch_result.corrected_bits
            assert (scalar_result.error_positions
                    == batch_result.error_positions)
            assert scalar_result.success == batch_result.success
            assert scalar_result.early_exit == batch_result.early_exit
        # Aggregate decoder telemetry also agrees word-for-word.
        assert batch_decoder.stats == scalar_decoder.stats


class TestBatchBehaviour:
    def test_decode_batch_strict_raises(self, medium_spec, rng):
        encoder = BCHEncoder(medium_spec)
        decoder = BCHDecoder(medium_spec)
        clean = encoder.encode_codeword(rng.bytes(medium_spec.k // 8))
        hopeless = flip_bits(
            clean,
            rng.choice(
                medium_spec.n_stored,
                size=medium_spec.t + 2,
                replace=False,
            ).tolist(),
        )
        with pytest.raises(DecodingFailure):
            decoder.decode_batch([clean, hopeless], strict=True)

    def test_decode_batch_empty(self, medium_spec):
        assert BCHDecoder(medium_spec).decode_batch([]) == []

    def test_decode_batch_early_exit_flags(self, medium_spec, rng):
        encoder = BCHEncoder(medium_spec)
        decoder = BCHDecoder(medium_spec)
        clean = encoder.encode_codeword(rng.bytes(medium_spec.k // 8))
        dirty = flip_bits(clean, [7])
        results = decoder.decode_batch([clean, dirty, clean])
        assert [r.early_exit for r in results] == [True, False, True]
        assert decoder.stats.words_clean == 2

    def test_codec_batch_roundtrip_and_telemetry(self, rng):
        batch_codec = AdaptiveBCHCodec(k=1024, t_max=8)
        scalar_codec = AdaptiveBCHCodec(k=1024, t_max=8)
        for codec in (batch_codec, scalar_codec):
            codec.set_correction_capability(8)
        spec = batch_codec.spec
        messages = [rng.bytes(128) for _ in range(6)]
        codewords = batch_codec.encode_batch(messages)
        assert codewords == [scalar_codec.encode(m) for m in messages]
        corrupted = [
            flip_bits(
                cw,
                rng.choice(spec.n_stored, size=w, replace=False).tolist(),
            )
            for cw, w in zip(codewords, [0, 1, 3, 8, 9, 10])
        ]
        batch_results = batch_codec.decode_batch(corrupted, strict=False)
        scalar_results = [
            scalar_codec.decode(cw, strict=False) for cw in corrupted
        ]
        for batch_result, scalar_result in zip(batch_results, scalar_results):
            assert batch_result.data == scalar_result.data
            assert batch_result.success == scalar_result.success
        assert batch_codec.observation() == scalar_codec.observation()

    def test_stats_deque_bounded(self):
        stats = DecoderStats()
        for i in range(3000):
            stats.observe(i % 4, 1024, failed=False)
        assert len(stats.recent_error_counts) == 1024
        assert stats.words_decoded == 3000
