"""Inversionless Berlekamp-Massey tests."""

from repro.bch.berlekamp import berlekamp_massey
from repro.bch.syndrome import SyndromeCalculator
from repro.gf.field import get_field


def locator_for(spec, positions):
    calc = SyndromeCalculator(spec)
    syndromes = calc.syndromes_of_error_positions(positions)
    return berlekamp_massey(spec.field(), syndromes)


class TestBerlekampMassey:
    def test_no_errors_gives_constant(self, small_spec):
        result = locator_for(small_spec, [])
        assert result.degree == 0
        assert result.iterations == 2 * small_spec.t

    def test_degree_equals_error_count(self, small_spec):
        for count, positions in ((1, [4]), (2, [4, 30]), (3, [4, 30, 70])):
            result = locator_for(small_spec, positions)
            assert result.degree == count

    def test_locator_roots_are_inverse_locators(self, small_spec):
        field = small_spec.field()
        positions = [3, 50]
        result = locator_for(small_spec, positions)
        n = small_spec.n_stored
        for pos in positions:
            exponent = n - 1 - pos
            root = field.alpha_pow(-exponent % field.order)
            assert result.error_locator(root) == 0

    def test_locator_constant_term_nonzero(self, small_spec):
        result = locator_for(small_spec, [1, 2, 3])
        assert result.error_locator.coeff(0) != 0

    def test_medium_code_full_capability(self, medium_spec):
        positions = [7, 100, 500, 900, 1030, 64, 222, 333][: medium_spec.t]
        result = locator_for(medium_spec, positions)
        assert result.degree == len(positions)

    def test_overload_exceeds_t(self, small_spec):
        # t+1 errors: BM produces a locator that cannot have degree <= t
        # with matching root count; degree may exceed t or roots won't match.
        positions = [1, 20, 40, 60]  # t = 3
        result = locator_for(small_spec, positions)
        field = small_spec.field()
        n = small_spec.n_stored
        roots_found = sum(
            1
            for pos in range(n)
            if result.error_locator(
                field.alpha_pow(-(n - 1 - pos) % field.order)
            ) == 0
        )
        assert result.degree > small_spec.t or roots_found != result.degree
