"""Reference (bit-serial) implementation self-tests."""

import pytest

from repro.bch.reference import bits_msb_first, bits_to_bytes, naive_syndromes
from repro.bch.encoder import BCHEncoder


class TestBitHelpers:
    def test_bits_msb_first(self):
        assert bits_msb_first(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bits_msb_first(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_round_trip(self, rng):
        data = rng.bytes(32)
        assert bits_to_bytes(bits_msb_first(data)) == data

    def test_bits_to_bytes_requires_byte_multiple(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])


class TestNaiveSyndromes:
    def test_clean_codeword_zero(self, small_spec, rng):
        encoder = BCHEncoder(small_spec)
        codeword = encoder.encode_codeword(rng.bytes(small_spec.k // 8))
        assert not any(naive_syndromes(small_spec, codeword))

    def test_length_validation(self, small_spec):
        with pytest.raises(ValueError):
            naive_syndromes(small_spec, b"\x00")
