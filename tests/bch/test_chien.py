"""Chien search tests."""

from repro.bch.berlekamp import berlekamp_massey
from repro.bch.chien import ChienSearch
from repro.bch.syndrome import SyndromeCalculator
from repro.gf.polygf import GFPoly


class TestChienSearch:
    def _positions_via_chien(self, spec, positions):
        calc = SyndromeCalculator(spec)
        syndromes = calc.syndromes_of_error_positions(positions)
        bm = berlekamp_massey(spec.field(), syndromes)
        return ChienSearch(spec).error_positions(bm.error_locator)

    def test_round_trip_positions(self, small_spec):
        for positions in ([0], [small_spec.n_stored - 1], [5, 60], [1, 2, 3]):
            assert self._positions_via_chien(small_spec, positions) == sorted(positions)

    def test_round_trip_medium(self, medium_spec):
        positions = [0, 17, 512, 1000, 1100]
        assert self._positions_via_chien(medium_spec, positions) == sorted(positions)

    def test_constant_locator_no_positions(self, small_spec):
        chien = ChienSearch(small_spec)
        one = GFPoly.one(small_spec.field())
        assert chien.error_positions(one) == []

    def test_root_count_in_field(self, small_spec):
        field = small_spec.field()
        roots = [field.alpha_pow(2), field.alpha_pow(9)]
        poly = GFPoly.from_roots(field, roots)
        chien = ChienSearch(small_spec)
        assert chien.root_count_in_field(poly) == 2

    def test_positions_limited_to_stored_length(self, small_spec):
        # A locator whose root corresponds to an exponent >= n_stored must
        # yield no position (shortened-code exclusion).
        field = small_spec.field()
        n = small_spec.n_stored
        out_of_range_exponent = n + 1  # valid field exponent, invalid position
        root = field.alpha_pow(-out_of_range_exponent % field.order)
        poly = GFPoly.from_roots(field, [root])
        chien = ChienSearch(small_spec)
        assert chien.error_positions(poly) == []
