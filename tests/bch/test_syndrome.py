"""Syndrome computation tests."""

import pytest

from repro.bch.encoder import BCHEncoder
from repro.bch.params import design_code
from repro.bch.reference import naive_syndromes
from repro.bch.syndrome import SyndromeCalculator, reduce_codeword
from repro.gf.poly2 import poly2_mod
from tests.conftest import flip_bits


class TestReduceCodeword:
    def test_matches_direct_mod(self, rng):
        minpoly = 0b10011  # degree 4 -> bit-serial fallback
        data = rng.bytes(16)
        value = int.from_bytes(data, "big")
        assert reduce_codeword(data, minpoly) == poly2_mod(value << 4, minpoly)

    def test_table_path_matches_direct_mod(self, rng):
        minpoly = 0b10001000000001011  # degree 16 -> table path
        data = rng.bytes(64)
        value = int.from_bytes(data, "big")
        assert reduce_codeword(data, minpoly) == poly2_mod(value << 16, minpoly)


class TestSyndromes:
    def test_clean_codeword_all_zero(self, small_spec, rng):
        calc = SyndromeCalculator(small_spec)
        encoder = BCHEncoder(small_spec)
        codeword = encoder.encode_codeword(rng.bytes(small_spec.k // 8))
        syndromes = calc.syndromes(codeword)
        assert calc.all_zero(syndromes)

    def test_matches_naive_horner(self, small_spec, rng):
        calc = SyndromeCalculator(small_spec)
        encoder = BCHEncoder(small_spec)
        codeword = encoder.encode_codeword(rng.bytes(small_spec.k // 8))
        corrupted = flip_bits(codeword, [5, 17, 40])
        assert calc.syndromes(corrupted) == naive_syndromes(small_spec, corrupted)

    def test_matches_naive_medium(self, medium_spec, rng):
        calc = SyndromeCalculator(medium_spec)
        encoder = BCHEncoder(medium_spec)
        codeword = encoder.encode_codeword(rng.bytes(medium_spec.k // 8))
        corrupted = flip_bits(codeword, [0, 300, 999])
        assert calc.syndromes(corrupted) == naive_syndromes(medium_spec, corrupted)

    def test_even_syndromes_are_squares(self, medium_spec, rng):
        calc = SyndromeCalculator(medium_spec)
        encoder = BCHEncoder(medium_spec)
        codeword = flip_bits(
            encoder.encode_codeword(rng.bytes(medium_spec.k // 8)), [3, 77]
        )
        syndromes = calc.syndromes(codeword)
        field = medium_spec.field()
        for i in range(2, 2 * medium_spec.t + 1, 2):
            assert syndromes[i - 1] == field.mul(
                syndromes[i // 2 - 1], syndromes[i // 2 - 1]
            )

    def test_syndromes_depend_only_on_error_pattern(self, small_spec, rng):
        calc = SyndromeCalculator(small_spec)
        encoder = BCHEncoder(small_spec)
        positions = [2, 33, 64]
        words = [
            flip_bits(encoder.encode_codeword(rng.bytes(small_spec.k // 8)), positions)
            for _ in range(2)
        ]
        assert calc.syndromes(words[0]) == calc.syndromes(words[1])
        assert calc.syndromes(words[0]) == calc.syndromes_of_error_positions(positions)

    def test_single_bit_error_syndrome_structure(self, small_spec):
        calc = SyndromeCalculator(small_spec)
        field = small_spec.field()
        pos = 10
        exponent = small_spec.n_stored - 1 - pos
        syndromes = calc.syndromes_of_error_positions([pos])
        for i in range(1, 2 * small_spec.t + 1):
            assert syndromes[i - 1] == field.alpha_pow(i * exponent)
