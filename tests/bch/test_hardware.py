"""ECC hardware latency/area model tests — Fig. 8 anchors."""

import pytest

from repro.bch.hardware import EccLatencyModel, chien_parallelism
from repro.bch.params import design_code
from repro.errors import ConfigurationError
from repro.params import EccHardwareParams


class TestChienParallelism:
    def test_budget_caps_parallelism(self):
        hw = EccHardwareParams()
        assert hw.chien_parallelism(3) == 8      # small t: full width
        assert hw.chien_parallelism(32) == 8     # 32*8 = 256 <= 260
        assert hw.chien_parallelism(33) == 7
        assert hw.chien_parallelism(65) == 4     # 260 // 65
        assert chien_parallelism(65) == 4

    def test_at_least_one_evaluator(self):
        hw = EccHardwareParams(chien_multiplier_budget=8, chien_max_parallelism=8)
        assert hw.chien_parallelism(100) == 1

    def test_invalid_t(self):
        hw = EccHardwareParams()
        with pytest.raises(ConfigurationError):
            hw.chien_parallelism(0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            EccHardwareParams(chien_multiplier_budget=2, chien_max_parallelism=8)
        with pytest.raises(ConfigurationError):
            EccHardwareParams(clock_hz=0)


class TestLatencyAnchors:
    """Absolute figures the paper quotes (80 MHz clock)."""

    @pytest.fixture(scope="class")
    def model(self):
        return EccLatencyModel()

    def test_encode_latency_near_51us(self, model):
        spec = design_code(32768, 6)
        assert model.encode_latency_s(spec) * 1e6 == pytest.approx(51.5, abs=1.5)

    def test_encode_latency_nearly_t_independent(self, model):
        low = model.encode_latency_s(design_code(32768, 3))
        high = model.encode_latency_s(design_code(32768, 65))
        assert (high - low) / low < 0.04  # only the parity shift-out grows

    def test_decode_worst_case_near_160us(self, model):
        spec = design_code(32768, 65)
        assert model.decode_latency_s(spec) * 1e6 == pytest.approx(161, abs=5)

    def test_decode_dv_worst_case_near_104us(self, model):
        spec = design_code(32768, 14)
        assert model.decode_latency_s(spec) * 1e6 == pytest.approx(104, abs=4)

    def test_decode_monotone_in_t(self, model):
        latencies = [
            model.decode_latency_s(design_code(32768, t)) for t in (3, 14, 33, 53, 65)
        ]
        assert latencies == sorted(latencies)

    def test_error_free_early_exit_faster(self, model):
        spec = design_code(32768, 30)
        assert model.decode_latency_s(spec, with_errors=False) < (
            0.6 * model.decode_latency_s(spec, with_errors=True)
        )

    def test_breakdown_totals(self, model):
        spec = design_code(32768, 20)
        breakdown = model.decode_breakdown(spec)
        assert breakdown.total_cycles == (
            breakdown.syndrome_cycles + breakdown.alignment_cycles
            + breakdown.berlekamp_cycles + breakdown.chien_cycles
            + breakdown.overhead_cycles
        )
        assert breakdown.error_free_cycles < breakdown.total_cycles


class TestArea:
    def test_area_estimate_structure(self):
        model = EccLatencyModel()
        spec = design_code(32768, 65)
        area = model.area_estimate(spec, t_max=65)
        assert area.encoder_flipflops == 16 * 65
        assert area.syndrome_lfsrs == 130
        assert area.chien_multipliers == 260
        assert area.rom_polynomials == 65
        assert 0 < area.encoder_xor_taps <= 16 * 65
