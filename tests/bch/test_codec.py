"""Adaptive codec tests."""

import pytest

from repro.bch.codec import AdaptiveBCHCodec
from repro.errors import ConfigurationError
from tests.conftest import flip_bits


@pytest.fixture(scope="module")
def codec() -> AdaptiveBCHCodec:
    return AdaptiveBCHCodec(k=1024, t_max=16, t_min=1)


class TestAdaptiveCodec:
    def test_default_capability_is_t_min(self, codec):
        assert codec.t == codec.t_min

    def test_reconfiguration_port(self, codec):
        codec.set_correction_capability(8)
        assert codec.t == 8
        with pytest.raises(ConfigurationError):
            codec.set_correction_capability(17)
        with pytest.raises(ConfigurationError):
            codec.set_correction_capability(0)

    def test_parity_grows_with_t(self, codec):
        assert codec.parity_bytes(2) < codec.parity_bytes(10)

    def test_round_trip_at_multiple_capabilities(self, codec, rng):
        message = rng.bytes(128)
        for t in (2, 5, 9, 16):
            codec.set_correction_capability(t)
            codeword = codec.encode(message)
            positions = rng.choice(
                codec.spec.n_stored, t, replace=False
            ).tolist()
            result = codec.decode(flip_bits(codeword, positions))
            assert result.data == message
            assert result.corrected_bits == t

    def test_explicit_t_override(self, codec, rng):
        message = rng.bytes(128)
        codec.set_correction_capability(4)
        codeword_t9 = codec.encode(message, t=9)
        # Decoding with the written t must succeed regardless of current t.
        result = codec.decode(codeword_t9, t=9)
        assert result.data == message
        assert codec.t == 4  # unchanged

    def test_observation_aggregates(self, rng):
        codec = AdaptiveBCHCodec(k=1024, t_max=8)
        codec.set_correction_capability(4)
        message = rng.bytes(128)
        codeword = codec.encode(message)
        codec.decode(codeword)
        codec.decode(flip_bits(codeword, [10, 600, 900]))
        obs = codec.observation()
        assert obs.words_decoded == 2
        assert obs.bits_corrected == 3
        assert obs.max_errors_in_word == 3
        assert obs.words_failed == 0
        assert 0 < obs.observed_rber < 1e-2

    def test_latency_hooks(self, codec):
        assert codec.encode_latency_s(t=2) > 0
        assert codec.decode_latency_s(t=16) > codec.decode_latency_s(
            t=16, with_errors=False
        )

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBCHCodec(k=1024, t_max=4, t_min=5)
