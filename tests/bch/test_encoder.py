"""Systematic BCH encoder tests."""

import pytest

from repro.bch.encoder import BCHEncoder
from repro.bch.params import design_code
from repro.bch.reference import BitSerialLFSREncoder
from repro.gf.poly2 import poly2_mod


class TestEncoder:
    def test_matches_bit_serial_reference(self, small_spec, rng):
        fast = BCHEncoder(small_spec)
        reference = BitSerialLFSREncoder(small_spec)
        for _ in range(10):
            message = rng.bytes(small_spec.k // 8)
            assert fast.encode_codeword(message) == reference.encode_codeword(message)

    def test_matches_reference_medium(self, medium_spec, rng):
        fast = BCHEncoder(medium_spec)
        reference = BitSerialLFSREncoder(medium_spec)
        message = rng.bytes(medium_spec.k // 8)
        assert fast.encode_codeword(message) == reference.encode_codeword(message)

    def test_codeword_is_multiple_of_generator(self, medium_spec, rng):
        encoder = BCHEncoder(medium_spec)
        message = rng.bytes(medium_spec.k // 8)
        codeword_int = int.from_bytes(encoder.encode_codeword(message), "big")
        # Stored stream = codeword * x^pad; divisibility by g is preserved.
        assert poly2_mod(codeword_int, medium_spec.generator) == 0

    def test_systematic_prefix(self, small_spec, rng):
        encoder = BCHEncoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        assert encoder.encode_codeword(message)[: len(message)] == message

    def test_zero_message_zero_parity(self, small_spec):
        encoder = BCHEncoder(small_spec)
        message = bytes(small_spec.k // 8)
        assert encoder.encode(message) == bytes(small_spec.parity_bytes)

    def test_linearity(self, small_spec, rng):
        encoder = BCHEncoder(small_spec)
        a = rng.bytes(small_spec.k // 8)
        b = rng.bytes(small_spec.k // 8)
        xor = bytes(x ^ y for x, y in zip(a, b))
        parity_xor = bytes(
            x ^ y for x, y in zip(encoder.encode(a), encoder.encode(b))
        )
        assert encoder.encode(xor) == parity_xor

    def test_is_codeword(self, small_spec, rng):
        encoder = BCHEncoder(small_spec)
        message = rng.bytes(small_spec.k // 8)
        codeword = bytearray(encoder.encode_codeword(message))
        assert encoder.is_codeword(bytes(codeword))
        codeword[0] ^= 0x01
        assert not encoder.is_codeword(bytes(codeword))

    def test_wrong_length_rejected(self, small_spec):
        encoder = BCHEncoder(small_spec)
        with pytest.raises(ValueError):
            encoder.encode(bytes(3))
        with pytest.raises(ValueError):
            encoder.is_codeword(bytes(5))

    def test_page_sized_encode(self, page_spec, rng):
        encoder = BCHEncoder(page_spec)
        message = rng.bytes(4096)
        codeword = encoder.encode_codeword(message)
        assert len(codeword) == 4096 + page_spec.parity_bytes
        assert encoder.is_codeword(codeword)


class TestSliceWidths:
    """Wide (16-byte) vs narrow (8-byte) batch slicing, both vs scalar."""

    def test_wide_slice_selected_at_r_128(self):
        from repro.bch.params import design_code

        assert BCHEncoder(design_code(32768, 8)).slice_bytes == 16   # r = 128
        assert BCHEncoder(design_code(32768, 14)).slice_bytes == 16  # r = 224
        assert BCHEncoder(design_code(1024, 8)).slice_bytes == 8     # r = 88

    @pytest.mark.parametrize(
        "k,t",
        [
            (32768, 8),    # r = 128: smallest wide-slice code
            (32768, 14),   # r = 224: the paper's ISPP-DV end-of-life point
            (1024, 8),     # r = 88: narrow 8-byte slicing retained
        ],
    )
    def test_batch_matches_scalar(self, k, t, rng):
        from repro.bch.params import design_code

        encoder = BCHEncoder(design_code(k, t))
        messages = [rng.bytes(k // 8) for _ in range(5)]
        assert encoder.encode_batch(messages) == [
            encoder.encode(message) for message in messages
        ]
