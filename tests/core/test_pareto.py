"""Operating-point Pareto analysis tests."""

import math

import pytest

from repro.core.pareto import (
    OperatingPoint,
    ecc_power_w,
    enumerate_operating_points,
    pareto_front,
)
from repro.core.tradeoff import TradeoffAnalyzer
from repro.nand.ispp import IsppAlgorithm


@pytest.fixture(scope="module")
def analyzer():
    return TradeoffAnalyzer()


class TestDominance:
    def test_strict_dominance(self):
        better = OperatingPoint(IsppAlgorithm.DV, 3, 25.0, 3.0, -12.0, 0.002)
        worse = OperatingPoint(IsppAlgorithm.SV, 10, 20.0, 3.0, -11.5, 0.003)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_domination(self):
        p = OperatingPoint(IsppAlgorithm.SV, 5, 20.0, 3.0, -11.0, 0.002)
        assert not p.dominates(p)

    def test_incomparable_points(self):
        fast_read = OperatingPoint(IsppAlgorithm.DV, 3, 25.0, 2.0, -11.0, 0.002)
        fast_write = OperatingPoint(IsppAlgorithm.SV, 3, 20.0, 4.0, -11.0, 0.002)
        assert not fast_read.dominates(fast_write)
        assert not fast_write.dominates(fast_read)


class TestEnumeration:
    def test_point_count(self, analyzer):
        points = enumerate_operating_points(analyzer, 1e4, t_values=[3, 14, 65])
        assert len(points) == 6  # 2 algorithms x 3 capabilities

    def test_ecc_power_range_matches_paper(self):
        # Paper section 6.3.2: ~7 mW at full strength relaxing to ~1 mW.
        assert ecc_power_w(65) == pytest.approx(7e-3, rel=0.05)
        assert ecc_power_w(3) < 1.5e-3

    def test_front_is_subset_and_nondominated(self, analyzer):
        points = enumerate_operating_points(analyzer, 1e4, t_values=[3, 6, 14, 30, 65])
        front = pareto_front(points)
        assert 0 < len(front) <= len(points)
        for p in front:
            assert not any(q.dominates(p) for q in points)

    def test_cross_layer_expands_the_front(self, analyzer):
        """The paper's thesis: DV points reach where SV points cannot."""
        points = enumerate_operating_points(analyzer, 1e5, t_values=[3, 14, 30, 65])
        feasible = [p for p in points if p.log10_uber <= -11]
        sv_only = [p for p in feasible if p.algorithm is IsppAlgorithm.SV]
        dv_points = [p for p in feasible if p.algorithm is IsppAlgorithm.DV]
        assert dv_points, "cross-layer points must be UBER-feasible at EOL"
        best_sv_read = max((p.read_mb_s for p in sv_only), default=0.0)
        best_dv_read = max(p.read_mb_s for p in dv_points)
        assert best_dv_read > best_sv_read
