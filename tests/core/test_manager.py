"""Self-adaptive manager decision-logic tests."""

import pytest

from repro.bch.codec import CodecObservation
from repro.core.manager import SelfAdaptiveManager
from repro.core.modes import OperatingMode
from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm


def observation(rber: float, bits: int = 10**7) -> CodecObservation:
    return CodecObservation(
        words_decoded=bits // 33000,
        words_failed=0,
        bits_corrected=int(rber * bits),
        bits_processed=bits,
        max_errors_in_word=3,
    )


class TestDecisions:
    def test_insufficient_feedback_is_conservative(self):
        manager = SelfAdaptiveManager()
        decision = manager.decide(observation(1e-5, bits=1000), IsppAlgorithm.SV)
        assert decision.config.ecc_t == manager.t_max

    def test_baseline_tracks_estimate(self):
        manager = SelfAdaptiveManager(safety_factor=1.0)
        decision = manager.decide(observation(1e-5), IsppAlgorithm.SV)
        assert decision.config.algorithm is IsppAlgorithm.SV
        assert decision.config.ecc_t == 6

    def test_safety_factor_inflates_t(self):
        relaxed = SelfAdaptiveManager(safety_factor=1.0).decide(
            observation(1e-4), IsppAlgorithm.SV
        )
        cautious = SelfAdaptiveManager(safety_factor=2.0).decide(
            observation(1e-4), IsppAlgorithm.SV
        )
        assert cautious.config.ecc_t > relaxed.config.ecc_t

    def test_dv_feedback_translated_to_sv_scale(self):
        manager = SelfAdaptiveManager(
            mode=OperatingMode.MAX_READ_THROUGHPUT, safety_factor=1.0
        )
        # Running DV and observing 8e-7 implies SV-equivalent 1e-5;
        # max-read keeps DV with t for 8e-7 -> t = 3.
        decision = manager.decide(observation(8e-7), IsppAlgorithm.DV)
        assert decision.config.algorithm is IsppAlgorithm.DV
        assert decision.config.ecc_t == 3

    def test_min_uber_keeps_baseline_t(self):
        manager = SelfAdaptiveManager(
            mode=OperatingMode.MIN_UBER, safety_factor=1.0
        )
        decision = manager.decide(observation(1e-5), IsppAlgorithm.SV)
        assert decision.config.algorithm is IsppAlgorithm.DV
        assert decision.config.ecc_t == 6

    def test_saturation_past_end_of_life(self):
        manager = SelfAdaptiveManager(safety_factor=1.0)
        decision = manager.decide(observation(5e-3), IsppAlgorithm.SV)
        assert decision.saturated
        assert decision.config.ecc_t == manager.t_max

    def test_changed_flag(self):
        manager = SelfAdaptiveManager(safety_factor=1.0)
        first = manager.decide(observation(1e-5), IsppAlgorithm.SV)
        second = manager.decide(observation(1e-5), IsppAlgorithm.SV)
        assert first.changed
        assert not second.changed

    def test_mode_switch(self):
        manager = SelfAdaptiveManager(safety_factor=1.0)
        manager.decide(observation(1e-5), IsppAlgorithm.SV)
        manager.set_mode(OperatingMode.MIN_UBER)
        decision = manager.decide(observation(1e-5), IsppAlgorithm.SV)
        assert decision.changed
        assert decision.config.algorithm is IsppAlgorithm.DV

    def test_invalid_safety_factor(self):
        with pytest.raises(ConfigurationError):
            SelfAdaptiveManager(safety_factor=0.5)
