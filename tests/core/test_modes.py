"""Operating mode tests."""

import pytest

from repro.core.modes import OperatingMode


class TestModes:
    def test_register_codes_round_trip(self):
        for mode in OperatingMode:
            assert OperatingMode.from_register_code(mode.register_code) is mode

    def test_codes_are_distinct(self):
        codes = {mode.register_code for mode in OperatingMode}
        assert codes == {0, 1, 2}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            OperatingMode.from_register_code(7)
