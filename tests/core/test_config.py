"""Cross-layer configuration tuple tests."""

import pytest

from repro.core.config import CrossLayerConfig
from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm


class TestConfig:
    def test_describe(self):
        config = CrossLayerConfig(IsppAlgorithm.DV, 14)
        assert "ispp-dv" in config.describe()
        assert "t=14" in config.describe()

    def test_equality(self):
        a = CrossLayerConfig(IsppAlgorithm.SV, 6)
        b = CrossLayerConfig(IsppAlgorithm.SV, 6)
        c = CrossLayerConfig(IsppAlgorithm.DV, 6)
        assert a == b
        assert a != c

    def test_invalid_t(self):
        with pytest.raises(ConfigurationError):
            CrossLayerConfig(IsppAlgorithm.SV, 0)
