"""SLC/MLC partition planner tests."""

import pytest

from repro.core.partition import (
    CellMode,
    PartitionPlanner,
    PartitionSpec,
    SLC_RBER_DIVISOR,
)
from repro.errors import ConfigurationError
from repro.nand.geometry import NandGeometry


@pytest.fixture(scope="module")
def planner():
    return PartitionPlanner(NandGeometry(blocks=64, pages_per_block=64))


class TestPartitionMetrics:
    def test_slc_halves_capacity(self, planner):
        slc = planner.evaluate(PartitionSpec("boot", 8, CellMode.SLC), 0.0)
        mlc = planner.evaluate(PartitionSpec("data", 8, CellMode.MLC_SV), 0.0)
        assert slc.capacity_bytes == mlc.capacity_bytes // 2
        assert slc.bits_per_cell == 1 and mlc.bits_per_cell == 2

    def test_slc_rber_two_orders_below_mlc(self, planner):
        slc = planner.evaluate(PartitionSpec("boot", 8, CellMode.SLC), 1e4)
        mlc = planner.evaluate(PartitionSpec("data", 8, CellMode.MLC_SV), 1e4)
        assert mlc.rber / slc.rber == pytest.approx(SLC_RBER_DIVISOR)

    def test_slc_needs_weaker_ecc(self, planner):
        slc = planner.evaluate(PartitionSpec("boot", 8, CellMode.SLC), 1e5)
        mlc = planner.evaluate(PartitionSpec("data", 8, CellMode.MLC_SV), 1e5)
        assert slc.required_t is not None and mlc.required_t is not None
        assert slc.required_t < mlc.required_t

    def test_mode_ordering_at_end_of_life(self, planner):
        metrics = {
            mode: planner.evaluate(PartitionSpec("p", 8, mode), 1e5)
            for mode in CellMode
        }
        assert (
            metrics[CellMode.SLC].rber
            < metrics[CellMode.MLC_DV].rber
            < metrics[CellMode.MLC_SV].rber
        )
        # SLC reads fastest per stored byte? No: it moves half the data per
        # operation, but with minimal decode; DV-MLC beats SV-MLC.
        assert metrics[CellMode.MLC_DV].read_mb_s > metrics[CellMode.MLC_SV].read_mb_s

    def test_slc_writes_fast_despite_density(self, planner):
        slc = planner.evaluate(PartitionSpec("log", 8, CellMode.SLC), 0.0)
        mlc_dv = planner.evaluate(PartitionSpec("data", 8, CellMode.MLC_DV), 0.0)
        assert slc.write_mb_s > mlc_dv.write_mb_s


class TestPlans:
    def test_plan_budget_enforced(self, planner):
        plan = [
            PartitionSpec("a", 40, CellMode.MLC_SV),
            PartitionSpec("b", 40, CellMode.SLC),
        ]
        with pytest.raises(ConfigurationError):
            planner.evaluate_plan(plan, 0.0)

    def test_hybrid_plan_capacity(self, planner):
        plan = [
            PartitionSpec("boot", 16, CellMode.SLC),
            PartitionSpec("data", 48, CellMode.MLC_SV),
        ]
        metrics = planner.evaluate_plan(plan, 0.0)
        full_mlc = planner.evaluate(PartitionSpec("all", 64, CellMode.MLC_SV), 0.0)
        assert PartitionPlanner.plan_capacity(metrics) == pytest.approx(
            full_mlc.capacity_bytes * (48 + 8) / 64
        )

    def test_invalid_partition(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec("x", 0, CellMode.SLC)

    def test_oversized_partition(self, planner):
        with pytest.raises(ConfigurationError):
            planner.evaluate(PartitionSpec("x", 65, CellMode.SLC), 0.0)
