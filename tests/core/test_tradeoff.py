"""Trade-off analyzer tests — the Figs. 8-11 machinery."""

import numpy as np
import pytest

from repro.core.modes import OperatingMode
from repro.core.tradeoff import TradeoffAnalyzer


@pytest.fixture(scope="module")
def analyzer():
    return TradeoffAnalyzer()


GRID = np.logspace(0, 5, 5)


class TestPoints:
    def test_point_structure(self, analyzer):
        point = analyzer.point(OperatingMode.BASELINE, 0.0)
        assert point.config.ecc_t == 6
        assert point.encode_s > 0
        assert point.decode_s > point.encode_s
        assert point.program_s > point.decode_s
        assert point.read_mb_s > 0
        assert point.write_mb_s > 0
        assert point.log10_uber <= -11

    def test_program_cache_reused(self, analyzer):
        analyzer.point(OperatingMode.BASELINE, 1.0)
        before = len(analyzer._program_cache)
        analyzer.point(OperatingMode.MIN_UBER, 1.0)  # same DV timing as maxread
        analyzer.point(OperatingMode.MAX_READ_THROUGHPUT, 1.0)
        after = len(analyzer._program_cache)
        assert after == before + 1  # only one new (DV, 1.0) entry

    def test_lifetime_sweep(self, analyzer):
        points = analyzer.lifetime(OperatingMode.BASELINE, GRID)
        assert len(points) == len(GRID)
        ts = [p.config.ecc_t for p in points]
        assert ts == sorted(ts)


class TestFigureSeries:
    def test_write_loss_in_paper_band(self, analyzer):
        _, losses = analyzer.write_loss_series(GRID)
        assert losses.min() > 30.0
        assert losses.max() < 55.0
        # Mid-band matches the paper's ~40-48%.
        assert np.median(losses) == pytest.approx(44, abs=6)

    def test_read_gain_grows_to_30pct(self, analyzer):
        _, gains = analyzer.read_gain_series(GRID)
        assert gains[0] == pytest.approx(0.0, abs=2.0)
        assert gains[-1] == pytest.approx(31, abs=5)
        assert np.all(np.diff(gains) >= -0.5)  # monotone up to noise

    def test_uber_series_gap(self, analyzer):
        _, nominal, improved = analyzer.uber_series(GRID)
        assert np.all(nominal <= -11)          # target met
        assert np.all(nominal > -13)           # but not overshooting much
        assert np.all(improved < nominal - 5)  # large cross-layer gap

    def test_latency_series_anchors(self, analyzer):
        data = analyzer.latency_series(GRID)
        sv_dec = data["sv_decode_s"] * 1e6
        dv_dec = data["dv_decode_s"] * 1e6
        assert sv_dec[-1] == pytest.approx(162, abs=6)
        assert dv_dec[-1] == pytest.approx(104, abs=5)
        enc = data["sv_encode_s"] * 1e6
        assert np.all((enc > 49) & (enc < 55))
