"""Cross-layer policy tests — the section 6.3 mode definitions."""

import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm


@pytest.fixture(scope="module")
def policy():
    return CrossLayerPolicy()


class TestPolicy:
    def test_baseline_uses_sv_with_tracking_t(self, policy):
        fresh = policy.config_for(OperatingMode.BASELINE, 0.0)
        assert fresh.algorithm is IsppAlgorithm.SV
        assert fresh.ecc_t == 6
        eol = policy.config_for(OperatingMode.BASELINE, 1e5)
        assert eol.ecc_t == 65

    def test_min_uber_keeps_baseline_t(self, policy):
        for age in (0.0, 1e3, 1e5):
            baseline = policy.config_for(OperatingMode.BASELINE, age)
            min_uber = policy.config_for(OperatingMode.MIN_UBER, age)
            assert min_uber.algorithm is IsppAlgorithm.DV
            assert min_uber.ecc_t == baseline.ecc_t

    def test_max_read_relaxes_t(self, policy):
        for age in (0.0, 1e4, 1e5):
            baseline = policy.config_for(OperatingMode.BASELINE, age)
            max_read = policy.config_for(OperatingMode.MAX_READ_THROUGHPUT, age)
            assert max_read.algorithm is IsppAlgorithm.DV
            assert max_read.ecc_t < baseline.ecc_t

    def test_paper_extreme_ts(self, policy):
        assert policy.config_for(OperatingMode.MAX_READ_THROUGHPUT, 0.0).ecc_t == 3
        assert policy.config_for(OperatingMode.MAX_READ_THROUGHPUT, 1e5).ecc_t == 14

    def test_all_configs_meet_uber_target(self, policy):
        from repro.bch.uber import achieved_uber

        for mode in OperatingMode:
            for age in (0.0, 1e2, 1e4, 1e5):
                config = policy.config_for(mode, age)
                rber = policy.rber_for(config, age)
                assert achieved_uber(rber, config.ecc_t) <= policy.uber_target

    def test_required_t_monotone_in_age(self, policy):
        ts = [
            policy.required_t_for(IsppAlgorithm.SV, age)
            for age in (0.0, 1e2, 1e3, 1e4, 1e5)
        ]
        assert ts == sorted(ts)

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            CrossLayerPolicy(t_min=10, t_max=5)
