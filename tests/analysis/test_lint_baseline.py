"""The committed lint baseline must exactly match a fresh full-tree run.

This is the CI ratchet: a new violation anywhere in ``src``/``tests``/
``benchmarks`` fails here (the fresh run exceeds the baseline), and a
*fixed* violation fails too (stale baseline entry) so the grandfathered
set can only shrink deliberately — never drift.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis import lint

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.txt"
LINT_ROOTS = ("src", "tests", "benchmarks")


def _fresh_counts():
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        violations = lint.lint_paths(LINT_ROOTS)
    finally:
        os.chdir(cwd)
    return violations, lint.counts_of(violations)


def test_baseline_file_is_committed():
    assert BASELINE.is_file(), (
        "lint-baseline.txt missing — regenerate with "
        "'python -m repro lint src tests benchmarks --write-baseline'"
    )


def test_fresh_run_matches_baseline_exactly():
    violations, fresh = _fresh_counts()
    baseline = lint.parse_baseline(BASELINE.read_text(encoding="utf-8"))
    new, stale = lint.diff_against(fresh, baseline)
    details = "\n".join(v.render() for v in violations)
    assert not new, (
        f"new lint violations over the committed baseline:\n{details}"
    )
    assert not stale, (
        "stale baseline entries (violations were fixed) — refresh with "
        "'python -m repro lint src tests benchmarks --write-baseline': "
        f"{stale}"
    )
    # Exact match, not just <=: the formatted fresh counts reproduce the
    # committed file byte-for-byte.
    assert lint.format_baseline(fresh) == BASELINE.read_text(encoding="utf-8")


def test_baseline_roundtrip():
    _, fresh = _fresh_counts()
    assert lint.parse_baseline(lint.format_baseline(fresh)) == fresh
