"""Fig. 4 model-fitting tests."""

import numpy as np
import pytest

from repro.analysis.fitting import fit_cell_model, reference_ispp_dataset


class TestReferenceDataset:
    def test_shape_and_range(self):
        data = reference_ispp_dataset()
        assert data.vcg[0] == 6.0
        assert data.vcg[-1] == 24.0
        assert data.vth.min() < -4.0
        assert data.vth.max() > 4.5

    def test_deterministic(self):
        a = reference_ispp_dataset(seed=1)
        b = reference_ispp_dataset(seed=1)
        assert np.array_equal(a.vth, b.vth)

    def test_staircase_slope_one(self):
        data = reference_ispp_dataset()
        # In the linear region the staircase advances ~1 V per 1 V of VCG.
        tail = np.diff(data.vth[-5:])
        assert np.all(np.abs(tail - 1.0) < 0.25)


class TestFit:
    @pytest.fixture(scope="class")
    def fit(self):
        return fit_cell_model()

    def test_rmse_below_100mv(self, fit):
        """The compact model reproduces the measurement (Fig. 4 overlay)."""
        assert fit.rmse < 0.100

    def test_max_error_bounded(self, fit):
        assert fit.max_abs_error < 0.35

    def test_fitted_parameters_physical(self, fit):
        assert 16.0 < fit.params.onset < 20.0
        assert -6.5 < fit.params.vth_initial < -3.0
        assert 0.05 < fit.params.softness < 3.0

    def test_residuals_unbiased(self, fit):
        assert abs(fit.residuals.mean()) < 0.05
