"""CLI tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "sys_services" in out

    def test_status(self, capsys):
        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "GF(2^16)" in out
        assert "t=65" in out  # end-of-life anchor

    def test_run_single(self, capsys):
        assert main(["run", "fig07"]) == 0
        out = capsys.readouterr().out
        assert "tMIN=3" in out
        assert "regenerated in" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
