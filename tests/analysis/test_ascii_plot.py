"""ASCII rendering tests."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_chart, format_table
from repro.errors import ConfigurationError


class TestAsciiChart:
    def test_renders_symbols_and_legend(self):
        x = np.array([1.0, 10.0, 100.0])
        chart = ascii_chart(x, {"a": x, "b": 2 * x}, logx=True, logy=True)
        assert "o=a" in chart
        assert "x=b" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_log_axis_rejects_nonpositive(self):
        x = np.array([0.0, 1.0])
        with pytest.raises(ConfigurationError):
            ascii_chart(x, {"a": x + 1}, logx=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart(np.array([1.0]), {})

    def test_flat_series_no_crash(self):
        x = np.array([1.0, 2.0])
        chart = ascii_chart(x, {"flat": np.array([5.0, 5.0])})
        assert "flat" in chart


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], [10, 3.14159e-7]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]
        assert "3.1416e-07" in table

    def test_empty_rows(self):
        table = format_table(["h1", "h2"], [])
        assert "h1" in table
