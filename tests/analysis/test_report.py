"""Consolidated report generator tests."""

from repro.analysis.experiments import ExperimentSuite
from repro.analysis.report import generate_report


class TestReport:
    def test_generates_full_markdown(self, tmp_path):
        path = generate_report(tmp_path / "report.md", ExperimentSuite(seed=5))
        text = path.read_text()
        # Every figure and the system experiments are present.
        for exp_id in ("fig03", "fig05", "fig07", "fig09", "fig11",
                       "abl_retention", "abl_partition", "sys_services"):
            assert f"## {exp_id}:" in text
        assert "Zambelli" in text
        assert text.count("```") % 2 == 0  # balanced code fences
