"""Lifetime series container tests."""

import numpy as np
import pytest

from repro.analysis.series import LifetimeSeries
from repro.errors import ConfigurationError


class TestLifetimeSeries:
    def test_add_and_row(self):
        series = LifetimeSeries("s", "x", np.array([1.0, 10.0]))
        series.add("y", np.array([2.0, 3.0]))
        assert series.row(1) == {"x": 10.0, "y": 3.0}

    def test_length_mismatch_rejected(self):
        series = LifetimeSeries("s", "x", np.array([1.0, 10.0]))
        with pytest.raises(ConfigurationError):
            series.add("y", np.array([1.0]))

    def test_table_renders_all_rows(self):
        series = LifetimeSeries("s", "pe", np.array([1.0, 10.0, 100.0]))
        series.add("rber", np.array([1e-5, 2e-5, 3e-5]))
        table = series.to_table()
        assert table.count("\n") == 3  # header + 3 rows
        assert "rber" in table

    def test_chaining(self):
        series = (
            LifetimeSeries("s", "x", np.array([1.0]))
            .add("a", np.array([1.0]))
            .add("b", np.array([2.0]))
        )
        assert set(series.columns) == {"a", "b"}
