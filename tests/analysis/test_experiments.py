"""Experiment registry tests — every figure runner produces sound output."""

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentSuite

GRID = np.logspace(0, 5, 5)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(seed=777)


class TestFigureRunners:
    def test_fig03_levels_separated(self, suite):
        result = suite.run_fig03(n_cells=8192)
        stats = result.data["stats"]
        means = [s.mean for s in stats]
        assert means == sorted(means)
        assert "L0" in result.table

    def test_fig04_fit_quality(self, suite):
        result = suite.run_fig04()
        assert result.data["fit"].rmse < 0.1
        assert "RMSE" in result.table

    def test_fig05_order_of_magnitude_gap(self, suite):
        result = suite.run_fig05(mc_points=(1e4,), mc_cells=8192)
        sv, dv = result.data["sv"], result.data["dv"]
        assert np.allclose(sv / dv, 12.5)
        assert result.chart is not None

    def test_fig06_power_band_and_delta(self, suite):
        result = suite.run_fig06(grid=np.logspace(0, 5, 3), n_cells=4096)
        series = result.data["series"]
        for label, values in series.columns.items():
            assert np.all((values > 0.12) & (values < 0.20)), label
        sv = np.mean([series.columns[f"ispp-sv-L{l}"] for l in (1, 2, 3)])
        dv = np.mean([series.columns[f"ispp-dv-L{l}"] for l in (1, 2, 3)])
        assert 3e-3 < dv - sv < 13e-3

    def test_fig07_paper_ts(self, suite):
        result = suite.run_fig07()
        assert result.data["t_min"] == 3
        assert result.data["t_sv_max"] == 65
        assert result.data["t_dv_max"] == 14

    def test_fig08_latency_divergence(self, suite):
        result = suite.run_fig08(GRID)
        sv_dec = result.data["sv_decode_s"]
        dv_dec = result.data["dv_decode_s"]
        assert sv_dec[-1] > 1.4 * dv_dec[-1]

    def test_fig09_band(self, suite):
        result = suite.run_fig09(GRID)
        losses = result.data["losses"]
        assert losses.min() > 30 and losses.max() < 55

    def test_fig10_gap(self, suite):
        result = suite.run_fig10(GRID)
        gap = result.data["nominal"] - result.data["improved"]
        assert np.all(gap > 5)

    def test_fig11_gain(self, suite):
        result = suite.run_fig11(GRID)
        gains = result.data["gains"]
        assert gains[-1] == pytest.approx(31, abs=5)


class TestAblations:
    def test_blocksize_small_blocks_overflow(self, suite):
        result = suite.run_ablation_blocksize()
        rows = {row[0]: row for row in result.data["rows"]}
        assert rows[4096][4] == "yes"
        assert rows[512][3] > rows[4096][3]  # more parity per page

    def test_chien_budget_monotone(self, suite):
        result = suite.run_ablation_chien()
        rows = result.data["rows"]
        # With h_max fixed at 8, a larger budget never slows decode at t=65.
        h8 = [r for r in rows if r[1] == 8]
        decodes = [r[4] for r in sorted(h8, key=lambda r: r[0])]
        assert decodes == sorted(decodes, reverse=True)

    def test_tworound_mitigation(self, suite):
        result = suite.run_ablation_tworound(np.logspace(0, 5, 3))
        for _, serial_wt, pipelined_wt, recovered in result.data["rows"]:
            assert pipelined_wt >= serial_wt
            assert recovered >= 0

    def test_pareto_includes_dv(self, suite):
        result = suite.run_ablation_pareto(ages=(1e5,))
        front = result.data[1e5]
        assert any(p.algorithm.value == "ispp-dv" for p in front)

    def test_render_produces_report(self, suite):
        result = suite.run_fig07()
        text = result.render()
        assert "fig07" in text and "notes" in text
