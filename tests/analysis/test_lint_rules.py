"""Per-rule coverage for the determinism lint (DET101–DET107).

Each rule gets one minimal positive snippet (must trip) and one
negative snippet (must stay clean), plus suppression-comment coverage —
the deliberately-seeded violation corpus the acceptance criteria call
for.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import RULES, lint_source


def _codes(source: str, **kwargs) -> list[str]:
    return [v.code for v in lint_source(textwrap.dedent(source), **kwargs)]


# -- DET101: unseeded default_rng --------------------------------------------------


def test_det101_positive_unseeded():
    assert _codes("""
        import numpy as np
        rng = np.random.default_rng()
    """) == ["DET101"]


def test_det101_positive_bare_import():
    assert _codes("""
        from numpy.random import default_rng
        rng = default_rng()
    """) == ["DET101"]


def test_det101_negative_seeded():
    assert _codes("""
        import numpy as np
        rng = np.random.default_rng(2012)
        child = np.random.default_rng(seed=7)
    """) == []


# -- DET102: process-global random module ------------------------------------------


def test_det102_positive_module_fn():
    assert _codes("""
        import random
        x = random.random()
    """) == ["DET102"]


def test_det102_positive_from_import():
    assert _codes("""
        from random import shuffle
    """) == ["DET102"]


def test_det102_positive_unseeded_instance():
    assert _codes("""
        import random
        r = random.Random()
    """) == ["DET102"]


def test_det102_negative_seeded_instance():
    assert _codes("""
        import random
        r = random.Random(2012)
        x = r.random()
    """) == []


# -- DET103: wall clock ------------------------------------------------------------


def test_det103_positive_time_time():
    assert _codes("""
        import time
        t = time.time()
    """) == ["DET103"]


def test_det103_positive_datetime_now():
    assert _codes("""
        import datetime
        t = datetime.datetime.now()
    """) == ["DET103"]


def test_det103_negative_perf_counter():
    # Host-runtime measurement is allowed — the CLI and benchmarks use it.
    assert _codes("""
        import time
        t = time.perf_counter()
    """) == []


# -- DET104: unordered iteration feeding the schedule ------------------------------


def test_det104_positive_set_iteration():
    assert _codes("""
        def kick(engine, procs):
            for proc in set(procs):
                engine.spawn(proc)
    """) == ["DET104"]


def test_det104_positive_dict_values():
    assert _codes("""
        def kick(engine, table):
            for frame in table.values():
                engine.schedule_at(0.0, frame)
    """) == ["DET104"]


def test_det104_positive_comprehension():
    assert _codes("""
        def kick(engine, procs):
            return [engine.spawn(p) for p in {1, 2, 3}]
    """) == ["DET104"]


def test_det104_negative_sorted():
    assert _codes("""
        def kick(engine, procs):
            for proc in sorted(set(procs)):
                engine.spawn(proc)
    """) == []


def test_det104_negative_no_feed():
    # Unordered iteration that never reaches the event list is fine
    # (e.g. summing counters).
    assert _codes("""
        def total(table):
            acc = 0.0
            for value in table.values():
                acc += value
            return acc
    """) == []


# -- DET105: float equality on timestamps ------------------------------------------


def test_det105_positive_eq():
    assert _codes("""
        def same(now, done_s):
            return done_s == now
    """) == ["DET105"]


def test_det105_positive_neq():
    assert _codes("""
        def differs(a_time_s, b):
            return a_time_s != b
    """) == ["DET105"]


def test_det105_negative_ordering():
    # Ordering comparisons are how the event list works — only == / != trip.
    assert _codes("""
        def later(now, done_s):
            return done_s > now and now <= done_s
    """) == []


def test_det105_negative_duration():
    # Durations are not timestamps: exact zero checks are legitimate.
    assert _codes("""
        def empty(duration_s):
            return duration_s == 0.0
    """) == []


def test_det105_scoped_out_of_tests():
    # Equality assertions in tests/benchmarks ARE the bit-exactness
    # contract; the rule only applies to simulation code.
    source = """
        def check(a, b):
            assert a.makespan_s == b.makespan_s
    """
    assert _codes(source, sim_scope=True) == ["DET105"]
    assert _codes(source, sim_scope=False) == []


# -- DET106: mutable default arguments ---------------------------------------------


def test_det106_positive():
    assert _codes("""
        def collect(item, acc=[]):
            acc.append(item)
            return acc
    """) == ["DET106"]


def test_det106_positive_call_default():
    assert _codes("""
        def collect(item, acc=dict()):
            acc[item] = True
            return acc
    """) == ["DET106"]


def test_det106_negative_none_default():
    assert _codes("""
        def collect(item, acc=None):
            if acc is None:
                acc = []
            acc.append(item)
            return acc
    """) == []


# -- DET107: lock discipline -------------------------------------------------------


def test_det107_positive_leak_on_branch():
    assert _codes("""
        def section(bus, fast):
            bus.busy = True
            if fast:
                return 1  # leaked: no release on this path
            bus.busy = False
            bus.freed.fire()
            return 0
    """) == ["DET107"]


def test_det107_positive_flat_leak():
    assert _codes("""
        def arm(lock):
            lock[0] = True
            return lock
    """) == ["DET107"]


def test_det107_negative_balanced():
    assert _codes("""
        def section(bus):
            while bus.busy:
                yield bus.freed
            bus.busy = True
            yield 1.0
            bus.busy = False
            bus.freed.fire()
    """) == []


def test_det107_negative_handoff_spawn():
    # Passing the held lock into a spawned drain hands ownership off —
    # the _worker -> _read_drain pattern.
    assert _codes("""
        def worker(engine, cache, drain):
            cache.busy += 1
            engine.spawn(drain(cache))
    """) == []


def test_det107_negative_release_continuation():
    # Arming a P_*REL continuation discharges the obligation — the flat
    # burst's acquire arms.
    assert _codes("""
        P_BUSREL = 6

        def arm(frame, bus, now, duration):
            bus[0] = True
            frame[0] = P_BUSREL
            return now + duration
    """) == []


def test_det107_negative_raise_exempt():
    assert _codes("""
        def strict(bus):
            bus.busy = True
            if bus is None:
                raise RuntimeError("error paths are exempt")
            bus.busy = False
    """) == []


def test_det107_counting_release_balances():
    assert _codes("""
        def cached(cache):
            cache[0] = cache[0] + 1
            yield 1.0
            cache[0] = cache[0] - 1
    """) == []


# -- shared machinery --------------------------------------------------------------


def test_suppression_by_code():
    source = """
        import numpy as np
        rng = np.random.default_rng()  # lint-ok: DET101
    """
    assert _codes(source) == []


def test_suppression_bare():
    source = """
        import numpy as np
        rng = np.random.default_rng()  # lint-ok
    """
    assert _codes(source) == []


def test_suppression_wrong_code_keeps_violation():
    source = """
        import numpy as np
        rng = np.random.default_rng()  # lint-ok: DET105
    """
    assert _codes(source) == ["DET101"]


def test_syntax_error_reports_det100():
    assert _codes("def broken(:\n    pass\n") == ["DET100"]


def test_violation_render_names_rule_and_fixit():
    violations = lint_source("import numpy as np\nr = np.random.default_rng()\n",
                             path="x.py")
    assert len(violations) == 1
    rendered = violations[0].render()
    assert rendered.startswith("x.py:2:")
    assert "DET101" in rendered
    assert "(fix:" in rendered


def test_every_rule_documented():
    for code in ("DET101", "DET102", "DET103", "DET104", "DET105",
                 "DET106", "DET107"):
        summary, fixit = RULES[code]
        assert summary and fixit


@pytest.mark.parametrize("code,snippet", [
    ("DET101", "import numpy as np\nr = np.random.default_rng()\n"),
    ("DET102", "import random\nx = random.random()\n"),
    ("DET103", "import time\nt = time.time()\n"),
    ("DET104", "def f(e, xs):\n    for x in set(xs):\n        e.spawn(x)\n"),
    ("DET105", "def f(now, t):\n    return t == now\n"),
    ("DET106", "def f(a=[]):\n    return a\n"),
    ("DET107", "def f(bus):\n    bus.busy = True\n"),
])
def test_violation_corpus_trips_every_rule(code, snippet):
    assert code in _codes(snippet)
