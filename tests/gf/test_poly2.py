"""GF(2)[x] integer-polynomial tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import get_field
from repro.gf.poly2 import (
    poly2_add,
    poly2_deg,
    poly2_divmod,
    poly2_eval_in_field,
    poly2_mod,
    poly2_mul,
    poly2_to_coeff_list,
)

polys = st.integers(min_value=0, max_value=(1 << 64) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 64) - 1)


class TestBasics:
    def test_degree(self):
        assert poly2_deg(0) == -1
        assert poly2_deg(1) == 0
        assert poly2_deg(0b1000) == 3

    def test_add_self_cancels(self):
        assert poly2_add(0b1011, 0b1011) == 0

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert poly2_mul(0b11, 0b11) == 0b101
        # (x^2 + x + 1)(x + 1) = x^3 + 1
        assert poly2_mul(0b111, 0b11) == 0b1001

    def test_mul_zero_and_one(self):
        assert poly2_mul(0, 0b1101) == 0
        assert poly2_mul(1, 0b1101) == 0b1101

    def test_divmod_known(self):
        quotient, remainder = poly2_divmod(0b1001, 0b11)  # x^3+1 / x+1
        assert quotient == 0b111
        assert remainder == 0

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly2_divmod(0b101, 0)

    def test_coeff_list(self):
        assert poly2_to_coeff_list(0b1011) == [1, 1, 0, 1]
        assert poly2_to_coeff_list(0b11, length=4) == [1, 1, 0, 0]
        with pytest.raises(ValueError):
            poly2_to_coeff_list(0b11111, length=3)


class TestDivisionProperties:
    @given(a=polys, b=nonzero_polys)
    @settings(max_examples=300)
    def test_divmod_reconstruction(self, a, b):
        quotient, remainder = poly2_divmod(a, b)
        assert poly2_mul(quotient, b) ^ remainder == a
        assert poly2_deg(remainder) < poly2_deg(b)

    @given(a=polys, b=nonzero_polys)
    @settings(max_examples=200)
    def test_mod_consistency(self, a, b):
        assert poly2_mod(a, b) == poly2_divmod(a, b)[1]

    @given(a=polys, b=polys, c=nonzero_polys)
    @settings(max_examples=200)
    def test_mod_is_ring_homomorphism(self, a, b, c):
        lhs = poly2_mod(poly2_mul(a, b), c)
        rhs = poly2_mod(poly2_mul(poly2_mod(a, c), poly2_mod(b, c)), c)
        assert lhs == rhs


class TestFieldEvaluation:
    def test_eval_at_one_counts_parity(self):
        field = get_field(4)
        # p(1) over GF(2) subfield = parity of coefficients.
        assert poly2_eval_in_field(0b111, 1, field) == 1
        assert poly2_eval_in_field(0b11, 1, field) == 0

    def test_eval_primitive_poly_at_alpha_is_zero(self):
        field = get_field(8)
        assert poly2_eval_in_field(field.primitive_poly, field.alpha_pow(1), field) == 0

    def test_eval_linearity(self, rng):
        field = get_field(8)
        a, b = 0b110101, 0b1001101
        for e in range(1, 10):
            point = field.alpha_pow(e)
            lhs = poly2_eval_in_field(a ^ b, point, field)
            rhs = poly2_eval_in_field(a, point, field) ^ poly2_eval_in_field(
                b, point, field
            )
            assert lhs == rhs
