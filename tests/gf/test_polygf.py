"""Polynomials over GF(2^m)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GaloisFieldError
from repro.gf.field import get_field
from repro.gf.polygf import GFPoly

coeff_lists = st.lists(st.integers(min_value=0, max_value=15), max_size=8)


def poly16(coeffs):
    return GFPoly(get_field(4), coeffs)


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert poly16([1, 2, 0, 0]).coeffs == [1, 2]

    def test_zero_polynomial(self, gf16):
        zero = GFPoly.zero(gf16)
        assert zero.is_zero()
        assert zero.degree == -1
        assert zero.leading_coeff() == 0

    def test_coefficient_range_validated(self, gf16):
        with pytest.raises(GaloisFieldError):
            GFPoly(gf16, [16])

    def test_monomial(self, gf16):
        mono = GFPoly.monomial(gf16, 3, coeff=5)
        assert mono.degree == 3
        assert mono.coeff(3) == 5
        assert mono.coeff(2) == 0
        with pytest.raises(GaloisFieldError):
            GFPoly.monomial(gf16, -1)

    def test_from_roots(self, gf16):
        roots = [gf16.alpha_pow(i) for i in (1, 3, 6)]
        poly = GFPoly.from_roots(gf16, roots)
        assert poly.degree == 3
        for r in roots:
            assert poly(r) == 0
        # Non-roots must not evaluate to zero.
        non_roots = [x for x in range(1, gf16.q) if x not in roots]
        assert all(poly(x) != 0 for x in non_roots)


class TestArithmetic:
    def test_add_is_coefficientwise_xor(self):
        assert (poly16([1, 2]) + poly16([3, 2, 7])).coeffs == [2, 0, 7]

    def test_mixed_field_rejected(self, gf16, gf256):
        with pytest.raises(GaloisFieldError):
            GFPoly(gf16, [1]) + GFPoly(gf256, [1])

    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=100)
    def test_mul_commutative(self, a, b):
        pa, pb = poly16(a), poly16(b)
        assert pa * pb == pb * pa

    @given(a=coeff_lists, b=coeff_lists, c=coeff_lists)
    @settings(max_examples=100)
    def test_mul_distributes_over_add(self, a, b, c):
        pa, pb, pc = poly16(a), poly16(b), poly16(c)
        assert pa * (pb + pc) == pa * pb + pa * pc

    def test_scale_and_shift(self, gf16):
        p = poly16([1, 2, 3])
        assert p.scale(1) == p
        assert p.shift(2).coeffs == [0, 0, 1, 2, 3]
        assert p.scale(0).is_zero()

    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=100)
    def test_divmod_reconstruction(self, a, b):
        pa, pb = poly16(a), poly16(b)
        if pb.is_zero():
            with pytest.raises(ZeroDivisionError):
                pa.divmod(pb)
            return
        quotient, remainder = pa.divmod(pb)
        assert quotient * pb + remainder == pa
        assert remainder.degree < pb.degree


class TestEvaluation:
    def test_horner_matches_direct(self, gf16):
        p = poly16([5, 1, 7])
        for x in range(gf16.q):
            expected = 5 ^ gf16.mul(1, x) ^ gf16.mul(7, gf16.mul(x, x))
            assert p(x) == expected

    def test_roots_brute_force(self, gf16):
        roots = [1, gf16.alpha_pow(5)]
        poly = GFPoly.from_roots(gf16, roots)
        assert sorted(poly.roots()) == sorted(roots)

    def test_formal_derivative_char2(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + d x^2 over characteristic 2.
        p = poly16([3, 5, 7, 9])
        assert p.formal_derivative().coeffs == [5, 0, 9]

    def test_derivative_of_constant_is_zero(self, gf16):
        assert GFPoly(gf16, [7]).formal_derivative().is_zero()
