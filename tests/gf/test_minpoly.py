"""Cyclotomic cosets and minimal polynomials."""

from repro.gf.field import get_field
from repro.gf.minpoly import cyclotomic_coset, cyclotomic_cosets, minimal_polynomial
from repro.gf.poly2 import poly2_deg, poly2_eval_in_field, poly2_mod, poly2_mul


class TestCosets:
    def test_known_cosets_m4(self):
        assert cyclotomic_coset(1, 4) == (1, 2, 4, 8)
        assert cyclotomic_coset(3, 4) == (3, 6, 9, 12)
        assert cyclotomic_coset(5, 4) == (5, 10)
        assert cyclotomic_coset(7, 4) == (7, 11, 13, 14)

    def test_coset_closure_under_doubling(self):
        n = (1 << 6) - 1
        for i in (1, 3, 5, 9):
            coset = set(cyclotomic_coset(i, 6))
            assert {(2 * j) % n for j in coset} == coset

    def test_cosets_partition_nonzero_exponents(self):
        m = 5
        all_elements: set[int] = set()
        for coset in cyclotomic_cosets(m):
            assert not (all_elements & set(coset)), "cosets must be disjoint"
            all_elements.update(coset)
        assert all_elements == set(range(1, (1 << m) - 1))


class TestMinimalPolynomials:
    def test_minpoly_of_alpha_is_primitive_poly(self):
        for m in (4, 8, 16):
            field = get_field(m)
            assert minimal_polynomial(field, 1) == field.primitive_poly

    def test_minpoly_annihilates_all_conjugates(self):
        field = get_field(6)
        for i in (1, 3, 5, 7, 9):
            minpoly = minimal_polynomial(field, i)
            for j in cyclotomic_coset(i, 6):
                assert poly2_eval_in_field(minpoly, field.alpha_pow(j), field) == 0

    def test_minpoly_degree_equals_coset_size(self):
        field = get_field(8)
        for i in (1, 3, 5, 17, 85):
            assert poly2_deg(minimal_polynomial(field, i)) == len(
                cyclotomic_coset(i, 8)
            )

    def test_minpoly_divides_x_q_minus_x(self):
        m = 6
        field = get_field(m)
        x_order_plus_1 = (1 << ((1 << m) - 1)) | 1  # x^(2^m - 1) + 1
        for i in (1, 3, 5, 9, 21):
            assert poly2_mod(x_order_plus_1, minimal_polynomial(field, i)) == 0

    def test_conjugate_indices_share_minpoly(self):
        field = get_field(8)
        assert minimal_polynomial(field, 3) == minimal_polynomial(field, 6)
        assert minimal_polynomial(field, 3) == minimal_polynomial(field, 12)

    def test_product_over_cosets_is_squarefree(self):
        # Distinct cosets give coprime minimal polynomials.
        field = get_field(5)
        p1 = minimal_polynomial(field, 1)
        p3 = minimal_polynomial(field, 3)
        assert p1 != p3
        product = poly2_mul(p1, p3)
        assert poly2_deg(product) == poly2_deg(p1) + poly2_deg(p3)
