"""GF(2^m) field arithmetic tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GaloisFieldError
from repro.gf.field import GF2m, default_primitive_poly, get_field

elements16 = st.integers(min_value=0, max_value=15)
nonzero16 = st.integers(min_value=1, max_value=15)


class TestConstruction:
    def test_all_supported_degrees_build(self):
        for m in range(2, 17):
            field = get_field(m)
            assert field.q == 1 << m
            assert field.order == (1 << m) - 1

    def test_non_primitive_polynomial_rejected(self):
        # x^4 + 1 is not even irreducible.
        with pytest.raises(GaloisFieldError):
            GF2m(4, 0b10001)

    def test_reducible_polynomial_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive (order 5).
        with pytest.raises(GaloisFieldError):
            GF2m(4, 0b11111)

    def test_wrong_degree_rejected(self):
        with pytest.raises(GaloisFieldError):
            GF2m(4, 0b1011)  # degree 3 polynomial for m=4

    def test_unsupported_degree_rejected(self):
        with pytest.raises(GaloisFieldError):
            GF2m(1)
        with pytest.raises(GaloisFieldError):
            GF2m(17)

    def test_default_poly_unknown_degree(self):
        with pytest.raises(GaloisFieldError):
            default_primitive_poly(25)

    def test_exp_log_are_inverse(self, gf16):
        for e in range(gf16.order):
            assert gf16.log[gf16.exp[e]] == e

    def test_equality_and_hash(self):
        assert get_field(4) == GF2m(4)
        assert hash(GF2m(4)) == hash(GF2m(4))
        assert GF2m(4) != GF2m(5)


class TestScalarOps:
    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity_and_zero(self, gf16):
        for a in range(gf16.q):
            assert gf16.mul(a, 1) == a
            assert gf16.mul(a, 0) == 0

    def test_mul_matches_polynomial_multiplication(self, gf16):
        # alpha * alpha^2 == alpha^3 in the exp table.
        a = gf16.alpha_pow(1)
        b = gf16.alpha_pow(2)
        assert gf16.mul(a, b) == gf16.alpha_pow(3)

    def test_div_and_inv(self, gf16):
        for a in range(1, gf16.q):
            assert gf16.mul(a, gf16.inv(a)) == 1
            assert gf16.div(a, a) == 1

    def test_div_by_zero(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.div(3, 0)
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)

    def test_pow(self, gf16):
        a = gf16.alpha_pow(3)
        assert gf16.pow(a, 0) == 1
        assert gf16.pow(a, 1) == a
        assert gf16.pow(a, 2) == gf16.mul(a, a)
        assert gf16.pow(a, -1) == gf16.inv(a)
        assert gf16.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf16.pow(0, -2)

    def test_element_order_divides_group_order(self, gf16):
        for a in range(1, gf16.q):
            order = gf16.element_order(a)
            assert gf16.order % order == 0
            assert gf16.pow(a, order) == 1

    def test_primitive_element_has_full_order(self, gf16):
        assert gf16.element_order(gf16.alpha_pow(1)) == gf16.order


class TestFieldAxioms:
    @given(a=elements16, b=elements16, c=elements16)
    @settings(max_examples=200)
    def test_mul_associative_and_distributive(self, a, b, c):
        field = get_field(4)
        assert field.mul(a, field.mul(b, c)) == field.mul(field.mul(a, b), c)
        left = field.mul(a, b ^ c)
        right = field.mul(a, b) ^ field.mul(a, c)
        assert left == right

    @given(a=elements16, b=elements16)
    @settings(max_examples=200)
    def test_mul_commutative(self, a, b):
        field = get_field(4)
        assert field.mul(a, b) == field.mul(b, a)

    @given(a=nonzero16, b=nonzero16)
    @settings(max_examples=200)
    def test_div_is_mul_by_inverse(self, a, b):
        field = get_field(4)
        assert field.div(a, b) == field.mul(a, field.inv(b))


class TestVectorizedOps:
    def test_mul_vec_matches_scalar(self, gf256, rng):
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        out = gf256.mul_vec(a, b)
        for x, y, z in zip(a, b, out):
            assert gf256.mul(int(x), int(y)) == int(z)

    def test_mul_vec_broadcasting(self, gf16):
        out = gf16.mul_vec(np.array([1, 2, 3]), np.array([5]))
        assert out.shape == (3,)

    def test_pow_alpha_vec(self, gf16):
        exps = np.arange(40)
        vals = gf16.pow_alpha_vec(exps)
        for e, v in zip(exps, vals):
            assert gf16.alpha_pow(int(e)) == int(v)

    def test_eval_poly_vec_matches_horner(self, gf256, rng):
        coeffs = rng.integers(0, 256, 6)
        logs = rng.integers(0, gf256.order, 100)
        values = gf256.eval_poly_vec(coeffs, logs)
        from repro.gf.polygf import GFPoly

        poly = GFPoly(gf256, [int(c) for c in coeffs])
        for lg, val in zip(logs, values):
            assert poly(gf256.alpha_pow(int(lg))) == int(val)

    def test_eval_poly_vec_zero_poly(self, gf16):
        out = gf16.eval_poly_vec(np.array([0, 0]), np.arange(5))
        assert np.all(out == 0)
