"""High-voltage subsystem facade tests."""

import numpy as np
import pytest

from repro.hv.subsystem import PUMP_TARGETS, HighVoltageSubsystem
from repro.nand.ispp import IsppAlgorithm
from repro.nand.program import PageProgrammer


@pytest.fixture(scope="module")
def hv():
    return HighVoltageSubsystem()


class TestSubsystem:
    def test_three_pumps_present(self, hv):
        assert set(hv.pumps) == {"program", "inhibit", "verify"}
        assert set(PUMP_TARGETS) == set(hv.pumps)

    def test_program_power_for_both_algorithms(self, hv):
        programmer = PageProgrammer(rng=np.random.default_rng(5))
        sv = programmer.program_random_page(8192, IsppAlgorithm.SV)
        dv = programmer.program_random_page(8192, IsppAlgorithm.DV)
        p_sv = hv.program_power(sv.ispp)
        p_dv = hv.program_power(dv.ispp)
        assert p_dv.total_energy_j > p_sv.total_energy_j
        assert p_dv.average_power_w > p_sv.average_power_w

    @pytest.mark.parametrize("name", ["program", "inhibit", "verify"])
    def test_pump_characterisation(self, hv, name):
        result = hv.characterise_pump(name)
        assert result.target_v == PUMP_TARGETS[name]
        assert result.settle_time_s < 40e-6
        assert result.average_supply_power_w > 0
        assert result.ripple_v < 0.1 * result.target_v + 0.5
