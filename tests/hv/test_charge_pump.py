"""Dickson charge-pump model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hv.charge_pump import DicksonPump, DicksonPumpParams, standard_pumps


class TestPumpCharacteristics:
    def test_open_circuit_voltage_grows_with_stages(self):
        pumps = standard_pumps()
        assert (
            pumps["verify"].open_circuit_voltage
            < pumps["inhibit"].open_circuit_voltage
            < pumps["program"].open_circuit_voltage
        )

    def test_program_pump_reaches_19v(self):
        pump = standard_pumps()["program"]
        assert pump.open_circuit_voltage > 19.0
        assert pump.max_load_current(19.0) > 0

    def test_inhibit_and_verify_targets_feasible(self):
        pumps = standard_pumps()
        assert pumps["inhibit"].max_load_current(8.0) > 1e-3
        assert pumps["verify"].max_load_current(4.5) > 5e-3

    def test_output_current_zero_when_disabled(self):
        pump = standard_pumps()["program"]
        pump.enabled = False
        assert pump.output_current(10.0) == 0.0
        pump.enabled = True
        assert pump.output_current(10.0) > 0.0

    def test_output_current_decreases_with_vout(self):
        pump = standard_pumps()["program"]
        pump.enabled = True
        assert pump.output_current(10.0) > pump.output_current(18.0)
        assert pump.output_current(pump.open_circuit_voltage + 1) == 0.0

    def test_input_current_model(self):
        pump = standard_pumps()["program"]
        base = pump.input_current(0.0)
        assert base == pytest.approx(pump.parasitic_current())
        loaded = pump.input_current(1e-3)
        assert loaded == pytest.approx(base + 13 * 1e-3)

    def test_efficiency_bounded(self):
        pump = standard_pumps()["program"]
        eff = pump.efficiency(19.0, 0.5e-3)
        assert 0.0 < eff < 1.0
        assert pump.efficiency(19.0, 0.0) == 0.0

    def test_negative_load_rejected(self):
        pump = standard_pumps()["program"]
        with pytest.raises(ConfigurationError):
            pump.input_current(-1e-3)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DicksonPumpParams("x", stages=0, stage_capacitance=1e-12, clock_hz=1e6)
        with pytest.raises(ConfigurationError):
            DicksonPumpParams("x", stages=4, stage_capacitance=0, clock_hz=1e6)
        with pytest.raises(ConfigurationError):
            DicksonPumpParams(
                "x", stages=4, stage_capacitance=1e-12, clock_hz=1e6,
                parasitic_ratio=1.5,
            )
