"""FlashPower model tests — Fig. 6 anchors."""

import pytest

from repro.errors import ConfigurationError
from repro.hv.power import ArrayLoadParams, FlashPowerModel
from repro.hv.waveform import build_program_waveform
from repro.nand.ispp import IsppAlgorithm, IsppEngine
from repro.nand.program import PageProgrammer

import numpy as np


@pytest.fixture(scope="module")
def model():
    return FlashPowerModel()


@pytest.fixture(scope="module")
def programmer():
    return PageProgrammer(rng=np.random.default_rng(61))


def program_power(model, programmer, algorithm, level=None, pe=0.0):
    if level is None:
        outcome = programmer.program_random_page(8192, algorithm, pe)
    else:
        targets = programmer.uniform_pattern_levels(level, 8192)
        outcome = programmer.program_levels(targets, algorithm, pe)
    return model.program_breakdown(build_program_waveform(outcome.ispp))


class TestPhasePowers:
    def test_verify_phase_draws_most(self, model, programmer):
        breakdown = program_power(model, programmer, IsppAlgorithm.SV)
        waveform_verify_power = breakdown.verify_energy_j
        assert waveform_verify_power > breakdown.pulse_energy_j

    def test_breakdown_totals(self, model, programmer):
        b = program_power(model, programmer, IsppAlgorithm.SV)
        assert b.total_energy_j == pytest.approx(
            b.pulse_energy_j + b.verify_energy_j + b.setup_energy_j
            + b.background_energy_j
        )
        assert b.average_power_w == pytest.approx(b.total_energy_j / b.duration_s)


class TestFig6Anchors:
    def test_average_power_in_band(self, model, programmer):
        for algorithm in IsppAlgorithm:
            for level in (1, 2, 3):
                power = program_power(model, programmer, algorithm, level)
                assert 0.12 < power.average_power_w < 0.20

    def test_dv_minus_sv_near_7mw(self, model, programmer):
        deltas = []
        for level in (1, 2, 3):
            sv = program_power(model, programmer, IsppAlgorithm.SV, level)
            dv = program_power(model, programmer, IsppAlgorithm.DV, level)
            deltas.append(dv.average_power_w - sv.average_power_w)
        mean_delta_mw = 1e3 * sum(deltas) / len(deltas)
        assert 4.0 < mean_delta_mw < 12.0  # paper: ~7.5 mW

    def test_pattern_ordering_l1_l2_l3(self, model, programmer):
        powers = [
            program_power(model, programmer, IsppAlgorithm.SV, level).average_power_w
            for level in (1, 2, 3)
        ]
        assert powers[0] < powers[1] < powers[2]

    def test_read_energy_positive(self, model):
        assert model.read_energy_j(75e-6) > 0


class TestValidation:
    def test_missing_pump_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashPowerModel(pumps={})

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrayLoadParams(verify_load=-1)

    def test_program_load_grows_with_vpp(self):
        loads = ArrayLoadParams()
        assert loads.program_load(19.0) > loads.program_load(14.0)
