"""Transient solver tests — pump ramp and regulation dynamics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hv.charge_pump import standard_pumps
from repro.hv.regulator import HystereticRegulator, RegulatorParams
from repro.hv.spice import PumpCircuit, TransientSolver


def make_circuit(load=0.2e-3, target=19.0):
    pump = standard_pumps()["program"]
    return PumpCircuit(
        pump=pump,
        regulator=HystereticRegulator(RegulatorParams(target_voltage=target)),
        load_current=load,
        v_initial=1.8,
    )


class TestTransient:
    def test_ramp_reaches_regulation(self):
        result = TransientSolver().run(make_circuit(), 40e-6)
        assert result.vout[-1] == pytest.approx(19.0, rel=0.08)
        assert result.settle_time_s < 30e-6

    def test_ripple_within_hysteresis_band(self):
        result = TransientSolver().run(make_circuit(), 60e-6)
        # Peak-to-peak ripple bounded by the 5% hysteresis plus one step.
        assert result.ripple_v < 0.06 * 19.0 + 0.5

    def test_regulation_duty_cycles_pump(self):
        result = TransientSolver().run(make_circuit(), 60e-6)
        tail = result.pump_enabled[len(result.pump_enabled) // 2:]
        duty = tail.mean()
        assert 0.0 < duty < 1.0  # pump toggles instead of running flat out

    def test_supply_current_positive_while_pumping(self):
        result = TransientSolver().run(make_circuit(), 40e-6)
        pumping = result.supply_current[result.pump_enabled]
        assert np.all(pumping > 0)
        assert result.average_supply_power(1.8) > 0

    def test_heavier_load_slows_ramp(self):
        light = TransientSolver().run(make_circuit(load=0.05e-3), 60e-6)
        heavy = TransientSolver().run(make_circuit(load=0.8e-3), 60e-6)
        assert heavy.settle_time_s >= light.settle_time_s

    def test_extra_sources(self):
        circuit = make_circuit()
        circuit.extra_sources.append(lambda t, v: -0.1e-3)  # extra sink
        result = TransientSolver().run(circuit, 40e-6)
        assert result.vout[-1] > 15.0  # still regulates

    def test_invalid_usage(self):
        with pytest.raises(ConfigurationError):
            TransientSolver(dt=0)
        with pytest.raises(SimulationError):
            TransientSolver().run(make_circuit(), duration=0)
        with pytest.raises(SimulationError):
            TransientSolver(dt=1e-6).run(make_circuit(), duration=2e-6)
        with pytest.raises(ConfigurationError):
            PumpCircuit(
                pump=standard_pumps()["program"],
                regulator=HystereticRegulator(RegulatorParams(target_voltage=19)),
                load_current=-1e-3,
            )
