"""Hysteretic regulator tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hv.regulator import HystereticRegulator, RegulatorParams


class TestRegulator:
    def test_divider_ratio(self):
        params = RegulatorParams(target_voltage=19.0, reference_voltage=1.2)
        assert params.divider_ratio == pytest.approx(1.2 / 19.0)

    def test_hysteresis_band(self):
        params = RegulatorParams(target_voltage=10.0, hysteresis=0.05)
        assert params.reenable_voltage == pytest.approx(9.5)

    def test_bang_bang_cycle(self):
        reg = HystereticRegulator(RegulatorParams(target_voltage=10.0))
        assert reg.update(5.0) is True          # below target: pumping
        assert reg.update(10.1) is False        # crossed target: off
        assert reg.update(9.8) is False         # inside band: still off
        assert reg.update(9.4) is True          # droop below band: back on
        assert reg.switch_count == 2

    def test_retarget(self):
        reg = HystereticRegulator(RegulatorParams(target_voltage=14.0))
        reg.update(14.5)
        assert not reg.pump_enabled
        reg.retarget(15.0)
        assert reg.update(14.5) is True  # new target is higher

    def test_in_regulation(self):
        reg = HystereticRegulator(RegulatorParams(target_voltage=10.0))
        assert reg.in_regulation(9.5)
        assert not reg.in_regulation(5.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RegulatorParams(target_voltage=0)
        with pytest.raises(ConfigurationError):
            RegulatorParams(target_voltage=10, hysteresis=0.6)
