"""ISPP waveform builder tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hv.waveform import Phase, PhaseKind, build_program_waveform
from repro.nand.ispp import IsppAlgorithm, IsppEngine
from repro.params import NandTimingParams


@pytest.fixture()
def results(rng):
    engine = IsppEngine(rng=rng)
    targets = rng.integers(0, 4, 4096)
    return {
        alg: engine.program_page(targets, alg) for alg in IsppAlgorithm
    }


class TestWaveform:
    def test_phase_counts(self, results):
        sv = results[IsppAlgorithm.SV]
        waveform = build_program_waveform(sv)
        kinds = [p.kind for p in waveform.phases]
        assert kinds.count(PhaseKind.SETUP) == sv.pulses
        assert kinds.count(PhaseKind.PULSE) == sv.pulses
        assert kinds.count(PhaseKind.VERIFY) == sv.verify_ops + sv.preverify_ops

    def test_duration_matches_timing_model(self, results):
        from repro.nand.timing import NandTimingModel

        for alg, result in results.items():
            waveform = build_program_waveform(result)
            timing = NandTimingModel().program_timing(result)
            # Waveform excludes the fixed command overhead.
            assert waveform.duration_s == pytest.approx(
                timing.total_s - timing.overhead_s
            )

    def test_pump_enable_sets(self, results):
        waveform = build_program_waveform(results[IsppAlgorithm.SV])
        for phase in waveform.phases:
            if phase.kind is PhaseKind.PULSE:
                assert phase.pumps == {"program", "inhibit"}
            elif phase.kind is PhaseKind.SETUP:
                assert phase.pumps == {"inhibit"}
            else:
                assert phase.pumps == {"verify"}

    def test_pump_duty_fractions(self, results):
        waveform = build_program_waveform(results[IsppAlgorithm.DV])
        program_duty = waveform.pump_duty("program")
        verify_duty = waveform.pump_duty("verify")
        assert 0 < program_duty < 0.5
        assert 0.4 < verify_duty < 0.95
        assert waveform.pump_duty("nonexistent") == 0.0

    def test_dv_has_higher_verify_duty(self, results):
        sv_wf = build_program_waveform(results[IsppAlgorithm.SV])
        dv_wf = build_program_waveform(results[IsppAlgorithm.DV])
        assert dv_wf.pump_duty("verify") > sv_wf.pump_duty("verify")

    def test_vpp_follows_staircase(self, results):
        waveform = build_program_waveform(results[IsppAlgorithm.SV])
        pulse_vpps = [
            p.vpp for p in waveform.phases if p.kind is PhaseKind.PULSE
        ]
        assert pulse_vpps == sorted(pulse_vpps)
        assert pulse_vpps[0] == pytest.approx(14.0)

    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            Phase(PhaseKind.PULSE, duration_s=0, vpp=14.0, pumps=frozenset())
