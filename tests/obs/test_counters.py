"""CounterRegistry tests: registry semantics and per-layer population."""

import numpy as np
import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.nand.geometry import NandGeometry
from repro.obs import CounterRegistry
from repro.sim.host import OpenLoopWorkload, run_open_loop_workload
from repro.ssd import DieStripedFtl, SsdDevice, SsdSession, SsdTopology
from repro.workloads.traces import TraceOp, TraceOpKind, fixed_rate_arrivals


class TestRegistry:
    def test_set_get_iterate(self):
        registry = CounterRegistry()
        registry.set("alpha", 3, "ops")
        registry.set("beta", 1.5)
        assert registry.get("alpha") == 3
        assert "alpha" in registry and "gamma" not in registry
        assert len(registry) == 2
        assert registry.as_dict() == {"alpha": 3, "beta": 1.5}
        assert [c.name for c in registry] == ["alpha", "beta"]

    def test_ids_are_stable_across_overwrites(self):
        registry = CounterRegistry()
        first = registry.set("alpha", 1)
        registry.set("beta", 2)
        second = registry.set("alpha", 10)
        third = registry.set("gamma", 3)
        assert second.attr_id == first.attr_id
        assert [c.attr_id for c in registry] == [1, 2, third.attr_id]
        assert third.attr_id == 3  # overwrites do not burn ids

    def test_add_accumulates_across_layers(self):
        registry = CounterRegistry()
        registry.add("corrected", 5, "bits")  # e.g. one per controller
        registry.add("corrected", 7)
        counter = registry._counters["corrected"]
        assert counter.value == 12
        assert counter.unit == "bits"  # first-writer unit sticks

    def test_append_builds_per_die_vectors(self):
        registry = CounterRegistry()
        for die, wear in enumerate((100, 250, 80)):
            registry.append("wear", wear, "P/E cycles")
        assert registry.get("wear") == [100, 250, 80]

    def test_render_and_rows_summarise_vectors(self):
        registry = CounterRegistry()
        registry.set("scalar", 42, "ops")
        registry.set("vector", [1.0, 3.0], "s")
        registry.set("empty", [], "s")
        rows = {row[1]: row[2] for row in registry.rows()}
        assert rows["scalar"] == 42
        assert rows["vector"] == "min 1 / mean 2 / max 3"
        assert rows["empty"] == "-"
        text = registry.render()
        assert "ATTRIBUTE" in text and "scalar" in text and "42" in text


class TestSessionMetrics:
    @pytest.fixture(scope="class")
    def run(self):
        """One mixed open-loop run on a 1ch x 2die full-pipeline SSD."""
        topology = SsdTopology(
            channels=1,
            dies_per_channel=2,
            geometry=NandGeometry(blocks=8, pages_per_block=8),
        )
        ssd = SsdDevice(topology, policy=CrossLayerPolicy(), seed=2012)
        for controller in ssd.controllers:
            controller.device.array._wear[:] = 10_000
        ssd.set_mode(OperatingMode.BASELINE, pe_reference=1e4)
        ftl = DieStripedFtl(ssd)
        rng = np.random.default_rng(5)
        lpns = list(range(8))
        ftl.write_many([(lpn, rng.bytes(4096)) for lpn in lpns])
        ops = [TraceOp(TraceOpKind.READ, 0, lpn) for lpn in lpns * 4]
        ops += [
            TraceOp(TraceOpKind.WRITE, 1, lpn, rng.bytes(4096))
            for lpn in lpns
        ]
        session = SsdSession(ftl)
        result = run_open_loop_workload(
            ftl,
            OpenLoopWorkload(
                "mix", fixed_rate_arrivals(ops, 50_000), queue_depth=8
            ),
            session=session,
        )
        return session, result, len(ops)

    def test_metrics_assembles_every_layer(self, run):
        session, _, _ = run
        metrics = session.metrics()
        for name in (
            "media_page_reads", "media_page_programs", "die_max_wear",
            "ecc_words_decoded", "ecc_corrected_bits", "ecc_bits_processed",
            "host_reads", "host_writes", "gc_collections",
            "session_submissions", "dispatch_fast_commands",
            "die_busy_s", "channel_busy_s", "ecc_busy_s",
        ):
            assert name in metrics, name

    def test_counters_reflect_the_run(self, run):
        session, result, ops = run
        metrics = session.metrics()
        # 32 reads + 8 host writes (plus the pre-run prewrites on the
        # device's own accounting).
        assert metrics.get("host_reads") >= 32
        assert metrics.get("host_writes") >= 8
        assert metrics.get("media_page_reads") >= 32
        assert metrics.get("session_submissions") == ops
        assert metrics.get("dispatch_fast_commands") == result.fast_commands
        assert metrics.get("session_in_flight") == 0
        assert metrics.get("die_max_wear") == [10_000, 10_000]
        rber = metrics.get("ecc_observed_rber")
        assert 0.0 < rber < 0.01

    def test_busy_vectors_match_core_accumulators(self, run):
        session, _, _ = run
        metrics = session.metrics()
        assert metrics.get("die_busy_s") == list(session.core.die_busy_s)
        assert metrics.get("channel_busy_s") == list(
            session.core.channel_busy_s
        )
        assert metrics.get("ecc_busy_s") == list(session.core.ecc_busy_s)

    def test_caller_registry_is_reused(self, run):
        session, _, _ = run
        registry = CounterRegistry()
        registry.set("custom", 1)
        returned = session.metrics(registry)
        assert returned is registry
        assert "custom" in returned and "host_reads" in returned
