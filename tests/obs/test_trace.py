"""TraceRecorder tests: reconciliation, utilization, Chrome export."""

import json
import random

import pytest

from repro.nand.timing import NandTimingModel
from repro.obs import (
    KIND_NAMES,
    TRACK_BUS,
    TRACK_ECC,
    TRACK_PLANE,
    TRACK_QUEUE,
    TraceRecorder,
)
from repro.sim.engine import SimEngine
from repro.ssd.scheduler import (
    CommandKind,
    DieCommand,
    PipelineConfig,
    SchedulerCore,
)
from repro.ssd.topology import SsdTopology

_TIMING = NandTimingModel()
READ_PHASES = _TIMING.read_phases(25e-6, 40e-6, 90e-6, 20e-6)
PROGRAM_PHASES = _TIMING.program_phases(180e-6, 40e-6, 20e-6)


def _stream(n: int, dies: int, seed: int = 3) -> list[DieCommand]:
    rng = random.Random(seed)
    commands = []
    for tag in range(n):
        die, plane = rng.randrange(dies), rng.randrange(2)
        if rng.random() < 0.6:
            commands.append(DieCommand.from_phases(
                CommandKind.READ, die, tag, READ_PHASES,
                plane=plane, cache_busy_s=2e-6,
            ))
        else:
            commands.append(DieCommand.from_phases(
                CommandKind.PROGRAM, die, tag, PROGRAM_PHASES, plane=plane,
            ))
    return commands


@pytest.fixture(params=[True, False], ids=["flat", "generators"])
def traced_run(request):
    """One traced 2x2 mixed-open run; returns (recorder, core, n)."""
    recorder = TraceRecorder()
    engine = SimEngine()
    topology = SsdTopology(channels=2, dies_per_channel=2)
    core = SchedulerCore(
        engine, topology, PipelineConfig.full(),
        flat=request.param, recorder=recorder,
    )
    core.start()
    engine.run()
    n = 200
    core.submit_stream(_stream(n, topology.dies), window=32, arrival_s=3e-6)
    engine.run()
    return recorder, core, n


class TestReconciliation:
    def test_span_totals_match_busy_accumulators(self, traced_run):
        recorder, core, _ = traced_run
        totals = recorder.busy_totals()
        for name, accumulators in (
            ("die", core.die_busy_s),
            ("channel", core.channel_busy_s),
            ("ecc", core.ecc_busy_s),
        ):
            for span_s, busy_s in zip(totals[name], accumulators):
                assert span_s == pytest.approx(busy_s, abs=1e-9)

    def test_one_queue_span_and_completion_per_command(self, traced_run):
        recorder, _, n = traced_run
        queue_spans = [s for s in recorder.spans if s[0] == TRACK_QUEUE]
        assert len(queue_spans) == n
        assert sorted(span[5] for span in queue_spans) == list(range(n))
        assert len(recorder.completions) == n
        for _track, _a, _b, start, end, _tag, kind in recorder.spans:
            assert end >= start
            assert 0 <= kind < len(KIND_NAMES)

    def test_clear_drops_everything(self, traced_run):
        recorder, _, _ = traced_run
        assert len(recorder) > 0
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.completions == []
        assert recorder.end_s() == 0.0


class TestUtilization:
    def test_windows_cover_the_run_and_stay_in_bounds(self, traced_run):
        recorder, core, _ = traced_run
        makespan = core.engine.now_s
        series = recorder.utilization(makespan / 5)
        assert series.windows == 5
        # Die rows aggregate all planes of the die (multi-plane overlap
        # can push a die past 1.0); bus/ECC are single resources.
        bounds = ((series.die, 2.0), (series.channel, 1.0),
                  (series.ecc, 1.0))
        for rows, bound in bounds:
            for row in rows:
                assert len(row) == 5
                assert all(0.0 <= value <= bound + 1e-9 for value in row)
        # Clipped windows resum to the unwindowed totals.
        totals = recorder.busy_totals()
        for name, rows in (("die", series.die), ("channel", series.channel),
                           ("ecc", series.ecc)):
            for index, row in enumerate(rows):
                windowed = sum(row) * series.window_s
                assert windowed == pytest.approx(totals[name][index])

    def test_queue_depth_tracks_completions(self, traced_run):
        recorder, core, _ = traced_run
        series = recorder.utilization(core.engine.now_s / 4)
        assert len(series.queue_depth) == series.windows
        assert any(depth > 0 for depth in series.queue_depth)
        # Time-integral of the depth equals summed admit->done intervals.
        integral = sum(series.queue_depth) * series.window_s
        total_wait = sum(
            completion.done_s - completion.admit_s
            for completion in recorder.completions
        )
        assert integral == pytest.approx(total_wait)

    def test_window_width_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder().utilization(0.0)


class TestChromeExport:
    def test_track_ids_are_deterministic_and_distinct(self, traced_run):
        recorder, _, _ = traced_run
        ids = {}
        for track in (TRACK_PLANE, TRACK_BUS, TRACK_ECC, TRACK_QUEUE):
            for a in range(recorder.dies if track in (TRACK_PLANE, TRACK_QUEUE)
                           else recorder.channels):
                for b in range(recorder.planes
                               if track in (TRACK_PLANE, TRACK_QUEUE) else 1):
                    tid = recorder._track_id(track, a, b)
                    assert tid == recorder._track_id(track, a, b)
                    assert (track, a, b) == ids.setdefault(tid, (track, a, b))

    def test_export_round_trips_every_span(self, traced_run, tmp_path):
        recorder, _, _ = traced_run
        path = recorder.export_chrome_trace(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(recorder)
        for event in events:
            assert event["dur"] >= 0.0
            assert event["args"]["kind"] in KIND_NAMES
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any("bus" in name for name in names)
        assert any("ecc" in name for name in names)
        assert any("queue" in name for name in names)
