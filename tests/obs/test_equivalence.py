"""Trace-on/trace-off equivalence: recording must not perturb the sim.

The instrumentation contract: every hook sits behind a ``recorder is
None`` check and records *at* the scheduler's existing accounting
points, changing no event ordering, sequence allocation or float
arithmetic.  These tests enforce it — makespans, completion tuples and
busy accumulators must be bit-identical with and without a recorder,
across both event-list backends and both dispatch paths.
"""

import random

import pytest

from repro.nand.timing import NandTimingModel
from repro.obs import TraceRecorder
from repro.sim.engine import SimEngine
from repro.ssd.scheduler import (
    CommandKind,
    DieCommand,
    PipelineConfig,
    SchedulerCore,
)
from repro.ssd.topology import SsdTopology

_TIMING = NandTimingModel()
READ_PHASES = _TIMING.read_phases(30e-6, 60e-6, 110e-6, 28e-6)
PROGRAM_PHASES = _TIMING.program_phases(200e-6, 60e-6, 25e-6)


def _stream(n: int, dies: int, seed: int = 7) -> list[DieCommand]:
    rng = random.Random(seed)
    commands = []
    for tag in range(n):
        die, plane = rng.randrange(dies), rng.randrange(2)
        if rng.random() < 0.7:
            commands.append(DieCommand.from_phases(
                CommandKind.READ, die, tag, READ_PHASES,
                plane=plane, cache_busy_s=3e-6,
            ))
        else:
            commands.append(DieCommand.from_phases(
                CommandKind.PROGRAM, die, tag, PROGRAM_PHASES, plane=plane,
            ))
    return commands


def _run(backend: str, flat: bool, traced: bool):
    """One mixed-open run; returns its full observable outcome."""
    recorder = TraceRecorder() if traced else None
    engine = SimEngine(event_list=backend)
    topology = SsdTopology(channels=2, dies_per_channel=2)
    core = SchedulerCore(
        engine, topology, PipelineConfig.full(),
        flat=flat, recorder=recorder,
    )
    completions = []
    core.on_finish.append(lambda completion: completions.append(
        tuple(completion)
    ))
    core.start()
    engine.run()
    core.submit_stream(_stream(400, topology.dies), window=64,
                       arrival_s=2e-6)
    makespan = engine.run()
    return {
        "makespan": makespan,
        "completions": completions,
        "die_busy": list(core.die_busy_s),
        "channel_busy": list(core.channel_busy_s),
        "ecc_busy": list(core.ecc_busy_s),
        "fast_commands": core.fast_commands,
        "recorder": recorder,
    }


@pytest.mark.parametrize("backend", ["heap", "calendar"])
@pytest.mark.parametrize("flat", [True, False], ids=["flat", "generators"])
def test_traced_run_is_bit_identical_to_untraced(backend, flat):
    untraced = _run(backend, flat, traced=False)
    traced = _run(backend, flat, traced=True)
    # Bit-identical, not approx: the hooks must not touch the sim.
    assert traced["makespan"] == untraced["makespan"]
    assert traced["completions"] == untraced["completions"]
    assert traced["die_busy"] == untraced["die_busy"]
    assert traced["channel_busy"] == untraced["channel_busy"]
    assert traced["ecc_busy"] == untraced["ecc_busy"]
    assert traced["fast_commands"] == untraced["fast_commands"]
    assert len(traced["recorder"]) > 0


@pytest.mark.parametrize("backend", ["heap", "calendar"])
def test_dispatch_paths_record_identical_span_sets(backend):
    """Flat core and generator workers emit the same spans (any order)."""
    flat_spans = sorted(_run(backend, True, traced=True)["recorder"].spans)
    gen_spans = sorted(_run(backend, False, traced=True)["recorder"].spans)
    assert flat_spans == gen_spans


def test_backends_agree_on_the_traced_outcome():
    heap = _run("heap", True, traced=True)
    calendar = _run("calendar", True, traced=True)
    assert heap["makespan"] == calendar["makespan"]
    assert heap["completions"] == calendar["completions"]
    assert sorted(heap["recorder"].spans) == sorted(
        calendar["recorder"].spans
    )
