"""Streaming log-bucket histogram tests.

The load-bearing property: every percentile the histogram reports is
within its documented relative error bound of the exact nearest-rank
percentile computed from retained samples (``LatencyStats``), across
distributions, sample counts and bucket resolutions.
"""

import math
import random

import pytest

from repro.obs import LogBucketHistogram, StreamingLatencyStats
from repro.sim.stats import LatencyStats

FRACTIONS = (0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0)


def _distributions(seed: int = 11):
    """Named sample sets spanning the latency range."""
    rng = random.Random(seed)
    return {
        "uniform-us": [rng.uniform(1e-6, 1e-3) for _ in range(5000)],
        "lognormal": [
            math.exp(rng.gauss(math.log(100e-6), 1.5)) for _ in range(5000)
        ],
        "bimodal": (
            [rng.uniform(20e-6, 40e-6) for _ in range(2500)]
            + [rng.uniform(2e-3, 5e-3) for _ in range(2500)]
        ),
        "heavy-tail": [
            50e-6 / max(1e-9, rng.random()) ** 0.7 for _ in range(3000)
        ],
        "tiny": [rng.uniform(1e-6, 1e-3) for _ in range(7)],
    }


class TestErrorBound:
    @pytest.mark.parametrize("buckets_per_decade", [16, 64, 128])
    def test_percentiles_within_documented_bound(self, buckets_per_decade):
        for name, samples in _distributions().items():
            histogram = LogBucketHistogram(
                buckets_per_decade=buckets_per_decade
            )
            exact = LatencyStats()
            for value in samples:
                histogram.observe(value)
                exact.observe(value)
            bound = histogram.relative_error
            for fraction in FRACTIONS:
                got = histogram.percentile(fraction)
                want = exact.percentile(fraction)
                assert got == pytest.approx(want, rel=bound), (
                    f"{name}: p{fraction:.0%} off by more than "
                    f"{bound:.3%} at {buckets_per_decade}/decade"
                )

    def test_relative_error_formula(self):
        histogram = LogBucketHistogram(buckets_per_decade=64)
        ratio = 10.0 ** (1.0 / 64)
        assert histogram.bucket_ratio == pytest.approx(ratio)
        assert histogram.relative_error == pytest.approx(
            math.sqrt(ratio) - 1.0
        )
        assert histogram.relative_error < 0.019  # the advertised ~1.8 %

    def test_fixed_memory(self):
        histogram = LogBucketHistogram()
        before = len(histogram.counts())
        for value in range(1, 20_000):
            histogram.observe(value * 1e-7)
        assert len(histogram.counts()) == before
        assert histogram.count == 19_999


class TestEdges:
    def test_empty(self):
        histogram = LogBucketHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        for fraction in FRACTIONS:
            assert histogram.percentile(fraction) == 0.0

    def test_underflow_reports_zero(self):
        histogram = LogBucketHistogram(min_value=1e-9)
        for _ in range(10):
            histogram.observe(0.0)  # uncontended queue waits
        histogram.observe(1e-3)
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(1.0) == pytest.approx(1e-3, rel=0.02)

    def test_overflow_clamps_into_top_bucket(self):
        histogram = LogBucketHistogram(max_value=1.0)
        histogram.observe(50.0)  # beyond the range
        assert histogram.count == 1
        # Midpoint clamping to the observed max keeps the report exact.
        assert histogram.percentile(1.0) == 50.0

    def test_midpoint_clamped_to_observed_extremes(self):
        histogram = LogBucketHistogram()
        histogram.observe(100e-6)
        assert histogram.percentile(0.0) == 100e-6
        assert histogram.percentile(1.0) == 100e-6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogBucketHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LogBucketHistogram(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            LogBucketHistogram(buckets_per_decade=0)
        with pytest.raises(ValueError):
            LogBucketHistogram().percentile(1.5)


class TestStreamingLatencyStats:
    def test_drop_in_surface_matches_exact_collector(self):
        samples = _distributions()["uniform-us"]
        streaming = StreamingLatencyStats()
        exact = LatencyStats()
        for value in samples:
            streaming.observe(value)
            exact.observe(value)
        assert streaming.count == exact.count
        assert streaming.mean_s == pytest.approx(exact.mean_s)
        assert streaming.stdev_s == pytest.approx(exact.stdev_s, rel=1e-6)
        assert streaming.min_s == exact.min_s  # extremes stay exact
        assert streaming.max_s == exact.max_s
        bound = streaming.histogram.relative_error
        for name in ("p50_s", "p95_s", "p99_s"):
            assert getattr(streaming, name) == pytest.approx(
                getattr(exact, name), rel=bound
            )

    def test_empty_matches_exact_collector(self):
        streaming = StreamingLatencyStats()
        exact = LatencyStats()
        for name in ("count", "mean_s", "stdev_s", "min_s", "max_s",
                     "p50_s", "p95_s", "p99_s"):
            assert getattr(streaming, name) == getattr(exact, name)
