"""Host workload simulation tests."""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.core.modes import OperatingMode
from repro.nand.geometry import NandGeometry
from repro.sim.host import HostWorkload, run_host_workload
from repro.workloads.traces import (
    TraceOp,
    TraceOpKind,
    mixed_trace,
    multimedia_playback_trace,
)


def small_controller(seed=31):
    return NandController(
        NandGeometry(blocks=4, pages_per_block=8),
        rng=np.random.default_rng(seed),
    )


class TestHostWorkload:
    def test_multimedia_trace_completes(self):
        controller = small_controller()
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=2)
        result = run_host_workload(controller, HostWorkload("mm", trace))
        assert result.stats.writes == 4
        assert result.stats.reads == 8
        assert result.elapsed_s > 0
        assert result.uncorrectable_pages == 0

    def test_read_throughput_matches_analytic(self):
        """DES-measured read throughput equals the serial latency model."""
        controller = small_controller()
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=4)
        result = run_host_workload(controller, HostWorkload("mm", trace))
        mean_read_latency = result.stats.read_latency.mean_s
        analytic_mb_s = 4096 / mean_read_latency / 1e6
        measured = result.stats.bytes_read / (
            result.stats.read_latency.total_s
        ) / 1e6
        assert measured == pytest.approx(analytic_mb_s, rel=1e-6)

    def test_max_read_mode_faster_reads(self):
        base_ctrl = small_controller()
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=4)
        base = run_host_workload(base_ctrl, HostWorkload("mm", trace))

        fast_ctrl = small_controller()
        fast_ctrl.set_mode(OperatingMode.MAX_READ_THROUGHPUT, pe_reference=1e5)
        # Pages must be decodable: keep stored t consistent by writing in
        # the same mode.
        fast = run_host_workload(fast_ctrl, HostWorkload("mm", trace))
        assert (
            fast.stats.read_latency.mean_s < base.stats.read_latency.mean_s
            or fast.read_mb_s >= base.read_mb_s
        )

    def test_erase_ops_handled(self):
        controller = small_controller()
        ops = [
            TraceOp(TraceOpKind.WRITE, 0, 0, bytes(4096)),
            TraceOp(TraceOpKind.ERASE, 0),
            TraceOp(TraceOpKind.WRITE, 0, 0, bytes(4096)),
            TraceOp(TraceOpKind.READ, 0, 0),
        ]
        result = run_host_workload(controller, HostWorkload("erase", ops))
        assert result.stats.writes == 2
        assert result.stats.reads == 1

    def test_think_time_extends_elapsed(self):
        trace = mixed_trace(blocks=1, pages_per_block=2)
        quick = run_host_workload(
            small_controller(), HostWorkload("m", trace, think_time_s=0.0)
        )
        slow = run_host_workload(
            small_controller(), HostWorkload("m", trace, think_time_s=1e-3)
        )
        assert slow.elapsed_s > quick.elapsed_s


class TestFtlWorkload:
    def _ftl(self, seed=31):
        from repro.ftl.ftl import FlashTranslationLayer

        controller = small_controller(seed)
        return FlashTranslationLayer(controller, blocks=[0, 1, 2])

    def test_trace_runs_through_ftl(self):
        from repro.sim.host import run_ftl_workload

        trace = multimedia_playback_trace(blocks=1, pages_per_block=4,
                                          read_passes=2)
        result = run_ftl_workload(
            self._ftl(), HostWorkload("mm-ftl", trace, batch_pages=4)
        )
        assert result.stats.writes == 4
        assert result.stats.reads == 8
        assert result.elapsed_s > 0

    def test_batched_ftl_stream_matches_serial_data(self):
        from repro.sim.host import run_ftl_workload

        trace = mixed_trace(blocks=2, pages_per_block=3)
        serial_ftl, batched_ftl = self._ftl(5), self._ftl(5)
        serial = run_ftl_workload(serial_ftl, HostWorkload("serial", trace))
        batched = run_ftl_workload(
            batched_ftl, HostWorkload("batched", trace, batch_pages=8)
        )
        assert batched.stats.reads == serial.stats.reads
        assert batched.stats.writes == serial.stats.writes
        # Logical contents end up identical whichever way the stream
        # was chunked.
        for lpn in serial_ftl.mapping.mapped_lpns():
            assert batched_ftl.read(lpn)[0] == serial_ftl.read(lpn)[0]

    def test_overwrites_through_ftl_stay_consistent(self):
        from repro.sim.host import run_ftl_workload
        from repro.workloads.traces import TraceOp, TraceOpKind

        payload_a = bytes([0xAA]) * 4096
        payload_b = bytes([0xBB]) * 4096
        ops = [
            TraceOp(TraceOpKind.WRITE, 0, 0, payload_a),
            TraceOp(TraceOpKind.WRITE, 0, 0, payload_b),  # logical update
            TraceOp(TraceOpKind.READ, 0, 0),
        ]
        ftl = self._ftl()
        result = run_ftl_workload(ftl, HostWorkload("upd", ops))
        assert result.stats.writes == 2
        assert ftl.read(0)[0] == payload_b

    def test_erase_discards_only_that_blocks_pages(self):
        """Host-side ERASE trims the erased block via the per-block index."""
        from repro.sim.host import run_ftl_workload

        keep = bytes([0x11]) * 4096
        ops = [
            TraceOp(TraceOpKind.WRITE, 0, page, bytes(4096))
            for page in range(3)
        ]
        ops += [TraceOp(TraceOpKind.WRITE, 1, 0, keep)]
        ops += [TraceOp(TraceOpKind.ERASE, 0)]
        ops += [TraceOp(TraceOpKind.READ, 1, 0)]
        ops += [TraceOp(TraceOpKind.ERASE, 2)]  # never-named block: no-op
        ftl = self._ftl()
        result = run_ftl_workload(ftl, HostWorkload("erase", ops))
        assert result.stats.reads == 1
        # Block-0 names (LPNs 0-2) trimmed, block-1 name (LPN 3) intact.
        assert not any(ftl.is_mapped(lpn) for lpn in range(3))
        assert ftl.read(3)[0] == keep

    def test_latency_percentiles_include_queue_service_split(self):
        from repro.sim.host import run_ftl_workload

        trace = mixed_trace(blocks=1, pages_per_block=2)
        result = run_ftl_workload(self._ftl(), HostWorkload("m", trace))
        tails = result.latency_percentiles()
        for key in ("queue_p50_s", "queue_p95_s", "queue_p99_s",
                    "service_p50_s", "service_p95_s", "service_p99_s"):
            assert key in tails
        # Single-die runners never queue host-side.
        assert tails["queue_p99_s"] == 0.0
