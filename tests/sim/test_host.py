"""Host workload simulation tests."""

import numpy as np
import pytest

from repro.controller.controller import NandController
from repro.core.modes import OperatingMode
from repro.nand.geometry import NandGeometry
from repro.sim.host import HostWorkload, run_host_workload
from repro.workloads.traces import (
    TraceOp,
    TraceOpKind,
    mixed_trace,
    multimedia_playback_trace,
)


def small_controller(seed=31):
    return NandController(
        NandGeometry(blocks=4, pages_per_block=8),
        rng=np.random.default_rng(seed),
    )


class TestHostWorkload:
    def test_multimedia_trace_completes(self):
        controller = small_controller()
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=2)
        result = run_host_workload(controller, HostWorkload("mm", trace))
        assert result.stats.writes == 4
        assert result.stats.reads == 8
        assert result.elapsed_s > 0
        assert result.uncorrectable_pages == 0

    def test_read_throughput_matches_analytic(self):
        """DES-measured read throughput equals the serial latency model."""
        controller = small_controller()
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=4)
        result = run_host_workload(controller, HostWorkload("mm", trace))
        mean_read_latency = result.stats.read_latency.mean_s
        analytic_mb_s = 4096 / mean_read_latency / 1e6
        measured = result.stats.bytes_read / (
            result.stats.read_latency.total_s
        ) / 1e6
        assert measured == pytest.approx(analytic_mb_s, rel=1e-6)

    def test_max_read_mode_faster_reads(self):
        base_ctrl = small_controller()
        trace = multimedia_playback_trace(blocks=1, pages_per_block=4, read_passes=4)
        base = run_host_workload(base_ctrl, HostWorkload("mm", trace))

        fast_ctrl = small_controller()
        fast_ctrl.set_mode(OperatingMode.MAX_READ_THROUGHPUT, pe_reference=1e5)
        # Pages must be decodable: keep stored t consistent by writing in
        # the same mode.
        fast = run_host_workload(fast_ctrl, HostWorkload("mm", trace))
        assert (
            fast.stats.read_latency.mean_s < base.stats.read_latency.mean_s
            or fast.read_mb_s >= base.read_mb_s
        )

    def test_erase_ops_handled(self):
        controller = small_controller()
        ops = [
            TraceOp(TraceOpKind.WRITE, 0, 0, bytes(4096)),
            TraceOp(TraceOpKind.ERASE, 0),
            TraceOp(TraceOpKind.WRITE, 0, 0, bytes(4096)),
            TraceOp(TraceOpKind.READ, 0, 0),
        ]
        result = run_host_workload(controller, HostWorkload("erase", ops))
        assert result.stats.writes == 2
        assert result.stats.reads == 1

    def test_think_time_extends_elapsed(self):
        trace = mixed_trace(blocks=1, pages_per_block=2)
        quick = run_host_workload(
            small_controller(), HostWorkload("m", trace, think_time_s=0.0)
        )
        slow = run_host_workload(
            small_controller(), HostWorkload("m", trace, think_time_s=1e-3)
        )
        assert slow.elapsed_s > quick.elapsed_s
