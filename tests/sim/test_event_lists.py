"""Event-list backends: ordering equivalence and engine-level contracts.

The determinism contract (see ``sim/engine.py``): the calendar queue and
the reference heap must produce the *identical* pop sequence — time-major,
FIFO within a timestamp — on any schedule, including same-timestamp ties
and interleaved push/pop.  These tests drive both structures directly
with randomized schedules and also check the engine-facing behaviours
this PR added: the named-backend constructor, the pending-count
``max_events`` error, and handoff signal semantics.
"""

import heapq
import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    CalendarEventList,
    DEFAULT_BUCKET_WIDTH_S,
    HeapEventList,
    SimEngine,
)


def _random_schedule_agreement(rng, event_list, steps: int) -> None:
    """Interleave pushes/pops; the list must match a reference heap."""
    reference: list = []
    now = 0.0
    seq = 0
    for step in range(steps):
        if reference and rng.random() < 0.45:
            popped = event_list.pop()
            expected = heapq.heappop(reference)
            assert popped == expected, f"diverged at step {step}"
            now = popped[0]
        else:
            # Heavy tie mass: ~1/3 of pushes land exactly at `now`
            # (signal wake-ups do), the rest spread over the phase
            # spectrum from sub-bucket offsets to multi-millisecond
            # erases.
            offset = rng.choice(
                [0.0, 0.0, 1e-7, 5e-6, DEFAULT_BUCKET_WIDTH_S, 3e-3]
            )
            entry = (now + offset * rng.random(), seq, None)
            seq += 1
            event_list.push(entry)
            heapq.heappush(reference, entry)
    while reference:
        assert event_list.pop() == heapq.heappop(reference)
    assert not event_list
    assert len(event_list) == 0


class TestOrderingAgreement:
    @pytest.mark.parametrize("seed", range(20))
    def test_calendar_matches_heap_on_random_schedules(self, seed):
        rng = random.Random(seed)
        _random_schedule_agreement(rng, CalendarEventList(), steps=500)

    @pytest.mark.parametrize("seed", range(5))
    def test_heap_event_list_matches_reference(self, seed):
        rng = random.Random(seed)
        _random_schedule_agreement(rng, HeapEventList(), steps=300)

    def test_fifo_within_one_timestamp(self):
        # All at one instant: pop order must be exactly push (seq) order.
        calendar = CalendarEventList()
        entries = [(1e-3, seq, None) for seq in range(50)]
        for entry in entries:
            calendar.push(entry)
        assert [calendar.pop() for _ in entries] == entries

    def test_reuse_after_drain_accepts_earlier_times(self):
        # A drained list is reused at a rebased (smaller) clock — the
        # cached head bucket must not shadow the new epoch.
        calendar = CalendarEventList()
        calendar.push((5e-3, 0, None))
        assert calendar.pop() == (5e-3, 0, None)
        calendar.push((0.0, 1, None))
        calendar.push((1e-6, 2, None))
        assert calendar.pop() == (0.0, 1, None)
        assert calendar.pop() == (1e-6, 2, None)

    def test_peek_time_tracks_minimum(self):
        calendar = CalendarEventList()
        calendar.push((3e-3, 0, None))
        assert calendar.peek_time() == 3e-3
        calendar.push((1e-6, 1, None))
        assert calendar.peek_time() == 1e-6
        calendar.pop()
        assert calendar.peek_time() == 3e-3

    def test_invalid_bucket_width_rejected(self):
        with pytest.raises(SimulationError):
            CalendarEventList(bucket_width_s=0.0)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown event list"):
            SimEngine(event_list="splay")

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_identical_run_across_backends(self, backend):
        # A full engine run (delays, signals, ties) must be bit-exact
        # regardless of backend.
        def trace_run(engine):
            order = []
            gate = engine.signal()

            def waiter(name):
                yield gate
                order.append((name, engine.now_s))

            def firer():
                yield 250e-6
                gate.fire()
                yield 0.0
                order.append(("firer", engine.now_s))

            for name in ("a", "b", "c"):
                engine.spawn(waiter(name))
            engine.spawn(firer())
            engine.run()
            return order, engine.now_s, engine.events_processed

        reference = trace_run(SimEngine(event_list="heap"))
        assert trace_run(SimEngine(event_list=backend)) == reference


class TestMaxEventsExhaustion:
    def test_error_names_pending_count_and_is_runtime_error(self):
        engine = SimEngine()

        def ticker():
            while True:
                yield 1e-6

        for _ in range(3):
            engine.spawn(ticker())
        with pytest.raises(RuntimeError, match=r"exceeded 10 events") as err:
            engine.run(max_events=10)
        # The interrupted event goes back in the queue: all 3 tickers
        # still pending, named in the message.
        assert "3 event(s) still pending" in str(err.value)
        assert isinstance(err.value, SimulationError)

    def test_exhausted_run_can_resume(self):
        engine = SimEngine()
        done = []

        def ticker():
            for _ in range(30):
                yield 1e-6
            done.append(engine.now_s)

        engine.spawn(ticker())
        with pytest.raises(SimulationError):
            engine.run(max_events=10)
        engine.run()  # picks up exactly where the guard stopped it
        assert done and done[0] == pytest.approx(30e-6)


class TestHandoffSignals:
    def test_handoff_wakes_only_head_waiter(self):
        engine = SimEngine()
        woken = []
        gate = engine.signal(handoff=True)

        def waiter(name):
            yield gate
            woken.append(name)

        def firer():
            yield 1e-6
            assert gate.fire() == 1

        for name in ("a", "b", "c"):
            engine.spawn(waiter(name))
        engine.spawn(firer())
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()  # b and c stay parked forever
        assert woken == ["a"]

    def test_handoff_lock_discipline_matches_wake_all(self):
        # The scheduler's re-check-loop discipline: N holders contend
        # for one serially-reusable resource.  Handoff and wake-all
        # must produce identical acquisition orders and finish times.
        def run(handoff: bool):
            engine = SimEngine()
            busy = [False]
            freed = engine.signal(handoff=handoff)
            log = []

            def holder(name, hold_s):
                while busy[0]:
                    yield freed
                busy[0] = True
                yield hold_s
                busy[0] = False
                freed.fire()
                log.append((name, engine.now_s))

            for index, name in enumerate("abcde"):
                engine.spawn(holder(name, (index + 1) * 10e-6))
            engine.run()
            return log

        assert run(handoff=True) == run(handoff=False)

    def test_fire_with_no_waiters_is_noop(self):
        engine = SimEngine()
        signal = engine.signal()
        assert signal.fire() == 0
        assert engine.idle
        assert engine.events_processed == 0
