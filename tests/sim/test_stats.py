"""Statistics collector tests."""

import pytest

from repro.sim.stats import LatencyStats, ThroughputStats


class TestLatencyStats:
    def test_streaming_moments(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 3.0):
            stats.observe(v)
        assert stats.count == 3
        assert stats.mean_s == pytest.approx(2.0)
        assert stats.min_s == 1.0
        assert stats.max_s == 3.0
        assert stats.stdev_s == pytest.approx((2 / 3) ** 0.5)

    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.mean_s == 0.0
        assert stats.stdev_s == 0.0
        assert stats.min_s == 0.0  # not the math.inf sentinel
        assert stats.max_s == 0.0


class TestThroughputStats:
    def test_accounting(self):
        stats = ThroughputStats()
        stats.observe_read(4096, 100e-6)
        stats.observe_read(4096, 120e-6)
        stats.observe_write(4096, 800e-6)
        assert stats.reads == 2
        assert stats.writes == 1
        assert stats.bytes_read == 8192
        assert stats.read_mb_s(1.0) == pytest.approx(8192 / 1e6)
        assert stats.write_latency.mean_s == pytest.approx(800e-6)

    def test_zero_elapsed(self):
        stats = ThroughputStats()
        assert stats.read_mb_s(0.0) == 0.0


class TestLatencyPercentiles:
    def test_nearest_rank_percentiles(self):
        stats = LatencyStats()
        for v in range(1, 101):  # 1..100 us
            stats.observe(v * 1e-6)
        assert stats.p50_s == pytest.approx(50e-6)
        assert stats.p95_s == pytest.approx(95e-6)
        assert stats.p99_s == pytest.approx(99e-6)
        assert stats.percentile(1.0) == pytest.approx(100e-6)
        assert stats.percentile(0.0) == pytest.approx(1e-6)

    def test_percentiles_insensitive_to_observation_order(self):
        forward, backward = LatencyStats(), LatencyStats()
        values = [5e-6, 1e-6, 9e-6, 3e-6, 7e-6]
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        for q in (0.5, 0.95, 0.99):
            assert forward.percentile(q) == backward.percentile(q)

    def test_empty_and_invalid(self):
        stats = LatencyStats()
        assert stats.p99_s == 0.0
        with pytest.raises(ValueError):
            stats.percentile(1.5)
