"""Runtime DES sanitizer tests: injected violations and bit-exactness.

Two halves.  The violation half deliberately injects each breakage
class — backwards time, double acquire/release, leaked lock, leaked
in-flight accounting, negative phase, busy over-accumulation — against
stub objects or real scheduler cores and asserts the sanitizer raises
:class:`SanitizerError` *naming the offending resource, tag or
timestamp*.  The equivalence half proves the acceptance criterion that
arming the sanitizer changes no observable behaviour: armed and
disarmed runs produce byte-identical completion timelines across the
flat/generator and heap/calendar configuration grid.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.nand.geometry import NandGeometry
from repro.sim import engine as engine_mod
from repro.sim.engine import SimEngine
from repro.sim.sanitizer import DesSanitizer, SanitizerError
from repro.ssd.scheduler import (
    CommandKind,
    DieCommand,
    PipelineConfig,
    SchedulerCore,
    closed_admission,
)
from repro.ssd.topology import SsdTopology


def _topology(channels: int = 2, dies_per_channel: int = 2) -> SsdTopology:
    return SsdTopology(
        channels=channels,
        dies_per_channel=dies_per_channel,
        geometry=NandGeometry(blocks=4, pages_per_block=16),
    )


def _mixed_batch(count: int = 24) -> list[DieCommand]:
    kinds = (CommandKind.READ, CommandKind.PROGRAM, CommandKind.ERASE)
    commands = []
    for i in range(count):
        kind = kinds[i % 3]
        commands.append(DieCommand(
            kind=kind,
            die=i % 4,
            tag=i,
            die_s=(100e-6, 600e-6, 2.5e-3)[i % 3],
            channel_s=(50e-6, 60e-6, 0.0)[i % 3],
        ))
    return commands


def _run(flat: bool, sanitize: bool, event_list: str = "calendar",
         pipeline: PipelineConfig | None = None, queue_depth: int | None = 4):
    """One closed-batch run; returns (makespan, completions, sanitizer)."""
    engine = SimEngine(event_list=event_list, sanitize=sanitize)
    core = SchedulerCore(engine, _topology(), pipeline, flat=flat)
    engine.spawn(closed_admission(core, _mixed_batch(), queue_depth))
    core.start()
    makespan = engine.run()
    if engine.sanitizer is not None:
        engine.sanitizer.check_drain(core, makespan)
    return makespan, core.completions, engine.sanitizer


# -- arming --------------------------------------------------------------------------


class TestArming:
    def test_default_is_disarmed(self, monkeypatch):
        # Pin the module default: under ``pytest --sanitize`` it is
        # flipped process-wide, which is exactly what this test is not
        # about.
        monkeypatch.setattr(engine_mod, "SANITIZE_DEFAULT", False)
        assert SimEngine().sanitizer is None

    def test_sanitize_true_arms(self):
        assert isinstance(SimEngine(sanitize=True).sanitizer, DesSanitizer)

    def test_module_default_arms_none(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "SANITIZE_DEFAULT", True)
        assert SimEngine().sanitizer is not None
        # Explicit False beats the process-wide default — the
        # equivalence tests below rely on this under ``pytest --sanitize``.
        assert SimEngine(sanitize=False).sanitizer is None

    def test_armed_run_performs_checks(self):
        _, _, sanitizer = _run(flat=True, sanitize=True)
        assert sanitizer.checks > 0


# -- backwards time ------------------------------------------------------------------


class TestBackwardsTime:
    def test_event_behind_clock_names_both_timestamps(self):
        engine = SimEngine(sanitize=True)

        def proc():
            yield 1.0

        # Corrupt the state by hand: the clock already past an event
        # still sitting in the list (a healthy event list can never
        # produce this — pops are (time, seq)-ordered).
        engine.now_s = 5.0
        engine._queue.push((2.0, engine._next_seq(), proc()))
        with pytest.raises(SanitizerError, match="backwards time") as exc:
            engine.run()
        assert "2.0" in str(exc.value)
        assert "5.0" in str(exc.value)

    def test_disarmed_engine_does_not_police_order(self):
        # The disarmed engine trusts its event list (zero-cost-off);
        # only the armed one pays for the monotonicity check.
        engine = SimEngine(sanitize=False)

        def proc():
            yield 1.0

        engine.now_s = 5.0
        engine._queue.push((2.0, engine._next_seq(), proc()))
        engine.run()  # no error


# -- lock discipline -----------------------------------------------------------------


class TestLockDiscipline:
    def _core(self) -> SchedulerCore:
        engine = SimEngine(sanitize=True)
        return SchedulerCore(engine, _topology(), flat=False)

    def test_double_acquire_names_the_bus(self):
        core = self._core()
        core._buses[1].busy = True
        with pytest.raises(SanitizerError, match=r"double acquire of bus\[1\]"):
            core._buses[1].busy = True

    def test_double_release_names_the_ecc(self):
        core = self._core()
        core._engines[0].busy = True
        core._engines[0].busy = False
        with pytest.raises(SanitizerError, match=r"double release of ecc\[0\]"):
            core._engines[0].busy = False

    def test_release_of_never_held_cache(self):
        core = self._core()
        with pytest.raises(
            SanitizerError, match=r"double release of cache\[1/0\]"
        ):
            core._caches[1][0].busy = False

    def test_counting_lock_capacity(self):
        san = DesSanitizer()
        key = ("cache", 0, 0)
        san.register_lock(key, capacity=2)
        san.transition(key, 0, 1, capacity=2)
        san.transition(key, 1, 2, capacity=2)
        with pytest.raises(
            SanitizerError, match=r"double acquire of cache\[0/0\]"
        ):
            san.transition(key, 2, 3, capacity=2)

    def test_counting_lock_rejects_jumps(self):
        san = DesSanitizer()
        key = ("cache", 3, 1)
        san.register_lock(key, capacity=2)
        with pytest.raises(SanitizerError, match="invalid transition"):
            san.transition(key, 0, 2, capacity=2)

    def test_flat_release_check_names_the_resource(self):
        # The flat dispatch core's release arms pass the live busy value;
        # a free lock at a release site is a double release.
        san = DesSanitizer()
        with pytest.raises(SanitizerError, match=r"double release of ecc\[1\]"):
            san.release_check(("ecc", 1), False)

    def test_flat_release_check_passes_when_held(self):
        san = DesSanitizer()
        san.release_check(("bus", 0), True)
        assert san.checks == 1


# -- phase sanity --------------------------------------------------------------------


class _StubPhase:
    def __init__(self, duration_s: float, occupancy_s: float | None = None):
        self.duration_s = duration_s
        self.occupancy_s = (
            duration_s if occupancy_s is None else occupancy_s
        )


class _StubCommand:
    """Minimal admission-hook target.

    ``DieCommand.__post_init__`` (rightly) rejects negative durations at
    construction, so forging a broken phase plan needs a stand-in — the
    sanitizer only reads ``tag`` and ``phase_plan()``.
    """

    def __init__(self, tag: int, phases):
        self.tag = tag
        self.die = 0
        self.plane = 0
        self._phases = tuple(phases)

    def phase_plan(self):
        return self._phases


class TestPhaseSanity:
    def test_negative_duration_names_tag_and_index(self):
        command = _StubCommand(42, [_StubPhase(1e-4), _StubPhase(-5e-6)])
        with pytest.raises(SanitizerError, match="command tag 42") as exc:
            DesSanitizer().check_command(command)
        assert "phase 1" in str(exc.value)
        assert "negative duration" in str(exc.value)

    def test_occupancy_exceeding_duration(self):
        command = _StubCommand(7, [_StubPhase(1e-4, occupancy_s=2e-4)])
        with pytest.raises(SanitizerError, match="command tag 7") as exc:
            DesSanitizer().check_command(command)
        assert "occupancy" in str(exc.value)

    def test_clean_plan_passes(self):
        command = _StubCommand(0, [_StubPhase(1e-4, occupancy_s=5e-5)])
        DesSanitizer().check_command(command)

    def test_armed_enqueue_rejects_broken_plan(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=False)
        with pytest.raises(SanitizerError, match="command tag 9"):
            core.enqueue(_StubCommand(9, [_StubPhase(-1e-6)]))


# -- drain audit ---------------------------------------------------------------------


class TestDrainAudit:
    def test_leaked_generator_lock_named(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=False)
        core._buses[1].busy = True
        core._caches[2][0].busy = True
        with pytest.raises(
            SanitizerError, match=r"leaked lock\(s\) at drain"
        ) as exc:
            engine.sanitizer.check_drain(core)
        assert "bus[1]" in str(exc.value)
        assert "cache[2/0]" in str(exc.value)

    def test_leaked_flat_lock_named(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=True)
        core._flat_eccs[0][0] = True
        with pytest.raises(SanitizerError, match=r"ecc\[0\]"):
            engine.sanitizer.check_drain(core)

    def test_in_flight_accounting_mismatch_named(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=True)
        core._meta[13] = (0.0, None)
        with pytest.raises(
            SanitizerError, match="in-flight accounting mismatch"
        ) as exc:
            engine.sanitizer.check_drain(core)
        assert "count 0 vs 1" in str(exc.value)

    def test_busy_conservation_names_resource(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=True)
        core.channel_busy_s[1] = 2.0
        with pytest.raises(
            SanitizerError, match="busy conservation violated"
        ) as exc:
            engine.sanitizer.check_drain(core, elapsed_s=1.0)
        assert "channel 1" in str(exc.value)

    def test_busy_within_float_tolerance_passes(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=True)
        core.die_busy_s[0] = 1.0 + 1e-13
        engine.sanitizer.check_drain(core, elapsed_s=1.0)

    def test_quiescent_core_passes(self):
        engine = SimEngine(sanitize=True)
        core = SchedulerCore(engine, _topology(), flat=False)
        engine.sanitizer.check_drain(core, elapsed_s=0.0)


# -- bit-exactness of armed runs -----------------------------------------------------


PIPELINES = [
    pytest.param(None, id="default"),
    pytest.param(
        PipelineConfig(cache_read=True, multi_plane=True,
                       pipelined_ecc=True, read_ahead=True),
        id="cached",
    ),
]


class TestArmedEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES)
    @pytest.mark.parametrize("event_list", ["calendar", "heap"])
    @pytest.mark.parametrize("flat", [False, True],
                             ids=["generator", "flat"])
    def test_armed_matches_disarmed_bit_exactly(
        self, flat, event_list, pipeline,
    ):
        base_span, base_done, _ = _run(
            flat, sanitize=False, event_list=event_list, pipeline=pipeline,
        )
        span, done, sanitizer = _run(
            flat, sanitize=True, event_list=event_list, pipeline=pipeline,
        )
        # Exact float equality, not approx: the sanitizer only observes.
        assert span == base_span
        assert done == base_done
        assert sanitizer.checks > 0

    def test_flat_and_generator_agree_while_armed(self):
        flat_span, flat_done, _ = _run(flat=True, sanitize=True)
        gen_span, gen_done, _ = _run(flat=False, sanitize=True)
        assert flat_span == gen_span
        assert sorted(flat_done) == sorted(gen_done)
