"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimEngine


class TestEngine:
    def test_single_process_advances_clock(self):
        log = []

        def process():
            log.append("a")
            yield 5.0
            log.append("b")
            yield 2.0
            log.append("c")

        engine = SimEngine()
        engine.spawn(process())
        final = engine.run()
        assert log == ["a", "b", "c"]
        assert final == pytest.approx(7.0)

    def test_two_processes_interleave(self):
        log = []

        def make(name, delay):
            def process():
                for i in range(3):
                    log.append((name, i))
                    yield delay
            return process()

        engine = SimEngine()
        engine.spawn(make("fast", 1.0))
        engine.spawn(make("slow", 2.5))
        engine.run()
        # fast's second step (t=1) precedes slow's second step (t=2.5).
        assert log.index(("fast", 1)) < log.index(("slow", 1))

    def test_run_until_bounds_virtual_time(self):
        def process():
            while True:
                yield 1.0

        engine = SimEngine()
        engine.spawn(process())
        final = engine.run(until_s=10.0, max_events=1000)
        assert final == pytest.approx(10.0)
        assert engine.events_processed <= 11

    def test_deterministic_tie_breaking(self):
        log = []

        def make(name):
            def process():
                log.append(name)
                yield 1.0
                log.append(name)
            return process()

        engine = SimEngine()
        engine.spawn(make("first"))
        engine.spawn(make("second"))
        engine.run()
        assert log == ["first", "second", "first", "second"]

    def test_runaway_guard(self):
        def process():
            while True:
                yield 0.0

        engine = SimEngine()
        engine.spawn(process())
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_invalid_yield(self):
        def process():
            yield -1.0

        engine = SimEngine()
        engine.spawn(process())
        with pytest.raises(SimulationError):
            engine.run()

    def test_negative_spawn_delay(self):
        engine = SimEngine()
        with pytest.raises(SimulationError):
            engine.spawn(iter(()), delay_s=-1.0)


class TestSignal:
    def test_fire_wakes_parked_processes_in_park_order(self):
        log = []

        def waiter(name, signal):
            log.append((name, "park"))
            yield signal
            log.append((name, "woke"))

        def firer(signal):
            yield 3.0
            signal.fire()

        engine = SimEngine()
        signal = engine.signal()
        engine.spawn(waiter("a", signal))
        engine.spawn(waiter("b", signal))
        engine.spawn(firer(signal))
        final = engine.run()
        assert final == pytest.approx(3.0)
        assert log == [
            ("a", "park"), ("b", "park"), ("a", "woke"), ("b", "woke"),
        ]

    def test_fire_reports_woken_count_and_clears_waiters(self):
        def waiter(signal):
            yield signal

        def firer(signal, counts):
            yield 1.0
            counts.append(signal.fire())
            counts.append(signal.fire())

        engine = SimEngine()
        signal = engine.signal()
        counts = []
        engine.spawn(waiter(signal))
        engine.spawn(firer(signal, counts))
        engine.run()
        assert counts == [1, 0]

    def test_parked_process_without_firer_deadlocks(self):
        def waiter(signal):
            yield signal

        engine = SimEngine()
        signal = engine.signal()
        engine.spawn(waiter(signal))
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_woken_process_resumes_at_fire_time(self):
        times = []

        def waiter(engine, signal):
            yield signal
            times.append(engine.now_s)
            yield 2.0
            times.append(engine.now_s)

        def firer(signal):
            yield 5.0
            signal.fire()

        engine = SimEngine()
        signal = engine.signal()
        engine.spawn(waiter(engine, signal))
        engine.spawn(firer(signal))
        engine.run()
        assert times == [pytest.approx(5.0), pytest.approx(7.0)]


class TestDaemonSignalsAndRebase:
    def test_daemon_parked_process_is_not_a_deadlock(self):
        def worker(signal):
            while True:
                yield signal

        engine = SimEngine()
        signal = engine.signal(daemon=True)
        engine.spawn(worker(signal))
        assert engine.run() == 0.0  # drains with the worker still parked

    def test_daemon_worker_survives_across_runs(self):
        served = []

        def worker(engine, signal, queue):
            while True:
                while not queue:
                    yield signal
                item = queue.pop(0)
                yield 1.0
                served.append((item, engine.now_s))

        def submit(signal, queue, item):
            queue.append(item)
            signal.fire()
            yield 0.0

        engine = SimEngine()
        signal = engine.signal(daemon=True)
        queue = []
        engine.spawn(worker(engine, signal, queue))
        engine.run()
        engine.spawn(submit(signal, queue, "a"))
        engine.run()
        engine.spawn(submit(signal, queue, "b"))
        engine.run()
        assert served == [("a", 1.0), ("b", 2.0)]

    def test_non_daemon_park_still_detected(self):
        def waiter(signal):
            yield signal

        engine = SimEngine()
        engine.spawn(waiter(engine.signal()))
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_rebase_resets_idle_clock(self):
        def tick():
            yield 3.5

        engine = SimEngine()
        engine.spawn(tick())
        assert engine.run() == 3.5
        assert engine.idle
        engine.rebase()
        assert engine.now_s == 0.0
        engine.spawn(tick())
        assert engine.run() == 3.5  # fresh-engine float arithmetic

    def test_rebase_with_pending_events_rejected(self):
        engine = SimEngine()
        engine.spawn(iter([]), delay_s=1.0)
        assert not engine.idle
        with pytest.raises(SimulationError, match="rebase"):
            engine.rebase()

    def test_max_events_guard_is_per_run_not_lifetime(self):
        def tick(n):
            for _ in range(n):
                yield 1.0

        engine = SimEngine()
        for _ in range(4):  # 4 runs x 60 events: fine at max_events=100
            engine.spawn(tick(59))
            engine.run(max_events=100)
        assert engine.events_processed == 4 * 60
        engine.spawn(tick(150))
        with pytest.raises(SimulationError, match="exceeded"):
            engine.run(max_events=100)
