"""Repo-level pytest configuration shared by ``tests/`` and ``benchmarks/``.

Registers the ``slow`` marker (so ``pytest -m "not slow"`` keeps tier-1
fast while the throughput benchmarks run on demand), the ``--quick``
knob that shrinks benchmark batch sizes for smoke runs, and the
``--sanitize`` switch that arms the runtime DES sanitizer
(:mod:`repro.sim.sanitizer`) for every engine the tests construct.
"""

from __future__ import annotations


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark batch sizes for a fast smoke run",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="emit a cProfile top-25 cumulative report per benchmark",
    )
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="arm the DES sanitizer on every SimEngine the tests build",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running benchmark or sweep; deselect with -m 'not slow'",
    )
    if config.getoption("--sanitize"):
        from repro.sim import engine

        # Flip the process-wide default so SimEngine(sanitize=None) —
        # i.e. every engine a test or helper constructs without an
        # explicit choice — comes up armed.  Explicit sanitize=False
        # still wins (the equivalence tests rely on that).
        engine.SANITIZE_DEFAULT = True
