"""Repo-level pytest configuration shared by ``tests/`` and ``benchmarks/``.

Registers the ``slow`` marker (so ``pytest -m "not slow"`` keeps tier-1
fast while the throughput benchmarks run on demand) and the ``--quick``
knob that shrinks benchmark batch sizes for smoke runs.
"""

from __future__ import annotations


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark batch sizes for a fast smoke run",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="emit a cProfile top-25 cumulative report per benchmark",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running benchmark or sweep; deselect with -m 'not slow'",
    )
