"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires building an editable wheel (PEP 660); on
offline machines without `wheel` installed, `python setup.py develop`
provides the equivalent editable install through this shim.
"""

from setuptools import setup

setup()
