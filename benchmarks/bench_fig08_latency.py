"""Fig. 8 — ECC encode/decode latency vs P/E cycles at 80 MHz."""

import numpy as np

from benchmarks.conftest import run_once, save_report


def test_fig08_latency(benchmark, suite):
    result = run_once(benchmark, suite.run_fig08)
    save_report(result)
    sv_dec = result.data["sv_decode_s"] * 1e6
    dv_dec = result.data["dv_decode_s"] * 1e6
    sv_enc = result.data["sv_encode_s"] * 1e6
    # Encoding ~51 us, nearly flat; SV decoding grows to ~160 us while the
    # relaxed-t DV decoding stays near ~104 us.
    assert np.all((sv_enc > 49) & (sv_enc < 55))
    assert sv_dec[-1] > 150
    assert dv_dec[-1] < 112
    assert np.all(np.diff(sv_dec) >= 0)
