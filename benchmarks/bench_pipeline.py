"""Command-pipeline modes: phase scheduler vs the paper's serial FSM.

Sweeps the phase scheduler's :class:`~repro.ssd.scheduler.PipelineConfig`
modes — serial (paper-faithful non-pipelined FSM), cache reads,
multi-plane, pipelined ECC and everything combined — across channel/die
topologies at end-of-life RBER (~1e-3 on the ISPP-SV curve, t = 65).
Reported MB/s is the simulated host throughput of die-striped batch
reads and writes (the scheduler makespan over the batch footprint);
speedups are against the serial mode on the same topology, i.e. they
isolate what each overlap buys at fixed hardware.

The serial mode is the safety net: with every overlap disabled the phase
scheduler reproduces the PR 3 two-scalar scheduler's timelines exactly
(equivalence-tested in tests/ssd/test_pipeline.py), so every speedup in
this table comes from modelled hardware overlap, not from accounting
changes.

Run standalone (``python benchmarks/bench_pipeline.py``) or through
pytest; ``--quick`` shrinks the batch and the sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.nand.geometry import NandGeometry
from repro.ssd import DieStripedFtl, PipelineConfig, SsdDevice, SsdTopology

#: End-of-life wear: RBER ~1e-3 on the ISPP-SV lifetime curve.
EOL_WEAR = 100_000

#: (label, config, plane-interleaved placement) sweep points.
MODES = (
    ("serial", PipelineConfig.serial(), False),
    ("cache", PipelineConfig(cache_read=True), False),
    ("mplane", PipelineConfig(multi_plane=True), True),
    ("ecc", PipelineConfig(pipelined_ecc=True), False),
    ("cache+ecc", PipelineConfig(cache_read=True, pipelined_ecc=True), False),
    ("full", PipelineConfig.full(), True),
)
QUICK_MODES = tuple(
    mode for mode in MODES if mode[0] in ("serial", "cache+ecc", "full")
)

#: (channels, dies_per_channel) sweep points.
TOPOLOGIES = ((1, 1), (1, 4), (2, 2))
QUICK_TOPOLOGIES = ((1, 1), (1, 4))

#: Acceptance floor: cache-read + pipelined-ECC EOL reads at 1ch x 4die.
MIN_READ_SPEEDUP_CACHE_ECC = 1.5


def _geometry(batch: int, dies: int) -> NandGeometry:
    """Per-die geometry with room for the striped batch plus GC reserve."""
    pages_per_block = 32
    per_die = -(-batch // dies)  # ceil
    blocks = max(2, -(-(per_die + pages_per_block) // pages_per_block) + 1)
    return NandGeometry(blocks=blocks, pages_per_block=pages_per_block)


def _build_ftl(
    channels: int,
    dies_per_channel: int,
    batch: int,
    config: PipelineConfig,
    plane_interleave: bool,
) -> DieStripedFtl:
    topology = SsdTopology(
        channels=channels,
        dies_per_channel=dies_per_channel,
        geometry=_geometry(batch, channels * dies_per_channel),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=2012, pipeline=config
    )
    for controller in ssd.controllers:
        controller.device.array._wear[:] = EOL_WEAR
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(EOL_WEAR))
    return DieStripedFtl(ssd, plane_interleave=plane_interleave)


def _mb_s(pages: int, page_bytes: int, seconds: float) -> float:
    return pages * page_bytes / max(seconds, 1e-12) / 1e6


def _run_config(
    channels: int,
    dies_per_channel: int,
    batch: int,
    config: PipelineConfig,
    plane_interleave: bool,
) -> dict:
    ftl = _build_ftl(channels, dies_per_channel, batch, config, plane_interleave)
    rng = np.random.default_rng(11)
    page_bytes = ftl.geometry.page_data_bytes
    items = [(lpn, rng.bytes(page_bytes)) for lpn in range(batch)]

    ftl.write_many(items)
    write_makespan = ftl.last_schedule.makespan_s
    reads = ftl.read_many([lpn for lpn, _ in items])
    read_makespan = ftl.last_schedule.makespan_s
    if not all(data == payload for (data, _), (_, payload) in zip(reads, items)):
        raise AssertionError("pipelined read returned corrupted data")
    return {
        "read_mb_s": _mb_s(batch, page_bytes, read_makespan),
        "write_mb_s": _mb_s(batch, page_bytes, write_makespan),
    }


def run_benchmark(quick: bool = False) -> tuple[str, dict]:
    """Full sweep; returns (report text, read speedups by (topo, mode))."""
    batch = 32 if quick else 64
    modes = QUICK_MODES if quick else MODES
    topologies = QUICK_TOPOLOGIES if quick else TOPOLOGIES
    lines = [
        "Command-pipeline modes at end-of-life RBER (~1e-3, t = 65), "
        f"striped batch of {batch} pages",
        "(simulated host MB/s from the phase scheduler's makespan; "
        "speedups vs the serial mode on the same topology)",
        "",
        f"{'topology':>10} {'pipeline':>10} {'read MB/s':>10} "
        f"{'write MB/s':>11} {'read x':>7} {'write x':>8}",
    ]
    speedups: dict = {}
    for channels, dies_per_channel in topologies:
        baseline: dict | None = None
        topo_label = f"{channels}ch x {dies_per_channel}die"
        for label, config, plane_interleave in modes:
            row = _run_config(
                channels, dies_per_channel, batch, config, plane_interleave
            )
            if baseline is None:
                baseline = row
            read_x = row["read_mb_s"] / baseline["read_mb_s"]
            write_x = row["write_mb_s"] / baseline["write_mb_s"]
            speedups[(topo_label, label)] = (read_x, write_x)
            lines.append(
                f"{topo_label:>10} {label:>10} {row['read_mb_s']:>10.2f} "
                f"{row['write_mb_s']:>11.2f} {read_x:>6.2f}x {write_x:>7.2f}x"
            )
        lines.append("")
    return "\n".join(lines) + "\n", speedups


def cache_ecc_read_speedup(speedups: dict) -> float:
    """Cache-read + pipelined-ECC read speedup at 1ch x 4die."""
    return speedups[("1ch x 4die", "cache+ecc")][0]


def _save(text: str) -> None:
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "pipeline.txt").write_text(text)
    print("\n" + text)


@pytest.mark.slow
def test_pipeline_modes(quick):
    """Record the pipeline-mode table and enforce the 1ch x 4die floor."""
    text, speedups = run_benchmark(quick=quick)
    _save(text)
    lifted = cache_ecc_read_speedup(speedups)
    assert lifted >= MIN_READ_SPEEDUP_CACHE_ECC, (
        f"cache+ecc EOL read speedup {lifted:.2f}x at 1ch x 4die below "
        f"the {MIN_READ_SPEEDUP_CACHE_ECC:.1f}x floor"
    )


if __name__ == "__main__":
    report, speedups = run_benchmark(quick="--quick" in sys.argv)
    _save(report)
    lifted = cache_ecc_read_speedup(speedups)
    ok = lifted >= MIN_READ_SPEEDUP_CACHE_ECC
    print(
        f"cache+ecc 1ch x 4die EOL read floor "
        f"({MIN_READ_SPEEDUP_CACHE_ECC:.1f}x): {lifted:.2f}x "
        f"{'PASS' if ok else 'FAIL'}"
    )
    sys.exit(0 if ok else 1)
