"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates one paper figure through
:mod:`repro.analysis.experiments`, records its runtime via
pytest-benchmark, prints the same rows/series the paper reports and saves
the rendered report under ``benchmarks/out/<exp_id>.txt``.

The repo-root ``conftest.py`` registers the ``slow`` marker and the
``--quick`` option: long sweeps (e.g. ``bench_ecc_throughput``) carry
``@pytest.mark.slow`` and honour ``--quick`` via the :func:`quick`
fixture, so ``pytest benchmarks -m "not slow"`` stays snappy and
``pytest benchmarks --quick`` smoke-runs everything.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentResult, ExperimentSuite

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture()
def quick(request) -> bool:
    """True when the run asked for reduced benchmark sizes (``--quick``)."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(autouse=True)
def _profile(request):
    """Wrap each benchmark in cProfile when ``--profile`` is given.

    Prints the top 25 functions by cumulative time after the test body —
    the first place to look when a sim-speed number moves — and writes
    the same table to ``benchmarks/out/profile_<test>.txt`` so CI runs
    keep it as an artifact alongside the figure reports.
    """
    if not request.config.getoption("--profile"):
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    yield
    profiler.disable()
    report = io.StringIO()
    stats = pstats.Stats(profiler, stream=report)
    stats.sort_stats("cumulative").print_stats(25)
    table = report.getvalue()
    print(f"\n--- cProfile (top 25 cumulative) for {request.node.name} ---")
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    slug = "".join(
        ch if ch.isalnum() or ch in "._-" else "_" for ch in request.node.name
    )
    (OUT_DIR / f"profile_{slug}.txt").write_text(
        f"cProfile (top 25 cumulative) for {request.node.name}\n\n{table}"
    )


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    """One shared model suite (caches codes and program timings)."""
    return ExperimentSuite(seed=2012)


def save_report(result: ExperimentResult) -> None:
    """Persist and print the rendered figure report."""
    OUT_DIR.mkdir(exist_ok=True)
    text = result.render() + "\n"
    (OUT_DIR / f"{result.exp_id}.txt").write_text(text)
    print("\n" + text)


def run_once(benchmark, runner, *args, **kwargs) -> ExperimentResult:
    """Benchmark an experiment with a single timed round.

    Figure regenerations run Monte-Carlo sweeps; one round keeps the whole
    harness fast while still reporting wall-clock cost per figure.
    """
    return benchmark.pedantic(runner, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
