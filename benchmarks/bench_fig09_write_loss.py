"""Fig. 9 — write-throughput loss of the cross-layer (ISPP-DV) modes."""

import numpy as np

from benchmarks.conftest import run_once, save_report


def test_fig09_write_loss(benchmark, suite):
    result = run_once(benchmark, suite.run_fig09)
    save_report(result)
    losses = result.data["losses"]
    assert losses.min() > 30.0, "loss floor (paper band starts ~40%)"
    assert losses.max() < 55.0, "loss ceiling (paper band ends ~48%)"
    assert np.mean(losses) == np.clip(np.mean(losses), 38, 50)
