"""Ablation — two-round data-load write mitigation (section 6.3.3)."""

from benchmarks.conftest import run_once, save_report


def test_ablation_tworound(benchmark, suite):
    result = run_once(benchmark, suite.run_ablation_tworound)
    save_report(result)
    for _, serial_wt, pipelined_wt, recovered in result.data["rows"]:
        assert pipelined_wt >= serial_wt
        assert 0 <= recovered < 20
