"""Ablation — ECC block size vs parity overhead (section 2 critique)."""

from benchmarks.conftest import run_once, save_report


def test_ablation_blocksize(benchmark, suite):
    result = run_once(benchmark, suite.run_ablation_blocksize)
    save_report(result)
    rows = {row[0]: row for row in result.data["rows"]}
    assert rows[4096][4] == "yes", "the paper's 4 KiB block must fit"
    assert rows[512][3] > rows[4096][3], "small blocks need more parity/page"
