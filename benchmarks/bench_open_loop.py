"""Open-loop session vs batch-drain host model: saturation and knee.

Two host models drive the same EOL mixed playback stream (sequential
re-reads with a metadata write every 8 ops — the multimedia scenario
with a journaling write rate) on a 1ch x 4die full-pipeline SSD:

* **batch-drain** (`run_ssd_workload`, ``batch_pages = 8``): the PR 4
  closed loop.  Runs of consecutive same-kind ops are scheduled to
  their makespan before the next group is admitted, so the pipeline
  refills at every batch boundary and every metadata write interrupts
  the read stream with a full synchronous ISPP program;
* **open loop** (`run_open_loop_workload` over the
  :class:`~repro.ssd.session.SsdSession` queue pair): operations are
  submitted at their arrival times regardless of what is in flight, so
  reads keep streaming through the channel/ECC pipeline while writes
  program other planes in parallel.

The CI floor asserts the open-loop *sustained* read throughput (offered
load past saturation) is >= 1.25x the batch-drain figure.  A pure-read
stream is reported alongside for calibration (its gain is only the
inter-batch pipeline fill/drain, roughly 1.1-1.2x; the mixed stream is
where batch-drain structurally loses).  The arrival-rate sweep then
maps the throughput-saturation / latency-knee curve: completed MB/s
tracks the offered rate below saturation and flat-lines at capacity
above it, while the p95 read latency jumps from service time to
queueing-dominated — the knee must be >= 2x between the lowest and
highest offered rates.

Run standalone (``python benchmarks/bench_open_loop.py``) or through
pytest; ``--quick`` shrinks the stream and the sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.nand.geometry import NandGeometry
from repro.sim.host import (
    HostWorkload,
    OpenLoopWorkload,
    preread_lpns,
    run_open_loop_workload,
    run_ssd_workload,
)
from repro.ssd import (
    DieStripedFtl,
    PipelineConfig,
    SsdDevice,
    SsdSession,
    SsdTopology,
)
from repro.workloads.traces import TraceOp, TraceOpKind, fixed_rate_arrivals

#: End-of-life wear: RBER ~1e-3 on the ISPP-SV lifetime curve.
EOL_WEAR = 100_000

#: Acceptance floor: sustained open-loop read MB/s vs batch-drain
#: (mixed playback stream, batch_pages = 8, 1ch x 4die, full pipeline).
MIN_OPEN_VS_BATCH = 1.25

#: The sweep's p95 latency must rise at least this much across the knee.
MIN_KNEE_FACTOR = 2.0

#: Host batch size fixed by the acceptance scenario.
BATCH_PAGES = 8

#: Device-side in-flight window for the open-loop session.
QUEUE_DEPTH = 16

#: Offered-rate fractions of measured capacity for the sweep.
SWEEP_FRACTIONS = (0.3, 0.6, 0.9, 1.05, 1.2, 1.5)
QUICK_FRACTIONS = (0.3, 0.9, 1.5)


def _build_ftl(pages: int) -> DieStripedFtl:
    """1ch x 4die full-pipeline SSD at end of life, plane-interleaved."""
    pages_per_block = 32
    # Room per die for the read working set, the metadata-write pages
    # and a GC reserve block.
    per_die = pages // 4 + 16
    blocks = max(3, -(-(per_die + pages_per_block) // pages_per_block) + 1)
    topology = SsdTopology(
        channels=1,
        dies_per_channel=4,
        geometry=NandGeometry(blocks=blocks, pages_per_block=pages_per_block),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=2012,
        pipeline=PipelineConfig.full(),
    )
    for controller in ssd.controllers:
        controller.device.array._wear[:] = EOL_WEAR
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(EOL_WEAR))
    return DieStripedFtl(ssd, plane_interleave=True)


def _playback_stream(
    pages: int, passes: int, write_every: int | None, rng
) -> list[TraceOp]:
    """Sequential re-reads with an optional metadata write every N ops."""
    ops: list[TraceOp] = []
    for index in range(pages * passes):
        ops.append(TraceOp(TraceOpKind.READ, 0, index % pages))
        if write_every and (index + 1) % write_every == 0:
            ops.append(TraceOp(
                TraceOpKind.WRITE, 1, index % 16, rng.bytes(4096)
            ))
    return ops


def _prewrite(ftl: DieStripedFtl, ops: list[TraceOp], rng) -> None:
    """Write every page the stream reads before writing it.

    ``preread_lpns`` applies the host runner's own first-seen LPN
    naming, so the pre-written pages land exactly where replay reads.
    """
    ftl.write_many([(lpn, rng.bytes(4096)) for lpn in preread_lpns(ops)])


def _compare(ops: list[TraceOp], pages: int, seed: int) -> tuple[float, float]:
    """(batch-drain read MB/s, sustained open-loop read MB/s)."""
    rng = np.random.default_rng(seed)
    closed_ftl = _build_ftl(pages)
    _prewrite(closed_ftl, ops, rng)
    closed = run_ssd_workload(
        closed_ftl, HostWorkload("batch-drain", ops, batch_pages=BATCH_PAGES)
    )
    rng = np.random.default_rng(seed)
    open_ftl = _build_ftl(pages)
    _prewrite(open_ftl, ops, rng)
    # issue_s defaults to 0.0 for every op: the whole stream is offered
    # up front, so the completed rate is the device's sustained capacity.
    session = SsdSession(open_ftl, queue_depth=QUEUE_DEPTH)
    sustained = run_open_loop_workload(
        open_ftl,
        OpenLoopWorkload("open-loop", ops, queue_depth=QUEUE_DEPTH),
        session=session,
    )
    # The session defaults to the flat dispatch core: every die command
    # must have taken the fast path (erases are host-side trims and
    # never reach the scheduler in this stream).
    stats = session.fast_path_stats
    if stats.fallback or not stats.fast:
        raise AssertionError(
            f"open-loop session fast path not engaged: {stats}"
        )
    return closed.read_mb_s, sustained.read_mb_s


def run_benchmark(quick: bool = False) -> tuple[str, dict]:
    """Full comparison + sweep; returns (report text, metrics)."""
    pages = 64 if quick else 128
    passes = 2
    fractions = QUICK_FRACTIONS if quick else SWEEP_FRACTIONS
    rng = np.random.default_rng(7)
    mixed = _playback_stream(pages, passes, 8, rng)
    pure = _playback_stream(pages, passes, None, rng)

    lines = [
        "Open-loop session vs batch-drain host model at end-of-life RBER "
        f"(~1e-3, t = 65), 1ch x 4die, full pipeline, batch_pages = "
        f"{BATCH_PAGES}, QD = {QUEUE_DEPTH}",
        "(read MB/s; 'sustained' = open-loop completed rate with the whole "
        "stream offered up front)",
        "",
        f"{'stream':>12} {'batch MB/s':>11} {'open MB/s':>10} {'open x':>7}",
    ]
    metrics: dict = {}
    for label, ops in (("pure reads", pure), ("mixed w/8", mixed)):
        closed_mb_s, open_mb_s = _compare(ops, pages, seed=11)
        ratio = open_mb_s / closed_mb_s
        metrics[label] = ratio
        lines.append(
            f"{label:>12} {closed_mb_s:>11.2f} {open_mb_s:>10.2f} "
            f"{ratio:>6.2f}x"
        )
    metrics["open_vs_batch"] = metrics["mixed w/8"]

    # Arrival-rate sweep on the mixed stream: the saturation curve.
    rng = np.random.default_rng(11)
    probe_ftl = _build_ftl(pages)
    _prewrite(probe_ftl, mixed, rng)
    probe = run_open_loop_workload(
        probe_ftl, OpenLoopWorkload("probe", mixed, queue_depth=QUEUE_DEPTH)
    )
    capacity_ops_s = (probe.stats.reads + probe.stats.writes) / probe.elapsed_s
    lines += [
        "",
        f"arrival-rate sweep (capacity ~ {capacity_ops_s:,.0f} ops/s, "
        "fixed-rate arrivals):",
        f"{'offered/sat':>11} {'read MB/s':>10} {'p50 [us]':>9} "
        f"{'p95 [us]':>9} {'p99 [us]':>9} {'queue p95':>10}",
    ]
    p95_by_fraction: dict[float, float] = {}
    for fraction in fractions:
        rng = np.random.default_rng(11)
        ftl = _build_ftl(pages)
        _prewrite(ftl, mixed, rng)
        result = run_open_loop_workload(
            ftl,
            OpenLoopWorkload(
                f"sweep-{fraction:.2f}",
                fixed_rate_arrivals(mixed, fraction * capacity_ops_s),
                queue_depth=QUEUE_DEPTH,
            ),
        )
        tails = result.latency_percentiles()
        p95_by_fraction[fraction] = tails["read_p95_s"]
        lines.append(
            f"{fraction:>11.2f} {result.read_mb_s:>10.2f} "
            f"{tails['read_p50_s'] * 1e6:>9.1f} "
            f"{tails['read_p95_s'] * 1e6:>9.1f} "
            f"{tails['read_p99_s'] * 1e6:>9.1f} "
            f"{tails['queue_p95_s'] * 1e6:>9.1f}u"
        )
    metrics["knee_factor"] = (
        p95_by_fraction[max(fractions)] / p95_by_fraction[min(fractions)]
    )
    lines += [
        "",
        f"latency knee: p95 rises {metrics['knee_factor']:.1f}x from "
        f"{min(fractions):.1f}x to {max(fractions):.1f}x of saturation",
    ]
    return "\n".join(lines) + "\n", metrics


def _save(text: str) -> None:
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "open_loop.txt").write_text(text)
    print("\n" + text)


def _check(metrics: dict) -> list[str]:
    failures = []
    if metrics["open_vs_batch"] < MIN_OPEN_VS_BATCH:
        failures.append(
            f"sustained open-loop read throughput {metrics['open_vs_batch']:.2f}x "
            f"batch-drain, below the {MIN_OPEN_VS_BATCH:.2f}x floor"
        )
    if metrics["knee_factor"] < MIN_KNEE_FACTOR:
        failures.append(
            f"p95 latency knee {metrics['knee_factor']:.1f}x across the "
            f"sweep, below the {MIN_KNEE_FACTOR:.1f}x floor"
        )
    return failures


@pytest.mark.slow
def test_open_loop_throughput(quick):
    """Record the saturation curve and enforce the open-vs-batch floor."""
    text, metrics = run_benchmark(quick=quick)
    _save(text)
    failures = _check(metrics)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    report, metrics = run_benchmark(quick="--quick" in sys.argv)
    _save(report)
    failures = _check(metrics)
    for failure in failures:
        print("FAIL:", failure)
    print(
        f"open-loop floors (>= {MIN_OPEN_VS_BATCH:.2f}x sustained, "
        f">= {MIN_KNEE_FACTOR:.1f}x knee): "
        f"{metrics['open_vs_batch']:.2f}x / {metrics['knee_factor']:.1f}x "
        f"{'FAIL' if failures else 'PASS'}"
    )
    sys.exit(1 if failures else 0)
