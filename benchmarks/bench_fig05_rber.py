"""Fig. 5 — RBER vs P/E cycles, ISPP-SV vs ISPP-DV (canonical + MC)."""

import numpy as np

from benchmarks.conftest import run_once, save_report


def test_fig05_rber(benchmark, suite):
    result = run_once(benchmark, suite.run_fig05)
    save_report(result)
    sv, dv = result.data["sv"], result.data["dv"]
    assert np.all(sv > dv), "ISPP-DV must sit below ISPP-SV"
    assert np.allclose(sv / dv, 12.5), "order-of-magnitude gap"
    # Monte-Carlo cross-check within a factor ~3.5 of the model.
    for _, mc_sv, model_sv, mc_dv, model_dv in result.data["mc_rows"]:
        assert abs(np.log10(mc_sv / model_sv)) < 0.55
        assert abs(np.log10(mc_dv / model_dv)) < 0.55
