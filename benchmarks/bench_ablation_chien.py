"""Ablation — Chien parallelism / multiplier budget (section 4)."""

from benchmarks.conftest import run_once, save_report


def test_ablation_chien(benchmark, suite):
    result = run_once(benchmark, suite.run_ablation_chien)
    save_report(result)
    rows = result.data["rows"]
    # The default design point (budget 260, h_max 8) yields h(65)=4, h(14)=8.
    default = next(r for r in rows if r[0] == 260 and r[1] == 8)
    assert default[2] == 4 and default[3] == 8
    # And an end-of-life read gain near the paper's 30%.
    assert 25 < default[6] < 38
