"""Ablation — data retention x cycling x program algorithm (section 1)."""

from benchmarks.conftest import run_once, save_report


def test_ablation_retention(benchmark, suite):
    result = run_once(benchmark, suite.run_ablation_retention)
    save_report(result)
    rows = result.data["rows"]
    for pe, hours, rber_sv, t_sv, rber_dv, t_dv in rows:
        assert rber_dv < rber_sv, "ISPP-DV must retain its margin advantage"
    # Storage time must degrade RBER monotonically at fixed wear.
    by_pe = {}
    for pe, hours, rber_sv, *_ in rows:
        by_pe.setdefault(pe, []).append(rber_sv)
    for series in by_pe.values():
        assert series == sorted(series)
