"""Fig. 11 — read-throughput gain of the max-read cross-layer mode."""

import numpy as np

from benchmarks.conftest import run_once, save_report


def test_fig11_read_gain(benchmark, suite):
    result = run_once(benchmark, suite.run_fig11)
    save_report(result)
    gains = result.data["gains"]
    assert gains[0] < 3.0, "fresh device: both configs decode alike"
    assert 26 < gains[-1] < 37, "end of life: ~30% gain (paper Fig. 11)"
    assert np.all(np.diff(gains) >= -0.5), "gain grows with aging"
