"""Fig. 7 (and the mislabelled 'Fig. ??') — UBER vs RBER per capability."""

from benchmarks.conftest import run_once, save_report


def test_fig07_uber_rber(benchmark, suite):
    result = run_once(benchmark, suite.run_fig07)
    save_report(result)
    assert result.data["t_min"] == 3, "paper: tMIN = 3"
    assert result.data["t_sv_max"] == 65, "paper: tMAX = 65 for ISPP-SV"
    assert result.data["t_dv_max"] == 14, "paper: tMAX = 14 for ISPP-DV"
