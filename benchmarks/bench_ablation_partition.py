"""Ablation — boot-time SLC/MLC partitioning vs runtime cross-layer."""

from benchmarks.conftest import run_once, save_report


def test_ablation_partition(benchmark, suite):
    result = run_once(benchmark, suite.run_ablation_partition)
    save_report(result)
    rows = result.data["rows"]
    eol = [r for r in rows if r[0] == 1e5]
    by_scheme = {r[1]: r for r in eol}
    slc = by_scheme["static slc"]
    mlc_sv = by_scheme["static mlc-sv"]
    runtime = by_scheme["runtime max-read-throughput"]
    # SLC: best RBER, half the capacity.
    assert slc[3] < mlc_sv[3]
    assert slc[2] == mlc_sv[2] / 2
    # Runtime cross-layer keeps full MLC capacity with faster reads than SV.
    assert runtime[2] == mlc_sv[2]
    assert runtime[5] > mlc_sv[5]
