"""Observability overhead: the cost of the telemetry layer.

This PR threaded phase-level trace hooks through the scheduler's hot
paths (guarded ``if span is not None`` on hoisted locals).  This
benchmark is the gate that keeps them honest: it measures the 4ch x
4die mixed-open acceptance stream (the same shape ``bench_sim_speed``
gates) in three modes, repeats interleaved in one process:

* ``pristine`` — a verbatim replica of the scheduler as it stood
  before the telemetry layer (``_pristine_sched``), the honest
  uninstrumented denominator;
* ``off`` — the live scheduler with no recorder attached: what every
  ordinary run pays for the hooks' existence;
* ``traced`` — the live scheduler with a :class:`TraceRecorder`
  capturing every phase span: the full-tracing worst case.

All three modes must agree on the simulated makespan bit-for-bit (the
hooks may not perturb the simulation), and the traced run's
per-resource span totals must reconcile with the scheduler's own busy
accumulators to float tolerance.  Two CI-enforced floors:

* disabled instrumentation >= ``MIN_DISABLED_RATIO`` (0.97x) of
  pristine ops/s — the hooks are free when off;
* full tracing >= ``MIN_TRACED_RATIO`` (0.5x) of pristine ops/s —
  tracing is cheap enough to leave on when investigating.

The traced run's Chrome trace is exported to
``benchmarks/out/trace_observability.json`` (load it in Perfetto);
results append to ``benchmarks/out/BENCH_observability.json`` — the
observability-overhead trajectory.

Run standalone (``python benchmarks/bench_observability.py [--quick]``)
or through pytest; ``--quick`` shrinks the stream and repeat count.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import _pristine_sched  # noqa: E402  (path bootstrap above)
import repro.ssd.scheduler as _live_sched  # noqa: E402
from repro.nand.timing import NandTimingModel  # noqa: E402
from repro.obs import TraceRecorder  # noqa: E402
from repro.sim.engine import SimEngine  # noqa: E402
from repro.ssd.topology import SsdTopology  # noqa: E402

#: CI floor: the live scheduler with no recorder attached must stay
#: within 3% of the pre-instrumentation replica (wall clocks on shared
#: runners are noisy; the guarded hooks measure as free locally).
MIN_DISABLED_RATIO = 0.97

#: CI floor: full phase tracing must keep at least half the pristine
#: throughput — cheap enough to leave on when investigating.
MIN_TRACED_RATIO = 0.5

#: Absolute reconciliation tolerance (seconds) between trace-span
#: totals and the scheduler's busy accumulators: fsum over spans vs
#: running addition of identical intervals stays at epsilon scale.
RECONCILE_TOL_S = 1e-9

#: The acceptance topology and stream shape (same as bench_sim_speed's
#: mixed-open gate).
GATE_TOPOLOGY = (4, 4)
OPS = 12_000
QUICK_OPS = 3_000
OPEN_WINDOW = 256
OPEN_ARRIVAL_S = 2e-6

_TIMING = NandTimingModel()
READ_PHASES = _TIMING.read_phases(30e-6, 60e-6, 110e-6, 28e-6)
PROGRAM_PHASES = _TIMING.program_phases(200e-6, 60e-6, 25e-6)
CACHE_BUSY_S = 3e-6

OUT_PATH = Path(__file__).parent / "out" / "BENCH_observability.json"
TRACE_PATH = Path(__file__).parent / "out" / "trace_observability.json"

MODES = ("pristine", "off", "traced")


def _build_stream(
    sched, n: int, dies: int, read_fraction: float = 0.7, seed: int = 7
) -> list:
    """Random die/plane command stream with the given read fraction.

    ``sched`` is the scheduler *module* the stream targets: the frozen
    replica defines its own ``CommandKind``/``DieCommand`` classes, and
    its workers dispatch on enum identity — each mode must be fed
    commands built from its own module's classes.
    """
    rng = random.Random(seed)
    commands = []
    for tag in range(n):
        die, plane = rng.randrange(dies), rng.randrange(2)
        if rng.random() < read_fraction:
            commands.append(sched.DieCommand.from_phases(
                sched.CommandKind.READ, die, tag, READ_PHASES,
                plane=plane, cache_busy_s=CACHE_BUSY_S,
            ))
        else:
            commands.append(sched.DieCommand.from_phases(
                sched.CommandKind.PROGRAM, die, tag, PROGRAM_PHASES,
                plane=plane,
            ))
    return commands


def _reconcile(recorder: TraceRecorder, core) -> None:
    """Assert span totals match the busy accumulators per resource."""
    totals = recorder.busy_totals()
    for name, accumulators in (
        ("die", core.die_busy_s),
        ("channel", core.channel_busy_s),
        ("ecc", core.ecc_busy_s),
    ):
        for index, (span_s, busy_s) in enumerate(
            zip(totals[name], accumulators)
        ):
            if abs(span_s - busy_s) > RECONCILE_TOL_S:
                raise AssertionError(
                    f"{name} {index}: trace spans total {span_s!r} s but "
                    f"the scheduler accumulated {busy_s!r} s"
                )


def _run(
    mode: str, topology: SsdTopology, commands
) -> tuple[float, float, TraceRecorder | None]:
    """(wall seconds, simulated makespan, recorder) for one run."""
    recorder = TraceRecorder() if mode == "traced" else None
    engine = SimEngine()
    sched = _pristine_sched if mode == "pristine" else _live_sched
    kwargs = {} if mode == "pristine" else {"recorder": recorder}
    core = sched.SchedulerCore(
        engine, topology, sched.PipelineConfig.full(), flat=True, **kwargs
    )
    core.start()
    engine.run()  # park the resident dispatchers before the stream
    core.submit_stream(commands, window=OPEN_WINDOW, arrival_s=OPEN_ARRIVAL_S)
    start = time.perf_counter()
    makespan = engine.run()
    wall = time.perf_counter() - start
    if core.fast_commands != len(commands):
        raise AssertionError(
            f"{mode}: flat core dispatched {core.fast_commands} of "
            f"{len(commands)} commands; the rest fell back"
        )
    if recorder is not None:
        _reconcile(recorder, core)
    return wall, makespan, recorder


def run_benchmark(quick: bool = False) -> tuple[str, dict]:
    """Measure the three modes; returns (report text, metrics)."""
    ops = QUICK_OPS if quick else OPS
    repeats = 3 if quick else 5
    channels, dies_per_channel = GATE_TOPOLOGY
    topology = SsdTopology(channels=channels, dies_per_channel=dies_per_channel)
    streams = {
        "pristine": _build_stream(_pristine_sched, ops, topology.dies),
        "off": _build_stream(_live_sched, ops, topology.dies),
        "traced": _build_stream(_live_sched, ops, topology.dies),
    }
    # Interleave repeats across modes (same rationale as bench_sim_speed:
    # clock drift must hit every mode alike for honest ratios).
    walls = {mode: float("inf") for mode in MODES}
    makespans: dict[str, float] = {}
    last_recorder: TraceRecorder | None = None
    for mode in MODES:  # untimed warm-up: a 3% floor cannot absorb
        _run(mode, topology, streams[mode])  # cold-start effects
    for _ in range(repeats):
        for mode in MODES:
            wall, makespan, recorder = _run(mode, topology, streams[mode])
            if makespans.setdefault(mode, makespan) != makespan:
                raise AssertionError(f"non-deterministic makespan in {mode}")
            walls[mode] = min(walls[mode], wall)
            if recorder is not None:
                last_recorder = recorder
    if len(set(makespans.values())) != 1:
        raise AssertionError(
            f"modes disagree on makespan: {makespans} — the trace hooks "
            "perturbed the simulation"
        )
    TRACE_PATH.parent.mkdir(exist_ok=True)
    last_recorder.export_chrome_trace(TRACE_PATH)
    disabled_ratio = walls["pristine"] / walls["off"]
    traced_ratio = walls["pristine"] / walls["traced"]
    label = f"{channels}x{dies_per_channel}"
    lines = [
        "Observability overhead: mixed-open acceptance stream, live "
        "scheduler vs pre-instrumentation replica (same process)",
        f"({label} topology, {ops} commands, window {OPEN_WINDOW}, "
        f"{OPEN_ARRIVAL_S * 1e6:.0f} us arrivals, best of {repeats})",
        "",
        f"{'mode':>9} {'ops/s':>9} {'vs pristine':>12}",
    ]
    results = []
    for mode in MODES:
        ratio = walls["pristine"] / walls[mode]
        results.append({
            "mode": mode,
            "ops_per_sec": round(ops / walls[mode], 1),
            "ratio_vs_pristine": round(ratio, 3),
            "makespan_s": makespans[mode],
        })
        lines.append(
            f"{mode:>9} {ops / walls[mode]:>9.0f} {ratio:>11.2f}x"
        )
    lines += [
        "",
        f"spans recorded (traced): {len(last_recorder)}; trace exported "
        f"to {TRACE_PATH.name}",
        f"disabled-instrumentation gate: {disabled_ratio:.3f}x of pristine "
        f"(CI floor {MIN_DISABLED_RATIO:.2f}x)",
        f"full-tracing gate: {traced_ratio:.3f}x of pristine "
        f"(CI floor {MIN_TRACED_RATIO:.2f}x)",
    ]
    metrics = {
        "disabled_ratio": disabled_ratio,
        "traced_ratio": traced_ratio,
        "spans": len(last_recorder),
        "results": results,
    }
    return "\n".join(lines) + "\n", metrics


def _save(text: str, metrics: dict, quick: bool) -> None:
    """Append this run to the trajectory JSON and print the table."""
    OUT_PATH.parent.mkdir(exist_ok=True)
    trajectory = []
    if OUT_PATH.exists():
        trajectory = json.loads(OUT_PATH.read_text()).get("trajectory", [])
    trajectory.append({
        "quick": quick,
        "python": sys.version.split()[0],
        "disabled_ratio_vs_pristine": round(metrics["disabled_ratio"], 3),
        "traced_ratio_vs_pristine": round(metrics["traced_ratio"], 3),
        "spans": metrics["spans"],
        "results": metrics["results"],
    })
    OUT_PATH.write_text(json.dumps({
        "benchmark": "observability",
        "gate": {
            "topology": f"{GATE_TOPOLOGY[0]}x{GATE_TOPOLOGY[1]}",
            "shape": "mixed-open",
            "disabled_floor": MIN_DISABLED_RATIO,
            "traced_floor": MIN_TRACED_RATIO,
        },
        "trajectory": trajectory,
    }, indent=2) + "\n")
    print("\n" + text)


def _check(metrics: dict) -> list[str]:
    failures = []
    if metrics["disabled_ratio"] < MIN_DISABLED_RATIO:
        failures.append(
            f"disabled instrumentation at {metrics['disabled_ratio']:.3f}x "
            f"of pristine throughput, below the {MIN_DISABLED_RATIO:.2f}x "
            "floor"
        )
    if metrics["traced_ratio"] < MIN_TRACED_RATIO:
        failures.append(
            f"full tracing at {metrics['traced_ratio']:.3f}x of pristine "
            f"throughput, below the {MIN_TRACED_RATIO:.2f}x floor"
        )
    return failures


@pytest.mark.slow
def test_observability_overhead(quick):
    """Record the overhead trajectory and enforce both floors."""
    text, metrics = run_benchmark(quick=quick)
    _save(text, metrics, quick)
    failures = _check(metrics)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    is_quick = "--quick" in sys.argv
    report, run_metrics = run_benchmark(quick=is_quick)
    _save(report, run_metrics, is_quick)
    run_failures = _check(run_metrics)
    for failure in run_failures:
        print("FAIL:", failure)
    print(
        f"observability floors (disabled >= {MIN_DISABLED_RATIO:.2f}x, "
        f"traced >= {MIN_TRACED_RATIO:.2f}x of pristine): "
        f"{run_metrics['disabled_ratio']:.3f}x / "
        f"{run_metrics['traced_ratio']:.3f}x "
        f"{'FAIL' if run_failures else 'PASS'}"
    )
    sys.exit(1 if run_failures else 0)
