"""ECC datapath throughput: scalar reference vs vectorized batch kernels.

Measures encode and decode MB/s (4 KiB page payload) at the paper's
correction capabilities t in {3, 14, 65} for three page populations:

* ``clean``   — error-free pages (all-zero-syndrome early exit);
* ``errored`` — pages carrying t/2 bit errors, the end-of-life design
  point (RBER ~1e-3 over a 33.8 kbit codeword injects ~t/2 errors at
  t = 65);
* ``worst``   — pages carrying exactly t errors (full capability).

The scalar path is the byte-serial seed datapath
(``BCHDecoder(vectorized=False)`` / per-message ``encode``); the batch
path is ``encode_batch`` / ``decode_batch``.  Outputs are cross-checked
identical before timing.  Run standalone (``python
benchmarks/bench_ecc_throughput.py``) or through pytest; the full sweep
is marked ``slow`` and the ``--quick`` knob shrinks the batch.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bch.decoder import BCHDecoder
from repro.bch.encoder import BCHEncoder
from repro.bch.params import design_code

PAGE_BYTES = 4096
CAPABILITIES = (3, 14, 65)

#: Acceptance floors at t = 65 (vs the scalar seed path).
MIN_CLEAN_SPEEDUP = 10.0
MIN_ERRORED_SPEEDUP = 5.0


def _flip_random_bits(codeword: bytes, weight: int,
                      n_bits: int, rng: np.random.Generator) -> bytes:
    corrupted = bytearray(codeword)
    for pos in rng.choice(n_bits, size=weight, replace=False):
        corrupted[pos // 8] ^= 0x80 >> (pos % 8)
    return bytes(corrupted)


def _mb_s(pages: int, seconds: float) -> float:
    return pages * PAGE_BYTES / seconds / 1e6


def bench_capability(t: int, batch_pages: int, scalar_pages: int,
                     rng: np.random.Generator) -> dict:
    """Measure one capability; returns row dicts plus the speedup summary."""
    spec = design_code(PAGE_BYTES * 8, t)
    encoder = BCHEncoder(spec)
    batch_decoder = BCHDecoder(spec)
    scalar_decoder = BCHDecoder(spec, vectorized=False)

    messages = [rng.bytes(PAGE_BYTES) for _ in range(batch_pages)]

    # -- encode (cross-check, then time) -------------------------------------
    start = time.perf_counter()
    scalar_cw = [encoder.encode_codeword(m) for m in messages[:scalar_pages]]
    scalar_encode_s = time.perf_counter() - start
    encoder.encode_batch(messages[:2])  # build tables outside the timing
    start = time.perf_counter()
    codewords = encoder.encode_codeword_batch(messages)
    batch_encode_s = time.perf_counter() - start
    assert codewords[:scalar_pages] == scalar_cw, "encode mismatch"

    populations = {
        "clean": codewords,
        "errored": [
            _flip_random_bits(cw, max(1, t // 2), spec.n_stored, rng)
            for cw in codewords
        ],
        "worst": [
            _flip_random_bits(cw, t, spec.n_stored, rng) for cw in codewords
        ],
    }

    rows = []
    speedups = {}
    rows.append({
        "t": t, "population": "encode",
        "scalar_mb_s": _mb_s(scalar_pages, scalar_encode_s),
        "batch_mb_s": _mb_s(batch_pages, batch_encode_s),
    })
    speedups["encode"] = rows[-1]["batch_mb_s"] / rows[-1]["scalar_mb_s"]
    for name, words in populations.items():
        batch_decoder.decode_batch(words[:2])  # build tables / warm caches
        start = time.perf_counter()
        scalar_results = [
            scalar_decoder.decode(w) for w in words[:scalar_pages]
        ]
        scalar_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_results = batch_decoder.decode_batch(words)
        batch_s = time.perf_counter() - start
        for scalar_result, batch_result in zip(scalar_results, batch_results):
            assert scalar_result.data == batch_result.data, "decode mismatch"
            assert (scalar_result.error_positions
                    == batch_result.error_positions), "positions mismatch"
        rows.append({
            "t": t, "population": name,
            "scalar_mb_s": _mb_s(scalar_pages, scalar_s),
            "batch_mb_s": _mb_s(batch_pages, batch_s),
        })
        speedups[name] = rows[-1]["batch_mb_s"] / rows[-1]["scalar_mb_s"]
    return {"rows": rows, "speedups": speedups}


def run_benchmark(batch_pages: int = 64, scalar_pages: int = 8,
                  capabilities=CAPABILITIES) -> tuple[str, dict]:
    """Full sweep; returns (report text, speedups-by-t)."""
    rng = np.random.default_rng(20120312)
    lines = [
        "ECC throughput, scalar (byte-serial seed path) vs batch "
        f"(vectorized kernels), {PAGE_BYTES} B pages",
        f"batch={batch_pages} pages, scalar sample={scalar_pages} pages",
        "",
        f"{'t':>4} {'population':>10} {'scalar MB/s':>12} "
        f"{'batch MB/s':>11} {'speedup':>8}",
    ]
    all_speedups = {}
    for t in capabilities:
        result = bench_capability(t, batch_pages, scalar_pages, rng)
        for row in result["rows"]:
            speedup = row["batch_mb_s"] / row["scalar_mb_s"]
            lines.append(
                f"{row['t']:>4} {row['population']:>10} "
                f"{row['scalar_mb_s']:>12.2f} {row['batch_mb_s']:>11.2f} "
                f"{speedup:>7.1f}x"
            )
        all_speedups[t] = result["speedups"]
    return "\n".join(lines) + "\n", all_speedups


def _save(text: str) -> None:
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "ecc_throughput.txt").write_text(text)
    print("\n" + text)


@pytest.mark.slow
def test_ecc_throughput(quick):
    """Record the perf trajectory and enforce the batch-datapath floors."""
    text, speedups = run_benchmark(batch_pages=16 if quick else 64)
    _save(text)
    assert speedups[65]["clean"] >= MIN_CLEAN_SPEEDUP, (
        f"clean-page decode speedup {speedups[65]['clean']:.1f}x "
        f"below the {MIN_CLEAN_SPEEDUP:.0f}x floor"
    )
    assert speedups[65]["errored"] >= MIN_ERRORED_SPEEDUP, (
        f"errored-page decode speedup {speedups[65]['errored']:.1f}x "
        f"below the {MIN_ERRORED_SPEEDUP:.0f}x floor"
    )


if __name__ == "__main__":
    report, speedups = run_benchmark(
        batch_pages=16 if "--quick" in sys.argv else 64
    )
    _save(report)
    ok = (
        speedups[65]["clean"] >= MIN_CLEAN_SPEEDUP
        and speedups[65]["errored"] >= MIN_ERRORED_SPEEDUP
    )
    print(f"t=65 floors ({MIN_CLEAN_SPEEDUP:.0f}x clean / "
          f"{MIN_ERRORED_SPEEDUP:.0f}x errored): {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
