"""Fig. 4 — compact-model fit of the experimental ISPP staircase."""

from benchmarks.conftest import run_once, save_report


def test_fig04_model_fit(benchmark, suite):
    result = run_once(benchmark, suite.run_fig04)
    save_report(result)
    fit = result.data["fit"]
    assert fit.rmse < 0.1, "fit must overlay the measurement (Fig. 4)"
