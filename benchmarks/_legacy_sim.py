"""Verbatim replica of the pre-calendar-queue DES engine.

``bench_sim_speed`` measures "simulated ops per second vs the pre-PR
engine" — a ratio that is only honest if both sides run on the same
machine in the same process.  This module pins the old hot loop so the
baseline cannot drift: the ``@dataclass(order=True)`` event records, the
``itertools.count`` sequence source, the single global binary heap and
the wake-*all* Signal (every ``fire()`` resumes every waiter, so each
bus release schedules a wake for every queued worker — the thundering
herd the handoff signals eliminated).

:class:`LegacySimEngine` is API-compatible with the current engine for
everything the scheduler uses — ``signal(daemon=..., handoff=...)``
accepts and *ignores* ``handoff`` (pre-PR locks were wake-all), which is
exactly what makes the comparison faithful: today's scheduler code
running on this engine reproduces the pre-PR event pattern.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Generator, Union

from repro.errors import SimulationError

Process = Generator[Union[float, "LegacySignal"], None, None]


class LegacySignal:
    """Pre-PR wake-up channel: ``fire()`` resumes every parked process."""

    def __init__(self, engine: "LegacySimEngine", daemon: bool = False):
        self._engine = engine
        self._daemon = daemon
        self._waiters: list[Process] = []

    def fire(self) -> int:
        woken = len(self._waiters)
        for process in self._waiters:
            self._engine._resume_parked(process, daemon=self._daemon)
        self._waiters.clear()
        return woken

    def _park(self, process: Process) -> None:
        self._waiters.append(process)
        if not self._daemon:
            self._engine._parked += 1


@dataclass(order=True)
class LegacyEvent:
    """Pre-PR scheduled resumption: an ordered dataclass record."""

    time_s: float
    sequence: int
    process: Process = field(compare=False)


class LegacySimEngine:
    """The pre-PR single-clock event loop, preserved verbatim."""

    def __init__(self) -> None:
        self._queue: list[LegacyEvent] = []
        self._counter = itertools.count()
        self.now_s = 0.0
        self.events_processed = 0
        self._parked = 0

    def spawn(self, process: Process, delay_s: float = 0.0) -> None:
        if delay_s < 0:
            raise SimulationError("delay must be non-negative")
        heapq.heappush(
            self._queue,
            LegacyEvent(self.now_s + delay_s, next(self._counter), process),
        )

    def signal(
        self, daemon: bool = False, handoff: bool = False
    ) -> LegacySignal:
        # ``handoff`` accepted for scheduler compatibility, ignored:
        # the pre-PR engine only had wake-all signals.
        return LegacySignal(self, daemon=daemon)

    @property
    def idle(self) -> bool:
        return not self._queue

    def rebase(self) -> None:
        if self._queue:
            raise SimulationError(
                "cannot rebase the clock with scheduled events pending"
            )
        self.now_s = 0.0

    def _resume_parked(self, process: Process, daemon: bool = False) -> None:
        if not daemon:
            self._parked -= 1
        heapq.heappush(
            self._queue,
            LegacyEvent(self.now_s, next(self._counter), process),
        )

    def run(self, until_s: float | None = None, max_events: int = 10**7) -> float:
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events")
            event = self._queue[0]
            if until_s is not None and event.time_s > until_s:
                self.now_s = until_s
                return self.now_s
            heapq.heappop(self._queue)
            self.now_s = event.time_s
            processed += 1
            self.events_processed += 1
            try:
                delay = event.process.send(None)
            except StopIteration:
                continue
            if isinstance(delay, LegacySignal):
                delay._park(event.process)
                continue
            if delay is None or delay < 0:
                raise SimulationError(
                    f"process yielded invalid delay {delay!r}"
                )
            heapq.heappush(
                self._queue,
                LegacyEvent(self.now_s + delay, next(self._counter), event.process),
            )
        if self._parked:
            raise SimulationError(
                f"deadlock: {self._parked} process(es) parked on signals "
                "with an empty event queue"
            )
        return self.now_s


# ---------------------------------------------------------------------------
# Pre-PR scheduler core, preserved verbatim: wake-all locks, per-command
# phase-list comprehensions, unconditional wake-ups on enqueue and
# wake_workers.  Paired with LegacySimEngine this reproduces the pre-PR
# hot loop end to end, so the benchmark's speedup ratios measure the
# whole PR (engine + scheduler) against what actually ran before it.
# ---------------------------------------------------------------------------

from collections import deque

from repro.nand.timing import PhaseResource
from repro.ssd.scheduler import CommandCompletion, CommandKind, PipelineConfig
from repro.ssd.topology import SsdTopology


class _LegacyLock:
    """Pre-PR serially-reusable resource: wake-all freed signal."""

    def __init__(self, engine: LegacySimEngine):
        self.busy = False
        self.freed = engine.signal()


def legacy_closed_admission(core, commands, queue_depth, wake_workers=False):
    """Pre-PR closed-batch admission: wake everything, then admit."""
    limit = len(commands) if queue_depth is None else queue_depth
    submit_s = core.engine.now_s
    if wake_workers:
        core.wake_workers()
    for command in commands:
        while core.in_flight >= limit:
            yield core.completed
        core.enqueue(command, submit_s=submit_s)


class LegacySchedulerCore:
    """The pre-PR incremental resource-reservation core, verbatim."""

    def __init__(self, engine, topology, pipeline=None):
        self.engine = engine
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()
        self.planes = (
            topology.geometry.planes if self.pipeline.multi_plane else 1
        )
        self.completions = []
        self.die_busy_s = [0.0] * topology.dies
        self.channel_busy_s = [0.0] * topology.channels
        self.ecc_busy_s = [0.0] * topology.channels
        self.completed = engine.signal()
        self.on_finish = []
        self.in_flight = 0
        self._buses = [_LegacyLock(engine) for _ in range(topology.channels)]
        self._engines = [_LegacyLock(engine) for _ in range(topology.channels)]
        self._caches = [
            [_LegacyLock(engine) for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._queues = [
            [deque() for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._work = [
            [engine.signal(daemon=True) for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._admit_s = {}
        self._submit_s = {}
        self._live_tags = set()
        self._started = False

    def start(self):
        if self._started:
            raise RuntimeError("scheduler core already started")
        self._started = True
        for die in range(self.topology.dies):
            for plane in range(self.planes):
                self.engine.spawn(self._worker(die, plane))

    @property
    def idle(self):
        return self.in_flight == 0

    def wake_workers(self):
        for die_signals in self._work:
            for signal in die_signals:
                signal.fire()

    def enqueue(self, command, submit_s=None):
        self._live_tags.add(command.tag)
        self.in_flight += 1
        self._admit_s[command.tag] = self.engine.now_s
        self._submit_s[command.tag] = submit_s
        slot = command.plane % self.planes
        self._queues[command.die][slot].append(command)
        self._work[command.die][slot].fire()

    def _finish(self, command, die, channel):
        tag = command.tag
        completion = CommandCompletion(
            tag=tag,
            die=die,
            channel=channel,
            admit_s=self._admit_s.pop(tag),
            done_s=self.engine.now_s,
            submit_s=self._submit_s.pop(tag),
        )
        self.completions.append(completion)
        self._live_tags.discard(tag)
        self.in_flight -= 1
        self.completed.fire()
        for callback in self.on_finish:
            callback(completion)

    def _hold(self, lock, duration_s):
        while lock.busy:
            yield lock.freed
        lock.busy = True
        yield duration_s
        lock.busy = False
        lock.freed.fire()

    def _channel_section(self, phases, channel, cache):
        bus, ecc = self._buses[channel], self._engines[channel]
        if not self.pipeline.pipelined_ecc:
            total = sum(p.duration_s for p in phases)
            yield from self._hold(bus, total)
            self.channel_busy_s[channel] += total
            if cache is not None:
                cache.busy = False
                cache.freed.fire()
            return
        for phase in phases:
            if phase.resource is PhaseResource.CHANNEL:
                yield from self._hold(bus, phase.duration_s)
                self.channel_busy_s[channel] += phase.duration_s
                if cache is not None:
                    cache.busy = False
                    cache.freed.fire()
                    cache = None
            else:
                yield from self._hold(ecc, phase.occupancy_s)
                self.ecc_busy_s[channel] += phase.occupancy_s
                drain = phase.duration_s - phase.occupancy_s
                if drain > 0:
                    yield drain
        if cache is not None:
            cache.busy = False
            cache.freed.fire()

    def _read_drain(self, command, die, channel, cache, phases):
        yield from self._channel_section(phases, channel, cache)
        self._finish(command, die, channel)

    def _worker(self, die, plane):
        channel = self.topology.channel_of(die)
        queue = self._queues[die][plane]
        work = self._work[die][plane]
        while True:
            while not queue:
                yield work
            command = queue.popleft()
            plan = command.phase_plan()
            array = [
                p for p in plan if p.resource is PhaseResource.PLANE
            ]
            channel_phases = [
                p for p in plan if p.resource is not PhaseResource.PLANE
            ]
            if command.kind is CommandKind.READ:
                for phase in array:
                    yield phase.duration_s
                    self.die_busy_s[die] += phase.duration_s
                if self.pipeline.cache_read and channel_phases:
                    cache = self._caches[die][plane]
                    while cache.busy:
                        yield cache.freed
                    cache.busy = True
                    if command.cache_busy_s > 0:
                        yield command.cache_busy_s
                        self.die_busy_s[die] += command.cache_busy_s
                    self.engine.spawn(self._read_drain(
                        command, die, channel, cache, channel_phases
                    ))
                    continue
                yield from self._channel_section(channel_phases, channel, None)
            elif command.kind is CommandKind.PROGRAM:
                yield from self._channel_section(channel_phases, channel, None)
                for phase in array:
                    yield phase.duration_s
                    self.die_busy_s[die] += phase.duration_s
            else:
                for phase in array:
                    yield phase.duration_s
                    self.die_busy_s[die] += phase.duration_s
            self._finish(command, die, channel)
