"""Fig. 6 — program power, {ISPP-SV, ISPP-DV} x {L1, L2, L3} patterns."""

import numpy as np

from benchmarks.conftest import run_once, save_report


def test_fig06_power(benchmark, suite):
    result = run_once(benchmark, suite.run_fig06)
    save_report(result)
    series = result.data["series"]
    sv = np.mean([series.columns[f"ispp-sv-L{l}"] for l in (1, 2, 3)])
    dv = np.mean([series.columns[f"ispp-dv-L{l}"] for l in (1, 2, 3)])
    delta_mw = (dv - sv) * 1e3
    assert 4.0 < delta_mw < 12.0, f"DV-SV shift {delta_mw:.1f} mW (paper ~7.5)"
    for label, values in series.columns.items():
        assert np.all((values > 0.12) & (values < 0.20)), label
