"""Ablation — operating-point space and Pareto front (section 6.3)."""

from benchmarks.conftest import run_once, save_report
from repro.nand.ispp import IsppAlgorithm


def test_ablation_pareto(benchmark, suite):
    result = run_once(benchmark, suite.run_ablation_pareto)
    save_report(result)
    for age, front in result.data.items():
        assert front, f"Pareto front empty at N={age}"
        assert any(p.algorithm is IsppAlgorithm.DV for p in front), (
            "cross-layer (ISPP-DV) points must appear on the front"
        )
