"""SSD channel/die scaling: striped batches through the DES scheduler.

Sweeps topologies (channels x dies) and host queue depths at end-of-life
RBER (~1e-3 on the ISPP-SV curve, t = 65) and reports the *simulated*
host throughput of die-striped batch reads and writes — the scheduler's
makespan over the batch footprint — relative to the 1-channel x 1-die
baseline.  This is the system-level figure of merit the topology
subsystem adds: the per-page costs (sense, transfer, BCH decode/encode,
ISPP program) are the paper's own numbers; the scaling shows how far
channel fan-out and die interleaving stretch them.

Before timing, the 1x1 topology is cross-checked byte-identical against
the existing single-device batch path (same spawned RNG stream, same
``read_pages`` batch), so striping is provably a pure re-arrangement of
the PR 2 datapath.

Run standalone (``python benchmarks/bench_ssd_parallelism.py``) or
through pytest; ``--quick`` shrinks the batch and the sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.nand.device import NandFlashDevice
from repro.nand.geometry import NandGeometry
from repro.ssd import DieStripedFtl, SsdDevice, SsdTopology, spawn_die_rngs

#: End-of-life wear: RBER ~1e-3 on the ISPP-SV lifetime curve.
EOL_WEAR = 100_000
#: (channels, dies_per_channel) sweep points.
TOPOLOGIES = ((1, 1), (1, 2), (1, 4), (2, 2), (4, 1), (2, 4), (4, 4))
QUICK_TOPOLOGIES = ((1, 1), (1, 4), (2, 2), (4, 1))
QUEUE_DEPTHS = (4, 32)
QUICK_QUEUE_DEPTHS = (32,)

#: Acceptance floor: batched EOL reads, best 4-die topology vs 1 die.
MIN_READ_SPEEDUP_4DIE = 2.0


def _geometry(batch: int, dies: int) -> NandGeometry:
    """Per-die geometry with room for the striped batch plus GC reserve."""
    pages_per_block = 32
    per_die = -(-batch // dies)  # ceil
    blocks = max(2, -(-(per_die + pages_per_block) // pages_per_block) + 1)
    return NandGeometry(blocks=blocks, pages_per_block=pages_per_block)


def _build_ssd(channels: int, dies_per_channel: int, batch: int) -> SsdDevice:
    topology = SsdTopology(
        channels=channels,
        dies_per_channel=dies_per_channel,
        geometry=_geometry(batch, channels * dies_per_channel),
    )
    ssd = SsdDevice(topology, policy=CrossLayerPolicy(), seed=2012)
    for controller in ssd.controllers:
        controller.device.array._wear[:] = EOL_WEAR
    ssd.set_mode(OperatingMode.BASELINE, pe_reference=float(EOL_WEAR))
    return ssd


def _crosscheck_single_die_identity(batch: int = 32) -> None:
    """1x1 SSD reads must be byte-identical to the direct device path."""
    geometry = _geometry(batch, 1)
    ssd = SsdDevice(
        SsdTopology(geometry=geometry), policy=CrossLayerPolicy(), seed=77
    )
    reference = NandFlashDevice(geometry, rng=spawn_die_rngs(77, 1)[0])
    for device in (ssd.controllers[0].device, reference):
        device.array._wear[:] = EOL_WEAR
    rng = np.random.default_rng(3)
    payloads = [rng.bytes(geometry.page_bytes) for _ in range(batch)]
    addresses = [divmod(i, geometry.pages_per_block) for i in range(batch)]
    ssd.program_pages([(0, b, p) for b, p in addresses], payloads)
    reference.program_pages(addresses, payloads)
    rows, _ = ssd.read_pages([(0, b, p) for b, p in addresses])
    reference_rows, _ = reference.read_pages(addresses)
    assert rows.tobytes() == reference_rows.tobytes(), (
        "1x1 SSD read batch diverged from the single-device batch path"
    )


def _mb_s(pages: int, page_bytes: int, seconds: float) -> float:
    return pages * page_bytes / max(seconds, 1e-12) / 1e6


def _run_config(
    channels: int, dies_per_channel: int, batch: int, queue_depth: int
) -> dict:
    ssd = _build_ssd(channels, dies_per_channel, batch)
    ftl = DieStripedFtl(ssd)
    rng = np.random.default_rng(11)
    page_bytes = ssd.geometry.page_data_bytes
    items = [(lpn, rng.bytes(page_bytes)) for lpn in range(batch)]

    ftl.write_many(items, queue_depth=queue_depth)
    write_makespan = ftl.last_schedule.makespan_s
    reads = ftl.read_many([lpn for lpn, _ in items], queue_depth=queue_depth)
    read_makespan = ftl.last_schedule.makespan_s
    utilisation = max(ftl.last_schedule.channel_utilisation())
    ok = all(data == payload for (data, _), (_, payload) in zip(reads, items))
    if not ok:
        raise AssertionError("striped read returned corrupted data")
    return {
        "topology": ssd.topology.describe(),
        "dies": ssd.topology.dies,
        "queue_depth": queue_depth,
        "read_mb_s": _mb_s(batch, page_bytes, read_makespan),
        "write_mb_s": _mb_s(batch, page_bytes, write_makespan),
        "bus_util": utilisation,
    }


def run_benchmark(quick: bool = False) -> tuple[str, dict]:
    """Full sweep; returns (report text, read speedups by (dies, topo, qd))."""
    _crosscheck_single_die_identity()
    batch = 64 if quick else 128
    topologies = QUICK_TOPOLOGIES if quick else TOPOLOGIES
    queue_depths = QUICK_QUEUE_DEPTHS if quick else QUEUE_DEPTHS
    lines = [
        "SSD channel/die scaling at end-of-life RBER (~1e-3, t = 65), "
        f"striped batch of {batch} pages",
        "(simulated host MB/s from the DES command scheduler's makespan; "
        "speedup vs 1ch x 1die at the same queue depth)",
        "",
        f"{'topology':>12} {'dies':>5} {'QD':>4} {'read MB/s':>10} "
        f"{'write MB/s':>11} {'read x':>7} {'write x':>8} {'bus util':>9}",
    ]
    speedups: dict = {}
    for queue_depth in queue_depths:
        baseline: dict | None = None
        for channels, dies_per_channel in topologies:
            row = _run_config(channels, dies_per_channel, batch, queue_depth)
            if baseline is None:
                baseline = row
            read_x = row["read_mb_s"] / baseline["read_mb_s"]
            write_x = row["write_mb_s"] / baseline["write_mb_s"]
            speedups[(row["dies"], row["topology"], queue_depth)] = read_x
            lines.append(
                f"{row['topology']:>12} {row['dies']:>5} {queue_depth:>4} "
                f"{row['read_mb_s']:>10.2f} {row['write_mb_s']:>11.2f} "
                f"{read_x:>6.2f}x {write_x:>7.2f}x {row['bus_util']:>8.0%}"
            )
        lines.append("")
    return "\n".join(lines) + "\n", speedups


def best_4die_speedup(speedups: dict) -> float:
    """Best read speedup among 4-die topologies (any queue depth)."""
    return max(
        value for (dies, _, _), value in speedups.items() if dies == 4
    )


def _save(text: str) -> None:
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "ssd_parallelism.txt").write_text(text)
    print("\n" + text)


@pytest.mark.slow
def test_ssd_parallelism(quick):
    """Record the channel/die scaling table and enforce the 4-die floor."""
    text, speedups = run_benchmark(quick=quick)
    _save(text)
    best = best_4die_speedup(speedups)
    assert best >= MIN_READ_SPEEDUP_4DIE, (
        f"best 4-die EOL read speedup {best:.2f}x below the "
        f"{MIN_READ_SPEEDUP_4DIE:.0f}x floor"
    )


if __name__ == "__main__":
    report, speedups = run_benchmark(quick="--quick" in sys.argv)
    _save(report)
    best = best_4die_speedup(speedups)
    ok = best >= MIN_READ_SPEEDUP_4DIE
    print(f"best 4-die EOL read floor ({MIN_READ_SPEEDUP_4DIE:.0f}x): "
          f"{best:.2f}x {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
