"""Sustained random-write steady state: the fresh->steady GC cliff.

Every real SSD writes fast while it is fresh — the allocator just
appends — and then falls off a cliff once the over-provisioned free
pool is consumed and every host write drags garbage-collection
migrations behind it.  This benchmark drives that regime on the 1ch x
4die full-pipeline SSD and measures what the scheduled-GC session
modes buy:

* **foreground** (the synchronous-GC baseline): collections run as
  GC-origin commands on the timeline and the host admission window is
  frozen while they are in flight — every collection is a stall, the
  classic write cliff;
* **background**: watermark- and idle-triggered collections overlap
  host I/O on idle dies, GC commands never consume host queue depth,
  and the per-plane dispatch gives host commands priority.

The stream fills the drive's full logical span sequentially (the fresh
plateau), then random-overwrites it ~2x with a read mixed in every
4th op, all offered at t=0 — the completed rate *is* the device's
sustained capacity.  Completion-windowed throughput exposes the cliff;
the FTL's write-amplification counter is sampled per window for the WA
curve.  A paced mixed run (fixed-rate arrivals at a fraction of the
foreground steady rate) on the aged drive then compares p99 latency:
background GC must not make tails worse than the stall baseline.

CI floors: background steady-state throughput >= 1.3x foreground, and
background paced p99 <= foreground paced p99.  Results append to
``benchmarks/out/BENCH_sustained_write.json`` — the sustained-write
trajectory across PRs.

Run standalone (``python benchmarks/bench_sustained_write.py``) or
through pytest; ``--quick`` shrinks the drive and the stream.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

import pytest

from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.ftl.gc import GcConfig
from repro.nand.geometry import NandGeometry
from repro.sim.host import OpenLoopWorkload, run_open_loop_workload
from repro.ssd import (
    DieStripedFtl,
    PipelineConfig,
    SsdDevice,
    SsdSession,
    SsdTopology,
)
from repro.workloads.traces import TraceOp, TraceOpKind, fixed_rate_arrivals

#: Acceptance floor: background steady-state write throughput vs the
#: foreground-stall (synchronous-GC) baseline on the mixed stream.
MIN_BG_VS_FG = 1.3

#: Acceptance ceiling: background paced p99 vs foreground paced p99.
MAX_BG_P99_RATIO = 1.0

#: Device-side in-flight window.
QUEUE_DEPTH = 8

#: Paced run offered rate, as a fraction of foreground steady capacity.
PACED_FRACTION = 0.6

OUT_PATH = Path(__file__).parent / "out" / "BENCH_sustained_write.json"


def _build(gc_mode: str, blocks: int):
    """1ch x 4die full-pipeline SSD with a scheduled-GC session."""
    topology = SsdTopology(
        channels=1,
        dies_per_channel=4,
        geometry=NandGeometry(blocks=blocks, pages_per_block=16),
    )
    ssd = SsdDevice(
        topology, policy=CrossLayerPolicy(), seed=2012,
        pipeline=PipelineConfig.full(),
    )
    ssd.set_mode(OperatingMode.BASELINE)
    session = SsdSession(
        ssd=ssd, queue_depth=QUEUE_DEPTH, gc_mode=gc_mode,
        gc_config=GcConfig(policy="cost_benefit"),
    )
    ftl = DieStripedFtl(ssd, plane_interleave=True, session=session)
    session.ftl = ftl
    return ftl, session


def _sustained_stream(capacity: int, passes: float, seed: int) -> list[TraceOp]:
    """Sequential fill, then random overwrites with a read every 4th op."""
    rng = random.Random(seed)
    page = bytes(4096)
    ops = [
        TraceOp(TraceOpKind.WRITE, 0, lpn, page) for lpn in range(capacity)
    ]
    for index in range(int(capacity * passes)):
        if index % 4 == 3:
            ops.append(TraceOp(
                TraceOpKind.READ, 0, rng.randrange(capacity)
            ))
        else:
            ops.append(TraceOp(
                TraceOpKind.WRITE, 0, rng.randrange(capacity), page
            ))
    return ops


def _run_sustained(gc_mode: str, blocks: int, passes: float) -> dict:
    """Capacity run: windowed throughput, cliff, WA curve, steady rate."""
    ftl, session = _build(gc_mode, blocks)
    capacity = ftl.logical_capacity
    ops = _sustained_stream(capacity, passes, seed=7)
    window = max(32, len(ops) // 24)
    windows: list[dict] = []
    state = {"count": 0, "last_t": 0.0, "last_n": 0}

    def sample(completion) -> None:
        # Runs after the session's own finish handler (appended later
        # to core.on_finish), so a host completion has just landed in
        # the session's completion queue — GC-origin commands don't —
        # and the FTL counters are live mid-run, not post-drain.
        done = session.completions
        if not done or done[-1].tag != completion.tag:
            return
        state["count"] += 1
        if state["count"] - state["last_n"] < window:
            return
        elapsed = completion.done_s - state["last_t"]
        gc = ftl.gc_stats
        host_writes = ftl.stats.host_writes
        windows.append({
            "t_s": completion.done_s,
            "ops_s": (state["count"] - state["last_n"]) / elapsed
            if elapsed > 0 else 0.0,
            "wa": (host_writes + gc.pages_migrated) / host_writes
            if host_writes else 1.0,
        })
        state["last_t"] = completion.done_s
        state["last_n"] = state["count"]

    session.core.on_finish.append(sample)
    result = run_open_loop_workload(
        ftl,
        OpenLoopWorkload(
            f"sustained-{gc_mode}", ops, queue_depth=QUEUE_DEPTH
        ),
        session=session,
    )
    session.core.on_finish.remove(sample)
    stats = session.fast_path_stats
    if stats.fallback or not stats.fast:
        raise AssertionError(f"flat dispatch not engaged: {stats}")
    gc = ftl.gc_stats
    rates = [w["ops_s"] for w in windows]
    fresh = max(rates[: max(1, len(rates) // 4)])
    tail = rates[-max(1, len(rates) // 4):]
    steady = sum(tail) / len(tail)
    return {
        "ftl": ftl,
        "session": session,
        "capacity": capacity,
        "ops": len(ops),
        "elapsed_s": result.elapsed_s,
        "windows": windows,
        "fresh_ops_s": fresh,
        "steady_ops_s": steady,
        "cliff": fresh / steady if steady else 0.0,
        "wa": (ftl.stats.host_writes + gc.pages_migrated)
        / ftl.stats.host_writes,
        "collections": gc.collections,
        "background_collections": gc.background_collections,
        "gc_busy_s": gc.scheduled_busy_s,
    }


def _run_paced(ftl, session, rate_ops_s: float, count: int) -> dict:
    """Paced mixed overwrites on the aged drive; tail latencies."""
    capacity = ftl.logical_capacity
    rng = random.Random(23)
    page = bytes(4096)
    ops = []
    for index in range(count):
        if index % 4 == 3:
            ops.append(TraceOp(TraceOpKind.READ, 0, rng.randrange(capacity)))
        else:
            ops.append(TraceOp(
                TraceOpKind.WRITE, 0, rng.randrange(capacity), page
            ))
    result = run_open_loop_workload(
        ftl,
        OpenLoopWorkload(
            "paced", fixed_rate_arrivals(ops, rate_ops_s),
            queue_depth=QUEUE_DEPTH,
        ),
        session=session,
    )
    tails = result.latency_percentiles()
    return {
        "write_p50_s": tails["write_p50_s"],
        "write_p99_s": tails["write_p99_s"],
        "queue_p95_s": tails["queue_p95_s"],
    }


def run_benchmark(quick: bool = False) -> tuple[str, dict]:
    """Foreground vs background sustained-write runs; (text, metrics)."""
    blocks = 8 if quick else 12
    passes = 2.0 if quick else 3.0
    paced_count = 256 if quick else 768

    runs = {
        mode: _run_sustained(mode, blocks, passes)
        for mode in ("foreground", "background")
    }
    fg, bg = runs["foreground"], runs["background"]
    bg_vs_fg = bg["steady_ops_s"] / fg["steady_ops_s"]

    # Paced tails on the aged (full, fragmented) drives, both offered
    # the same rate: a fraction of the *foreground* steady capacity.
    rate = PACED_FRACTION * fg["steady_ops_s"]
    for mode in ("foreground", "background"):
        runs[mode]["paced"] = _run_paced(
            runs[mode]["ftl"], runs[mode]["session"], rate, paced_count
        )
    p99_ratio = (
        bg["paced"]["write_p99_s"] / fg["paced"]["write_p99_s"]
    )

    lines = [
        "Sustained random-write steady state, 1ch x 4die, full pipeline, "
        f"QD = {QUEUE_DEPTH}, cost-benefit victims "
        f"(fill + ~{passes:.0f}x mixed overwrite, read every 4th op)",
        "",
        f"{'mode':>11} {'fresh op/s':>11} {'steady op/s':>12} "
        f"{'cliff':>6} {'WA':>5} {'colls':>6} {'bg':>5} "
        f"{'paced p99 [us]':>15}",
    ]
    for mode in ("foreground", "background"):
        r = runs[mode]
        lines.append(
            f"{mode:>11} {r['fresh_ops_s']:>11,.0f} "
            f"{r['steady_ops_s']:>12,.0f} {r['cliff']:>5.1f}x "
            f"{r['wa']:>5.2f} {r['collections']:>6} "
            f"{r['background_collections']:>5} "
            f"{r['paced']['write_p99_s'] * 1e6:>14.1f}u"
        )
    lines += [
        "",
        f"background vs foreground steady state: {bg_vs_fg:.2f}x "
        f"(floor {MIN_BG_VS_FG:.1f}x)",
        f"background/foreground paced write p99: {p99_ratio:.2f}x "
        f"(ceiling {MAX_BG_P99_RATIO:.2f}x)",
        "",
        "WA curve (background run, per completion window):",
        "  " + " ".join(
            f"{w['wa']:.2f}" for w in bg["windows"]
        ),
    ]
    metrics = {
        "bg_vs_fg_steady": bg_vs_fg,
        "p99_ratio": p99_ratio,
        "fg": {k: v for k, v in fg.items() if k not in ("ftl", "session")},
        "bg": {k: v for k, v in bg.items() if k not in ("ftl", "session")},
    }
    return "\n".join(lines) + "\n", metrics


def _save(text: str, metrics: dict, quick: bool) -> None:
    """Append this run to the trajectory JSON and print the table."""
    OUT_PATH.parent.mkdir(exist_ok=True)
    trajectory = []
    if OUT_PATH.exists():
        trajectory = json.loads(OUT_PATH.read_text()).get("trajectory", [])
    fg, bg = metrics["fg"], metrics["bg"]
    trajectory.append({
        "quick": quick,
        "python": sys.version.split()[0],
        "bg_vs_fg_steady": round(metrics["bg_vs_fg_steady"], 3),
        "p99_ratio": round(metrics["p99_ratio"], 3),
        "fg_steady_ops_s": round(fg["steady_ops_s"], 1),
        "bg_steady_ops_s": round(bg["steady_ops_s"], 1),
        "fg_cliff": round(fg["cliff"], 2),
        "bg_cliff": round(bg["cliff"], 2),
        "fg_wa": round(fg["wa"], 3),
        "bg_wa": round(bg["wa"], 3),
        "bg_collections": bg["collections"],
        "bg_background_collections": bg["background_collections"],
    })
    OUT_PATH.write_text(json.dumps({
        "benchmark": "sustained_write",
        "gate": {
            "topology": "1x4",
            "shape": "fill + mixed random overwrite",
            "floor_bg_vs_fg": MIN_BG_VS_FG,
            "ceiling_p99_ratio": MAX_BG_P99_RATIO,
        },
        "trajectory": trajectory,
    }, indent=2) + "\n")
    (OUT_PATH.parent / "sustained_write.txt").write_text(text)
    print("\n" + text)


def _check(metrics: dict) -> list[str]:
    failures = []
    if metrics["bg_vs_fg_steady"] < MIN_BG_VS_FG:
        failures.append(
            f"background steady-state {metrics['bg_vs_fg_steady']:.2f}x "
            f"foreground, below the {MIN_BG_VS_FG:.1f}x floor"
        )
    if metrics["p99_ratio"] > MAX_BG_P99_RATIO:
        failures.append(
            f"background paced write p99 {metrics['p99_ratio']:.2f}x "
            f"foreground, above the {MAX_BG_P99_RATIO:.2f}x ceiling"
        )
    if metrics["fg"]["cliff"] < 1.0 or metrics["bg"]["cliff"] < 1.0:
        failures.append(
            "no fresh->steady write cliff observed "
            f"(fg {metrics['fg']['cliff']:.2f}x, "
            f"bg {metrics['bg']['cliff']:.2f}x)"
        )
    return failures


@pytest.mark.slow
def test_sustained_write(quick):
    """Record the sustained-write cliff and enforce the GC floors."""
    text, metrics = run_benchmark(quick=quick)
    _save(text, metrics, quick)
    failures = _check(metrics)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    report, bench_metrics = run_benchmark(quick="--quick" in sys.argv)
    _save(report, bench_metrics, quick="--quick" in sys.argv)
    bench_failures = _check(bench_metrics)
    for failure in bench_failures:
        print("FAIL:", failure)
    print(
        f"sustained-write floors (>= {MIN_BG_VS_FG:.1f}x steady, "
        f"p99 <= {MAX_BG_P99_RATIO:.2f}x): "
        f"{bench_metrics['bg_vs_fg_steady']:.2f}x / "
        f"{bench_metrics['p99_ratio']:.2f}x "
        f"{'FAIL' if bench_failures else 'PASS'}"
    )
    sys.exit(1 if bench_failures else 0)
