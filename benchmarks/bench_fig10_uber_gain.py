"""Fig. 10 — UBER improvement from the physical-layer switch alone."""

import numpy as np

from benchmarks.conftest import run_once, save_report


def test_fig10_uber_gain(benchmark, suite):
    result = run_once(benchmark, suite.run_fig10)
    save_report(result)
    nominal = result.data["nominal"]
    improved = result.data["improved"]
    # Nominal sits just under the 1e-11 target across the lifetime.
    assert np.all((nominal <= -11) & (nominal > -13.5))
    # The min-UBER mode improves UBER by many orders of magnitude while
    # keeping the decode latency identical (asserted in the test suite).
    assert np.all(nominal - improved > 5)
