"""Simulation-speed trajectory: simulated ops/sec across the topology grid.

This PR made sim speed a first-class metric; this benchmark is the
instrument.  It drives the command scheduler directly (timing only — no
BCH math, no page data) so what is measured is exactly the DES hot loop:
event-list push/pop, generator resumption, signal wake-ups and resource
reservation.

Three workload shapes per topology (1x1 up to 8x8 channels x dies):

* ``reads-closed`` / ``writes-closed`` — homogeneous closed batches at
  queue depth 32: the die-striped FTL's bread-and-butter pattern, and
  the shape the batched stripe-reservation fast path accelerates.  The
  ``fast`` mode runs it; ``heap``/``calendar`` pin the generator path
  by disabling ``fast_batch``.
* ``mixed-open`` — an open-loop 70/30 read/program stream with paced
  2 us arrivals through a 256-deep in-flight window, transfer-heavy
  phase shapes (bus-saturated: the thundering-herd regime the handoff
  signals eliminated).  This is the acceptance shape.  ``fast`` /
  ``fast-cal`` drive it through the flat dispatch core
  (``SchedulerCore.submit_stream`` on the heap / calendar backends):
  coroutine-free state-machine frames with same-instant wakes and
  strict-minimum self-transitions short-circuiting the event list.
  The run asserts every command went through the flat core
  (``fast_commands``), not a silent generator fallback.

Every mode is measured against ``legacy`` — a verbatim replica of the
pre-PR engine *and* scheduler core (``_legacy_sim``: dataclass events,
one global heap, wake-all signals, per-command phase list comps) run in
the same process, so the speedup column is an honest same-machine
ratio.  All modes of a shape must agree on the simulated makespan
bit-for-bit; the benchmark asserts it.

Two acceptance gates on the 4ch x 4die ``mixed-open`` stream:

* vs pre-PR: the new engine must clear ``MIN_SPEEDUP_TARGET`` (3x) at
  PR time; CI enforces the regression floor ``MIN_SPEEDUP_FLOOR`` (2x)
  on every run (shared-runner wall clocks are noisy; the floor leaves
  headroom while still catching a real regression);
* flat vs generator: the flat core must beat the resident generator
  workers by ``MIN_FAST_SPEEDUP_FLOOR`` (1.5x, target
  ``MIN_FAST_SPEEDUP_TARGET`` 2x) on its best backend (same-backend
  ratios, both reported), CI-enforced like the legacy gate.

Results append to ``benchmarks/out/BENCH_sim_speed.json`` — the
sim-speed trajectory.

Run standalone (``python benchmarks/bench_sim_speed.py [--quick]``) or
through pytest; ``--quick`` shrinks streams and skips the 8x8 point.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _legacy_sim import (  # noqa: E402  (path bootstrap above)
    LegacySchedulerCore,
    LegacySimEngine,
    legacy_closed_admission,
)
from repro.nand.timing import NandTimingModel  # noqa: E402
from repro.sim.engine import SimEngine  # noqa: E402
from repro.ssd.scheduler import (  # noqa: E402
    CommandKind,
    CommandScheduler,
    DieCommand,
    PipelineConfig,
    SchedulerCore,
    closed_admission,
)
from repro.ssd.topology import SsdTopology  # noqa: E402

#: CI regression floor on the 4ch x 4die mixed-open speedup (either
#: backend): wall-clock ratios on shared runners are noisy, so the
#: enforced floor sits below the target this PR demonstrated.
MIN_SPEEDUP_FLOOR = 2.0

#: The tentpole target demonstrated when this trajectory started.
MIN_SPEEDUP_TARGET = 3.0

#: CI floor on the 4x4 mixed-open flat-core speedup over the resident
#: generator workers (same backend, same process, same stream,
#: repeats interleaved in one benchmark run; best backend gates, like
#: the legacy-speedup gate above).
MIN_FAST_SPEEDUP_FLOOR = 1.5

#: The flat-dispatch target when the fast trajectory point landed.
MIN_FAST_SPEEDUP_TARGET = 2.0

#: (channels, dies_per_channel) grid; 8x8 is skipped under --quick.
TOPOLOGIES = ((1, 1), (2, 2), (4, 4), (8, 8))

#: The acceptance topology for the mixed-open speedup gate.
GATE_TOPOLOGY = (4, 4)

#: Commands per (topology, shape) measurement.
OPS = 12_000
QUICK_OPS = 3_000

#: Mixed-open stream parameters: in-flight window and arrival spacing.
OPEN_WINDOW = 256
OPEN_ARRIVAL_S = 2e-6

#: Closed-batch queue depth.
CLOSED_QD = 32

_TIMING = NandTimingModel()

#: Transfer-heavy phase shapes (see module docstring): pipelined-decoder
#: read and a short-ISPP program, both with 60 us bus transfers.
READ_PHASES = _TIMING.read_phases(30e-6, 60e-6, 110e-6, 28e-6)
PROGRAM_PHASES = _TIMING.program_phases(200e-6, 60e-6, 25e-6)
CACHE_BUSY_S = 3e-6

OUT_PATH = Path(__file__).parent / "out" / "BENCH_sim_speed.json"


def _build_stream(
    n: int, dies: int, read_fraction: float, seed: int = 7
) -> list[DieCommand]:
    """Random die/plane command stream with the given read fraction."""
    rng = random.Random(seed)
    commands: list[DieCommand] = []
    for tag in range(n):
        die, plane = rng.randrange(dies), rng.randrange(2)
        if rng.random() < read_fraction:
            commands.append(DieCommand.from_phases(
                CommandKind.READ, die, tag, READ_PHASES,
                plane=plane, cache_busy_s=CACHE_BUSY_S,
            ))
        else:
            commands.append(DieCommand.from_phases(
                CommandKind.PROGRAM, die, tag, PROGRAM_PHASES, plane=plane,
            ))
    return commands


def _open_admission(core, commands, window: int, arrival_s: float):
    """Open-loop arrival process: paced submissions through a window."""
    for command in commands:
        while core.in_flight >= window:
            yield core.completed
        core.enqueue(command, submit_s=core.engine.now_s)
        yield arrival_s


def _run_open(mode: str, topology: SsdTopology, commands) -> tuple[float, float]:
    """(wall seconds, simulated makespan) for one mixed-open run."""
    if mode == "legacy":
        engine = LegacySimEngine()
        core = LegacySchedulerCore(engine, topology, PipelineConfig.full())
        core.start()
        engine.spawn(_open_admission(core, commands, OPEN_WINDOW, OPEN_ARRIVAL_S))
        start = time.perf_counter()
        makespan = engine.run()
        return time.perf_counter() - start, makespan
    flat = mode in ("fast", "fast-cal")
    backend = "calendar" if mode in ("calendar", "fast-cal") else "heap"
    engine = SimEngine(event_list=backend)
    core = SchedulerCore(engine, topology, PipelineConfig.full(), flat=flat)
    core.start()
    engine.run()  # park the resident dispatchers before the stream
    core.submit_stream(commands, window=OPEN_WINDOW, arrival_s=OPEN_ARRIVAL_S)
    start = time.perf_counter()
    makespan = engine.run()
    wall = time.perf_counter() - start
    if flat and core.fast_commands != len(commands):
        raise AssertionError(
            f"flat core dispatched {core.fast_commands} of "
            f"{len(commands)} commands; the rest fell back"
        )
    return wall, makespan


def _run_closed(mode: str, topology: SsdTopology, commands) -> tuple[float, float]:
    """(wall seconds, simulated makespan) for one closed-batch run."""
    if mode == "legacy":
        engine = LegacySimEngine()
        core = LegacySchedulerCore(engine, topology, PipelineConfig.full())
        # Admission before workers: CommandScheduler's spawn order (the
        # sequence numbers, and hence tie-breaks, depend on it).
        engine.spawn(legacy_closed_admission(core, commands, CLOSED_QD))
        core.start()
        start = time.perf_counter()
        makespan = engine.run()
        return time.perf_counter() - start, makespan
    if mode == "fast":
        scheduler = CommandScheduler(topology, pipeline=PipelineConfig.full())
        start = time.perf_counter()
        result = scheduler.run(commands, queue_depth=CLOSED_QD)
        return time.perf_counter() - start, result.makespan_s
    # Generator path on the chosen event-list backend.
    engine = SimEngine(event_list=mode)
    core = SchedulerCore(engine, topology, PipelineConfig.full())
    engine.spawn(closed_admission(core, commands, CLOSED_QD))
    core.start()
    start = time.perf_counter()
    makespan = engine.run()
    return time.perf_counter() - start, makespan


def _measure(
    runner, modes, topology, commands, repeats: int
) -> tuple[dict[str, float], dict[str, float]]:
    """Best-of-N wall times per mode, repeats interleaved across modes.

    Round-robin over the modes rather than per-mode blocks: CPU
    frequency and cache state drift over a multi-second benchmark, and
    block ordering hands whichever mode runs in the fastest window an
    unearned edge.  Interleaving exposes every mode to the same drift,
    so the speedup ratios compare like with like.  Per-mode makespans
    are asserted stable across repeats.
    """
    walls: dict[str, float] = {mode: float("inf") for mode in modes}
    makespans: dict[str, float] = {}
    for _ in range(repeats):
        for mode in modes:
            wall, mk = runner(mode, topology, commands)
            if mode not in makespans:
                makespans[mode] = mk
            elif mk != makespans[mode]:
                raise AssertionError(f"non-deterministic makespan in {mode}")
            walls[mode] = min(walls[mode], wall)
    return walls, makespans


def run_benchmark(quick: bool = False) -> tuple[str, dict]:
    """Measure the grid; returns (report text, metrics)."""
    ops = QUICK_OPS if quick else OPS
    repeats = 2 if quick else 3
    topologies = [t for t in TOPOLOGIES if not (quick and t == (8, 8))]
    shapes = (
        ("reads-closed", _run_closed, 1.0, ("legacy", "heap", "calendar", "fast")),
        ("writes-closed", _run_closed, 0.0, ("legacy", "heap", "calendar", "fast")),
        ("mixed-open", _run_open, 0.7,
         ("legacy", "heap", "calendar", "fast", "fast-cal")),
    )
    lines = [
        "Simulation speed: simulated ops/sec, new engine vs verbatim "
        "pre-PR engine+scheduler (same process, same stream)",
        f"(full pipeline, {ops} commands, best of {repeats}; mixed-open: "
        f"window {OPEN_WINDOW}, {OPEN_ARRIVAL_S * 1e6:.0f} us arrivals; "
        f"closed: QD {CLOSED_QD})",
        "",
        f"{'topology':>9} {'shape':>14} {'mode':>9} {'ops/s':>9} {'speedup':>8}",
    ]
    results = []
    gate_speedups: dict[str, float] = {}
    gate_walls: dict[str, float] = {}
    for channels, dies_per_channel in topologies:
        topology = SsdTopology(channels=channels, dies_per_channel=dies_per_channel)
        label = f"{channels}x{dies_per_channel}"
        for shape, runner, read_fraction, modes in shapes:
            commands = _build_stream(ops, topology.dies, read_fraction)
            walls, mode_makespans = _measure(
                runner, modes, topology, commands, repeats
            )
            makespans = set(mode_makespans.values())
            baseline_wall = walls["legacy"]
            for mode in modes:
                wall = walls[mode]
                makespan = mode_makespans[mode]
                speedup = baseline_wall / wall
                results.append({
                    "topology": label,
                    "shape": shape,
                    "mode": mode,
                    "ops_per_sec": round(ops / wall, 1),
                    "speedup_vs_legacy": round(speedup, 3),
                    "makespan_s": makespan,
                })
                lines.append(
                    f"{label:>9} {shape:>14} {mode:>9} {ops / wall:>9.0f} "
                    f"{speedup:>7.2f}x"
                )
                if (
                    (channels, dies_per_channel) == GATE_TOPOLOGY
                    and shape == "mixed-open"
                ):
                    gate_walls[mode] = wall
                    if mode != "legacy":
                        gate_speedups[mode] = speedup
            if len(makespans) != 1:
                raise AssertionError(
                    f"{label}/{shape}: modes disagree on makespan: {makespans}"
                )
    gate = max(gate_speedups.values()) if gate_speedups else 0.0
    # Flat core vs the resident generator workers, same backend each.
    fast_gate_speedups: dict[str, float] = {}
    for fast_mode, gen_mode, key in (
        ("fast", "heap", "heap"),
        ("fast-cal", "calendar", "calendar"),
    ):
        if fast_mode in gate_walls and gen_mode in gate_walls:
            fast_gate_speedups[key] = gate_walls[gen_mode] / gate_walls[fast_mode]
    fast_gate = max(fast_gate_speedups.values()) if fast_gate_speedups else 0.0
    metrics = {
        "gate_speedup": gate,
        "gate_speedups": gate_speedups,
        "fast_gate_speedup": fast_gate,
        "fast_gate_speedups": fast_gate_speedups,
        "results": results,
    }
    lines += [
        "",
        f"gate (4x4 mixed-open, best backend): {gate:.2f}x vs pre-PR "
        f"(target {MIN_SPEEDUP_TARGET:.1f}x at PR time, CI floor "
        f"{MIN_SPEEDUP_FLOOR:.1f}x)",
        "fast gate (4x4 mixed-open, flat vs generator, best backend): "
        + ", ".join(
            f"{value:.2f}x on {backend}"
            for backend, value in fast_gate_speedups.items()
        )
        + f" (target {MIN_FAST_SPEEDUP_TARGET:.1f}x, CI floor "
        f"{MIN_FAST_SPEEDUP_FLOOR:.1f}x)",
    ]
    return "\n".join(lines) + "\n", metrics


def _save(text: str, metrics: dict, quick: bool) -> None:
    """Append this run to the trajectory JSON and print the table."""
    OUT_PATH.parent.mkdir(exist_ok=True)
    trajectory = []
    if OUT_PATH.exists():
        trajectory = json.loads(OUT_PATH.read_text()).get("trajectory", [])
    trajectory.append({
        "quick": quick,
        "python": sys.version.split()[0],
        "gate_speedup_vs_legacy": round(metrics["gate_speedup"], 3),
        "gate_speedups": {
            mode: round(value, 3)
            for mode, value in metrics["gate_speedups"].items()
        },
        "fast_gate_speedup_vs_generator": round(
            metrics["fast_gate_speedup"], 3
        ),
        "fast_gate_speedups": {
            backend: round(value, 3)
            for backend, value in metrics["fast_gate_speedups"].items()
        },
        "results": metrics["results"],
    })
    OUT_PATH.write_text(json.dumps({
        "benchmark": "sim_speed",
        "gate": {
            "topology": f"{GATE_TOPOLOGY[0]}x{GATE_TOPOLOGY[1]}",
            "shape": "mixed-open",
            "floor": MIN_SPEEDUP_FLOOR,
            "target": MIN_SPEEDUP_TARGET,
            "fast_floor": MIN_FAST_SPEEDUP_FLOOR,
            "fast_target": MIN_FAST_SPEEDUP_TARGET,
        },
        "trajectory": trajectory,
    }, indent=2) + "\n")
    print("\n" + text)


def _check(metrics: dict) -> list[str]:
    failures = []
    if metrics["gate_speedup"] < MIN_SPEEDUP_FLOOR:
        failures.append(
            f"4x4 mixed-open speedup {metrics['gate_speedup']:.2f}x vs the "
            f"pre-PR engine, below the {MIN_SPEEDUP_FLOOR:.1f}x floor"
        )
    if metrics["fast_gate_speedup"] < MIN_FAST_SPEEDUP_FLOOR:
        failures.append(
            f"4x4 mixed-open flat-core speedup "
            f"{metrics['fast_gate_speedup']:.2f}x vs the generator workers "
            f"(best backend), below the {MIN_FAST_SPEEDUP_FLOOR:.1f}x floor"
        )
    return failures


@pytest.mark.slow
def test_sim_speed(quick):
    """Record the sim-speed grid and enforce the speedup floor."""
    text, metrics = run_benchmark(quick=quick)
    _save(text, metrics, quick)
    failures = _check(metrics)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    is_quick = "--quick" in sys.argv
    report, run_metrics = run_benchmark(quick=is_quick)
    _save(report, run_metrics, is_quick)
    run_failures = _check(run_metrics)
    for failure in run_failures:
        print("FAIL:", failure)
    print(
        f"sim-speed floor (>= {MIN_SPEEDUP_FLOOR:.1f}x on 4x4 mixed-open): "
        f"{run_metrics['gate_speedup']:.2f}x; fast floor "
        f"(>= {MIN_FAST_SPEEDUP_FLOOR:.1f}x flat vs generator): "
        f"{run_metrics['fast_gate_speedup']:.2f}x "
        f"{'FAIL' if run_failures else 'PASS'}"
    )
    sys.exit(1 if run_failures else 0)
