"""Fig. 3 — MLC threshold-voltage distributions with R/VFY/OP levels."""

from benchmarks.conftest import run_once, save_report


def test_fig03_distributions(benchmark, suite):
    result = run_once(benchmark, suite.run_fig03)
    save_report(result)
    stats = result.data["stats"]
    means = [s.mean for s in stats]
    assert means == sorted(means), "levels L0..L3 must be ordered"
    assert all(s.count > 3000 for s in stats)
