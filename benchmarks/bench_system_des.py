"""System bench — end-to-end discrete-event controller simulation."""

from benchmarks.conftest import run_once, save_report


def test_system_des(benchmark, suite):
    result = run_once(benchmark, suite.run_system_des)
    save_report(result)
    rows = result.data["rows"]
    by_key = {(r[0], r[1]): r for r in rows}
    baseline_mm = by_key[("baseline", "multimedia")]
    maxread_mm = by_key[("max-read-throughput", "multimedia")]
    # No uncorrectable pages anywhere on a fresh device.
    assert all(r[5] == 0 for r in rows)
    # Writes pay the ISPP-DV penalty in max-read mode.
    assert maxread_mm[3] < baseline_mm[3]
