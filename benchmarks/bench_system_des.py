"""System bench — end-to-end discrete-event controller simulation."""

from benchmarks.conftest import run_once, save_report


def test_system_des(benchmark, suite):
    result = run_once(benchmark, suite.run_system_des)
    save_report(result)
    rows = result.data["rows"]
    by_key = {(r[0], r[1]): r for r in rows}
    baseline_mm = by_key[("baseline", "multimedia")]
    maxread_mm = by_key[("max-read-throughput", "multimedia")]
    # Rows: [mode, name, read, write, ftl_read, ftl_write,
    #        corrected_bits, uncorrectable].
    # No uncorrectable pages anywhere on a fresh device.
    assert all(r[7] == 0 for r in rows)
    # Writes pay the ISPP-DV penalty in max-read mode.
    assert maxread_mm[3] < baseline_mm[3]
    # The FTL host sees the same ordering (map/GC overhead included).
    assert maxread_mm[5] < baseline_mm[5]
