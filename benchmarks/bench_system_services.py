"""System bench — differentiated storage services (paper future work)."""

from benchmarks.conftest import run_once, save_report


def test_system_services(benchmark, suite):
    result = run_once(benchmark, suite.run_system_services)
    save_report(result)
    rows = {r[0]: r for r in result.data["rows"]}
    # Streaming namespace reads faster than the baseline namespace.
    assert rows["media"][3] < rows["misc"][3]
    # Mission-critical (ISPP-DV) collects far fewer raw bit errors than the
    # SV baseline namespace under identical traffic.
    assert rows["vault"][5] < rows["misc"][5]
    # Both DV classes pay the write penalty.
    assert rows["vault"][4] > rows["misc"][4]
    assert rows["media"][4] > rows["misc"][4]
