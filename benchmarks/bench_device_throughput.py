"""Device datapath throughput: serial seed path vs batched ``read_pages``.

Measures NAND-device page read and program throughput (MB/s over the
full page footprint) at batch sizes 1/16/64/256 and three lifetime
points (fresh, midlife 1e4, end-of-life 1e5 P/E cycles — RBER spans
~1e-5..1e-3 on the ISPP-SV curve).

The serial reference is a faithful replica of the seed storage
substrate: ``dict[int, bytes]`` page store, per-position Python loop for
error injection, ``dict[int, _PageMeta]`` metadata and scalar RBER /
read-disturb arithmetic per page.  The batch path is the array-backed
store with vectorized RBER + skip-sampling injection.  Outputs are
cross-checked byte-identical at RBER = 0 before timing.  Run standalone
(``python benchmarks/bench_device_throughput.py``) or through pytest;
the full sweep is marked ``slow`` and ``--quick`` shrinks repetitions.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.nand.device import NandFlashDevice, OperationReport, ReadDisturbParams
from repro.nand.geometry import NandGeometry
from repro.nand.ispp import IsppAlgorithm
from repro.nand.rber import LifetimeRberModel
from repro.nand.timing import NandTimingModel

BATCH_SIZES = (1, 16, 64, 256)
WEAR_POINTS = (0.0, 1e4, 1e5)

#: Acceptance floor: batched reads at batch 64, end-of-life RBER.
MIN_READ_SPEEDUP = 5.0


# -- serial seed-path replica ----------------------------------------------------


@dataclass(frozen=True)
class _PageMeta:
    algorithm: IsppAlgorithm
    programmed_at_wear: int


class _SeedDevice:
    """The pre-refactor device datapath: dict store + per-bit Python loop."""

    def __init__(self, geometry: NandGeometry, rng: np.random.Generator):
        self.geometry = geometry
        self.rng = rng
        self._pages: dict[int, bytes] = {}
        self._wear = np.zeros(geometry.blocks, dtype=np.int64)
        self._reads_since_erase = np.zeros(geometry.blocks, dtype=np.int64)
        self.rber_model = LifetimeRberModel()
        self.timing = NandTimingModel()
        self.disturb = ReadDisturbParams()
        self._algorithm = IsppAlgorithm.SV
        self._page_meta: dict[int, _PageMeta] = {}
        self._timing_cache: dict[tuple[IsppAlgorithm, int], float] = {}

    def _flat(self, block: int, page: int) -> int:
        return block * self.geometry.pages_per_block + page

    def _program_time_s(self, pe_cycles: float) -> float:
        decade = 0 if pe_cycles < 1 else int(math.floor(math.log10(pe_cycles)))
        # Timing-model Monte-Carlo elided (identical cached cost on both
        # paths); a constant keeps the comparison about the datapath.
        return self._timing_cache.setdefault((self._algorithm, decade), 600e-6)

    def program_page(self, block: int, page: int, data: bytes) -> OperationReport:
        flat = self._flat(block, page)
        if flat in self._pages:
            raise RuntimeError("already programmed")
        self._pages[flat] = bytes(data)
        wear = int(self._wear[block])
        self._page_meta[flat] = _PageMeta(self._algorithm, wear)
        return OperationReport(
            latency_s=self._program_time_s(wear), algorithm=self._algorithm
        )

    def read_array(self, block: int, page: int, rber: float) -> bytes:
        """The seed ``NandArray.read_page``: binomial + per-position loop."""
        flat = self._flat(block, page)
        self._reads_since_erase[block] += 1
        stored = self._pages.get(flat)
        if stored is None:
            return bytes([0xFF]) * self.geometry.page_bytes
        if rber <= 0.0:
            return stored
        n_bits = len(stored) * 8
        n_errors = int(self.rng.binomial(n_bits, rber))
        if n_errors == 0:
            return stored
        corrupted = bytearray(stored)
        for pos in self.rng.choice(n_bits, size=n_errors, replace=False):
            corrupted[pos // 8] ^= 0x80 >> (pos % 8)
        return bytes(corrupted)

    def read_page(self, block: int, page: int) -> tuple[bytes, OperationReport]:
        flat = self._flat(block, page)
        meta = self._page_meta.get(flat)
        if meta is None:
            data = self.read_array(block, page, 0.0)
            return data, OperationReport(latency_s=self.timing.read_time_s())
        rber = self.rber_model.rber(meta.algorithm, int(self._wear[block]))
        rber *= self.disturb.factor(int(self._reads_since_erase[block]))
        data = self.read_array(block, page, rber)
        return data, OperationReport(
            latency_s=self.timing.read_time_s(),
            rber=rber,
            algorithm=meta.algorithm,
        )

    def erase_block(self, block: int) -> None:
        start = block * self.geometry.pages_per_block
        for flat in range(start, start + self.geometry.pages_per_block):
            self._pages.pop(flat, None)
            self._page_meta.pop(flat, None)
        self._wear[block] += 1
        self._reads_since_erase[block] = 0


# -- harness -------------------------------------------------------------------


def _geometry(pages: int) -> NandGeometry:
    blocks = max(2, (pages + 63) // 64)
    return NandGeometry(blocks=blocks, pages_per_block=64)


def _addresses(geometry: NandGeometry, pages: int) -> list[tuple[int, int]]:
    return [divmod(i, geometry.pages_per_block) for i in range(pages)]


def _mb_s(pages: int, page_bytes: int, seconds: float) -> float:
    return pages * page_bytes / max(seconds, 1e-12) / 1e6


def _fill(device, addresses, payloads) -> None:
    for (block, page), data in zip(addresses, payloads):
        device.program_page(block, page, data)


def _crosscheck_zero_rber(pages: int = 32) -> None:
    """Batch reads must be byte-identical to serial reads at RBER = 0."""
    geometry = _geometry(pages)
    addresses = _addresses(geometry, pages)
    rng = np.random.default_rng(1)
    payloads = [rng.bytes(geometry.page_bytes) for _ in range(pages)]
    seed = _SeedDevice(geometry, np.random.default_rng(2))
    new = NandFlashDevice(geometry, rng=np.random.default_rng(2))
    _fill(seed, addresses, payloads)
    new.program_pages(addresses, payloads)
    raw = new.array.read_pages(
        np.arange(pages, dtype=np.int64), np.zeros(pages)
    )
    for row, (block, page) in zip(raw, addresses):
        reference = seed.read_array(block, page, 0.0)
        assert row.tobytes() == reference, "zero-RBER read mismatch"


def _bench_reads(wear: float, batch: int, reps: int) -> dict:
    geometry = _geometry(batch)
    addresses = _addresses(geometry, batch)
    rng = np.random.default_rng(99)
    payloads = [rng.bytes(geometry.page_bytes) for _ in range(batch)]

    seed = _SeedDevice(geometry, np.random.default_rng(5))
    new = NandFlashDevice(geometry, rng=np.random.default_rng(5))
    seed._wear[:] = int(wear)
    new.array._wear[:] = int(wear)
    _fill(seed, addresses, payloads)
    new.program_pages(addresses, payloads)

    rber = seed.rber_model.rber_sv(wear)
    seed_best = new_best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for block, page in addresses:
            seed.read_page(block, page)
        seed_best = min(seed_best, time.perf_counter() - start)
        start = time.perf_counter()
        new.read_pages(addresses)
        new_best = min(new_best, time.perf_counter() - start)
    return {
        "wear": wear,
        "rber": rber,
        "batch": batch,
        "serial_mb_s": _mb_s(batch, geometry.page_bytes, seed_best),
        "batch_mb_s": _mb_s(batch, geometry.page_bytes, new_best),
    }


def _bench_programs(batch: int, reps: int) -> dict:
    geometry = _geometry(batch)
    addresses = _addresses(geometry, batch)
    rng = np.random.default_rng(7)
    payloads = [rng.bytes(geometry.page_bytes) for _ in range(batch)]
    seed = _SeedDevice(geometry, np.random.default_rng(8))
    new = NandFlashDevice(geometry, rng=np.random.default_rng(8))
    new.program_pages(addresses[:1], payloads[:1])  # warm the timing cache
    new.erase_block(0)
    seed_best = new_best = float("inf")
    for _ in range(reps):
        for block in range(geometry.blocks):
            seed.erase_block(block)
            new.erase_block(block)
        start = time.perf_counter()
        for (block, page), data in zip(addresses, payloads):
            seed.program_page(block, page, data)
        seed_best = min(seed_best, time.perf_counter() - start)
        start = time.perf_counter()
        new.program_pages(addresses, payloads)
        new_best = min(new_best, time.perf_counter() - start)
    return {
        "batch": batch,
        "serial_mb_s": _mb_s(batch, geometry.page_bytes, seed_best),
        "batch_mb_s": _mb_s(batch, geometry.page_bytes, new_best),
    }


def run_benchmark(reps: int = 5) -> tuple[str, dict]:
    """Full sweep; returns (report text, read speedups by (wear, batch))."""
    _crosscheck_zero_rber()
    lines = [
        "Device datapath throughput, serial seed path (dict store, "
        "per-position loop) vs batched read_pages/program_pages",
        "(MB/s over the full page footprint, best of "
        f"{reps} repetitions)",
        "",
        "READS",
        f"{'pe_cycles':>10} {'RBER':>9} {'batch':>6} {'serial MB/s':>12} "
        f"{'batch MB/s':>11} {'speedup':>8}",
    ]
    read_speedups: dict = {}
    for wear in WEAR_POINTS:
        for batch in BATCH_SIZES:
            row = _bench_reads(wear, batch, reps)
            speedup = row["batch_mb_s"] / row["serial_mb_s"]
            read_speedups[(wear, batch)] = speedup
            lines.append(
                f"{row['wear']:>10.0f} {row['rber']:>9.1e} {row['batch']:>6} "
                f"{row['serial_mb_s']:>12.1f} {row['batch_mb_s']:>11.1f} "
                f"{speedup:>7.1f}x"
            )
    lines += [
        "",
        "PROGRAMS",
        f"{'batch':>6} {'serial MB/s':>12} {'batch MB/s':>11} {'speedup':>8}",
    ]
    for batch in BATCH_SIZES:
        row = _bench_programs(batch, reps)
        speedup = row["batch_mb_s"] / row["serial_mb_s"]
        lines.append(
            f"{row['batch']:>6} {row['serial_mb_s']:>12.1f} "
            f"{row['batch_mb_s']:>11.1f} {speedup:>7.1f}x"
        )
    return "\n".join(lines) + "\n", read_speedups


def _save(text: str) -> None:
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "device_throughput.txt").write_text(text)
    print("\n" + text)


@pytest.mark.slow
def test_device_throughput(quick):
    """Record the device-path trajectory and enforce the batch floor."""
    text, speedups = run_benchmark(reps=3 if quick else 5)
    _save(text)
    eol = WEAR_POINTS[-1]
    assert speedups[(eol, 64)] >= MIN_READ_SPEEDUP, (
        f"batch-64 EOL read speedup {speedups[(eol, 64)]:.1f}x below the "
        f"{MIN_READ_SPEEDUP:.0f}x floor"
    )


if __name__ == "__main__":
    report, speedups = run_benchmark(reps=3 if "--quick" in sys.argv else 5)
    _save(report)
    eol_speedup = speedups[(WEAR_POINTS[-1], 64)]
    ok = eol_speedup >= MIN_READ_SPEEDUP
    print(f"batch-64 EOL read floor ({MIN_READ_SPEEDUP:.0f}x): "
          f"{eol_speedup:.1f}x {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
