"""Mission-critical storage with the min-UBER mode (paper section 6.3.1).

An append-only transaction log demands an UBER far below the 1e-11
datasheet figure.  The cross-layer min-UBER mode switches the physical
layer to ISPP-DV while keeping the baseline ECC configuration: the
achieved UBER drops by orders of magnitude, read latency is untouched, and
only writes slow down — exactly the trade the paper proposes for secure
transactions, OS upgrades and backups.

Run:  python examples/secure_transaction_log.py
"""

import numpy as np

from repro import NandController, OperatingMode
from repro.bch.uber import log10_achieved_uber
from repro.nand.geometry import NandGeometry
from repro.workloads.patterns import random_page

DEVICE_AGE = 1e4  # a mid-life device


def main() -> None:
    rng = np.random.default_rng(11)
    controller = NandController(
        NandGeometry(blocks=8, pages_per_block=16),
        rng=rng,
    )
    controller.device.array._wear[:] = int(DEVICE_AGE)

    print("appending the transaction log in both service levels:\n")
    for mode in (OperatingMode.BASELINE, OperatingMode.MIN_UBER):
        controller.set_mode(mode, pe_reference=DEVICE_AGE)
        status = controller.status()
        config = controller.policy.config_for(mode, DEVICE_AGE)
        rber = controller.policy.rber_for(config, DEVICE_AGE)
        log_uber = log10_achieved_uber(rber, config.ecc_t)

        # Append a few records (one page each) and verify them back.
        block = 0 if mode is OperatingMode.BASELINE else 1
        write_us = read_us = 0.0
        for page in range(4):
            record = random_page(4096, rng)
            report = controller.write(block, page, record)
            write_us += report.latencies.total_s * 1e6
            out, read = controller.read(block, page)
            assert out == record
            read_us += read.latencies.total_s * 1e6

        print(
            f"{mode.value:<10s} algo={status['program_algorithm']} "
            f"t={status['ecc_t']:<3d} RBER={rber:.2e} "
            f"log10(UBER)={log_uber:7.1f}  "
            f"avg write={write_us / 4:7.0f} us  avg read={read_us / 4:6.0f} us"
        )

    print(
        "\nmin-UBER mode: same t, same read path, UBER improved by orders of"
        " magnitude; writes pay the ISPP-DV time (paper section 6.3.1)."
    )


if __name__ == "__main__":
    main()
