"""High-voltage subsystem characterisation (paper section 5.1).

Runs the transient solver on the three Dickson pumps (ramp to regulation),
then expands one ISPP-SV and one ISPP-DV program operation into its HV
enable-signal waveform and prints the FlashPower energy breakdown — the
machinery behind Fig. 6.

Run:  python examples/hv_characterisation.py
"""

import numpy as np

from repro.analysis.ascii_plot import format_table
from repro.hv import HighVoltageSubsystem, build_program_waveform
from repro.hv.waveform import PhaseKind
from repro.nand.ispp import IsppAlgorithm
from repro.nand.program import PageProgrammer


def main() -> None:
    hv = HighVoltageSubsystem()

    print("pump ramp characterisation (transient solver):")
    rows = []
    for name in ("program", "inhibit", "verify"):
        c = hv.characterise_pump(name)
        rows.append([
            name, c.target_v, c.settle_time_s * 1e6, c.ripple_v,
            c.average_supply_power_w * 1e3,
        ])
    print(format_table(
        ["pump", "target [V]", "settle [us]", "ripple [V]", "supply [mW]"],
        rows,
    ))

    programmer = PageProgrammer(rng=np.random.default_rng(3))
    print("\nprogram-operation power (FlashPower breakdown):")
    rows = []
    for algorithm in IsppAlgorithm:
        outcome = programmer.program_random_page(16384, algorithm)
        waveform = build_program_waveform(outcome.ispp)
        breakdown = hv.program_power(outcome.ispp)
        rows.append([
            algorithm.value,
            outcome.ispp.pulses,
            outcome.ispp.verify_ops + outcome.ispp.preverify_ops,
            waveform.time_in(PhaseKind.VERIFY) * 1e6,
            breakdown.total_energy_j * 1e6,
            breakdown.average_power_w * 1e3,
        ])
    print(format_table(
        ["algorithm", "pulses", "verify ops", "verify time [us]",
         "energy [uJ]", "avg power [mW]"],
        rows,
    ))
    print("\nISPP-DV pays ~2x the verify ops; its power sits ~7 mW above "
          "ISPP-SV (paper Fig. 6).")


if __name__ == "__main__":
    main()
