"""Quickstart: write, corrupt, read and reconfigure an MLC NAND sub-system.

Demonstrates the library's top-level API in ~40 lines:

* build a :class:`NandController` (device + adaptive BCH + policies);
* write and read a page in the baseline mode;
* switch to the paper's two cross-layer modes and observe the knobs move.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NandController, OperatingMode
from repro.nand.geometry import NandGeometry
from repro.workloads.patterns import random_page


def main() -> None:
    rng = np.random.default_rng(42)
    controller = NandController(
        NandGeometry(blocks=8, pages_per_block=16), rng=rng
    )
    print("initial status:", controller.status())

    # -- write + read one page in the baseline mode -------------------------
    data = random_page(4096, rng)
    write = controller.write(block=0, page=0, data=data)
    print(
        f"write: algorithm={write.algorithm.value}, t={write.ecc_t}, "
        f"latency={write.latencies.total_s * 1e6:.0f} us"
    )
    out, read = controller.read(block=0, page=0)
    assert out == data
    print(
        f"read:  corrected {read.corrected_bits} bit(s), "
        f"latency={read.latencies.total_s * 1e6:.0f} us"
    )

    # -- cross-layer mode switches ------------------------------------------
    for mode in (OperatingMode.MIN_UBER, OperatingMode.MAX_READ_THROUGHPUT):
        controller.set_mode(mode)
        status = controller.status()
        print(
            f"mode={status['mode']:<22s} -> program algorithm="
            f"{status['program_algorithm']}, BCH t={status['ecc_t']}"
        )

    # Pages written earlier still decode (per-page codeword bookkeeping).
    out, _ = controller.read(block=0, page=0)
    assert out == data
    print("baseline-written page still decodes after reconfiguration: OK")


if __name__ == "__main__":
    main()
