"""Self-adaptive reliability management (paper section 3).

The controller's reliability manager watches the adaptive codec's
corrected-bit feedback, estimates the device RBER online and retunes the
cross-layer configuration at epoch boundaries — "in-situ adaptation to
actual operating conditions".  This example ages the device under the
manager's nose and shows t tracking the real error rate without any
external age oracle.

Run:  python examples/self_adaptive_controller.py
"""

import numpy as np

from repro import NandController, OperatingMode
from repro.controller.controller import ControllerConfig
from repro.controller.reliability import ReliabilityPolicy
from repro.nand.geometry import NandGeometry
from repro.workloads.patterns import random_page


def main() -> None:
    rng = np.random.default_rng(23)
    controller = NandController(
        NandGeometry(blocks=8, pages_per_block=16),
        config=ControllerConfig(self_adaptive=True, strict_decode=False),
        reliability_policy=ReliabilityPolicy(
            epoch_reads=16, min_bits_for_estimate=8 * 34848,
        ),
        rng=rng,
    )
    # Start from the worst-case provisioning the manager defaults to.
    controller.apply_config(controller.device.program_algorithm, 65)

    print("age [P/E]   observed RBER   selected t   decode latency [us]")
    for age in (1e2, 1e3, 1e4, 1e5):
        controller.device.array._wear[:] = int(age)
        # Traffic: write a handful of pages, stream them back.
        block = int(np.log10(age))
        for page in range(4):
            controller.write(block, page, random_page(4096, rng))
        for _ in range(5):
            for page in range(4):
                controller.read(block, page)
        last = controller.reliability.adaptations[-1]
        decode_us = controller.codec.decode_latency_s() * 1e6
        print(
            f"{age:9.0e}   {last.estimated_rber:13.2e}   "
            f"{controller.codec.t:10d}   {decode_us:12.1f}"
        )

    adaptations = controller.reliability.adaptations
    print(f"\n{len(adaptations)} adaptation decisions taken; last config: "
          f"{adaptations[-1].config.describe()}")
    print("t rises with the observed error rate — no external age oracle used.")


if __name__ == "__main__":
    main()
