"""Lifetime exploration of every cross-layer operating mode.

Sweeps the device age and prints, for each mode, the configuration the
policy selects and all headline metrics (RBER, UBER, latencies,
throughputs) — a terminal rendition of the paper's section 6.3 analysis,
plus the Pareto front of the full (algorithm, t) space at end of life.

Run:  python examples/lifetime_explorer.py
"""

import numpy as np

from repro import OperatingMode, TradeoffAnalyzer
from repro.analysis.ascii_plot import format_table
from repro.core.pareto import enumerate_operating_points, pareto_front

AGES = [1.0, 1e2, 1e3, 1e4, 1e5]


def main() -> None:
    analyzer = TradeoffAnalyzer()

    rows = []
    for mode in OperatingMode:
        for age in AGES:
            point = analyzer.point(mode, age)
            rows.append([
                mode.value, f"{age:.0e}", point.config.describe(),
                point.rber, point.log10_uber,
                point.decode_s * 1e6, point.program_s * 1e6,
                point.read_mb_s, point.write_mb_s,
            ])
    print(format_table(
        ["mode", "P/E", "configuration", "RBER", "log10 UBER",
         "decode [us]", "program [us]", "read MB/s", "write MB/s"],
        rows,
    ))

    print("\nPareto front of all (algorithm, t) points at end of life:")
    points = enumerate_operating_points(
        analyzer, 1e5, t_values=[3, 6, 14, 20, 27, 33, 40, 53, 65]
    )
    feasible = [p for p in points if p.log10_uber <= -11]
    front = pareto_front(feasible)
    front_rows = [
        [p.algorithm.value, p.ecc_t, p.read_mb_s, p.write_mb_s,
         p.log10_uber, p.ecc_power_w * 1e3]
        for p in sorted(front, key=lambda p: -p.read_mb_s)
    ]
    print(format_table(
        ["algorithm", "t", "read MB/s", "write MB/s", "log10 UBER",
         "ECC power [mW]"],
        front_rows,
    ))
    print(
        f"\n{len(feasible)} UBER-feasible points, {len(front)} on the front; "
        "the ISPP-DV entries are the paper's 'new trade-offs'."
    )


if __name__ == "__main__":
    main()
