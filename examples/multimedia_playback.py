"""Read-intensive multimedia service level (paper section 6.3.2).

Streams a media library from an *end-of-life* device under the baseline
and the max-read-throughput cross-layer modes, and reports the read
throughput gain — the Fig. 11 effect observed end-to-end through the
controller and the discrete-event simulator.

Run:  python examples/multimedia_playback.py
"""

import numpy as np

from repro import NandController, OperatingMode
from repro.nand.geometry import NandGeometry
from repro.sim.host import HostWorkload, run_host_workload
from repro.workloads.traces import multimedia_playback_trace

END_OF_LIFE_CYCLES = 1e5


def run_mode(mode: OperatingMode, seed: int = 7):
    controller = NandController(
        NandGeometry(blocks=4, pages_per_block=16),
        rng=np.random.default_rng(seed),
    )
    # Blocks have endured the rated lifetime already.
    controller.device.array._wear[:] = int(END_OF_LIFE_CYCLES)
    controller.set_mode(mode, pe_reference=END_OF_LIFE_CYCLES)

    trace = multimedia_playback_trace(
        blocks=2, pages_per_block=12, read_passes=6
    )
    result = run_host_workload(controller, HostWorkload("playback", trace))
    return controller, result


def main() -> None:
    print(f"device age: {END_OF_LIFE_CYCLES:.0e} P/E cycles (rated end of life)\n")
    outcomes = {}
    for mode in (OperatingMode.BASELINE, OperatingMode.MAX_READ_THROUGHPUT):
        controller, result = run_mode(mode)
        status = controller.status()
        read_latency_us = result.stats.read_latency.mean_s * 1e6
        print(
            f"{mode.value:<22s} algo={status['program_algorithm']} "
            f"t={status['ecc_t']:<3d} mean read latency={read_latency_us:7.1f} us  "
            f"corrected bits={result.corrected_bits:5d}  "
            f"uncorrectable={result.uncorrectable_pages}"
        )
        outcomes[mode] = result

    base = outcomes[OperatingMode.BASELINE].stats.read_latency.mean_s
    fast = outcomes[OperatingMode.MAX_READ_THROUGHPUT].stats.read_latency.mean_s
    print(
        f"\nread throughput gain at constant UBER: {100 * (base / fast - 1):.1f}% "
        "(paper Fig. 11: up to ~30%)"
    )
    print(
        "the price: ISPP-DV programming — see examples/lifetime_explorer.py "
        "for the write-side accounting"
    )


if __name__ == "__main__":
    main()
