"""Differentiated storage services — the paper's future work, running.

The conclusion of the paper: "In future work we intend to implement the
memory controller taking advantage of the new trade-offs, thus exposing
differentiated storage services to applications."  This example does that:
three applications share one mid-life NAND device through the FTL, each
with its own namespace bound to a service class:

* ``vault``  (mission-critical) -> min-UBER mode (ISPP-DV, baseline t);
* ``media``  (streaming)        -> max-read mode (ISPP-DV, relaxed t);
* ``misc``   (default)          -> baseline (ISPP-SV).

Run:  python examples/differentiated_services.py
"""

import numpy as np

from repro import NandController
from repro.analysis.ascii_plot import format_table
from repro.ftl.service import DifferentiatedStorage, ServiceClass
from repro.nand.geometry import NandGeometry
from repro.workloads.patterns import random_page

DEVICE_AGE = 6e4


def main() -> None:
    rng = np.random.default_rng(2012)
    controller = NandController(
        NandGeometry(blocks=12, pages_per_block=8), rng=rng
    )
    controller.device.array._wear[:] = int(DEVICE_AGE)

    storage = DifferentiatedStorage(controller)
    storage.create_namespace("vault", ServiceClass.MISSION_CRITICAL, blocks=4)
    storage.create_namespace("media", ServiceClass.STREAMING, blocks=4)
    storage.create_namespace("misc", ServiceClass.DEFAULT, blocks=4)
    storage.refresh_configs(pe_reference=DEVICE_AGE)

    # Each application writes its working set, then reads it repeatedly
    # (with overwrites in the vault, exercising the FTL + GC underneath).
    payloads: dict[tuple[str, int], bytes] = {}
    for name in ("vault", "media", "misc"):
        for lpn in range(8):
            payloads[(name, lpn)] = random_page(4096, rng)
            storage.write(name, lpn, payloads[(name, lpn)])
    for _ in range(4):  # vault log rollovers: overwrites -> garbage collection
        for lpn in range(8):
            payloads[("vault", lpn)] = random_page(4096, rng)
            storage.write("vault", lpn, payloads[("vault", lpn)])
    read_us: dict[str, float] = {}
    for name in ("vault", "media", "misc"):
        total = 0.0
        for _ in range(4):
            for lpn in range(8):
                data, latency = storage.read(name, lpn)
                assert data == payloads[(name, lpn)], f"{name}/{lpn} corrupted"
                total += latency
        read_us[name] = total / 32 * 1e6

    rows = []
    for entry in storage.report():
        rows.append([
            entry["namespace"], entry["class"], entry["config"],
            read_us[entry["namespace"]], entry["corrected_bits"],
            entry["write_amplification"],
        ])
    print(format_table(
        ["namespace", "class", "configuration", "avg read [us]",
         "corrected bits", "write amp."],
        rows,
    ))
    print(
        "\nOne chip, three service levels: the streaming namespace reads "
        "fastest,\nthe vault sees an order of magnitude fewer raw errors, "
        "and the default\nnamespace keeps full write speed. All data "
        "verified bit-exact through the FTL."
    )


if __name__ == "__main__":
    main()
