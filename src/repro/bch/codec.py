"""The adaptive BCH codec (paper section 4).

Wraps per-t encoders/decoders behind a single object whose correction
capability can be changed at runtime through ``set_correction_capability``
— the "dedicated input port" of the paper's adaptable ECC block.  Designed
codes, encoder reduction tables and syndrome tables are cached per t,
mirroring the small ROM of characteristic polynomials in the hardware.

``encode_batch``/``decode_batch`` expose the vectorized batch datapath
(see :mod:`repro.bch` for the design): whole page groups move through
numpy kernels with per-word results and telemetry identical to the
scalar calls.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.bch.decoder import BCHDecoder, DecodeResult
from repro.bch.encoder import BCHEncoder
from repro.bch.hardware import EccLatencyModel
from repro.bch.params import BCHCodeSpec, design_code
from repro.errors import ConfigurationError
from repro.params import MESSAGE_BITS, T_MAX, EccHardwareParams


@dataclass(frozen=True)
class CodecObservation:
    """Feedback snapshot consumed by the reliability manager (section 3)."""

    words_decoded: int
    words_failed: int
    bits_corrected: int
    bits_processed: int
    max_errors_in_word: int

    @property
    def observed_rber(self) -> float:
        """Online pre-correction RBER estimate from corrected-bit counts."""
        if self.bits_processed == 0:
            return 0.0
        return self.bits_corrected / self.bits_processed


class AdaptiveBCHCodec:
    """BCH codec with runtime-programmable correction capability.

    Parameters
    ----------
    k:
        Message length in bits (default: one 4 KiB page).
    t_max / t_min:
        Supported correction-capability range (paper: 3..65 instantiated,
        electrically capable down to 1).
    hw:
        Hardware parameters for the latency model.

    Examples
    --------
    >>> codec = AdaptiveBCHCodec(k=32768, t_max=65)
    >>> codec.set_correction_capability(8)
    >>> codeword = codec.encode(bytes(4096))
    >>> result = codec.decode(codeword)
    >>> result.corrected_bits
    0
    """

    def __init__(
        self,
        k: int = MESSAGE_BITS,
        t_max: int = T_MAX,
        t_min: int = 1,
        m: int | None = None,
        hw: EccHardwareParams | None = None,
    ):
        if not 1 <= t_min <= t_max:
            raise ConfigurationError(f"invalid t range [{t_min}, {t_max}]")
        self.k = k
        self.t_min = t_min
        self.t_max = t_max
        self._m = m
        self.latency_model = EccLatencyModel(hw)
        self._specs: dict[int, BCHCodeSpec] = {}
        self._encoders: dict[int, BCHEncoder] = {}
        self._decoders: dict[int, BCHDecoder] = {}
        self._t = t_min
        # Aggregate decode feedback across reconfigurations.
        self._words_decoded = 0
        self._words_failed = 0
        self._bits_corrected = 0
        self._bits_processed = 0
        self._max_errors = 0

    # -- configuration port -------------------------------------------------

    @property
    def t(self) -> int:
        """Currently selected correction capability."""
        return self._t

    def set_correction_capability(self, t: int) -> None:
        """Reconfigure the codec (the paper's runtime input port)."""
        if not self.t_min <= t <= self.t_max:
            raise ConfigurationError(
                f"t={t} outside supported range [{self.t_min}, {self.t_max}]"
            )
        self._t = t

    def spec_for(self, t: int) -> BCHCodeSpec:
        """Designed code for capability t (cached, the polynomial ROM)."""
        if t not in self._specs:
            if not self.t_min <= t <= self.t_max:
                raise ConfigurationError(
                    f"t={t} outside supported range [{self.t_min}, {self.t_max}]"
                )
            self._specs[t] = design_code(self.k, t, self._m)
        return self._specs[t]

    @property
    def spec(self) -> BCHCodeSpec:
        """Code spec at the current capability."""
        return self.spec_for(self._t)

    def parity_bytes(self, t: int | None = None) -> int:
        """Parity footprint for capability t (defaults to current)."""
        return self.spec_for(self._t if t is None else t).parity_bytes

    # -- data path -----------------------------------------------------------

    def _encoder(self, t: int) -> BCHEncoder:
        if t not in self._encoders:
            self._encoders[t] = BCHEncoder(self.spec_for(t))
        return self._encoders[t]

    def _decoder(self, t: int) -> BCHDecoder:
        if t not in self._decoders:
            self._decoders[t] = BCHDecoder(self.spec_for(t))
        return self._decoders[t]

    def encode(self, message: bytes, t: int | None = None) -> bytes:
        """Systematic codeword (message || parity) at the active capability."""
        t = self._t if t is None else t
        return self._encoder(t).encode_codeword(message)

    def encode_batch(
        self, messages: Sequence[bytes], t: int | None = None
    ) -> list[bytes]:
        """Systematic codewords for a batch of messages (one capability).

        Routed through the encoder's slicing-by-8 batched LFSR; bit-exact
        against per-message :meth:`encode`.
        """
        t = self._t if t is None else t
        return self._encoder(t).encode_codeword_batch(messages)

    def _observe_decode(self, result: DecodeResult, n: int) -> None:
        self._words_decoded += 1
        self._bits_processed += n
        if result.success:
            self._bits_corrected += result.corrected_bits
            self._max_errors = max(self._max_errors, result.corrected_bits)
        else:
            self._words_failed += 1

    def decode(
        self, codeword: bytes, t: int | None = None, strict: bool = True
    ) -> DecodeResult:
        """Decode and record feedback for the reliability manager."""
        t = self._t if t is None else t
        result = self._decoder(t).decode(codeword, strict=strict)
        self._observe_decode(result, self.spec_for(t).n)
        return result

    def decode_batch(
        self,
        codewords: Sequence[bytes],
        t: int | None = None,
        strict: bool = True,
    ) -> list[DecodeResult]:
        """Decode a batch of same-capability codewords.

        One vectorized syndrome pass covers the whole batch and clean
        pages early-exit before Berlekamp-Massey; telemetry is recorded
        per word exactly as with :meth:`decode`.
        """
        t = self._t if t is None else t
        results = self._decoder(t).decode_batch(codewords, strict=strict)
        n = self.spec_for(t).n
        for result in results:
            self._observe_decode(result, n)
        return results

    # -- telemetry -----------------------------------------------------------

    def observation(self) -> CodecObservation:
        """Aggregate decode feedback since construction."""
        return CodecObservation(
            words_decoded=self._words_decoded,
            words_failed=self._words_failed,
            bits_corrected=self._bits_corrected,
            bits_processed=self._bits_processed,
            max_errors_in_word=self._max_errors,
        )

    # -- latency convenience ---------------------------------------------------

    def encode_latency_s(self, t: int | None = None) -> float:
        """Hardware encode latency at capability t."""
        return self.latency_model.encode_latency_s(
            self.spec_for(self._t if t is None else t)
        )

    def decode_latency_s(
        self, t: int | None = None, with_errors: bool = True
    ) -> float:
        """Hardware decode latency at capability t."""
        return self.latency_model.decode_latency_s(
            self.spec_for(self._t if t is None else t), with_errors
        )

    def decode_interval_s(self, t: int | None = None) -> float:
        """Pipelined-decoder initiation interval at capability t."""
        return self.latency_model.decode_interval_s(
            self.spec_for(self._t if t is None else t)
        )

    def encode_interval_s(self, t: int | None = None) -> float:
        """Pipelined-encoder initiation interval at capability t."""
        return self.latency_model.encode_interval_s(
            self.spec_for(self._t if t is None else t)
        )
