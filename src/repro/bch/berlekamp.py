"""Inversionless Berlekamp-Massey (iBM) — second decoding stage of Fig. 2.

Iteratively builds the error-locator polynomial lambda(x) whose roots are
the inverses of the error locations.  The inversionless formulation (no
Galois division, as in Micheloni et al. ch. 8, the implementation the paper
adopts) runs exactly 2t iterations; the hardware model charges
``bm_cycles_per_iteration`` clocks per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf.field import GF2m
from repro.gf.polygf import GFPoly


@dataclass(frozen=True)
class BerlekampResult:
    """Outcome of the iBM recursion.

    Attributes
    ----------
    error_locator:
        lambda(x), low-order-first coefficients, lambda(0) != 0.
    degree:
        Claimed number of errors nu = deg(lambda) when consistent.
    iterations:
        Number of update iterations executed (always 2t).
    """

    error_locator: GFPoly
    degree: int
    iterations: int


def berlekamp_massey(field: GF2m, syndromes: list[int]) -> BerlekampResult:
    """Run inversionless BM on ``[S_1 .. S_2t]``.

    Returns the error-locator polynomial; the caller (decoder) validates it
    by Chien search (root count must equal the claimed degree).

    The inner loops index the field's plain-list log/antilog tables
    directly instead of calling :meth:`GF2m.mul` — the recursion is
    O(t^2) scalar multiplications and the per-call numpy scalar indexing
    dominated its runtime (~4x at t = 65).
    """
    two_t = len(syndromes)
    exp2 = field.exp2_list
    log = field.log_list
    syndromes = [int(s) for s in syndromes]
    # lam: current locator estimate; b: previous (shifted) estimate.  Both
    # carry an explicit degree bound so the update loops only touch the
    # live prefix (deg lam <= L <= t, not 2t + 1 entries every round).
    lam = [1] + [0] * two_t
    b = [1] + [0] * two_t
    deg_lam = 0
    deg_b = 0
    gamma = 1  # previous nonzero discrepancy (inversionless scaling)
    log_gamma = 0
    length = 0  # current LFSR length L

    for r in range(two_t):
        # Discrepancy: delta = sum_{i=0..L} lam_i * S_{r+1-i}.
        delta = 0
        for i in range(min(length, r) + 1):
            li = lam[i]
            s = syndromes[r - i]  # S_{r+1-i} stored at syndromes[r-i]
            if li and s:
                delta ^= exp2[log[li] + log[s]]

        # T(x) = gamma*lam(x) + delta*x*b(x)  (characteristic 2).
        if log_gamma:
            new_lam = [
                exp2[log[v] + log_gamma] if v else 0
                for v in lam[: deg_lam + 1]
            ]
        else:
            new_lam = lam[: deg_lam + 1]
        new_deg = deg_lam
        if delta:
            shifted_deg = min(deg_b + 1, two_t)
            if shifted_deg > new_deg:
                new_lam.extend([0] * (shifted_deg - new_deg))
                new_deg = shifted_deg
            log_delta = log[delta]
            for i in range(1, shifted_deg + 1):
                bv = b[i - 1]
                if bv:
                    new_lam[i] ^= exp2[log_delta + log[bv]]
        new_lam.extend([0] * (two_t + 1 - len(new_lam)))

        if delta and 2 * length <= r:
            b = lam
            deg_b = deg_lam
            gamma = delta
            log_gamma = log[gamma]
            length = r + 1 - length
        else:
            b = [0] + b[:-1]  # b(x) <- x * b(x)
            deg_b = min(deg_b + 1, two_t)
        lam = new_lam
        deg_lam = new_deg

    locator = GFPoly(field, lam)
    return BerlekampResult(
        error_locator=locator, degree=locator.degree, iterations=two_t
    )
