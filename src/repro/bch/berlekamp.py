"""Inversionless Berlekamp-Massey (iBM) — second decoding stage of Fig. 2.

Iteratively builds the error-locator polynomial lambda(x) whose roots are
the inverses of the error locations.  The inversionless formulation (no
Galois division, as in Micheloni et al. ch. 8, the implementation the paper
adopts) runs exactly 2t iterations; the hardware model charges
``bm_cycles_per_iteration`` clocks per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf.field import GF2m
from repro.gf.polygf import GFPoly


@dataclass(frozen=True)
class BerlekampResult:
    """Outcome of the iBM recursion.

    Attributes
    ----------
    error_locator:
        lambda(x), low-order-first coefficients, lambda(0) != 0.
    degree:
        Claimed number of errors nu = deg(lambda) when consistent.
    iterations:
        Number of update iterations executed (always 2t).
    """

    error_locator: GFPoly
    degree: int
    iterations: int


def berlekamp_massey(field: GF2m, syndromes: list[int]) -> BerlekampResult:
    """Run inversionless BM on ``[S_1 .. S_2t]``.

    Returns the error-locator polynomial; the caller (decoder) validates it
    by Chien search (root count must equal the claimed degree).
    """
    two_t = len(syndromes)
    mul = field.mul
    # lam: current locator estimate; b: previous (shifted) estimate.
    lam = [1] + [0] * two_t
    b = [1] + [0] * two_t
    gamma = 1  # previous nonzero discrepancy (inversionless scaling)
    length = 0  # current LFSR length L

    for r in range(two_t):
        # Discrepancy: delta = sum_{i=0..L} lam_i * S_{r+1-i}.
        delta = 0
        for i in range(length + 1):
            s_index = r - i  # S_{r+1-i} stored at syndromes[r-i]
            if s_index < 0:
                break
            if lam[i] and syndromes[s_index]:
                delta ^= mul(lam[i], syndromes[s_index])

        # T(x) = gamma*lam(x) + delta*x*b(x)  (characteristic 2).
        new_lam = [0] * (two_t + 1)
        for i in range(two_t + 1):
            acc = mul(gamma, lam[i]) if lam[i] else 0
            if delta and i >= 1 and b[i - 1]:
                acc ^= mul(delta, b[i - 1])
            new_lam[i] = acc

        if delta and 2 * length <= r:
            b = lam
            gamma = delta
            length = r + 1 - length
        else:
            b = [0] + b[:-1]  # b(x) <- x * b(x)
        lam = new_lam

    locator = GFPoly(field, lam)
    return BerlekampResult(
        error_locator=locator, degree=locator.degree, iterations=two_t
    )
