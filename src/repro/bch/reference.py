"""Bit-serial reference implementations for cross-validation.

These model the hardware datapath literally — one bit per clock through the
r-bit LFSR, direct Horner syndrome evaluation — and are used by the test
suite to validate the table-driven fast paths on small codes.
"""

from __future__ import annotations

from repro.bch.params import BCHCodeSpec
from repro.gf.field import GF2m


def bits_msb_first(data: bytes) -> list[int]:
    """Expand bytes into a bit list, MSB of byte 0 first."""
    return [(byte >> (7 - i)) & 1 for byte in data for i in range(8)]


def bits_to_bytes(bits: list[int]) -> bytes:
    """Pack a bit list (MSB first) back into bytes; length must be a multiple of 8."""
    if len(bits) % 8:
        raise ValueError("bit count must be a multiple of 8")
    out = bytearray(len(bits) // 8)
    for i, bit in enumerate(bits):
        if bit:
            out[i // 8] |= 0x80 >> (i % 8)
    return bytes(out)


class BitSerialLFSREncoder:
    """Literal shift-register model of the systematic BCH encoder.

    The register holds r bits; each message bit clocks the register once
    with the feedback tapped per the generator polynomial — exactly the
    serial version of the paper's programmable LFSR.
    """

    def __init__(self, spec: BCHCodeSpec):
        self.spec = spec
        self.taps = [
            i for i in range(spec.r) if (spec.generator >> i) & 1
        ]  # g_i = 1 positions below the monic term

    def parity_bits(self, message: bytes) -> list[int]:
        """Stored parity bits (left-aligned, padded to a byte boundary)."""
        r = self.spec.r
        register = [0] * r  # register[i] holds coefficient of x^i
        for bit in bits_msb_first(message):
            feedback = bit ^ register[r - 1]
            # Shift up one degree.
            for i in range(r - 1, 0, -1):
                register[i] = register[i - 1]
            register[0] = 0
            if feedback:
                for tap in self.taps:
                    register[tap] ^= 1
        bits = [register[i] for i in range(r - 1, -1, -1)]
        return bits + [0] * self.spec.pad_bits

    def encode_codeword(self, message: bytes) -> bytes:
        """message || parity, matching :class:`repro.bch.encoder.BCHEncoder`."""
        return bytes(message) + bits_to_bytes(self.parity_bits(message))


def naive_syndromes(spec: BCHCodeSpec, codeword: bytes) -> list[int]:
    """Direct Horner evaluation S_i = c(alpha^i) over all codeword bits."""
    field: GF2m = spec.field()
    bits = bits_msb_first(codeword)
    if len(bits) != spec.n_stored:
        raise ValueError(
            f"expected {spec.n_stored} stored codeword bits, got {len(bits)}"
        )
    out = []
    for i in range(1, 2 * spec.t + 1):
        point = field.alpha_pow(i)
        acc = 0
        for bit in bits:
            acc = field.mul(acc, point) ^ bit
        out.append(acc)
    return out
