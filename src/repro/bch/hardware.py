"""Cycle-accurate latency and area models of the adaptive BCH hardware.

Structure follows section 4 of the paper:

* encoder — one r-bit programmable parallel LFSR consuming p bits/clock;
  latency k/p clocks plus parity shift-out, independent of t;
* syndrome unit — 2*t_max small LFSRs (2t enabled), n/p clocks, plus an
  alignment phase when the parity width does not fit the datapath;
* Berlekamp-Massey — inversionless iBM, t iterations;
* Chien search — h parallel evaluations per clock, needing t*h constant
  Galois multipliers, so a fixed multiplier budget M caps the usable
  parallelism at h(t) = min(h_max, floor(M/t)).  This is the mechanism
  that makes decode latency grow with t (Fig. 8) and yields the read
  throughput gain of Fig. 11 when the cross-layer policy relaxes t.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bch.params import BCHCodeSpec
from repro.params import EccHardwareParams


def chien_parallelism(t: int, hw: EccHardwareParams | None = None) -> int:
    """Usable Chien parallelism at capability t under the multiplier budget."""
    hw = hw or EccHardwareParams()
    return hw.chien_parallelism(t)


@dataclass(frozen=True)
class DecodeLatencyBreakdown:
    """Per-stage decode cycle counts for one configuration."""

    syndrome_cycles: int
    alignment_cycles: int
    berlekamp_cycles: int
    chien_cycles: int
    overhead_cycles: int

    @property
    def total_cycles(self) -> int:
        """All stages, errors present (the paper's worst-case read path)."""
        return (
            self.syndrome_cycles
            + self.alignment_cycles
            + self.berlekamp_cycles
            + self.chien_cycles
            + self.overhead_cycles
        )

    @property
    def error_free_cycles(self) -> int:
        """Early-exit path: decoding ends after the syndrome stage."""
        return self.syndrome_cycles + self.alignment_cycles + self.overhead_cycles

    @property
    def interval_cycles(self) -> int:
        """Initiation interval of a section-pipelined decoder.

        With syndrome, Berlekamp-Massey and Chien sections double-buffered
        against each other, the engine accepts a new codeword every
        slowest-section interval while each codeword still takes
        :attr:`total_cycles` end to end — the channel-pipelined ECC model
        (decode of page i overlapping the transfer of page i+1).
        """
        return max(
            self.syndrome_cycles + self.alignment_cycles,
            self.berlekamp_cycles,
            self.chien_cycles,
        )


@dataclass(frozen=True)
class AreaEstimate:
    """Rough structural complexity (flip-flops / XORs / multipliers)."""

    encoder_flipflops: int
    encoder_xor_taps: int
    syndrome_lfsrs: int
    chien_multipliers: int
    berlekamp_multipliers: int
    rom_polynomials: int


class EccLatencyModel:
    """Latency/area model parameterised by :class:`EccHardwareParams`."""

    def __init__(self, hw: EccHardwareParams | None = None):
        self.hw = hw or EccHardwareParams()

    # -- encoding -----------------------------------------------------------

    def encode_cycles(self, spec: BCHCodeSpec) -> int:
        """Clock cycles to encode one message (k/p input + r/p shift-out)."""
        p = self.hw.lfsr_parallelism
        return (
            math.ceil(spec.k / p)
            + math.ceil(spec.r / p)
            + self.hw.pipeline_overhead_cycles
        )

    def encode_latency_s(self, spec: BCHCodeSpec) -> float:
        """Encode latency in seconds."""
        return self.encode_cycles(spec) * self.hw.clock_period_s

    # -- decoding -----------------------------------------------------------

    def decode_breakdown(self, spec: BCHCodeSpec) -> DecodeLatencyBreakdown:
        """Cycle counts of the three Fig. 2 stages at this t."""
        p = self.hw.lfsr_parallelism
        h = self.hw.chien_parallelism(spec.t)
        # Preliminary alignment when the parity tail does not fill the
        # datapath word (section 4); r = m*t is byte-aligned for m = 16 so
        # this is usually zero for the paper's code.
        misalignment = spec.r % p
        alignment_cycles = p - misalignment if misalignment else 0
        return DecodeLatencyBreakdown(
            syndrome_cycles=math.ceil(spec.n / p),
            alignment_cycles=alignment_cycles,
            berlekamp_cycles=self.hw.bm_cycles_per_iteration * spec.t,
            chien_cycles=math.ceil(spec.n / h) + spec.t,
            overhead_cycles=self.hw.pipeline_overhead_cycles,
        )

    def decode_cycles(self, spec: BCHCodeSpec, with_errors: bool = True) -> int:
        """Total decode cycles; clean words exit after the syndrome stage."""
        breakdown = self.decode_breakdown(spec)
        return breakdown.total_cycles if with_errors else breakdown.error_free_cycles

    def decode_latency_s(self, spec: BCHCodeSpec, with_errors: bool = True) -> float:
        """Decode latency in seconds."""
        return self.decode_cycles(spec, with_errors) * self.hw.clock_period_s

    def decode_interval_s(self, spec: BCHCodeSpec) -> float:
        """Initiation interval of the section-pipelined decoder (seconds)."""
        return self.decode_breakdown(spec).interval_cycles * self.hw.clock_period_s

    def encode_interval_s(self, spec: BCHCodeSpec) -> float:
        """Initiation interval of a double-buffered encoder (seconds).

        The parity shift-out of message i overlaps the data load of
        message i+1, so the engine accepts a new message every k/p clocks.
        """
        return math.ceil(spec.k / self.hw.lfsr_parallelism) * self.hw.clock_period_s

    # -- area ------------------------------------------------------------------

    def area_estimate(self, spec: BCHCodeSpec, t_max: int) -> AreaEstimate:
        """Structural complexity of the adaptive codec provisioned to t_max.

        The programmable LFSR carries one flip-flop per parity bit of the
        *largest* code and XOR taps wherever any supported generator has a
        nonzero coefficient (the multiplexer/ROM scheme of Chen et al.).
        """
        from repro.bch.params import generator_polynomial

        tap_union = 0
        for t in range(1, t_max + 1):
            tap_union |= generator_polynomial(spec.m, t)
        r_max = spec.m * t_max
        return AreaEstimate(
            encoder_flipflops=r_max,
            encoder_xor_taps=tap_union.bit_count(),
            syndrome_lfsrs=2 * t_max,
            chien_multipliers=self.hw.chien_multiplier_budget,
            berlekamp_multipliers=3 * t_max,
            rom_polynomials=t_max,
        )
