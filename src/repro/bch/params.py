"""BCH code design: field sizing and generator polynomial construction.

A binary BCH[n, k] code correcting t errors over GF(2^m) requires
k + r <= 2^m - 1 with r = deg(g) <= m * t, where the generator polynomial
g(x) is the product of the distinct minimal polynomials of
alpha, alpha^3, ..., alpha^(2t-1) (even powers are conjugates of odd ones).
The paper's code protects a full 4 KiB page (k = 32768) which forces m = 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import CodeDesignError
from repro.gf.field import GF2m, get_field
from repro.gf.minpoly import cyclotomic_coset, minimal_polynomial
from repro.gf.poly2 import poly2_deg, poly2_mul


@dataclass(frozen=True)
class BCHCodeSpec:
    """Fully-designed BCH code.

    Attributes
    ----------
    m: field degree; codeword symbols live in GF(2).
    k: message length in bits (the protected page).
    t: designed correction capability in bits.
    r: number of parity bits, ``deg(generator)``.
    generator: generator polynomial over GF(2) as an integer bit mask.
    """

    m: int
    k: int
    t: int
    r: int
    generator: int

    @property
    def n(self) -> int:
        """Codeword length in bits (shortened: n = k + r <= 2^m - 1)."""
        return self.k + self.r

    @property
    def pad_bits(self) -> int:
        """Zero bits padding the parity tail to a byte boundary.

        The stored byte stream is ``codeword(x) * x^pad_bits`` so that it is
        itself a polynomial with the same divisibility properties; pad
        positions are legitimate (always-zero) code positions.
        """
        return 8 * self.parity_bytes - self.r

    @property
    def n_stored(self) -> int:
        """Bits in the stored byte stream: k + 8 * parity_bytes."""
        return self.k + 8 * self.parity_bytes

    @property
    def n_full(self) -> int:
        """Natural (non-shortened) codeword length 2^m - 1."""
        return (1 << self.m) - 1

    @property
    def shortening(self) -> int:
        """Number of implicitly-zero leading message bits."""
        return self.n_full - self.n

    @property
    def parity_bytes(self) -> int:
        """Parity storage footprint in bytes (r is byte-aligned for m=16)."""
        return (self.r + 7) // 8

    @property
    def code_rate(self) -> float:
        """k / n."""
        return self.k / self.n

    def field(self) -> GF2m:
        """The GF(2^m) instance this code is defined over."""
        return get_field(self.m)


def minimum_field_degree(k: int, t: int) -> int:
    """Smallest m with k + m*t <= 2^m - 1 (paper's sizing inequality)."""
    for m in range(3, 17):
        aligned_parity_bits = 8 * ((m * t + 7) // 8)
        if k + aligned_parity_bits <= (1 << m) - 1:
            return m
    raise CodeDesignError(f"no field up to GF(2^16) fits k={k}, t={t}")


@lru_cache(maxsize=None)
def _generator_polynomial(m: int, t: int) -> int:
    field = get_field(m)
    generator = 1
    seen: set[int] = set()
    for i in range(1, 2 * t + 1, 2):  # odd representatives only
        rep = min(cyclotomic_coset(i, m))
        if rep in seen:
            continue
        seen.add(rep)
        generator = poly2_mul(generator, minimal_polynomial(field, i))
    return generator


def generator_polynomial(m: int, t: int) -> int:
    """Generator polynomial of the t-error-correcting BCH code over GF(2^m)."""
    if t < 1:
        raise CodeDesignError(f"correction capability must be >= 1, got {t}")
    return _generator_polynomial(m, t)


@lru_cache(maxsize=None)
def design_code(k: int, t: int, m: int | None = None) -> BCHCodeSpec:
    """Design a (possibly shortened) BCH code for a k-bit message.

    Memoized at module level: separate codecs, controllers and experiment
    suites asking for the same (k, t, m) share one frozen
    :class:`BCHCodeSpec` instead of re-deriving the generator polynomial
    and minimal-polynomial products each time.

    Parameters
    ----------
    k:
        Message length in bits.
    t:
        Required correction capability.
    m:
        Optional field degree override; by default the smallest feasible
        degree is chosen (m = 16 for the paper's 4 KiB page).

    Raises
    ------
    CodeDesignError
        If the parameters violate k + r <= 2^m - 1.
    """
    if k < 1:
        raise CodeDesignError(f"message length must be >= 1, got {k}")
    if m is None:
        m = minimum_field_degree(k, t)
    generator = generator_polynomial(m, t)
    r = poly2_deg(generator)
    parity_bytes = (r + 7) // 8
    if k + 8 * parity_bytes > (1 << m) - 1:
        raise CodeDesignError(
            f"BCH[{k + r}, {k}] with t={t} (byte-aligned storage "
            f"{k + 8 * parity_bytes} bits) does not fit GF(2^{m}) "
            f"(n_max={(1 << m) - 1})"
        )
    return BCHCodeSpec(m=m, k=k, t=t, r=r, generator=generator)
