"""Adaptive BCH error-correcting codec (paper section 4).

A working binary BCH codec over GF(2^m) with runtime-programmable
correction capability t, plus a cycle-accurate structural hardware model of
the Chen-style programmable-LFSR architecture the paper instantiates:

* :mod:`repro.bch.params` — code design (n, k, t, generator polynomial);
* :mod:`repro.bch.encoder` — systematic encoder (table-driven LFSR);
* :mod:`repro.bch.syndrome` / :mod:`berlekamp` / :mod:`chien` — the three
  decoding stages of Fig. 2;
* :mod:`repro.bch.codec` — the adaptive codec with its polynomial ROM;
* :mod:`repro.bch.uber` — Eq. (1) UBER model and required-t solver;
* :mod:`repro.bch.hardware` — encode/decode latency and area models.
"""

from repro.bch.params import BCHCodeSpec, design_code
from repro.bch.encoder import BCHEncoder
from repro.bch.decoder import BCHDecoder, DecodeResult
from repro.bch.codec import AdaptiveBCHCodec, CodecObservation
from repro.bch.uber import (
    log10_uber_eq1,
    required_t,
    uber_eq1,
    uber_exact,
)
from repro.bch.hardware import (
    DecodeLatencyBreakdown,
    EccLatencyModel,
    chien_parallelism,
)

__all__ = [
    "BCHCodeSpec",
    "design_code",
    "BCHEncoder",
    "BCHDecoder",
    "DecodeResult",
    "AdaptiveBCHCodec",
    "CodecObservation",
    "uber_eq1",
    "log10_uber_eq1",
    "uber_exact",
    "required_t",
    "EccLatencyModel",
    "DecodeLatencyBreakdown",
    "chien_parallelism",
]
