"""Adaptive BCH error-correcting codec (paper section 4).

A working binary BCH codec over GF(2^m) with runtime-programmable
correction capability t, plus a cycle-accurate structural hardware model of
the Chen-style programmable-LFSR architecture the paper instantiates:

* :mod:`repro.bch.params` — code design (n, k, t, generator polynomial),
  memoized at module level;
* :mod:`repro.bch.encoder` — systematic encoder (table-driven LFSR) plus
  the batched slicing-by-8 kernel behind ``encode_batch``;
* :mod:`repro.bch.syndrome` / :mod:`berlekamp` / :mod:`chien` — the three
  decoding stages of Fig. 2;
* :mod:`repro.bch.codec` — the adaptive codec with its polynomial ROM;
* :mod:`repro.bch.uber` — Eq. (1) UBER model and required-t solver;
* :mod:`repro.bch.hardware` — encode/decode latency and area models.

Fast-path design (the vectorized batch datapath)
------------------------------------------------

The throughput-oriented datapath mirrors how real controllers push pages
through a wide ECC engine instead of streaming bits:

* **Syndromes**: codewords are bit-unpacked (``np.unpackbits``) and every
  odd syndrome is one uint16 gather from a lazily-built power table
  ``alpha^(i*(n-1-j))`` XOR-folded over the set-bit positions; even
  syndromes are vectorized squarings (S_2i = S_i^2).
* **Encoder**: ``encode_batch`` advances the whole message batch in
  lockstep through a word-sliced LFSR — the r-bit state of every message
  lives in one ``(B, ceil(r/64))`` uint64 array and each step absorbs 8
  message bytes through chunked 256-entry reduction tables.
* **Decoder**: ``decode_batch`` computes all syndromes in one vectorized
  pass and applies the all-zero-syndrome early exit across the batch, so
  clean pages never reach Berlekamp-Massey; errored words run a
  degree-tracked inversionless BM and a two-pass Chien search (uint8
  low-byte screen over all positions, exact evaluation at the ~n/256
  surviving candidates).

Batch API contract: ``encode_batch``/``decode_batch`` (on
:class:`BCHEncoder`, :class:`BCHDecoder` and :class:`AdaptiveBCHCodec`)
take a sequence of equal-length words at one capability and return
per-word results bit-identical to the scalar ``encode``/``decode``,
including permissive-mode failures and telemetry; the byte-serial scalar
path survives as the cross-checked reference
(``BCHDecoder(spec, vectorized=False)``).  Measured on a 4 KiB page at
t = 65: clean-page decode ~41x, errored-page (t/2 errors) ~6x, encode
~1.7x over the scalar path (``benchmarks/bench_ecc_throughput.py``).
"""

from repro.bch.params import BCHCodeSpec, design_code
from repro.bch.encoder import BCHEncoder
from repro.bch.decoder import BCHDecoder, DecodeResult
from repro.bch.codec import AdaptiveBCHCodec, CodecObservation
from repro.bch.uber import (
    log10_uber_eq1,
    required_t,
    uber_eq1,
    uber_exact,
)
from repro.bch.hardware import (
    DecodeLatencyBreakdown,
    EccLatencyModel,
    chien_parallelism,
)

__all__ = [
    "BCHCodeSpec",
    "design_code",
    "BCHEncoder",
    "BCHDecoder",
    "DecodeResult",
    "AdaptiveBCHCodec",
    "CodecObservation",
    "uber_eq1",
    "log10_uber_eq1",
    "uber_exact",
    "required_t",
    "EccLatencyModel",
    "DecodeLatencyBreakdown",
    "chien_parallelism",
]
