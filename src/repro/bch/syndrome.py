"""Syndrome computation (first decoding stage of Fig. 2).

S_i = c(alpha^i) for i = 1..2t.  Two implementations coexist:

* **Byte-serial reference** (:meth:`SyndromeCalculator.syndromes`): as in
  the paper's hardware, each odd syndrome is produced by reducing the
  codeword modulo the corresponding minimal polynomial (a small LFSR) and
  evaluating the 16-bit remainder at alpha^i; even syndromes come for free
  over GF(2) since S_{2i} = S_i^2.  Reduction is table-driven
  byte-at-a-time per minimal polynomial.

* **Vectorized fast path** (:meth:`SyndromeCalculator.syndromes_vectorized`
  / :meth:`syndromes_batch`): the codeword (or a whole batch of codewords)
  is bit-unpacked with ``np.unpackbits``; for the set-bit positions ``j``
  every odd syndrome is one uint16 gather from a precomputed power table
  ``alpha^(i * (n - 1 - j))`` followed by ``np.bitwise_xor.reduce``, so
  the 2t Python LFSR passes collapse into a handful of array ops (~30x
  on a 4 KiB page at t = 65).  The table is built lazily per calculator
  (the software analogue of the hardware's parallel syndrome datapath)
  and the byte-serial path stays as the cross-checked reference.

Implementation note: the byte-serial reduction loop computes
``c(x) * x^d mod m_i(x)`` (d = deg m_i), so the evaluated remainder carries
an extra factor ``alpha^(i*d)`` which is cancelled by a precomputed
per-syndrome compensation constant.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from repro.bch.params import BCHCodeSpec
from repro.gf.field import GF2m
from repro.gf.minpoly import minimal_polynomial
from repro.gf.poly2 import poly2_deg, poly2_eval_in_field, poly2_mod


@lru_cache(maxsize=None)
def _reduction_table(minpoly: int) -> tuple[int, ...]:
    """256-entry table: (v(x) << deg) mod minpoly for byte-serial reduction."""
    deg = poly2_deg(minpoly)
    return tuple(poly2_mod(v << deg, minpoly) for v in range(256))


def reduce_codeword(data: bytes, minpoly: int) -> int:
    """Return ``data(x) * x^deg(minpoly) mod minpoly`` (byte-serial LFSR).

    The uniform ``x^deg`` factor keeps the byte-parallel path and the
    bit-serial fallback (for polynomials of degree < 8) consistent; callers
    compensate at evaluation time.
    """
    deg = poly2_deg(minpoly)
    if deg >= 8:
        table = _reduction_table(minpoly)
        mask = (1 << deg) - 1
        shift = deg - 8
        state = 0
        for byte in data:
            idx = ((state >> shift) ^ byte) & 0xFF
            state = ((state << 8) & mask) ^ table[idx]
        return state
    value = int.from_bytes(data, "big")
    return poly2_mod(value << deg, minpoly)


class SyndromeCalculator:
    """Computes the 2t syndromes of a received word for a given code."""

    def __init__(self, spec: BCHCodeSpec):
        self.spec = spec
        self.field: GF2m = spec.field()
        # Distinct odd-index minimal polynomials cover indices 1..2t.
        self._odd_minpolys: dict[int, int] = {}
        self._compensation: dict[int, int] = {}
        order = self.field.order
        for i in range(1, 2 * spec.t + 1, 2):
            minpoly = minimal_polynomial(self.field, i)
            self._odd_minpolys[i] = minpoly
            deg = poly2_deg(minpoly)
            self._compensation[i] = self.field.alpha_pow((-i * deg) % order)
        self._power_table: np.ndarray | None = None

    def syndromes(self, codeword: bytes) -> list[int]:
        """Return [S_1, ..., S_2t]; all zero iff the word is a codeword.

        Codeword bytes are MSB-first: byte 0 bit 7 is the coefficient of
        x^(n-1).
        """
        spec = self.spec
        field = self.field
        out = [0] * (2 * spec.t)
        for i, minpoly in self._odd_minpolys.items():
            remainder = reduce_codeword(codeword, minpoly)
            if remainder:
                value = poly2_eval_in_field(remainder, field.alpha_pow(i), field)
                out[i - 1] = field.mul(value, self._compensation[i])
        # Even syndromes: S_{2j} = S_j^2 (binary-code conjugacy).
        for i in range(2, 2 * spec.t + 1, 2):
            half = out[i // 2 - 1]
            out[i - 1] = field.mul(half, half)
        return out

    # -- vectorized fast path -------------------------------------------------

    def _bit_power_table(self) -> np.ndarray:
        """Lazy (n_stored, t) uint16 table: entry [j, row] = alpha^(i*(n-1-j))
        for the column's odd syndrome index i = 2*row + 1.

        Column i+2 is derived from column i by adding 2*(n-1-j) to the
        exponents (one vector add plus conditional subtracts), avoiding a
        full 64-bit modulo over the whole table.  The position-major
        layout makes the per-word gather a contiguous row fetch.
        """
        if self._power_table is None:
            n = self.spec.n_stored
            order = np.int32(self.field.order)
            exp_u16 = self.field.exp.astype(np.uint16)
            pos_exp = ((n - 1 - np.arange(n, dtype=np.int64))
                       % self.field.order).astype(np.int32)
            step = pos_exp + pos_exp
            np.subtract(step, order, out=step, where=step >= order)
            rows = np.empty((self.spec.t, n), dtype=np.uint16)
            exps = pos_exp.copy()
            rows[0] = exp_u16[exps]
            for row in range(1, self.spec.t):
                exps += step
                np.subtract(exps, order, out=exps, where=exps >= order)
                rows[row] = exp_u16[exps]
            self._power_table = np.ascontiguousarray(rows.T)
        return self._power_table

    def _odd_syndromes_of_bits(self, bits: np.ndarray) -> np.ndarray:
        """Odd syndromes [S_1, S_3, ...] of one unpacked bit vector.

        The gathered (positions, t) block is XOR-folded in halves: each
        fold is one large contiguous vector op, so the whole reduction
        costs ~2 passes over the gathered data instead of a strided
        reduce.
        """
        positions = np.flatnonzero(bits)
        if positions.size == 0:
            return np.zeros(self.spec.t, dtype=np.int64)
        gathered = self._bit_power_table()[positions]
        count = gathered.shape[0]
        while count > 1:
            half = count >> 1
            keep = count - half
            gathered[:half] ^= gathered[keep:count]
            count = keep
        return gathered[0].astype(np.int64)

    def _fill_even_syndromes(self, out: np.ndarray) -> None:
        """Complete even columns of ``out[..., 2t]`` via S_{2i} = S_i^2."""
        field = self.field
        for i in range(2, 2 * self.spec.t + 1, 2):
            out[..., i - 1] = field.square_vec(out[..., i // 2 - 1])

    def syndromes_vectorized(self, codeword: bytes) -> list[int]:
        """Fast-path equivalent of :meth:`syndromes` (same return value)."""
        bits = np.unpackbits(np.frombuffer(codeword, dtype=np.uint8))
        out = np.zeros(2 * self.spec.t, dtype=np.int64)
        out[0::2] = self._odd_syndromes_of_bits(bits)
        self._fill_even_syndromes(out)
        return out.tolist()

    def syndromes_batch(self, codewords: Sequence[bytes]) -> np.ndarray:
        """Syndromes of a batch of equal-length codewords.

        Returns an int64 array of shape ``(len(codewords), 2t)``; row b is
        identical to ``syndromes(codewords[b])``.
        """
        if len(codewords) == 0:
            return np.zeros((0, 2 * self.spec.t), dtype=np.int64)
        raw = np.frombuffer(b"".join(codewords), dtype=np.uint8)
        bits = np.unpackbits(raw.reshape(len(codewords), -1), axis=1)
        out = np.zeros((len(codewords), 2 * self.spec.t), dtype=np.int64)
        for b in range(len(codewords)):
            out[b, 0::2] = self._odd_syndromes_of_bits(bits[b])
        self._fill_even_syndromes(out)
        return out

    @staticmethod
    def all_zero(syndromes: list[int]) -> bool:
        """Error-free shortcut used by the hardware (Fig. 2 exit arc)."""
        return not any(syndromes)

    @staticmethod
    def all_zero_batch(syndromes: np.ndarray) -> np.ndarray:
        """Per-row error-free flags for a :meth:`syndromes_batch` result."""
        return ~syndromes.any(axis=1)

    def syndromes_of_error_positions(self, positions: list[int]) -> list[int]:
        """Syndromes of a pure error pattern (for tests / fault injection).

        ``positions`` are codeword bit indices counted from the start of the
        byte stream (0 = MSB of byte 0), matching the decoder's reporting.
        """
        spec = self.spec
        field = self.field
        n = spec.n_stored
        out = [0] * (2 * spec.t)
        for i in range(1, 2 * spec.t + 1):
            acc = 0
            for pos in positions:
                exponent = n - 1 - pos  # power of x at this bit
                acc ^= field.alpha_pow(i * exponent)
            out[i - 1] = acc
        return out
