"""Syndrome computation (first decoding stage of Fig. 2).

S_i = c(alpha^i) for i = 1..2t.  As in the paper's hardware, each odd
syndrome is produced by reducing the codeword modulo the corresponding
minimal polynomial (a small LFSR) and evaluating the 16-bit remainder at
alpha^i; even syndromes come for free over GF(2) since S_{2i} = S_i^2.
Reduction is table-driven byte-at-a-time per minimal polynomial.

Implementation note: the byte-serial reduction loop computes
``c(x) * x^d mod m_i(x)`` (d = deg m_i), so the evaluated remainder carries
an extra factor ``alpha^(i*d)`` which is cancelled by a precomputed
per-syndrome compensation constant.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bch.params import BCHCodeSpec
from repro.gf.field import GF2m
from repro.gf.minpoly import minimal_polynomial
from repro.gf.poly2 import poly2_deg, poly2_eval_in_field, poly2_mod


@lru_cache(maxsize=None)
def _reduction_table(minpoly: int) -> tuple[int, ...]:
    """256-entry table: (v(x) << deg) mod minpoly for byte-serial reduction."""
    deg = poly2_deg(minpoly)
    return tuple(poly2_mod(v << deg, minpoly) for v in range(256))


def reduce_codeword(data: bytes, minpoly: int) -> int:
    """Return ``data(x) * x^deg(minpoly) mod minpoly`` (byte-serial LFSR).

    The uniform ``x^deg`` factor keeps the byte-parallel path and the
    bit-serial fallback (for polynomials of degree < 8) consistent; callers
    compensate at evaluation time.
    """
    deg = poly2_deg(minpoly)
    if deg >= 8:
        table = _reduction_table(minpoly)
        mask = (1 << deg) - 1
        shift = deg - 8
        state = 0
        for byte in data:
            idx = ((state >> shift) ^ byte) & 0xFF
            state = ((state << 8) & mask) ^ table[idx]
        return state
    value = int.from_bytes(data, "big")
    return poly2_mod(value << deg, minpoly)


class SyndromeCalculator:
    """Computes the 2t syndromes of a received word for a given code."""

    def __init__(self, spec: BCHCodeSpec):
        self.spec = spec
        self.field: GF2m = spec.field()
        # Distinct odd-index minimal polynomials cover indices 1..2t.
        self._odd_minpolys: dict[int, int] = {}
        self._compensation: dict[int, int] = {}
        order = self.field.order
        for i in range(1, 2 * spec.t + 1, 2):
            minpoly = minimal_polynomial(self.field, i)
            self._odd_minpolys[i] = minpoly
            deg = poly2_deg(minpoly)
            self._compensation[i] = self.field.alpha_pow((-i * deg) % order)

    def syndromes(self, codeword: bytes) -> list[int]:
        """Return [S_1, ..., S_2t]; all zero iff the word is a codeword.

        Codeword bytes are MSB-first: byte 0 bit 7 is the coefficient of
        x^(n-1).
        """
        spec = self.spec
        field = self.field
        out = [0] * (2 * spec.t)
        for i, minpoly in self._odd_minpolys.items():
            remainder = reduce_codeword(codeword, minpoly)
            if remainder:
                value = poly2_eval_in_field(remainder, field.alpha_pow(i), field)
                out[i - 1] = field.mul(value, self._compensation[i])
        # Even syndromes: S_{2j} = S_j^2 (binary-code conjugacy).
        for i in range(2, 2 * spec.t + 1, 2):
            half = out[i // 2 - 1]
            out[i - 1] = field.mul(half, half)
        return out

    @staticmethod
    def all_zero(syndromes: list[int]) -> bool:
        """Error-free shortcut used by the hardware (Fig. 2 exit arc)."""
        return not any(syndromes)

    def syndromes_of_error_positions(self, positions: list[int]) -> list[int]:
        """Syndromes of a pure error pattern (for tests / fault injection).

        ``positions`` are codeword bit indices counted from the start of the
        byte stream (0 = MSB of byte 0), matching the decoder's reporting.
        """
        spec = self.spec
        field = self.field
        n = spec.n_stored
        out = [0] * (2 * spec.t)
        for i in range(1, 2 * spec.t + 1):
            acc = 0
            for pos in positions:
                exponent = n - 1 - pos  # power of x at this bit
                acc ^= field.alpha_pow(i * exponent)
            out[i - 1] = acc
        return out
