"""UBER models (paper Eq. (1)) and the required-t solver.

Eq. (1) keeps only the dominant (t+1)-error pattern::

    UBER = C(n, t+1) * RBER^(t+1) * (1 - RBER)^(n - t - 1) / n

which is accurate when n*RBER is small compared to t and is what the paper
uses throughout (including its Fig. 7 t = 65 point, where the approximation
is already optimistic).  ``uber_exact`` provides the full binomial tail
P(errors > t)/n for comparison; EXPERIMENTS.md discusses the gap.
"""

from __future__ import annotations

import math

from scipy import stats

from repro import params as default_params
from repro.errors import CodeDesignError


def _log10_binomial(n: int, k: int) -> float:
    """log10 of the binomial coefficient C(n, k)."""
    if k < 0 or k > n:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(10)


def log10_uber_eq1(rber: float, n: int, t: int) -> float:
    """log10 of the paper's Eq. (1); -inf for RBER = 0."""
    if not 0.0 <= rber < 1.0:
        raise ValueError(f"RBER must be in [0, 1), got {rber}")
    if n <= t + 1:
        raise ValueError(f"codeword length {n} too short for t={t}")
    if rber == 0.0:
        return -math.inf
    log_c = _log10_binomial(n, t + 1)
    log_p = (t + 1) * math.log10(rber)
    log_q = (n - t - 1) * math.log1p(-rber) / math.log(10)
    return log_c + log_p + log_q - math.log10(n)


def uber_eq1(rber: float, n: int, t: int) -> float:
    """Paper Eq. (1) in linear scale (may underflow to 0.0 for tiny values)."""
    log_value = log10_uber_eq1(rber, n, t)
    if log_value == -math.inf:
        return 0.0
    return 10.0 ** log_value


def uber_exact(rber: float, n: int, t: int) -> float:
    """Exact binomial-tail UBER: P(#errors > t) / n.

    This treats every pattern with more than t errors as an uncorrectable
    page (the page-error-dominated regime the paper describes in section 1)
    and normalises per bit.
    """
    if not 0.0 <= rber < 1.0:
        raise ValueError(f"RBER must be in [0, 1), got {rber}")
    if rber == 0.0:
        return 0.0
    return float(stats.binom.sf(t, n, rber)) / n


def required_t(
    rber: float,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
    uber_target: float = default_params.UBER_TARGET,
    t_max: int = default_params.T_MAX,
    t_min: int = 1,
) -> int:
    """Smallest t meeting the UBER target at the given RBER (Eq. (1)).

    The codeword length grows with t (n = k + m*t), which the search
    accounts for.  Raises :class:`CodeDesignError` when even ``t_max`` is
    insufficient — the device is past its correctable lifetime.
    """
    if rber == 0.0:
        return t_min
    log_target = math.log10(uber_target)
    for t in range(t_min, t_max + 1):
        n = k + m * t
        # Eq. (1) is the P(exactly t+1 errors) term; below the mean error
        # count it vanishes spuriously, so only t on the tail branch
        # (t + 1 >= n * RBER) are valid design points.
        if t + 1 < n * rber:
            continue
        if log10_uber_eq1(rber, n, t) <= log_target:
            return t
    raise CodeDesignError(
        f"RBER {rber:.3e} cannot reach UBER {uber_target:.1e} with t <= {t_max}"
    )


def achieved_uber(
    rber: float,
    t: int,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
) -> float:
    """UBER delivered by capability t at the given RBER (Eq. (1))."""
    return uber_eq1(rber, k + m * t, t)


def log10_achieved_uber(
    rber: float,
    t: int,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
) -> float:
    """log10 of :func:`achieved_uber` (safe for deeply sub-underflow values)."""
    return log10_uber_eq1(rber, k + m * t, t)


def max_rber_for_t(
    t: int,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
    uber_target: float = default_params.UBER_TARGET,
) -> float:
    """Largest RBER that capability t can cover at the UBER target.

    Solved by bisection on the monotone Eq. (1); used to calibrate the
    lifetime RBER curve so that the rated endurance lands exactly on
    t = T_MAX (DESIGN.md section 3).
    """
    n = k + m * t
    log_target = math.log10(uber_target)
    # Stay on the valid branch of Eq. (1): RBER <= (t + 1) / n, where the
    # formula is monotone increasing in RBER.
    lo, hi = 1e-12, (t + 1) / n
    if log10_uber_eq1(lo, n, t) > log_target:
        raise CodeDesignError(f"t={t} cannot meet the target even at RBER={lo}")
    if log10_uber_eq1(hi, n, t) <= log_target:
        return hi
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # bisect in log space
        if log10_uber_eq1(mid, n, t) <= log_target:
            lo = mid
        else:
            hi = mid
    return lo
