"""UBER models (paper Eq. (1)), the required-t solver, and Monte Carlo.

Eq. (1) keeps only the dominant (t+1)-error pattern::

    UBER = C(n, t+1) * RBER^(t+1) * (1 - RBER)^(n - t - 1) / n

which is accurate when n*RBER is small compared to t and is what the paper
uses throughout (including its Fig. 7 t = 65 point, where the approximation
is already optimistic).  ``uber_exact`` provides the full binomial tail
P(errors > t)/n for comparison; EXPERIMENTS.md discusses the gap.

:func:`monte_carlo_uber` cross-checks both models against the *real*
codec: batches of random pages are encoded, corrupted at the target RBER
and decoded through the vectorized datapath.  Batches are chunked and
fanned out across a :class:`concurrent.futures.ProcessPoolExecutor`;
every chunk draws its randomness from its own
:class:`numpy.random.SeedSequence` spawn and the aggregation is
order-independent, so the result is bit-identical regardless of how many
worker processes run the sweep (including none).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import stats

from repro import params as default_params
from repro.errors import CodeDesignError


def _log10_binomial(n: int, k: int) -> float:
    """log10 of the binomial coefficient C(n, k)."""
    if k < 0 or k > n:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(10)


def log10_uber_eq1(rber: float, n: int, t: int) -> float:
    """log10 of the paper's Eq. (1); -inf for RBER = 0."""
    if not 0.0 <= rber < 1.0:
        raise ValueError(f"RBER must be in [0, 1), got {rber}")
    if n <= t + 1:
        raise ValueError(f"codeword length {n} too short for t={t}")
    if rber == 0.0:
        return -math.inf
    log_c = _log10_binomial(n, t + 1)
    log_p = (t + 1) * math.log10(rber)
    log_q = (n - t - 1) * math.log1p(-rber) / math.log(10)
    return log_c + log_p + log_q - math.log10(n)


def uber_eq1(rber: float, n: int, t: int) -> float:
    """Paper Eq. (1) in linear scale (may underflow to 0.0 for tiny values)."""
    log_value = log10_uber_eq1(rber, n, t)
    if log_value == -math.inf:
        return 0.0
    return 10.0 ** log_value


def uber_exact(rber: float, n: int, t: int) -> float:
    """Exact binomial-tail UBER: P(#errors > t) / n.

    This treats every pattern with more than t errors as an uncorrectable
    page (the page-error-dominated regime the paper describes in section 1)
    and normalises per bit.
    """
    if not 0.0 <= rber < 1.0:
        raise ValueError(f"RBER must be in [0, 1), got {rber}")
    if rber == 0.0:
        return 0.0
    return float(stats.binom.sf(t, n, rber)) / n


def required_t(
    rber: float,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
    uber_target: float = default_params.UBER_TARGET,
    t_max: int = default_params.T_MAX,
    t_min: int = 1,
) -> int:
    """Smallest t meeting the UBER target at the given RBER (Eq. (1)).

    The codeword length grows with t (n = k + m*t), which the search
    accounts for.  Raises :class:`CodeDesignError` when even ``t_max`` is
    insufficient — the device is past its correctable lifetime.
    """
    if rber == 0.0:
        return t_min
    log_target = math.log10(uber_target)
    for t in range(t_min, t_max + 1):
        n = k + m * t
        # Eq. (1) is the P(exactly t+1 errors) term; below the mean error
        # count it vanishes spuriously, so only t on the tail branch
        # (t + 1 >= n * RBER) are valid design points.
        if t + 1 < n * rber:
            continue
        if log10_uber_eq1(rber, n, t) <= log_target:
            return t
    raise CodeDesignError(
        f"RBER {rber:.3e} cannot reach UBER {uber_target:.1e} with t <= {t_max}"
    )


def achieved_uber(
    rber: float,
    t: int,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
) -> float:
    """UBER delivered by capability t at the given RBER (Eq. (1))."""
    return uber_eq1(rber, k + m * t, t)


def log10_achieved_uber(
    rber: float,
    t: int,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
) -> float:
    """log10 of :func:`achieved_uber` (safe for deeply sub-underflow values)."""
    return log10_uber_eq1(rber, k + m * t, t)


# ---------------------------------------------------------------------------
# Monte-Carlo UBER through the real codec (process-pool fan-out)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class McUberResult:
    """Aggregate outcome of one Monte-Carlo UBER run."""

    rber: float
    t: int
    n: int
    pages: int
    failed_pages: int
    injected_bits: int
    corrected_bits: int

    @property
    def page_failure_rate(self) -> float:
        """Fraction of pages the codec could not recover exactly."""
        return self.failed_pages / self.pages if self.pages else 0.0

    @property
    def uber(self) -> float:
        """MC estimate of the uncorrectable bit error rate (failures/bit)."""
        return self.failed_pages / (self.pages * self.n) if self.pages else 0.0


@lru_cache(maxsize=4)
def _mc_codec(k: int, m: int | None, t_max: int):
    """Per-process codec cache (design tables are expensive to rebuild)."""
    from repro.bch.codec import AdaptiveBCHCodec

    return AdaptiveBCHCodec(k=k, t_max=t_max, m=m)


def _mc_uber_chunk(job: tuple) -> tuple[int, int, int, int]:
    """One MC chunk: (failed_pages, injected_bits, corrected_bits, n).

    Module-level and tuple-driven so it pickles into pool workers; the
    chunk's :class:`~numpy.random.SeedSequence` fully determines its
    randomness, making results independent of which worker runs it.
    The codeword length n rides along so the parent never has to build
    the (expensive) code-design tables itself in the pooled path.
    """
    k, m, t, pages, rber, seed_seq = job
    codec = _mc_codec(k, m, t)
    spec = codec.spec_for(t)
    rng = np.random.default_rng(seed_seq)
    messages = [rng.bytes(k // 8) for _ in range(pages)]
    codewords = codec.encode_batch(messages, t=t)
    word_bytes = len(codewords[0])
    raw = np.frombuffer(b"".join(codewords), dtype=np.uint8).reshape(
        pages, word_bytes
    ).copy()
    counts = rng.binomial(spec.n, rber, size=pages)
    for row, count in zip(raw, counts):
        if count == 0:
            continue
        positions = rng.choice(spec.n, size=count, replace=False)
        np.bitwise_xor.at(
            row, positions // 8, (0x80 >> (positions % 8)).astype(np.uint8)
        )
    results = codec.decode_batch([row.tobytes() for row in raw], t=t, strict=False)
    failed = sum(
        1
        for message, result in zip(messages, results)
        if not result.success or result.data != message
    )
    corrected = sum(r.corrected_bits for r in results if r.success)
    return failed, int(counts.sum()), corrected, spec.n


def monte_carlo_uber(
    rber: float,
    t: int,
    pages: int,
    k: int = default_params.MESSAGE_BITS,
    m: int | None = None,
    seed: int = 0,
    chunk_pages: int = 64,
    workers: int | None = None,
) -> McUberResult:
    """Monte-Carlo UBER of capability ``t`` at ``rber`` via the real codec.

    ``pages`` random pages are encoded, corrupted (binomial error counts
    at uniform distinct positions over the n-bit codeword) and decoded;
    a page counts as failed when the decoder gives up *or* miscorrects.
    The work is split into ceil(pages / chunk_pages) chunks, each seeded
    by one :class:`numpy.random.SeedSequence` spawn of ``seed``, and
    chunks are fanned out across ``workers`` processes (``None`` or <= 1
    runs them inline).  Aggregation sums per-chunk counters, so the
    result is deterministic regardless of worker count.
    """
    if pages <= 0:
        raise ValueError("pages must be positive")
    if chunk_pages <= 0:
        raise ValueError("chunk_pages must be positive")
    sizes = [
        min(chunk_pages, pages - start)
        for start in range(0, pages, chunk_pages)
    ]
    seeds = np.random.SeedSequence(seed).spawn(len(sizes))
    jobs = [
        (k, m, t, size, rber, child) for size, child in zip(sizes, seeds)
    ]
    if workers is None or workers <= 1 or len(jobs) == 1:
        outcomes = [_mc_uber_chunk(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            outcomes = list(pool.map(_mc_uber_chunk, jobs))
    failed = sum(outcome[0] for outcome in outcomes)
    injected = sum(outcome[1] for outcome in outcomes)
    corrected = sum(outcome[2] for outcome in outcomes)
    n = outcomes[0][3]
    return McUberResult(
        rber=rber,
        t=t,
        n=n,
        pages=pages,
        failed_pages=failed,
        injected_bits=injected,
        corrected_bits=corrected,
    )


def max_rber_for_t(
    t: int,
    k: int = default_params.MESSAGE_BITS,
    m: int = default_params.GF_DEGREE,
    uber_target: float = default_params.UBER_TARGET,
) -> float:
    """Largest RBER that capability t can cover at the UBER target.

    Solved by bisection on the monotone Eq. (1); used to calibrate the
    lifetime RBER curve so that the rated endurance lands exactly on
    t = T_MAX (DESIGN.md section 3).
    """
    n = k + m * t
    log_target = math.log10(uber_target)
    # Stay on the valid branch of Eq. (1): RBER <= (t + 1) / n, where the
    # formula is monotone increasing in RBER.
    lo, hi = 1e-12, (t + 1) / n
    if log10_uber_eq1(lo, n, t) > log_target:
        raise CodeDesignError(f"t={t} cannot meet the target even at RBER={lo}")
    if log10_uber_eq1(hi, n, t) <= log_target:
        return hi
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # bisect in log space
        if log10_uber_eq1(mid, n, t) <= log_target:
            lo = mid
        else:
            hi = mid
    return lo
