"""Systematic BCH encoder.

Computes the r parity bits as ``m(x) * x^r mod g(x)`` — exactly what the
paper's r-bit LFSR does — using a byte-at-a-time precomputed reduction
table so that 4 KiB pages encode in a handful of milliseconds in pure
Python.  Bit convention: the MSB of the first message byte is the
highest-degree coefficient; the codeword is ``message || parity``.
"""

from __future__ import annotations

from repro.bch.params import BCHCodeSpec
from repro.errors import CodeDesignError
from repro.gf.poly2 import poly2_mod


class BCHEncoder:
    """Table-driven systematic encoder for one :class:`BCHCodeSpec`."""

    def __init__(self, spec: BCHCodeSpec):
        if spec.r < 8:
            raise CodeDesignError(
                "byte-parallel encoder requires r >= 8 parity bits"
            )
        self.spec = spec
        self._mask = (1 << spec.r) - 1
        self._shift = spec.r - 8
        # table[v] = (v(x) * x^r) mod g(x) for each byte value v.
        self._table = [poly2_mod(v << spec.r, spec.generator) for v in range(256)]

    def parity_int(self, message: bytes) -> int:
        """Parity bits as an integer polynomial (bit i = coeff of x^i)."""
        if len(message) * 8 != self.spec.k:
            raise ValueError(
                f"message must be exactly {self.spec.k // 8} bytes, "
                f"got {len(message)}"
            )
        state = 0
        table = self._table
        shift = self._shift
        mask = self._mask
        for byte in message:
            idx = ((state >> shift) ^ byte) & 0xFF
            state = ((state << 8) & mask) ^ table[idx]
        return state

    def encode(self, message: bytes) -> bytes:
        """Parity bytes for ``message`` (big-endian bit order, MSB first).

        The r parity bits are stored left-aligned: when r is not a multiple
        of 8 the stored stream is ``codeword(x) * x^pad`` with ``pad`` zero
        bits at the tail, keeping the byte stream a valid polynomial (see
        :attr:`BCHCodeSpec.pad_bits`).
        """
        parity = self.parity_int(message) << self.spec.pad_bits
        return parity.to_bytes(self.spec.parity_bytes, "big")

    def encode_codeword(self, message: bytes) -> bytes:
        """Full systematic codeword ``message || parity``."""
        return bytes(message) + self.encode(message)

    def is_codeword(self, codeword: bytes) -> bool:
        """Check divisibility by the generator (true for clean codewords)."""
        expected = self.spec.k // 8 + self.spec.parity_bytes
        if len(codeword) != expected:
            raise ValueError(f"codeword must be {expected} bytes, got {len(codeword)}")
        message = codeword[: self.spec.k // 8]
        parity = int.from_bytes(codeword[self.spec.k // 8:], "big")
        return (self.parity_int(message) << self.spec.pad_bits) == parity
