"""Systematic BCH encoder.

Computes the r parity bits as ``m(x) * x^r mod g(x)`` — exactly what the
paper's r-bit LFSR does.  Two datapaths share the same math:

* **Scalar** (:meth:`BCHEncoder.parity_int` / :meth:`encode`): a
  byte-at-a-time precomputed reduction table over a big-int LFSR state,
  kept as the cross-checked reference.
* **Batched word-sliced LFSR** (:meth:`BCHEncoder.encode_batch`): the
  whole batch of messages advances in lockstep through a word-sliced
  LFSR.  The r-bit state of every message lives in one
  ``(B, ceil(r/64))`` uint64 numpy array; each step absorbs a slice of
  S message bytes at once by folding the state's top S/8 words with the
  next message words and XOR-ing S chunked 256-entry reduction tables
  ``T_p[v] = v(x) * x^(r + 8*(S-1-p)) mod g``.  Codes with r >= 128
  parity bits slice by 16 bytes (two words per step — half the Python
  loop iterations); smaller codes with r >= 64 slice by 8.  Per
  message-byte work shrinks from one Python big-int update to 1/S-th of
  a handful of vectorized ops shared by the batch.

Bit convention: the MSB of the first message byte is the highest-degree
coefficient; the codeword is ``message || parity``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.bch.params import BCHCodeSpec
from repro.errors import CodeDesignError
from repro.gf.poly2 import poly2_mod

#: Message bytes absorbed per batched LFSR step (slicing-by-N); wide
#: slices need at least two full 64-bit state words (r >= 128).
_SLICE_BYTES = 8
_WIDE_SLICE_BYTES = 16


class BCHEncoder:
    """Table-driven systematic encoder for one :class:`BCHCodeSpec`."""

    def __init__(self, spec: BCHCodeSpec):
        if spec.r < 8:
            raise CodeDesignError(
                "byte-parallel encoder requires r >= 8 parity bits"
            )
        self.spec = spec
        self._mask = (1 << spec.r) - 1
        self._shift = spec.r - 8
        # table[v] = (v(x) * x^r) mod g(x) for each byte value v.
        self._table = [poly2_mod(v << spec.r, spec.generator) for v in range(256)]
        # Lazily-built slicing tables for the batched datapath, keyed by
        # slice width in bytes.
        self._slice_tables: dict[int, list[np.ndarray]] = {}

    def parity_int(self, message: bytes) -> int:
        """Parity bits as an integer polynomial (bit i = coeff of x^i)."""
        if len(message) * 8 != self.spec.k:
            raise ValueError(
                f"message must be exactly {self.spec.k // 8} bytes, "
                f"got {len(message)}"
            )
        state = 0
        table = self._table
        shift = self._shift
        mask = self._mask
        for byte in message:
            idx = ((state >> shift) ^ byte) & 0xFF
            state = ((state << 8) & mask) ^ table[idx]
        return state

    def encode(self, message: bytes) -> bytes:
        """Parity bytes for ``message`` (big-endian bit order, MSB first).

        The r parity bits are stored left-aligned: when r is not a multiple
        of 8 the stored stream is ``codeword(x) * x^pad`` with ``pad`` zero
        bits at the tail, keeping the byte stream a valid polynomial (see
        :attr:`BCHCodeSpec.pad_bits`).
        """
        parity = self.parity_int(message) << self.spec.pad_bits
        return parity.to_bytes(self.spec.parity_bytes, "big")

    def encode_codeword(self, message: bytes) -> bytes:
        """Full systematic codeword ``message || parity``."""
        return bytes(message) + self.encode(message)

    def is_codeword(self, codeword: bytes) -> bool:
        """Check divisibility by the generator (true for clean codewords)."""
        expected = self.spec.k // 8 + self.spec.parity_bytes
        if len(codeword) != expected:
            raise ValueError(f"codeword must be {expected} bytes, got {len(codeword)}")
        message = codeword[: self.spec.k // 8]
        parity = int.from_bytes(codeword[self.spec.k // 8:], "big")
        return (self.parity_int(message) << self.spec.pad_bits) == parity

    # -- batched slicing-by-8 datapath ----------------------------------------

    @property
    def slice_bytes(self) -> int:
        """Message bytes absorbed per batched LFSR step for this code.

        Codes with r >= 128 (at least two 64-bit state words) and a
        message splitting into 128-bit chunks run the wide 16-byte slice;
        otherwise the 8-byte slice applies.
        """
        if (
            self.spec.r >= 8 * _WIDE_SLICE_BYTES
            and self.spec.k % (8 * _WIDE_SLICE_BYTES) == 0
        ):
            return _WIDE_SLICE_BYTES
        return _SLICE_BYTES

    @property
    def supports_batch_kernel(self) -> bool:
        """Whether the word-sliced kernel applies to this code's shape.

        The top-word fold needs at least one full state word (r >= 64) and
        the message must split into whole 64-bit chunks; smaller codes fall
        back to the scalar path inside :meth:`encode_batch`.
        """
        return self.spec.r >= 64 and self.spec.k % 64 == 0

    def _batch_tables(self, slice_bytes: int) -> list[np.ndarray]:
        """Chunked reduction tables: T_p[v] = v * x^(r + 8*(S-1-p)) mod g.

        Rows are left-aligned into ``ceil(r/64)`` uint64 words and
        byteswapped so word 0 holds the polynomial's top 64 bits as a
        native integer (the quantity folded with incoming message words).
        """
        if slice_bytes not in self._slice_tables:
            r, g = self.spec.r, self.spec.generator
            state_words = (r + 63) // 64
            align = 64 * state_words - r
            tables = []
            for p in range(slice_bytes):
                shift = r + 8 * (slice_bytes - 1 - p)
                rows = b"".join(
                    (poly2_mod(v << shift, g) << align).to_bytes(
                        8 * state_words, "big"
                    )
                    for v in range(256)
                )
                table = (
                    np.frombuffer(rows, dtype=np.uint8)
                    .reshape(256, 8 * state_words)
                    .view(np.dtype(">u8"))
                    .astype(np.uint64)
                )
                tables.append(table)
            self._slice_tables[slice_bytes] = tables
        return self._slice_tables[slice_bytes]

    def _parity_batch_kernel(self, messages: Sequence[bytes]) -> list[bytes]:
        """Lockstep LFSR over the whole batch; returns stored parity bytes."""
        spec = self.spec
        batch = len(messages)
        slice_bytes = self.slice_bytes
        slice_words = slice_bytes // 8
        tables = self._batch_tables(slice_bytes)
        state_words = (spec.r + 63) // 64
        raw = np.frombuffer(b"".join(messages), dtype=np.uint8)
        chunks = (
            raw.reshape(batch, spec.k // 8)
            .view(np.dtype(">u8"))
            .astype(np.uint64)
        )
        state = np.zeros((batch, state_words), dtype=np.uint64)
        u = np.empty((batch, slice_words), dtype=np.uint64)
        byte_mask = np.uint64(0xFF)
        for i in range(0, chunks.shape[1], slice_words):
            # Fold the state's top words with the next S message bytes...
            np.bitwise_xor(
                state[:, :slice_words], chunks[:, i:i + slice_words], out=u
            )
            # ...shift the state left by the slice (x^(8*S))...
            state[:, :-slice_words] = state[:, slice_words:]
            state[:, -slice_words:] = 0
            # ...and reduce the folded words byte-by-byte through the
            # tables (byte p of the slice lives in word p//8 of u).
            for p in range(slice_bytes):
                idx = (u[:, p // 8] >> np.uint64(8 * (7 - p % 8))) & byte_mask
                state ^= tables[p][idx.astype(np.intp)]
        # Left-aligned state words == parity << pad_bits within the first
        # parity_bytes of the big-endian byte stream.
        stream = state.astype(np.dtype(">u8")).view(np.uint8)
        pb = spec.parity_bytes
        return [stream[b, :pb].tobytes() for b in range(batch)]

    def encode_batch(self, messages: Sequence[bytes]) -> list[bytes]:
        """Stored parity bytes for every message (batch analogue of
        :meth:`encode`; bit-exact against the scalar path).
        """
        expected = self.spec.k // 8
        for message in messages:
            if len(message) != expected:
                raise ValueError(
                    f"message must be exactly {expected} bytes, "
                    f"got {len(message)}"
                )
        if not self.supports_batch_kernel or len(messages) < 2:
            return [self.encode(m) for m in messages]
        return self._parity_batch_kernel(messages)

    def encode_codeword_batch(self, messages: Sequence[bytes]) -> list[bytes]:
        """Full systematic codewords for every message."""
        parities = self.encode_batch(messages)
        return [bytes(m) + p for m, p in zip(messages, parities)]
