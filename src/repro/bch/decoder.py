"""Full BCH decoder pipeline: syndrome -> Berlekamp-Massey -> Chien.

Mirrors Fig. 2 of the paper, including the error-free early exit after the
syndrome stage.  Decoding failures (more than t errors) raise
:class:`repro.errors.DecodingFailure` or, in permissive mode, are reported
in the :class:`DecodeResult`.

Fast path: single-word decodes use the vectorized bit-unpack syndrome
kernel by default (``vectorized=False`` restores the byte-serial seed
path, kept as the benchmark/cross-check reference), and
:meth:`BCHDecoder.decode_batch` decodes a whole batch of pages with one
batched syndrome computation — the all-zero-syndrome early exit is
evaluated vectorized across the batch, so clean pages never reach
Berlekamp-Massey.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field as dataclass_field

from repro.bch.berlekamp import berlekamp_massey
from repro.bch.chien import ChienSearch
from repro.bch.params import BCHCodeSpec
from repro.bch.syndrome import SyndromeCalculator
from repro.errors import DecodingFailure


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of one page decode.

    Attributes
    ----------
    data: corrected message bytes (k/8 bytes).
    corrected_bits: number of bit errors corrected (0 for a clean word).
    error_positions: corrected codeword bit positions (0 = MSB of byte 0).
    success: False when the word was uncorrectable (permissive mode only).
    early_exit: True when the all-zero-syndrome shortcut fired.
    """

    data: bytes
    corrected_bits: int
    error_positions: tuple[int, ...] = ()
    success: bool = True
    early_exit: bool = False


@dataclass
class DecoderStats:
    """Aggregate statistics exposed to the reliability manager (section 3)."""

    words_decoded: int = 0
    words_clean: int = 0
    words_failed: int = 0
    bits_corrected: int = 0
    bits_processed: int = 0
    max_errors_in_word: int = 0
    recent_error_counts: deque[int] = dataclass_field(
        default_factory=lambda: deque(maxlen=1024)
    )

    def observe(self, corrected: int, n_bits: int, failed: bool) -> None:
        """Record one decode outcome."""
        self.words_decoded += 1
        self.bits_processed += n_bits
        if failed:
            self.words_failed += 1
            return
        if corrected == 0:
            self.words_clean += 1
        self.bits_corrected += corrected
        self.max_errors_in_word = max(self.max_errors_in_word, corrected)
        self.recent_error_counts.append(corrected)

    @property
    def observed_rber(self) -> float:
        """Pre-correction bit error rate estimated from corrected bits."""
        if self.bits_processed == 0:
            return 0.0
        return self.bits_corrected / self.bits_processed


class BCHDecoder:
    """Decoder for one fixed :class:`BCHCodeSpec`.

    Parameters
    ----------
    spec:
        The designed code.
    vectorized:
        Use the numpy bit-unpack syndrome kernel for single-word decodes
        (default).  ``False`` selects the byte-serial reference path —
        identical results, kept for cross-checking and as the benchmark
        baseline.
    """

    def __init__(self, spec: BCHCodeSpec, vectorized: bool = True):
        self.spec = spec
        self.vectorized = vectorized
        self.syndrome_calculator = SyndromeCalculator(spec)
        self.chien = ChienSearch(spec)
        self.stats = DecoderStats()

    def _check_length(self, codeword: bytes) -> None:
        expected = self.spec.k // 8 + self.spec.parity_bytes
        if len(codeword) != expected:
            raise ValueError(f"codeword must be {expected} bytes, got {len(codeword)}")

    def decode(self, codeword: bytes, strict: bool = True) -> DecodeResult:
        """Correct up to t bit errors in ``codeword`` (message || parity).

        Parameters
        ----------
        codeword:
            k/8 message bytes followed by parity bytes.
        strict:
            If True (default) raise :class:`DecodingFailure` on uncorrectable
            words; otherwise return a :class:`DecodeResult` with
            ``success=False`` carrying the uncorrected message bytes.
        """
        self._check_length(codeword)
        calc = self.syndrome_calculator
        syndromes = (
            calc.syndromes_vectorized(codeword)
            if self.vectorized
            else calc.syndromes(codeword)
        )
        if SyndromeCalculator.all_zero(syndromes):
            self.stats.observe(0, self.spec.n, failed=False)
            return DecodeResult(
                data=bytes(codeword[: self.spec.k // 8]),
                corrected_bits=0,
                early_exit=True,
            )
        return self._correct(codeword, syndromes, strict)

    def decode_batch(
        self, codewords: Sequence[bytes], strict: bool = True
    ) -> list[DecodeResult]:
        """Decode a batch of codewords (same contract as :meth:`decode`).

        All syndromes are computed in one vectorized pass; the error-free
        early exit is applied across the whole batch at once and only the
        errored words proceed to Berlekamp-Massey + Chien.
        """
        for codeword in codewords:
            self._check_length(codeword)
        if not codewords:
            return []
        syndromes = self.syndrome_calculator.syndromes_batch(codewords)
        clean = SyndromeCalculator.all_zero_batch(syndromes)
        message_bytes = self.spec.k // 8
        results: list[DecodeResult] = []
        for b, codeword in enumerate(codewords):
            if clean[b]:
                self.stats.observe(0, self.spec.n, failed=False)
                results.append(
                    DecodeResult(
                        data=bytes(codeword[:message_bytes]),
                        corrected_bits=0,
                        early_exit=True,
                    )
                )
            else:
                results.append(
                    self._correct(codeword, syndromes[b].tolist(), strict)
                )
        return results

    def _correct(
        self, codeword: bytes, syndromes: list[int], strict: bool
    ) -> DecodeResult:
        """Shared BM + Chien + bit-flip stage for a nonzero syndrome word."""
        spec = self.spec
        message_bytes = spec.k // 8
        bm = berlekamp_massey(spec.field(), syndromes)
        positions = self.chien.error_positions(bm.error_locator)

        if (
            bm.degree < 1
            or bm.degree > spec.t
            or len(positions) != bm.degree
        ):
            self.stats.observe(0, spec.n, failed=True)
            failure = DecodingFailure(
                f"uncorrectable word: locator degree {bm.degree}, "
                f"{len(positions)} roots in range (t={spec.t})",
                detected=bm.degree,
            )
            if strict:
                raise failure
            return DecodeResult(
                data=bytes(codeword[:message_bytes]),
                corrected_bits=0,
                success=False,
            )

        corrected = bytearray(codeword)
        for pos in positions:
            corrected[pos // 8] ^= 0x80 >> (pos % 8)

        self.stats.observe(len(positions), spec.n, failed=False)
        return DecodeResult(
            data=bytes(corrected[:message_bytes]),
            corrected_bits=len(positions),
            error_positions=tuple(positions),
        )
