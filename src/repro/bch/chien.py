"""Chien search — third decoding stage of Fig. 2.

Finds the roots of the error-locator polynomial by evaluating it at the
field elements corresponding to valid codeword positions.  For a shortened
code only n of the 2^m - 1 elements are candidates — the paper's hardware
keeps "the first element of GF(2^m) from which the Chien search must
initiate" in a small ROM per correction capability; here the candidate set
is derived from n directly.

The software implementation is numpy-vectorized over all candidate
positions (equivalent to an h = n fully-parallel evaluator); the hardware
latency model in :mod:`repro.bch.hardware` accounts for the real h-way
datapath.
"""

from __future__ import annotations

import numpy as np

from repro.bch.params import BCHCodeSpec
from repro.gf.field import GF2m
from repro.gf.polygf import GFPoly


class ChienSearch:
    """Root search over the valid positions of a (shortened) BCH code."""

    def __init__(self, spec: BCHCodeSpec):
        self.spec = spec
        self.field: GF2m = spec.field()
        n = spec.n_stored  # byte-aligned stream (codeword * x^pad)
        order = self.field.order
        # Position j (power of x in the stream polynomial) has locator
        # X = alpha^j; lambda's roots are X^{-1} = alpha^{-j}.  We evaluate
        # lambda at alpha^e with e = (-j) mod order for j = 0..n-1.
        exponents = (order - np.arange(n, dtype=np.int64)) % order
        self._eval_logs = exponents

    def error_positions(self, locator: GFPoly) -> list[int]:
        """Bit positions (0 = MSB of byte 0) whose locator inverse is a root.

        Returns positions sorted ascending; the caller cross-checks the
        count against the locator degree to detect decoding failure.
        """
        if locator.field != self.field:
            raise ValueError("locator polynomial is over a different field")
        if locator.degree <= 0:
            return []
        values = self.field.eval_poly_vec(
            np.asarray(locator.coeffs, dtype=np.int64), self._eval_logs
        )
        exponents_j = np.nonzero(values == 0)[0]  # j = power of x
        n = self.spec.n_stored
        positions = sorted(int(n - 1 - j) for j in exponents_j)
        return positions

    def root_count_in_field(self, locator: GFPoly) -> int:
        """Number of roots over the *whole* field (diagnostic for failures)."""
        if locator.degree <= 0:
            return 0
        all_logs = np.arange(self.field.order, dtype=np.int64)
        values = self.field.eval_poly_vec(
            np.asarray(locator.coeffs, dtype=np.int64), all_logs
        )
        return int(np.count_nonzero(values == 0))
