"""Chien search — third decoding stage of Fig. 2.

Finds the roots of the error-locator polynomial by evaluating it at the
field elements corresponding to valid codeword positions.  For a shortened
code only n of the 2^m - 1 elements are candidates — the paper's hardware
keeps "the first element of GF(2^m) from which the Chien search must
initiate" in a small ROM per correction capability; here the candidate set
is derived from n directly.

The software implementation is numpy-vectorized over all candidate
positions (equivalent to an h = n fully-parallel evaluator) and runs in
two passes: a uint8 screen XOR-accumulates only the *low byte* of every
``coeff * alpha^(-j*i)`` term (half the gather traffic of a full
evaluation; a zero value implies a zero low byte, so no root is missed),
then the few surviving candidates (~n/256 plus the real roots) are
evaluated exactly.  Per-degree position exponents ``(i * -j) mod order``
come from a lazily-built int32 table, so the screen loop is one add, one
gather and one XOR per locator coefficient.  The hardware latency model
in :mod:`repro.bch.hardware` accounts for the real h-way datapath.
"""

from __future__ import annotations

import numpy as np

from repro.bch.params import BCHCodeSpec
from repro.gf.field import GF2m
from repro.gf.polygf import GFPoly


class ChienSearch:
    """Root search over the valid positions of a (shortened) BCH code."""

    def __init__(self, spec: BCHCodeSpec):
        self.spec = spec
        self.field: GF2m = spec.field()
        n = spec.n_stored  # byte-aligned stream (codeword * x^pad)
        order = self.field.order
        # Position j (power of x in the stream polynomial) has locator
        # X = alpha^j; lambda's roots are X^{-1} = alpha^{-j}.  We evaluate
        # lambda at alpha^e with e = (-j) mod order for j = 0..n-1.
        exponents = (order - np.arange(n, dtype=np.int64)) % order
        self._eval_logs = exponents
        # Lazy fast-path tables (built to the highest degree seen so far).
        self._ipl: np.ndarray | None = None
        self._exp2_lo: np.ndarray | None = None
        self._acc8: np.ndarray | None = None
        self._scratch: np.ndarray | None = None

    def _degree_exponents(self, degree: int) -> np.ndarray:
        """Rows 0..degree of ``(i * eval_log_j) mod order``.

        Stored as intp: numpy re-casts any other index dtype to intp on
        every fancy-indexing gather, which would cost a full extra pass
        per locator coefficient.
        """
        if self._ipl is None or self._ipl.shape[0] <= degree:
            order = np.intp(self.field.order)
            pl = (self._eval_logs % self.field.order).astype(np.intp)
            rows = np.empty((max(degree + 1, 2), pl.size), dtype=np.intp)
            rows[0] = 0
            rows[1] = pl
            for i in range(2, rows.shape[0]):
                np.add(rows[i - 1], pl, out=rows[i])
                np.subtract(
                    rows[i], order, out=rows[i], where=rows[i] >= order
                )
            self._ipl = rows
        return self._ipl

    def error_positions(self, locator: GFPoly) -> list[int]:
        """Bit positions (0 = MSB of byte 0) whose locator inverse is a root.

        Returns positions sorted ascending; the caller cross-checks the
        count against the locator degree to detect decoding failure.
        """
        if locator.field != self.field:
            raise ValueError("locator polynomial is over a different field")
        if locator.degree <= 0:
            return []
        coeffs = np.asarray(locator.coeffs, dtype=np.int64)
        nz = np.flatnonzero(coeffs)
        coeff_logs = self.field.log[coeffs[nz]].astype(np.intp)
        ipl = self._degree_exponents(int(nz[-1]))
        if self._exp2_lo is None:
            self._exp2_lo = (self.field.exp2_u16 & 0xFF).astype(np.uint8)
        n = self.spec.n_stored
        if self._acc8 is None or self._acc8.size != n:
            self._acc8 = np.empty(n, dtype=np.uint8)
            self._scratch = np.empty(n, dtype=np.intp)
        # Pass 1: XOR only the low byte of every term over all positions.
        acc8, scratch = self._acc8, self._scratch
        acc8[:] = 0
        exp2_lo = self._exp2_lo
        for row, log_c in zip(nz, coeff_logs):
            np.add(ipl[row], log_c, out=scratch)
            acc8 ^= exp2_lo[scratch]
        candidates = np.flatnonzero(acc8 == 0)
        if candidates.size == 0:
            return []
        # Pass 2: exact evaluation at the surviving candidates only.
        exp2 = self.field.exp2_u16
        values = np.zeros(candidates.size, dtype=np.uint16)
        for row, log_c in zip(nz, coeff_logs):
            values ^= exp2[ipl[row, candidates] + log_c]
        exponents_j = candidates[values == 0]  # j = power of x
        positions = sorted(int(n - 1 - j) for j in exponents_j)
        return positions

    def root_count_in_field(self, locator: GFPoly) -> int:
        """Number of roots over the *whole* field (diagnostic for failures)."""
        if locator.degree <= 0:
            return 0
        all_logs = np.arange(self.field.order, dtype=np.int64)
        values = self.field.eval_poly_vec(
            np.asarray(locator.coeffs, dtype=np.int64), all_logs
        )
        return int(np.count_nonzero(values == 0))
