"""Canonical device and system parameters.

Single source of truth for the constants used throughout the reproduction.
Values are anchored to the paper's own checkpoints (see DESIGN.md §3):

* 2-bit/cell 45 nm low-power MLC NAND, VDD = 1.8 V;
* 4 KiB page (k = 32768 bits) + 224 B spare, BCH over GF(2^16);
* adaptive correction capability t in [1, 65], UBER target 1e-11;
* ECC clock 80 MHz, encoder/syndrome parallelism p = 8, Chien evaluator
  budget M = 260 Galois multipliers (h(t) = min(8, floor(M / t)));
* ISPP: 14 V to 19 V, delta = 250 mV; array read time 75 us;
* rated endurance 1e5 P/E cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Page / code geometry
# ---------------------------------------------------------------------------

#: Data bytes per page (4 KiB, the paper's ECC block size, section 6.2).
PAGE_DATA_BYTES = 4096

#: Spare bytes per page available for parity + filesystem metadata.
PAGE_SPARE_BYTES = 224

#: Message length in bits protected by one BCH codeword (full page).
MESSAGE_BITS = PAGE_DATA_BYTES * units.BITS_PER_BYTE

#: Galois field degree for the page-sized BCH code (2^16 - 1 = 65535 >= n).
GF_DEGREE = 16

#: Maximum correction capability instantiated by the paper (worst case SV).
T_MAX = 65

#: Minimum correction capability observed in the paper's best case.
T_MIN = 3

#: Target uncorrectable bit error rate (datasheet-class requirement).
UBER_TARGET = 1e-11

# ---------------------------------------------------------------------------
# ECC hardware model
# ---------------------------------------------------------------------------

#: Codec clock frequency (Fig. 8 caption: "Assumed operating speed is 80 MHz").
ECC_CLOCK_HZ = units.mhz(80)

#: Bits consumed per clock by the parallel LFSRs (encoder and syndrome units).
LFSR_PARALLELISM = 8

#: Maximum number of parallel Chien evaluations.
CHIEN_MAX_PARALLELISM = 8

#: Galois constant-multiplier budget for the Chien search (t * h multipliers
#: are needed for parallelism h at correction capability t, section 4).
CHIEN_MULTIPLIER_BUDGET = 4 * T_MAX

# ---------------------------------------------------------------------------
# NAND timings (Micron MT29F-class MLC device, paper section 6.3.2 / [27])
# ---------------------------------------------------------------------------

#: Array page read time (cell sensing + page buffer load).
T_READ_ARRAY = units.us(75)

#: ISPP pulse width used in production program operations.
T_PROGRAM_PULSE = units.us(7)

#: Wordline / bitline setup time preceding each program pulse.
T_PULSE_SETUP = units.us(3)

#: Single verify (threshold-voltage read at one verify level).
T_VERIFY = units.us(12)

#: ISPP-DV pre-verify strobe: shares the bitline precharge with the final
#: verify of the same level, so only the second sensing strobe is paid.
T_PREVERIFY = units.us(8)

#: Block erase time (not on the paper's critical path, datasheet typical).
T_ERASE = units.ms(2.5)

#: Cache-read busy gap (tRCBSY): page-buffer -> cache-register handoff
#: before the array may start sensing the next page (MT29F datasheet).
T_CACHE_BUSY = units.us(3)

# ---------------------------------------------------------------------------
# ISPP voltage staircase
# ---------------------------------------------------------------------------

#: First program-pulse amplitude.
VPP_START = 14.0

#: Last program-pulse amplitude the charge pump can deliver.
VPP_END = 19.0

#: Production ISPP step (section 5.1).
DELTA_ISPP = units.mv(250)

#: ISPP step used by the Fig. 4 model-fitting experiment.
DELTA_ISPP_CHARACTERIZATION = 1.0

#: Bitline-bias attenuation of the effective ISPP step between the DV
#: pre-verify and final verify levels (double-verify fine phase).
DV_STEP_ATTENUATION = 3.0

#: Offset of the DV pre-verify level below the final verify level [V].
DV_PREVERIFY_OFFSET = 0.3

# ---------------------------------------------------------------------------
# Supply / lifetime
# ---------------------------------------------------------------------------

#: NAND core supply voltage (low-power part).
VDD = 1.8

#: Rated endurance in program/erase cycles; the adaptive ECC is provisioned
#: so that t = T_MAX exactly covers RBER at this point.
RATED_PE_CYCLES = 1e5

#: Extended sweep endpoint used by Fig. 5 (raw RBER trend beyond rating).
EXTENDED_PE_CYCLES = 1e6

#: Fallback RNG seed for components constructed without an explicit
#: ``rng``.  Matches the CLI's ``--seed`` default, so ad-hoc component
#: construction reproduces the experiment suite's streams — nothing in
#: the stack draws from OS entropy (the DET101 lint rule enforces it).
DEFAULT_SEED = 2012


@dataclass(frozen=True)
class EccHardwareParams:
    """Structural parameters of the adaptive BCH codec hardware.

    Parameters mirror section 4 of the paper: a p-bit parallel programmable
    LFSR for encoding and syndromes, an inversionless Berlekamp-Massey
    machine iterating t times, and a Chien search whose parallelism h is
    bounded both by the instantiated evaluator datapath and by a constant
    Galois-multiplier budget (t * h multipliers are active at capability t).
    """

    clock_hz: float = ECC_CLOCK_HZ
    lfsr_parallelism: int = LFSR_PARALLELISM
    chien_max_parallelism: int = CHIEN_MAX_PARALLELISM
    chien_multiplier_budget: int = CHIEN_MULTIPLIER_BUDGET
    bm_cycles_per_iteration: int = 3
    pipeline_overhead_cycles: int = 8

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")
        if self.lfsr_parallelism < 1:
            raise ConfigurationError("LFSR parallelism must be >= 1")
        if self.chien_max_parallelism < 1:
            raise ConfigurationError("Chien parallelism must be >= 1")
        if self.chien_multiplier_budget < self.chien_max_parallelism:
            raise ConfigurationError(
                "multiplier budget cannot be below the maximum parallelism"
            )

    @property
    def clock_period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz

    def chien_parallelism(self, t: int) -> int:
        """Usable Chien parallelism at correction capability ``t``.

        The evaluator needs ``t`` constant multipliers per parallel position;
        with a budget of ``M`` multipliers only ``floor(M / t)`` positions can
        be evaluated per cycle, capped by the instantiated datapath width.
        """
        if t < 1:
            raise ConfigurationError(f"correction capability must be >= 1, got {t}")
        return max(1, min(self.chien_max_parallelism, self.chien_multiplier_budget // t))


@dataclass(frozen=True)
class NandTimingParams:
    """Raw NAND array timing knobs used by the program/read timing model."""

    t_read_array: float = T_READ_ARRAY
    t_program_pulse: float = T_PROGRAM_PULSE
    t_pulse_setup: float = T_PULSE_SETUP
    t_verify: float = T_VERIFY
    t_preverify: float = T_PREVERIFY
    t_erase: float = T_ERASE
    t_cache_busy: float = T_CACHE_BUSY

    def __post_init__(self) -> None:
        for name in ("t_read_array", "t_program_pulse", "t_pulse_setup",
                     "t_verify", "t_preverify", "t_erase"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.t_cache_busy < 0:
            raise ConfigurationError("t_cache_busy must be non-negative")


@dataclass(frozen=True)
class DeviceParams:
    """Aggregate of the canonical device configuration."""

    page_data_bytes: int = PAGE_DATA_BYTES
    page_spare_bytes: int = PAGE_SPARE_BYTES
    gf_degree: int = GF_DEGREE
    t_max: int = T_MAX
    uber_target: float = UBER_TARGET
    rated_pe_cycles: float = RATED_PE_CYCLES
    vdd: float = VDD
    ecc: EccHardwareParams = field(default_factory=EccHardwareParams)
    timing: NandTimingParams = field(default_factory=NandTimingParams)

    def __post_init__(self) -> None:
        if self.page_data_bytes <= 0 or self.page_spare_bytes <= 0:
            raise ConfigurationError("page geometry must be positive")
        parity_bits = self.gf_degree * self.t_max
        spare_bits = self.page_spare_bytes * units.BITS_PER_BYTE
        if parity_bits > spare_bits:
            raise ConfigurationError(
                f"parity ({parity_bits} bits) does not fit the spare area "
                f"({spare_bits} bits); reduce t_max or enlarge the spare"
            )

    @property
    def message_bits(self) -> int:
        """BCH message length (one full data page)."""
        return self.page_data_bytes * units.BITS_PER_BYTE


#: Default parameter bundle shared by the high-level API.
DEFAULT_DEVICE = DeviceParams()
