"""Dickson charge-pump models (paper section 5.1).

Three pumps, as in the paper's HV subsystem:

* **program** — 12-stage modified Dickson, 14-19 V ISPP pulse supply;
* **inhibit** — same architecture, 8 stages, ~8 V channel-boost supply;
* **verify** — 4-stage high-speed pump, ~4.5 V read-bypass supply.

The charge-transfer model is the standard Dickson analysis (Kang et al.,
JSSC 2008): per clock cycle each stage hands ``C * (V_clk_eff - V_drop)``
of charge forward, so the open-circuit output is
``vdd + N * (vdd * C/(C + C_par) - V_drop)`` and the output impedance is
``N / (f * C)``.  Input current is ``(N + 1) * I_load`` plus the parasitic
switching term — the dominant contributor to the power numbers of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DicksonPumpParams:
    """Electrical parameters of one pump."""

    name: str
    stages: int
    stage_capacitance: float  # [F]
    clock_hz: float
    vdd: float = 1.8
    parasitic_ratio: float = 0.10  # C_par / C per stage
    diode_drop: float = 0.0        # modified (MOS-switch) pump: ~0 V
    output_capacitance: float = 200e-12

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ConfigurationError("pump needs at least one stage")
        if self.stage_capacitance <= 0 or self.output_capacitance <= 0:
            raise ConfigurationError("capacitances must be positive")
        if self.clock_hz <= 0 or self.vdd <= 0:
            raise ConfigurationError("clock and vdd must be positive")
        if not 0 <= self.parasitic_ratio < 1:
            raise ConfigurationError("parasitic ratio must be in [0, 1)")


class DicksonPump:
    """Analytic Dickson pump with enable gating."""

    def __init__(self, params: DicksonPumpParams):
        self.params = params
        self.enabled = False

    # -- steady-state characteristics ---------------------------------------

    @property
    def open_circuit_voltage(self) -> float:
        """No-load output voltage."""
        p = self.params
        gain = p.vdd * p.stage_capacitance / (
            p.stage_capacitance * (1 + p.parasitic_ratio)
        )
        return p.vdd + p.stages * (gain - p.diode_drop)

    @property
    def output_impedance(self) -> float:
        """Slope of the V-I output characteristic [ohm]."""
        p = self.params
        return p.stages / (p.clock_hz * p.stage_capacitance)

    def output_current(self, vout: float) -> float:
        """Current the pump can deliver into ``vout`` (0 when disabled)."""
        if not self.enabled:
            return 0.0
        return max(0.0, (self.open_circuit_voltage - vout) / self.output_impedance)

    def max_load_current(self, vout: float) -> float:
        """Sustainable load at a regulated ``vout``."""
        return max(0.0, (self.open_circuit_voltage - vout) / self.output_impedance)

    # -- input side --------------------------------------------------------------

    def parasitic_current(self) -> float:
        """Clocking current burnt in stage parasitics (flows when enabled)."""
        p = self.params
        return (
            p.stages
            * p.clock_hz
            * p.parasitic_ratio
            * p.stage_capacitance
            * p.vdd
        )

    def input_current(self, load_current: float) -> float:
        """Supply current while delivering ``load_current``.

        Each stage (plus the input) sources the load charge once per cycle:
        ``(N + 1) * I_load``, plus the parasitic switching current.
        """
        if load_current < 0:
            raise ConfigurationError("load current must be non-negative")
        p = self.params
        return (p.stages + 1) * load_current + self.parasitic_current()

    def input_power(self, load_current: float) -> float:
        """Supply power drawn from VDD while delivering ``load_current``."""
        return self.params.vdd * self.input_current(load_current)

    def efficiency(self, vout: float, load_current: float) -> float:
        """Power efficiency at an operating point."""
        if load_current <= 0:
            return 0.0
        return (vout * load_current) / self.input_power(load_current)


def standard_pumps(vdd: float = 1.8) -> dict[str, DicksonPump]:
    """The paper's three pumps with 45 nm-class parameters."""
    return {
        "program": DicksonPump(DicksonPumpParams(
            name="program", stages=12, stage_capacitance=250e-12,
            clock_hz=20e6, vdd=vdd, parasitic_ratio=0.06,
        )),
        "inhibit": DicksonPump(DicksonPumpParams(
            name="inhibit", stages=8, stage_capacitance=250e-12,
            clock_hz=20e6, vdd=vdd, parasitic_ratio=0.06,
        )),
        "verify": DicksonPump(DicksonPumpParams(
            name="verify", stages=4, stage_capacitance=400e-12,
            clock_hz=40e6, vdd=vdd, parasitic_ratio=0.08,
            output_capacitance=600e-12,
        )),
    }
