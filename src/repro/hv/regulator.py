"""Hysteretic pump regulation (paper section 5.1, "Regulators and
limiting systems").

A resistive divider feeds a comparator biased with a reference voltage;
the pump is shut down when the divided output crosses the reference and
restarted when it droops below the re-enable threshold — "the only viable
solution for an accurate control of the threshold voltages in a MLC NAND
Flash device".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RegulatorParams:
    """Divider/comparator configuration."""

    target_voltage: float
    reference_voltage: float = 1.2
    hysteresis: float = 0.05  # fraction of target between off/on thresholds

    def __post_init__(self) -> None:
        if self.target_voltage <= 0 or self.reference_voltage <= 0:
            raise ConfigurationError("voltages must be positive")
        if not 0 < self.hysteresis < 0.5:
            raise ConfigurationError("hysteresis fraction must be in (0, 0.5)")

    @property
    def divider_ratio(self) -> float:
        """Feedback divider ratio making target map onto the reference."""
        return self.reference_voltage / self.target_voltage

    @property
    def reenable_voltage(self) -> float:
        """Output voltage at which the pump restarts."""
        return self.target_voltage * (1.0 - self.hysteresis)


class HystereticRegulator:
    """Bang-bang pump enable control with hysteresis."""

    def __init__(self, params: RegulatorParams):
        self.params = params
        self._pump_on = True
        self.switch_count = 0

    @property
    def pump_enabled(self) -> bool:
        """Current comparator decision."""
        return self._pump_on

    def retarget(self, target_voltage: float) -> None:
        """Change the regulation point (ISPP staircase steps).

        The comparator state is re-armed: each staircase step restarts the
        pump until the new, higher target is reached.
        """
        self.params = RegulatorParams(
            target_voltage=target_voltage,
            reference_voltage=self.params.reference_voltage,
            hysteresis=self.params.hysteresis,
        )
        self._pump_on = True

    def update(self, vout: float) -> bool:
        """Advance the comparator with a new output sample; returns enable."""
        if self._pump_on and vout >= self.params.target_voltage:
            self._pump_on = False
            self.switch_count += 1
        elif not self._pump_on and vout <= self.params.reenable_voltage:
            self._pump_on = True
            self.switch_count += 1
        return self._pump_on

    def in_regulation(self, vout: float, tolerance: float = 0.10) -> bool:
        """True once the output is within tolerance of the target."""
        return abs(vout - self.params.target_voltage) <= tolerance * self.params.target_voltage
