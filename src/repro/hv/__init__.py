"""High-voltage subsystem of the NAND device (paper section 5.1).

Models the analog core that generates the program/inhibit/verify voltages:

* :mod:`repro.hv.charge_pump` — Dickson charge pumps (12-stage program,
  8-stage inhibit, 4-stage high-speed verify);
* :mod:`repro.hv.regulator` — hysteretic divider/comparator regulation;
* :mod:`repro.hv.spice` — a small explicit-Euler transient solver (the
  "SPICE-like environment") used to simulate pump ramp-up and regulation;
* :mod:`repro.hv.waveform` — ISPP enable-signal sequences per algorithm;
* :mod:`repro.hv.power` — FlashPower-style per-operation energy model
  (Fig. 6 reproduction).
"""

from repro.hv.charge_pump import DicksonPump, DicksonPumpParams, standard_pumps
from repro.hv.regulator import HystereticRegulator, RegulatorParams
from repro.hv.spice import TransientResult, TransientSolver
from repro.hv.waveform import Phase, PhaseKind, ProgramWaveform, build_program_waveform
from repro.hv.power import FlashPowerModel, PowerBreakdown
from repro.hv.subsystem import HighVoltageSubsystem

__all__ = [
    "DicksonPump",
    "DicksonPumpParams",
    "standard_pumps",
    "HystereticRegulator",
    "RegulatorParams",
    "TransientSolver",
    "TransientResult",
    "Phase",
    "PhaseKind",
    "ProgramWaveform",
    "build_program_waveform",
    "FlashPowerModel",
    "PowerBreakdown",
    "HighVoltageSubsystem",
]
