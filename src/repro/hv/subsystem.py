"""Top-level high-voltage subsystem facade.

Ties the pumps, regulators, waveform builder and power model together and
exposes the two queries the rest of the library needs:

* program-operation power/energy for a simulated ISPP result (Fig. 6);
* pump ramp characterisation through the transient solver (used by the
  tests and the HV example).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hv.charge_pump import DicksonPump, standard_pumps
from repro.hv.power import ArrayLoadParams, FlashPowerModel, PowerBreakdown
from repro.hv.regulator import HystereticRegulator, RegulatorParams
from repro.hv.spice import PumpCircuit, TransientResult, TransientSolver
from repro.hv.waveform import build_program_waveform
from repro.nand.ispp import IsppResult
from repro.params import VDD, NandTimingParams

#: Regulation targets of the three pumps (paper section 5.1).
PUMP_TARGETS = {"program": 19.0, "inhibit": 8.0, "verify": 4.5}


@dataclass(frozen=True)
class PumpCharacterisation:
    """Ramp/regulation figures of one pump."""

    name: str
    target_v: float
    settle_time_s: float
    ripple_v: float
    average_supply_power_w: float


class HighVoltageSubsystem:
    """The analog core of the NAND device."""

    def __init__(
        self,
        vdd: float = VDD,
        loads: ArrayLoadParams | None = None,
        timing: NandTimingParams | None = None,
    ):
        self.vdd = vdd
        self.pumps: dict[str, DicksonPump] = standard_pumps(vdd)
        self.power_model = FlashPowerModel(self.pumps, loads, vdd)
        self.timing = timing or NandTimingParams()

    def program_power(self, ispp_result: IsppResult) -> PowerBreakdown:
        """Power/energy of one program operation (the Fig. 6 measurement)."""
        waveform = build_program_waveform(ispp_result, self.timing)
        return self.power_model.program_breakdown(waveform)

    def characterise_pump(
        self,
        name: str,
        target_v: float | None = None,
        load_current: float | None = None,
        duration_s: float = 40e-6,
    ) -> PumpCharacterisation:
        """Transient ramp simulation of one pump into its regulation point."""
        pump = self.pumps[name]
        target = target_v if target_v is not None else PUMP_TARGETS[name]
        if load_current is None:
            defaults = {
                "program": self.power_model.loads.program_load(target),
                "inhibit": self.power_model.loads.inhibit_load,
                "verify": self.power_model.loads.verify_load,
            }
            load_current = defaults[name]
        # Clamp the load to what the pump can actually sustain at target.
        load_current = min(load_current, 0.8 * pump.max_load_current(target))
        regulator = HystereticRegulator(RegulatorParams(target_voltage=target))
        circuit = PumpCircuit(
            pump=pump, regulator=regulator,
            load_current=load_current, v_initial=self.vdd,
        )
        result: TransientResult = TransientSolver().run(circuit, duration_s)
        return PumpCharacterisation(
            name=name,
            target_v=target,
            settle_time_s=result.settle_time_s,
            ripple_v=result.ripple_v,
            average_supply_power_w=result.average_supply_power(self.vdd),
        )
