"""FlashPower-style device power model (paper Fig. 6).

Combines the Dickson-pump input currents with the array loads of each HV
phase, following the equation-set approach of Mohan et al. (FlashPower,
DATE 2010) that the paper feeds its SPICE pump measurements into:

* **pulse phase** — program pump (wordline charging + FN current load,
  growing with V_PP), inhibit pump (channel self-boost of unselected
  pages), wordline-driver CV^2 switching;
* **verify phase** — verify pump (4.5 V wordline bypass), bitline
  precharge and sensing;
* **setup phase** — inhibit pre-boost and address decoding;
* a constant background (logic, references, IO excluded as in the paper).

Power numbers exclude I/O pins and the digital controller, matching the
paper's measurement scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hv.charge_pump import DicksonPump, standard_pumps
from repro.hv.waveform import Phase, PhaseKind, ProgramWaveform
from repro.params import VDD, VPP_START


@dataclass(frozen=True)
class ArrayLoadParams:
    """Array-side load currents and switching loads per phase."""

    #: Program-pump DC load at VPP_START [A] (FN current + divider).
    program_load_base: float = 0.40e-3
    #: Program-pump load growth per volt of V_PP [A/V].
    program_load_slope: float = 0.16e-3
    #: Inhibit-pump load during setup/pulse [A] (channel boost leakage).
    inhibit_load: float = 1.5e-3
    #: Verify-pump load [A] (wordline bypass + reference paths).
    verify_load: float = 6.0e-3
    #: Wordline capacitance switched to V_PP once per pulse [F].
    wordline_capacitance: float = 0.9e-9
    #: Bitline precharge + sense-amplifier power during verify [W].
    sensing_power: float = 0.060
    #: Always-on analog background (references, bias, logic) [W].
    background_power: float = 0.045

    def __post_init__(self) -> None:
        for name in ("program_load_base", "program_load_slope", "inhibit_load",
                     "verify_load", "wordline_capacitance", "sensing_power",
                     "background_power"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def program_load(self, vpp: float) -> float:
        """Program-pump load current at a given staircase voltage."""
        return self.program_load_base + self.program_load_slope * max(
            0.0, vpp - VPP_START
        )


@dataclass(frozen=True)
class PowerBreakdown:
    """Energy decomposition of one program operation."""

    pulse_energy_j: float
    verify_energy_j: float
    setup_energy_j: float
    background_energy_j: float
    duration_s: float

    @property
    def total_energy_j(self) -> float:
        """Total operation energy."""
        return (
            self.pulse_energy_j
            + self.verify_energy_j
            + self.setup_energy_j
            + self.background_energy_j
        )

    @property
    def average_power_w(self) -> float:
        """Average device power during the operation (the Fig. 6 metric)."""
        if self.duration_s == 0:
            return 0.0
        return self.total_energy_j / self.duration_s


class FlashPowerModel:
    """Per-phase power evaluation over a program waveform."""

    def __init__(
        self,
        pumps: dict[str, DicksonPump] | None = None,
        loads: ArrayLoadParams | None = None,
        vdd: float = VDD,
    ):
        self.pumps = pumps if pumps is not None else standard_pumps(vdd)
        self.loads = loads or ArrayLoadParams()
        self.vdd = vdd
        for required in ("program", "inhibit", "verify"):
            if required not in self.pumps:
                raise ConfigurationError(f"missing pump: {required}")

    # -- phase powers ----------------------------------------------------------

    def phase_power_w(self, phase: Phase) -> float:
        """Supply power during one waveform phase (excluding background)."""
        loads = self.loads
        if phase.kind is PhaseKind.PULSE:
            pump_power = self.pumps["program"].input_power(
                loads.program_load(phase.vpp)
            ) + self.pumps["inhibit"].input_power(loads.inhibit_load)
            # Wordline swings to V_PP once per pulse: E = C * V^2 spread
            # over the pulse width.
            wordline_power = (
                loads.wordline_capacitance * phase.vpp**2 / phase.duration_s
            )
            return pump_power + wordline_power
        if phase.kind is PhaseKind.SETUP:
            return self.pumps["inhibit"].input_power(loads.inhibit_load)
        if phase.kind is PhaseKind.VERIFY:
            return (
                self.pumps["verify"].input_power(loads.verify_load)
                + loads.sensing_power
            )
        raise ConfigurationError(f"unknown phase kind {phase.kind}")

    # -- operation energy ------------------------------------------------------------

    def program_breakdown(self, waveform: ProgramWaveform) -> PowerBreakdown:
        """Energy breakdown of a full program operation."""
        pulse = verify = setup = 0.0
        for phase in waveform.phases:
            energy = self.phase_power_w(phase) * phase.duration_s
            if phase.kind is PhaseKind.PULSE:
                pulse += energy
            elif phase.kind is PhaseKind.VERIFY:
                verify += energy
            else:
                setup += energy
        duration = waveform.duration_s
        return PowerBreakdown(
            pulse_energy_j=pulse,
            verify_energy_j=verify,
            setup_energy_j=setup,
            background_energy_j=self.loads.background_power * duration,
            duration_s=duration,
        )

    def read_energy_j(self, read_time_s: float) -> float:
        """Array read energy (verify pump + sensing for the read duration)."""
        power = (
            self.pumps["verify"].input_power(self.loads.verify_load)
            + self.loads.sensing_power
            + self.loads.background_power
        )
        return power * read_time_s
