"""Minimal transient circuit solver — the "SPICE-like environment".

An explicit-Euler nodal simulator specialised for the pump/regulator loops
of the HV subsystem: each node carries a capacitance and a set of current
contributors (pump output, resistive load, constant sink).  It is small
but genuinely solves the ramp/regulation dynamics used to characterise
pump start-up time, regulation ripple and average supply current.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.hv.charge_pump import DicksonPump
from repro.hv.regulator import HystereticRegulator

#: A current contributor: f(t, vout) -> amps into the node.
CurrentSource = Callable[[float, float], float]


@dataclass
class TransientResult:
    """Sampled waveforms of one transient run."""

    time_s: np.ndarray
    vout: np.ndarray
    supply_current: np.ndarray
    pump_enabled: np.ndarray

    @property
    def settle_time_s(self) -> float:
        """First time the output reaches 99 % of its final value."""
        final = self.vout[-1]
        reached = np.nonzero(self.vout >= 0.99 * final)[0]
        return float(self.time_s[reached[0]]) if reached.size else float("inf")

    @property
    def ripple_v(self) -> float:
        """Peak-to-peak output ripple over the last quarter of the run."""
        tail = self.vout[3 * len(self.vout) // 4:]
        return float(tail.max() - tail.min())

    @property
    def average_supply_current(self) -> float:
        """Mean supply current over the run."""
        return float(self.supply_current.mean())

    def average_supply_power(self, vdd: float) -> float:
        """Mean supply power over the run."""
        return vdd * self.average_supply_current


@dataclass
class PumpCircuit:
    """One pump + regulator + load attached to an output node."""

    pump: DicksonPump
    regulator: HystereticRegulator
    load_current: float = 0.0
    extra_sources: list[CurrentSource] = field(default_factory=list)
    v_initial: float = 0.0

    def __post_init__(self) -> None:
        if self.load_current < 0:
            raise ConfigurationError("load current must be non-negative")


class TransientSolver:
    """Explicit-Euler transient simulation of a pump circuit."""

    def __init__(self, dt: float = 25e-9):
        if dt <= 0:
            raise ConfigurationError("time step must be positive")
        self.dt = dt

    def run(self, circuit: PumpCircuit, duration: float) -> TransientResult:
        """Simulate ``duration`` seconds of the pump/regulator loop."""
        if duration <= 0:
            raise SimulationError("duration must be positive")
        steps = int(round(duration / self.dt))
        if steps < 10:
            raise SimulationError("duration too short for the chosen time step")

        pump = circuit.pump
        reg = circuit.regulator
        cout = pump.params.output_capacitance

        time = np.empty(steps)
        vout = np.empty(steps)
        iin = np.empty(steps)
        enabled = np.empty(steps, dtype=bool)

        v = circuit.v_initial
        t = 0.0
        for i in range(steps):
            pump.enabled = reg.update(v)
            i_pump = pump.output_current(v)
            i_net = i_pump - circuit.load_current
            for source in circuit.extra_sources:
                i_net += source(t, v)
            v = max(0.0, v + self.dt * i_net / cout)
            supply = pump.input_current(i_pump) if pump.enabled else 0.0

            time[i] = t
            vout[i] = v
            iin[i] = supply
            enabled[i] = pump.enabled
            t += self.dt

        return TransientResult(
            time_s=time, vout=vout, supply_current=iin, pump_enabled=enabled
        )
