"""ISPP enable-signal waveforms (paper section 5.1).

In the real device the embedded microcontroller sequences the charge-pump
enable signals through interface registers; "switching from ISPP-SV to
ISPP-DV does not require a modification of the HV subsystem but rather
implies a different sequence of enable signals".  This module builds that
sequence — a list of timed phases with pump-enable sets and the target
V_PP — from a simulated :class:`~repro.nand.ispp.IsppResult`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.nand.ispp import IsppResult
from repro.params import NandTimingParams


class PhaseKind(enum.Enum):
    """HV operation phase types."""

    SETUP = "setup"     # wordline/bitline biasing before the pulse
    PULSE = "pulse"     # program pulse: program + inhibit pumps active
    VERIFY = "verify"   # threshold read at a verify level: verify pump


@dataclass(frozen=True)
class Phase:
    """One timed step of the HV enable sequence."""

    kind: PhaseKind
    duration_s: float
    vpp: float                    # program-pump regulation target (pulse/setup)
    pumps: frozenset[str]         # enabled pumps

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("phase duration must be positive")


@dataclass(frozen=True)
class ProgramWaveform:
    """Full enable-signal sequence of one program operation."""

    phases: tuple[Phase, ...]

    @property
    def duration_s(self) -> float:
        """Total operation time."""
        return sum(p.duration_s for p in self.phases)

    def time_in(self, kind: PhaseKind) -> float:
        """Aggregate time spent in one phase kind."""
        return sum(p.duration_s for p in self.phases if p.kind is kind)

    def pump_duty(self, pump: str) -> float:
        """Fraction of the operation during which a pump is enabled."""
        total = self.duration_s
        if total == 0:
            return 0.0
        return sum(p.duration_s for p in self.phases if pump in p.pumps) / total


def build_program_waveform(
    result: IsppResult,
    timing: NandTimingParams | None = None,
) -> ProgramWaveform:
    """Expand an ISPP simulation into the pump enable sequence.

    Per pulse: SETUP (inhibit pump pre-boosts unselected pages) then PULSE
    (program + inhibit pumps), followed by that pulse's verify operations
    (verify pump).  Verify counts come straight from the simulation, so
    ISPP-DV naturally doubles the verify phases.
    """
    timing = timing or NandTimingParams()
    phases: list[Phase] = []
    for pulse_index in range(result.pulses):
        vpp = float(result.pulse_vpp[pulse_index])
        phases.append(Phase(
            kind=PhaseKind.SETUP,
            duration_s=timing.t_pulse_setup,
            vpp=vpp,
            pumps=frozenset({"inhibit"}),
        ))
        phases.append(Phase(
            kind=PhaseKind.PULSE,
            duration_s=timing.t_program_pulse,
            vpp=vpp,
            pumps=frozenset({"program", "inhibit"}),
        ))
        for _ in range(int(result.preverifies_per_pulse[pulse_index])):
            phases.append(Phase(
                kind=PhaseKind.VERIFY,
                duration_s=timing.t_preverify,
                vpp=vpp,
                pumps=frozenset({"verify"}),
            ))
        for _ in range(int(result.verifies_per_pulse[pulse_index])):
            phases.append(Phase(
                kind=PhaseKind.VERIFY,
                duration_s=timing.t_verify,
                vpp=vpp,
                pumps=frozenset({"verify"}),
            ))
    return ProgramWaveform(phases=tuple(phases))
