"""Page data patterns (paper Fig. 6 uses L1/L2/L3-only pages).

With the Gray map L0=11, L1=10, L2=00, L3=01 and MSB-first bit pairing,
the byte that programs every cell of a page to one level is:

* L0 (stay erased): 0xFF
* L1: 0xAA (bit pairs 10)
* L2: 0x00 (bit pairs 00)
* L3: 0x55 (bit pairs 01)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nand.levels import GRAY_MAP
from repro.params import DEFAULT_SEED

#: Byte filling a page so all cells target one level.
_LEVEL_BYTES = {}
for _level, _pattern in enumerate(GRAY_MAP):
    _LEVEL_BYTES[_level] = (_pattern << 6) | (_pattern << 4) | (_pattern << 2) | _pattern


def pattern_for_level(level: int) -> int:
    """Fill byte targeting all cells at one MLC level."""
    if level not in _LEVEL_BYTES:
        raise ConfigurationError(f"level must be 0..3, got {level}")
    return _LEVEL_BYTES[level]


def level_pattern_page(level: int, page_bytes: int = 4096) -> bytes:
    """A full page of the single-level pattern."""
    return bytes([pattern_for_level(level)]) * page_bytes


def random_page(page_bytes: int = 4096,
                rng: np.random.Generator | None = None,
                seed: int = DEFAULT_SEED) -> bytes:
    """Uniformly random page contents (pass ``rng`` to share a stream)."""
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.integers(0, 256, page_bytes, dtype=np.uint8).tobytes()


def compressible_page(page_bytes: int = 4096, run_length: int = 64,
                      rng: np.random.Generator | None = None,
                      seed: int = DEFAULT_SEED) -> bytes:
    """Run-length-structured data (filesystem-like, for workload variety)."""
    if rng is None:
        rng = np.random.default_rng(seed)
    if run_length < 1:
        raise ConfigurationError("run length must be >= 1")
    runs = int(np.ceil(page_bytes / run_length))
    values = rng.integers(0, 256, runs, dtype=np.uint8)
    page = np.repeat(values, run_length)[:page_bytes]
    return page.tobytes()
