"""Workload and data-pattern generators for the evaluation scenarios."""

from repro.workloads.patterns import (
    level_pattern_page,
    pattern_for_level,
    random_page,
)
from repro.workloads.traces import (
    TraceOp,
    TraceOpKind,
    mixed_trace,
    multimedia_playback_trace,
    os_upgrade_trace,
)

__all__ = [
    "random_page",
    "level_pattern_page",
    "pattern_for_level",
    "TraceOp",
    "TraceOpKind",
    "multimedia_playback_trace",
    "os_upgrade_trace",
    "mixed_trace",
]
