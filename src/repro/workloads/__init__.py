"""Workload and data-pattern generators for the evaluation scenarios."""

from repro.workloads.patterns import (
    level_pattern_page,
    pattern_for_level,
    random_page,
)
from repro.workloads.traces import (
    QueuedTrace,
    TraceOp,
    TraceOpKind,
    fixed_rate_arrivals,
    interleave_streams,
    mixed_trace,
    multimedia_playback_trace,
    os_upgrade_trace,
    poisson_arrivals,
    queued_playback_trace,
)

__all__ = [
    "random_page",
    "level_pattern_page",
    "pattern_for_level",
    "QueuedTrace",
    "TraceOp",
    "TraceOpKind",
    "fixed_rate_arrivals",
    "interleave_streams",
    "multimedia_playback_trace",
    "os_upgrade_trace",
    "mixed_trace",
    "poisson_arrivals",
    "queued_playback_trace",
]
