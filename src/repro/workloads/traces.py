"""Workload traces for the paper's motivating scenarios.

* **multimedia playback** (section 6.3.2) — read-dominated streaming:
  sequential reads of previously-written media with a small metadata
  write rate; the max-read-throughput mode's target.
* **OS upgrade / secure transaction log** (section 6.3.1) — write-then-
  verify critical data: the min-UBER mode's target.
* **mixed** — interleaved reads/writes for baseline characterisation.

Traces carry **queue-depth semantics** for the multi-die SSD runner: a
:class:`QueuedTrace` pairs an operation list with the number of
commands the host keeps outstanding, and :func:`interleave_streams`
merges independent sequential streams round-robin — the classic way a
deep host queue exposes die parallelism to the command scheduler (QD-1
traffic serialises on one die at a time; QD-n keeps n dies busy).

For the **open-loop** host model (:class:`~repro.ssd.session.SsdSession`)
every :class:`TraceOp` additionally carries an ``issue_s`` arrival
timestamp: instead of the host waiting for each batch to drain, an
arrival process submits op *i* at ``issue_s[i]`` regardless of what is
still in flight.  :func:`fixed_rate_arrivals` stamps a deterministic
constant-rate clock and :func:`poisson_arrivals` a seeded Poisson
process (exponential inter-arrival gaps) — sweeping the rate against
the device's saturation throughput produces the classic throughput /
latency-knee curve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.patterns import random_page


class TraceOpKind(enum.Enum):
    """Host operation types."""

    READ = "read"
    WRITE = "write"
    ERASE = "erase"


@dataclass(frozen=True)
class TraceOp:
    """One host operation.

    ``issue_s`` is the op's arrival time for open-loop playback (0.0 —
    the default — means "as soon as the host gets to it", which is what
    closed-loop runners assume; they ignore the field entirely).
    """

    kind: TraceOpKind
    block: int
    page: int = 0
    data: bytes = b""
    issue_s: float = 0.0


@dataclass(frozen=True)
class QueuedTrace:
    """A trace plus the host queue depth it should run at.

    ``queue_depth`` is how many page commands the host keeps in flight
    at once when the trace runs against the SSD command scheduler.
    Single-device runners may ignore it (they serialise anyway).
    """

    operations: list[TraceOp]
    queue_depth: int = 1

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ConfigurationError("queue depth must be >= 1")

    def __len__(self) -> int:
        return len(self.operations)


def interleave_streams(streams: list[list[TraceOp]]) -> list[TraceOp]:
    """Round-robin merge of independent sequential host streams.

    Models several concurrent sequential readers/writers sharing one
    queue: operation ``i`` of every stream is adjacent in the merged
    trace, so a queue depth of ``len(streams)`` keeps every stream's die
    in flight simultaneously.
    """
    if not streams:
        return []
    merged: list[TraceOp] = []
    longest = max(len(stream) for stream in streams)
    for position in range(longest):
        for stream in streams:
            if position < len(stream):
                merged.append(stream[position])
    return merged


def queued_playback_trace(
    streams: int = 4,
    blocks_per_stream: int = 1,
    pages_per_block: int = 16,
    read_passes: int = 4,
    page_bytes: int = 4096,
    seed: int = 7,
) -> QueuedTrace:
    """Multi-stream playback: ``streams`` concurrent sequential readers.

    Each stream owns a disjoint block range and plays the multimedia
    pattern (write once, stream repeatedly); the streams are interleaved
    round-robin and the queue depth equals the stream count, so the SSD
    scheduler can hold one command per stream in flight.
    """
    if streams < 1:
        raise ConfigurationError("stream count must be positive")
    traces = []
    for stream in range(streams):
        ops = multimedia_playback_trace(
            blocks=blocks_per_stream,
            pages_per_block=pages_per_block,
            read_passes=read_passes,
            page_bytes=page_bytes,
            seed=seed + stream,
        )
        offset = stream * blocks_per_stream
        traces.append([
            TraceOp(op.kind, op.block + offset, op.page, op.data)
            for op in ops
        ])
    return QueuedTrace(interleave_streams(traces), queue_depth=streams)


def fixed_rate_arrivals(
    operations: list[TraceOp],
    rate_ops_s: float,
    start_s: float = 0.0,
) -> list[TraceOp]:
    """Stamp a constant-rate arrival clock onto a trace.

    Op ``i`` arrives at ``start_s + i / rate_ops_s`` — the deterministic
    open-loop generator (no randomness, no seed).  Order and contents
    are preserved; only ``issue_s`` changes.
    """
    if rate_ops_s <= 0:
        raise ConfigurationError("arrival rate must be positive")
    return [
        replace(op, issue_s=start_s + index / rate_ops_s)
        for index, op in enumerate(operations)
    ]


def poisson_arrivals(
    operations: list[TraceOp],
    rate_ops_s: float,
    seed: int = 17,
    start_s: float = 0.0,
) -> list[TraceOp]:
    """Stamp seeded Poisson-process arrivals onto a trace.

    Inter-arrival gaps are i.i.d. exponential with mean
    ``1 / rate_ops_s`` (so the long-run offered rate is ``rate_ops_s``),
    cumulated from ``start_s``.  Deterministic for a given
    ``(operations, rate, seed)`` triple; order and contents are
    preserved, only ``issue_s`` changes.
    """
    if rate_ops_s <= 0:
        raise ConfigurationError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_ops_s, size=len(operations))
    times = start_s + np.cumsum(gaps)
    return [
        replace(op, issue_s=float(time))
        for op, time in zip(operations, times)
    ]


def _sequential_writes(
    block: int, pages: int, page_bytes: int, rng: np.random.Generator
) -> list[TraceOp]:
    return [
        TraceOp(TraceOpKind.WRITE, block, page, random_page(page_bytes, rng))
        for page in range(pages)
    ]


def multimedia_playback_trace(
    blocks: int = 2,
    pages_per_block: int = 16,
    read_passes: int = 4,
    page_bytes: int = 4096,
    seed: int = 7,
) -> list[TraceOp]:
    """Write media once, then stream it repeatedly (read-intensive)."""
    if blocks < 1 or pages_per_block < 1 or read_passes < 1:
        raise ConfigurationError("trace dimensions must be positive")
    rng = np.random.default_rng(seed)
    ops: list[TraceOp] = []
    for block in range(blocks):
        ops.extend(_sequential_writes(block, pages_per_block, page_bytes, rng))
    for _ in range(read_passes):
        for block in range(blocks):
            ops.extend(
                TraceOp(TraceOpKind.READ, block, page)
                for page in range(pages_per_block)
            )
    return ops


def os_upgrade_trace(
    blocks: int = 2,
    pages_per_block: int = 16,
    page_bytes: int = 4096,
    seed: int = 11,
) -> list[TraceOp]:
    """Critical write burst followed by a full verification read pass."""
    rng = np.random.default_rng(seed)
    ops: list[TraceOp] = []
    for block in range(blocks):
        ops.extend(_sequential_writes(block, pages_per_block, page_bytes, rng))
    for block in range(blocks):
        ops.extend(
            TraceOp(TraceOpKind.READ, block, page)
            for page in range(pages_per_block)
        )
    return ops


def mixed_trace(
    blocks: int = 2,
    pages_per_block: int = 16,
    read_fraction: float = 0.5,
    page_bytes: int = 4096,
    seed: int = 13,
) -> list[TraceOp]:
    """Interleaved writes and re-reads with a target read fraction."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError("read fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    ops: list[TraceOp] = []
    written: list[tuple[int, int]] = []
    next_slot = 0
    total_pages = blocks * pages_per_block
    total_ops = 2 * total_pages
    for _ in range(total_ops):
        do_read = written and rng.random() < read_fraction
        if do_read:
            block, page = written[int(rng.integers(len(written)))]
            ops.append(TraceOp(TraceOpKind.READ, block, page))
        elif next_slot < total_pages:
            block, page = divmod(next_slot, pages_per_block)
            next_slot += 1
            written.append((block, page))
            ops.append(TraceOp(
                TraceOpKind.WRITE, block, page, random_page(page_bytes, rng)
            ))
        elif written:
            block, page = written[int(rng.integers(len(written)))]
            ops.append(TraceOp(TraceOpKind.READ, block, page))
    return ops
