"""SSD topology: channels x dies on top of the per-die NAND geometry.

The paper characterises one NAND die behind one BCH channel; a real SSD
replicates that unit — several flash channels, each with its own bus and
ECC engine, each bus shared by several dies.  :class:`SsdTopology`
captures that organisation as a pure-description extension of
:class:`~repro.nand.geometry.NandGeometry`: every die keeps the full
per-die geometry (pages, blocks, planes-in-spirit), and the topology adds
the channel/die fan-out plus the flash-channel timing envelope the
command scheduler arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.nand.geometry import NandGeometry


@dataclass(frozen=True)
class ChannelTimingParams:
    """Flash-channel bus timing (NV-DDR-style synchronous interface).

    The default bandwidth matches the OCP socket model (32-bit at
    100 MHz) so a 1-channel x 1-die SSD reproduces the single-device
    controller's transfer accounting.
    """

    bandwidth_bytes_per_s: float = 400e6
    burst_overhead_s: float = units.ns(50)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("channel bandwidth must be positive")
        if self.burst_overhead_s < 0:
            raise ConfigurationError("burst overhead must be non-negative")

    def transfer_time_s(self, n_bytes: int) -> float:
        """Bus occupancy of one page transfer."""
        if n_bytes < 0:
            raise ConfigurationError("byte count must be non-negative")
        return self.burst_overhead_s + n_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class DieAddress:
    """Position of one die in the topology."""

    channel: int
    die: int  # index within the channel


@dataclass(frozen=True)
class SsdTopology:
    """Static SSD organisation: ``channels`` buses x ``dies_per_channel``.

    Die indices enumerate channel-first (die ``i`` sits on channel
    ``i % channels``), so round-robin striping alternates buses before
    stacking dies behind the same bus — adjacent logical pages land on
    different channels and transfer in parallel.
    """

    channels: int = 1
    dies_per_channel: int = 1
    geometry: NandGeometry = field(default_factory=NandGeometry)
    channel_timing: ChannelTimingParams = field(
        default_factory=ChannelTimingParams
    )

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.dies_per_channel <= 0:
            raise ConfigurationError(
                "topology needs at least one channel and one die per channel"
            )

    @property
    def dies(self) -> int:
        """Total die count."""
        return self.channels * self.dies_per_channel

    @property
    def capacity_bytes(self) -> int:
        """Usable data capacity across every die."""
        return self.dies * self.geometry.capacity_bytes

    @property
    def pages(self) -> int:
        """Total pages across every die."""
        return self.dies * self.geometry.pages

    def channel_of(self, die_index: int) -> int:
        """Channel whose bus serves the given die."""
        self._check_die(die_index)
        return die_index % self.channels

    def die_address(self, die_index: int) -> DieAddress:
        """(channel, die-within-channel) of a flat die index."""
        self._check_die(die_index)
        return DieAddress(
            channel=die_index % self.channels,
            die=die_index // self.channels,
        )

    def die_index(self, address: DieAddress) -> int:
        """Inverse of :meth:`die_address`."""
        if not 0 <= address.channel < self.channels:
            raise ConfigurationError(
                f"channel {address.channel} out of range 0..{self.channels - 1}"
            )
        if not 0 <= address.die < self.dies_per_channel:
            raise ConfigurationError(
                f"die {address.die} out of range 0..{self.dies_per_channel - 1}"
            )
        return address.die * self.channels + address.channel

    def describe(self) -> str:
        """Short human-readable label, e.g. ``2ch x 4die``."""
        return f"{self.channels}ch x {self.dies_per_channel}die"

    def _check_die(self, die_index: int) -> None:
        if not 0 <= die_index < self.dies:
            raise ConfigurationError(
                f"die {die_index} out of range 0..{self.dies - 1}"
            )


def group_indices_by_die(dies: list[int]) -> dict[int, list[int]]:
    """Positions of each die in a per-operation die list, order kept.

    ``[2, 0, 2] -> {2: [0, 2], 0: [1]}``; the shared sub-batch grouping
    used by both the raw device fan-out and the striped FTL router.
    """
    per_die: dict[int, list[int]] = {}
    for index, die in enumerate(dies):
        per_die.setdefault(die, []).append(index)
    return per_die


def spawn_die_rngs(seed: int | None, dies: int) -> list[np.random.Generator]:
    """Independent, reproducible per-die RNG streams from one seed.

    Children are spawned through :class:`numpy.random.SeedSequence`, so
    die ``d`` of an N-die SSD sees the same stream in every run with the
    same seed (and the 1x1 topology's only die matches a standalone
    device built from ``spawn_die_rngs(seed, 1)[0]``).
    """
    children = np.random.SeedSequence(seed).spawn(dies)
    return [np.random.default_rng(child) for child in children]
