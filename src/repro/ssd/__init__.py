"""Multi-channel / multi-die SSD topology with a DES command scheduler.

The paper (Zambelli et al., DATE 2012) characterises exactly one unit of
a real SSD: a single MLC NAND die behind a memory controller whose BCH
codec, OCP socket and program-algorithm knobs trade reliability against
throughput.  This package scales that characterised unit to a full
SSD-style topology, mapping each paper component onto its system-level
role:

* :class:`~repro.ssd.topology.SsdTopology` — channels x dies on top of
  the paper's per-die :class:`~repro.nand.geometry.NandGeometry`; each
  channel carries the bus + BCH engine of the paper's controller
  (section 3), each die is one instance of the characterised device
  (section 5);
* :class:`~repro.ssd.device.SsdDevice` — one
  :class:`~repro.controller.NandController` per die under a single
  cross-layer policy, so the section-6 operating modes (baseline /
  min-UBER / max-read-throughput) reconfigure the whole SSD at once;
* :class:`~repro.ssd.scheduler.CommandScheduler` — a discrete-event
  command timeline on :class:`~repro.sim.engine.SimEngine` over explicit
  :class:`~repro.nand.timing.CommandPhase` sequences: array planes,
  channel buses, per-channel ECC engines and per-plane cache registers
  are independent serially-reusable resources.  The default
  :class:`~repro.ssd.scheduler.PipelineConfig` reproduces the paper's
  non-pipelined page-buffer FSM hazard exactly; enabling ``cache_read``
  / ``multi_plane`` / ``pipelined_ecc`` unlocks the corresponding
  MT29F-class overlaps;
* :class:`~repro.ssd.striped.DieStripedFtl` — logical pages round-robin
  striped over the dies (channel-first), one FTL shard per die, so
  ``read_many``/``write_many`` and the host workload runner exploit die
  parallelism transparently while every page still pays the paper's
  per-page ECC and ISPP costs.

Throughput therefore scales the way the paper's section-6 trade-offs
predict at system level: read batches are channel-bound once the
transfer + decode section saturates a bus (adding channels keeps
scaling, adding dies behind one bus saturates), while program batches
scale nearly linearly with dies because the ISPP program phase dwarfs
the channel section.
"""

from repro.ssd.device import DiePageAddress, SsdDevice
from repro.ssd.scheduler import (
    CommandCompletion,
    CommandKind,
    CommandOrigin,
    CommandScheduler,
    DieCommand,
    PipelineConfig,
    ScheduleResult,
    SchedulerCore,
)
from repro.ssd.session import (
    GC_MODES,
    FastPathStats,
    IoCommand,
    IoCompletion,
    SsdSession,
)
from repro.ssd.striped import DieStripedFtl, StripedLocation
from repro.ssd.topology import (
    ChannelTimingParams,
    DieAddress,
    SsdTopology,
    spawn_die_rngs,
)

__all__ = [
    "GC_MODES",
    "ChannelTimingParams",
    "CommandCompletion",
    "CommandKind",
    "CommandOrigin",
    "CommandScheduler",
    "DieAddress",
    "DieCommand",
    "DiePageAddress",
    "DieStripedFtl",
    "FastPathStats",
    "IoCommand",
    "IoCompletion",
    "PipelineConfig",
    "ScheduleResult",
    "SchedulerCore",
    "SsdDevice",
    "SsdSession",
    "SsdTopology",
    "StripedLocation",
    "spawn_die_rngs",
]
