"""NVMe-style queue-pair host session over the SSD command scheduler.

The batch-drain host API (``read_many``/``write_many`` running every
homogeneous batch to its makespan before the next is admitted) hides the
device's steady-state behaviour: inter-batch pipelining dies at every
batch boundary, mixed reads and writes are never in flight together, and
latency percentiles exclude host-side queueing.  :class:`SsdSession` is
the open-loop replacement — the software analogue of an NVMe submission
/ completion queue pair:

* :meth:`SsdSession.submit` posts one :class:`IoCommand` (a logical
  read or write) at the current simulation time and returns its
  submission **tag**; the data path runs immediately through the
  striped FTL (same shard controllers, same RNG streams as the batch
  API) while the command's timing joins the resident
  :class:`~repro.ssd.scheduler.SchedulerCore` — planes, channel buses,
  ECC engines and cache registers stay serially-reusable resources, and
  new submissions overlap commands already in flight;
* completions are delivered on the session's DES engine: each finished
  command appends an :class:`IoCompletion` (submit / dispatch /
  completion timestamps, so queueing and service time are separable)
  and fires :attr:`SsdSession.completion` — the completion-queue
  doorbell a host process parks on;
* an optional ``queue_depth`` models the device-side in-flight window:
  submissions beyond it wait in the session's submission backlog and
  are dispatched as earlier commands complete (the wait is visible as
  ``IoCompletion.queue_s``).

:meth:`SsdSession.execute` is the closed-loop compatibility surface:
it drains one pre-built command batch exactly like
:class:`~repro.ssd.scheduler.CommandScheduler.run` — the resident core
is re-based to a zero clock while idle, so batch timelines (per-command
latencies, completion order, makespan) are **bit-exact** with the
run-to-drain scheduler.  ``DieStripedFtl.read_many``/``write_many``
route through it, which is what lets every namespace of a
:class:`~repro.ftl.service.DifferentiatedStorage` share one device-wide
queue.

Garbage collection and the timeline — three session modes:

* ``gc_mode="sync"`` (default): collections run synchronously inside
  the FTL data path, off the timeline, exactly as before — the locked
  bit-exact baseline.
* ``"foreground"``: every collection a submission triggers is replayed
  as GC-origin die commands on the timeline, and the host window is
  frozen while GC commands are in flight — the classic
  write-cliff-with-stalls device, and the synchronous-GC baseline for
  the sustained-write benchmark.
* ``"background"``: collections are additionally triggered by per-die
  free-block watermarks and idle dies (see
  :class:`~repro.ftl.gc.GcConfig`), GC commands *overlap* host I/O —
  they never consume the host queue-depth window, and the per-plane
  dispatch pop gives host commands priority over queued GC work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.ftl.gc import GcConfig, GcMigration
from repro.sim.engine import SimEngine
from repro.ssd.scheduler import (
    DieCommand,
    ScheduleResult,
    SchedulerCore,
    closed_admission,
    validate_batch,
)
from repro.workloads.traces import TraceOpKind

#: Valid ``SsdSession(gc_mode=...)`` values.
GC_MODES = ("sync", "foreground", "background")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (striped uses session)
    from repro.obs.counters import CounterRegistry
    from repro.ssd.device import SsdDevice
    from repro.ssd.striped import DieStripedFtl


@dataclass(frozen=True)
class IoCommand:
    """One host I/O against a logical page.

    ``issue_s`` is the op's arrival timestamp in an open-loop stream —
    informational here (arrival processes use it to pace submissions);
    the session stamps the actual submit time when :meth:`SsdSession.submit`
    is called.  Only reads and writes travel through the queue pair;
    trims/erases are host-side metadata operations.
    """

    kind: TraceOpKind
    lpn: int
    data: bytes = b""
    issue_s: float = 0.0


@dataclass(frozen=True)
class IoCompletion:
    """Completion-queue entry for one submitted I/O.

    The three timestamps decompose the end-to-end latency: ``submit_s``
    (host posted the command), ``dispatch_s`` (the in-flight window
    admitted it to the scheduler core) and ``done_s`` (data transferred
    and decoded/programmed).
    """

    tag: int
    kind: TraceOpKind
    lpn: int
    data: bytes | None
    submit_s: float
    dispatch_s: float
    done_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end latency, host-side queueing included."""
        return self.done_s - self.submit_s

    @property
    def queue_s(self) -> float:
        """Submission-to-dispatch wait in the host queue."""
        return self.dispatch_s - self.submit_s

    @property
    def service_s(self) -> float:
        """Dispatch-to-completion time on the device."""
        return self.done_s - self.dispatch_s


@dataclass(frozen=True)
class _IoRecord:
    """Submission-side bookkeeping awaiting a completion."""

    kind: TraceOpKind
    lpn: int
    data: bytes | None
    submit_s: float


@dataclass(frozen=True)
class FastPathStats:
    """Which dispatch machinery the session's commands went through.

    ``fast`` counts commands dispatched by the flat (coroutine-free)
    core, ``fallback`` those run by the generator workers.  A session is
    all-flat or all-generator (``fast_batch`` at construction), so one
    side is always zero — benchmarks assert ``fast > 0`` to prove the
    flat core actually engaged rather than silently falling back.
    """

    fast: int
    fallback: int

    @property
    def total(self) -> int:
        """All commands dispatched by the session's core."""
        return self.fast + self.fallback


class SsdSession:
    """A persistent submission/completion queue pair over one SSD.

    One session per device: every striped FTL (and therefore every
    namespace) routed through it shares the same resident scheduler
    core, so their commands genuinely contend for planes, buses and ECC
    engines on one timeline.

    ``queue_depth`` bounds the device-side in-flight window for
    :meth:`submit` traffic (``None`` = unbounded, pure open loop);
    overflow waits in the session's submission backlog.  ``ftl`` is the
    default router for logical I/O — :meth:`submit` accepts an explicit
    ``ftl=`` for multi-namespace use.

    ``gc_mode`` selects how collections meet the timeline (see the
    module docstring); ``gc_config`` tunes the victim policy and the
    background watermarks.  In the scheduled modes (``"foreground"`` /
    ``"background"``) submissions beyond the admission window stay
    *unstaged* in the backlog — their data path runs at dispatch time,
    so GC triggers spread over the run instead of front-loading at
    submit; ``"sync"`` keeps the historical stage-at-submit flow
    bit-exactly.
    """

    def __init__(
        self,
        ftl: "DieStripedFtl | None" = None,
        *,
        ssd: "SsdDevice | None" = None,
        engine: SimEngine | None = None,
        queue_depth: int | None = None,
        fast_batch: bool = True,
        recorder=None,
        gc_mode: str = "sync",
        gc_config: GcConfig | None = None,
    ):
        if ssd is None:
            if ftl is None:
                raise SimulationError("a session needs an FTL or an SSD")
            ssd = ftl.ssd
        if queue_depth is not None and queue_depth < 1:
            raise SimulationError("queue depth must be >= 1")
        if gc_mode not in GC_MODES:
            raise SimulationError(
                f"gc_mode must be one of {GC_MODES}, not {gc_mode!r}"
            )
        self.ftl = ftl
        self.ssd = ssd
        self.engine = engine or SimEngine()
        self.queue_depth = queue_depth
        self.fast_batch = fast_batch
        self.gc_mode = gc_mode
        self.gc_config = gc_config if gc_config is not None else GcConfig()
        #: Optional :class:`~repro.obs.trace.TraceRecorder`; spans cover
        #: every command this session dispatches (see ``repro.obs``).
        self.recorder = recorder
        self.core = SchedulerCore(
            self.engine, ssd.topology, ssd.pipeline, flat=fast_batch,
            recorder=recorder,
            host_priority=(gc_mode == "background"),
        )
        self.core.start()
        # Park the resident dispatchers (generator workers on their
        # wake-up signals, flat frames on their idle flags) so the
        # engine is idle (drained) before the first submission.
        self.engine.run()
        self.core.on_finish.append(self._on_command_finish)
        #: Completion-queue doorbell: fired once per IoCompletion.  A
        #: daemon signal — a host reaper parked on it between
        #: completions is an expected-idle state, not a deadlock.
        self.completion = self.engine.signal(daemon=True)
        #: Completion queue (append-only, completion order).
        self.completions: list[IoCompletion] = []
        self._io: dict[int, _IoRecord] = {}
        # sync mode: (command, submit_s); scheduled modes: the unstaged
        # (ftl, io, tag, submit_s) — see the class docstring.
        self._backlog: deque[tuple] = deque()
        self._next_tag = 0
        # Scheduled-GC state: tag -> (shard GcStats, die) for in-flight
        # GC commands, per-die in-flight counts, per-die watermark
        # hysteresis flags, and the capture gate that routes sink calls
        # onto the timeline (only while a submission stages or a
        # background collection runs — never inside execute()).
        self._gc_tags: dict[int, tuple] = {}
        self._gc_inflight = 0
        self._gc_die_inflight = [0] * ssd.topology.dies
        self._gc_active = [False] * ssd.topology.dies
        self._gc_capture = False
        self._gc_ftls: list = []
        if gc_mode != "sync" and ftl is not None:
            self._install_gc(ftl)

    # -- open-loop submission stream ---------------------------------------------

    @property
    def in_flight(self) -> int:
        """Commands dispatched to the device and not yet complete."""
        return self.core.in_flight

    @property
    def backlog(self) -> int:
        """Submitted commands still waiting for the in-flight window."""
        return len(self._backlog)

    @property
    def fast_path_stats(self) -> FastPathStats:
        """Lifetime fast-vs-fallback dispatch counts for this session."""
        return FastPathStats(
            fast=self.core.fast_commands,
            fallback=self.core.fallback_commands,
        )

    def submit(
        self, io: IoCommand, ftl: "DieStripedFtl | None" = None
    ) -> int:
        """Post one I/O to the submission queue; returns its tag.

        Callable from host code between engine runs or from a DES
        process on the session engine (an open-loop arrival generator).
        The FTL data path (mapping, allocation, ECC, error injection)
        runs immediately; the command's timing is played out on the
        shared timeline and completes asynchronously via
        :attr:`completion`.
        """
        ftl = self.ftl if ftl is None else ftl
        if ftl is None:
            raise SimulationError(
                "session has no FTL: pass one at construction or per submit"
            )
        if self.gc_mode != "sync":
            return self._submit_scheduled(io, ftl)
        tag = self._next_tag
        self._next_tag += 1
        submit_s = self.engine.now_s
        if io.kind is TraceOpKind.READ:
            datas, commands = ftl.stage_reads([io.lpn], tags=(tag,))
            data = datas[0]
        elif io.kind is TraceOpKind.WRITE:
            commands = ftl.stage_writes([(io.lpn, io.data)], tags=(tag,))
            data = None
        else:
            raise SimulationError(
                f"sessions carry reads and writes only, not {io.kind}"
            )
        self._io[tag] = _IoRecord(io.kind, io.lpn, data, submit_s)
        command = commands[0]
        if self.queue_depth is None or self.core.in_flight < self.queue_depth:
            self.core.enqueue(command, submit_s=submit_s)
        else:
            self._backlog.append((command, submit_s))
        return tag

    def take_completions(self) -> list[IoCompletion]:
        """Drain and return the completion queue (completion order)."""
        done = self.completions
        self.completions = []
        return done

    def drain(self) -> float:
        """Run the session engine until every in-flight I/O completes.

        Returns the simulation time reached.  The resident workers stay
        parked for the next submission.
        """
        end = self.engine.run()
        if self.core.in_flight or self._backlog:
            raise SimulationError(
                f"session drained with {self.core.in_flight} in flight and "
                f"{len(self._backlog)} backlogged"
            )
        if self.engine.sanitizer is not None:
            # The busy accumulators and the clock both measure "since
            # the last execute()" (rebase and reset always co-occur),
            # so conservation holds against the current clock.
            self.engine.sanitizer.check_drain(self.core, end)
        # IoCompletions were already routed to the session's queue; the
        # core's raw list would otherwise grow without bound.
        self.core.completions.clear()
        return end

    # -- closed-loop batch surface -------------------------------------------------

    def execute(
        self,
        commands: list[DieCommand],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Drain one closed batch of pre-built die commands.

        The compatibility surface behind ``read_many``/``write_many``:
        requires an idle session (nothing in flight, empty backlog, no
        scheduled events), re-bases the clock to zero and replays the
        batch through the resident core — bit-exact with
        :meth:`~repro.ssd.scheduler.CommandScheduler.run` on a fresh
        engine (same completion order, same latencies, same makespan).
        """
        if not self.core.idle or self._backlog:
            raise SimulationError(
                "execute() needs an idle session; use submit() to overlap "
                "with in-flight commands"
            )
        if not self.engine.idle:
            raise SimulationError(
                "execute() needs an idle engine (no scheduled events)"
            )
        validate_batch(self.core.topology, commands, queue_depth)
        self.engine.rebase()
        self.core.reset_accounting()
        self.core.completions.clear()
        self.engine.spawn(closed_admission(
            self.core, commands, queue_depth, wake_workers=True
        ))
        makespan = self.engine.run()
        completions = list(self.core.completions)
        if len(completions) != len(commands):
            raise SimulationError(
                f"session completed {len(completions)} of "
                f"{len(commands)} commands"
            )
        if self.engine.sanitizer is not None:
            self.engine.sanitizer.check_drain(self.core, makespan)
        return ScheduleResult(
            completions=completions,
            makespan_s=makespan,
            die_busy_s=list(self.core.die_busy_s),
            channel_busy_s=list(self.core.channel_busy_s),
            ecc_busy_s=list(self.core.ecc_busy_s),
        )

    # -- telemetry -----------------------------------------------------------------

    def metrics(self, registry=None) -> "CounterRegistry":
        """SMART-style counter snapshot of the whole device stack.

        Pulls every layer's lifetime accounting into one
        :class:`~repro.obs.counters.CounterRegistry`: media operation
        counts and per-die wear from each
        :class:`~repro.nand.device.NandFlashDevice`, corrected bits /
        decode failures / observed RBER from the BCH codec path, host
        ops, GC migrations and write amplification from the routed FTL,
        and the session's own queue-pair and dispatch-path counters.
        Pass an existing ``registry`` to merge (scalars accumulate).
        """
        from repro.obs.counters import CounterRegistry

        if registry is None:
            registry = CounterRegistry()
        for controller in self.ssd.controllers:
            controller.populate_counters(registry)
        bits = registry.get("ecc_bits_processed")
        if bits:
            registry.set(
                "ecc_observed_rber",
                registry.get("ecc_corrected_bits") / bits,
            )
        if self.ftl is not None:
            self.ftl.populate_counters(registry)
        registry.set("session_submissions", self._next_tag, "ios")
        registry.set("session_in_flight", self.core.in_flight, "ios")
        registry.set("session_backlog", len(self._backlog), "ios")
        registry.set("session_gc_mode", self.gc_mode)
        if self.gc_mode != "sync":
            registry.set(
                "session_gc_in_flight", self._gc_inflight, "commands"
            )
            registry.set(
                "session_gc_active_dies",
                sum(1 for flag in self._gc_active if flag),
                "dies",
            )
        fast = self.fast_path_stats
        registry.set("dispatch_fast_commands", fast.fast, "commands")
        registry.set("dispatch_fallback_commands", fast.fallback,
                     "commands")
        registry.set("die_busy_s", list(self.core.die_busy_s), "s")
        registry.set("channel_busy_s", list(self.core.channel_busy_s), "s")
        registry.set("ecc_busy_s", list(self.core.ecc_busy_s), "s")
        return registry

    # -- internals -----------------------------------------------------------------

    def _on_command_finish(self, completion) -> None:
        gc_entry = self._gc_tags.pop(completion.tag, None)
        if gc_entry is not None:
            # A GC-origin command retired: charge its resource busy
            # time (sum of phase durations, precomputed at staging) to
            # the owning shard's scheduled-GC accounting.
            stats, die, busy_s = gc_entry
            stats.scheduled_busy_s += busy_s
            self._gc_inflight -= 1
            self._gc_die_inflight[die] -= 1
        else:
            record = self._io.pop(completion.tag, None)
            if record is not None:
                self.completions.append(IoCompletion(
                    tag=completion.tag,
                    kind=record.kind,
                    lpn=record.lpn,
                    data=record.data,
                    submit_s=record.submit_s,
                    dispatch_s=completion.admit_s,
                    done_s=completion.done_s,
                ))
                self.completion.fire()
        if self.gc_mode == "sync":
            # Top the in-flight window back up from the submission
            # backlog (staged commands, historical flow — bit-exact).
            while self._backlog and (
                self.queue_depth is None
                or self.core.in_flight < self.queue_depth
            ):
                command, submit_s = self._backlog.popleft()
                self.core.enqueue(command, submit_s=submit_s)
            return
        # Scheduled modes: stage-and-dispatch backlogged submissions as
        # the window opens.  Foreground mode freezes the host stream
        # while GC commands are in flight (the write-cliff stall);
        # background GC never counts against the host window.
        while self._backlog:
            if self.gc_mode == "foreground" and self._gc_inflight:
                break
            if (
                self.queue_depth is not None
                and self.core.in_flight - self._gc_inflight
                >= self.queue_depth
            ):
                break
            ftl, io, tag, submit_s = self._backlog.popleft()
            self._dispatch_io(ftl, io, tag, submit_s)
        if self.gc_mode == "background":
            self._maybe_background_collect()

    # -- scheduled-GC machinery ------------------------------------------------------

    def _submit_scheduled(self, io: IoCommand, ftl: "DieStripedFtl") -> int:
        """Post one I/O in a scheduled-GC mode (deferred staging).

        The data path does *not* run here when the admission window is
        closed — the submission waits unstaged so any collection it
        triggers lands on the timeline at dispatch time, interleaved
        with the stream, rather than front-loaded at submit.
        """
        if io.kind is not TraceOpKind.READ and io.kind is not TraceOpKind.WRITE:
            raise SimulationError(
                f"sessions carry reads and writes only, not {io.kind}"
            )
        self._install_gc(ftl)
        tag = self._next_tag
        self._next_tag += 1
        submit_s = self.engine.now_s
        # Placeholder record so the tag is visible to host bookkeeping
        # before staging; _dispatch_io replaces it with the data.
        self._io[tag] = _IoRecord(io.kind, io.lpn, None, submit_s)
        if self._admit_room():
            self._dispatch_io(ftl, io, tag, submit_s)
        else:
            self._backlog.append((ftl, io, tag, submit_s))
        return tag

    def _admit_room(self) -> bool:
        """Whether a fresh submission may dispatch right now.

        A non-empty backlog always wins (FIFO); foreground mode closes
        the window while GC is in flight; otherwise GC commands are
        subtracted so background collection never eats host depth.
        """
        if self._backlog:
            return False
        if self.gc_mode == "foreground" and self._gc_inflight:
            return False
        if self.queue_depth is None:
            return True
        return self.core.in_flight - self._gc_inflight < self.queue_depth

    def _dispatch_io(
        self, ftl: "DieStripedFtl", io: IoCommand, tag: int, submit_s: float
    ) -> None:
        """Stage one submission's data path and enqueue its command.

        Runs with GC capture on, so any collection ``_provision``
        triggers is replayed as GC-origin commands enqueued *before*
        the host command that needed the space.
        """
        self._gc_capture = True
        try:
            if io.kind is TraceOpKind.READ:
                datas, commands = ftl.stage_reads([io.lpn], tags=(tag,))
                data = datas[0]
            else:
                commands = ftl.stage_writes(
                    [(io.lpn, io.data)], tags=(tag,)
                )
                data = None
        finally:
            self._gc_capture = False
        self._io[tag] = _IoRecord(io.kind, io.lpn, data, submit_s)
        self.core.enqueue(commands[0], submit_s=submit_s)

    def _install_gc(self, ftl: "DieStripedFtl") -> None:
        """Point every shard's collector at this session's timeline."""
        for installed in self._gc_ftls:
            if installed is ftl:
                return
        self._gc_ftls.append(ftl)
        for die, shard in enumerate(ftl.shards):
            shard.gc.policy = self.gc_config.policy
            shard.gc.sink = partial(self._on_gc_migration, ftl, die)

    def _on_gc_migration(
        self, ftl: "DieStripedFtl", die: int, migration: GcMigration
    ) -> bool:
        """Shard-collector sink: replay a migration on the timeline.

        Returns False (sync accounting) outside a capture window — a
        closed ``execute()`` batch or direct FTL use stays untouched.
        """
        if not self._gc_capture:
            return False
        count = len(migration.reads) + len(migration.writes) + 1
        tags = range(self._next_tag, self._next_tag + count)
        commands = ftl.gc_commands(die, migration, tags)
        self._next_tag += count
        stats = ftl.shards[die].gc.stats
        submit_s = self.engine.now_s
        for command in commands:
            busy_s = sum(
                phase.duration_s for phase in command.phase_plan()
            )
            self._gc_tags[command.tag] = (stats, die, busy_s)
            self._gc_inflight += 1
            self._gc_die_inflight[die] += 1
            self.core.enqueue(command, submit_s=submit_s)
        return True

    def _maybe_background_collect(self) -> None:
        """Watermark- and idle-triggered collection, one pass per die.

        Hysteresis: a die turns *active* when its free-block pool drops
        to the low watermark and stays active until the pool refills to
        the high one — no thrash at the boundary.  An idle die (no
        commands in flight) may additionally collect eagerly below the
        high watermark when ``idle_collect`` is on.  At most one
        collection is in flight per die.
        """
        config = self.gc_config
        active = self._gc_active
        die_gc = self._gc_die_inflight
        die_host = self.core.die_inflight
        for ftl in self._gc_ftls:
            eligible = []
            for die, shard in enumerate(ftl.shards):
                free = shard.allocator.free_block_count
                if free <= config.low_water_blocks:
                    active[die] = True
                elif free >= config.high_water_blocks:
                    active[die] = False
                if die_gc[die]:
                    continue  # one collection in flight per die
                if active[die] or (
                    config.idle_collect
                    and free < config.high_water_blocks
                    and die_host[die] == 0
                ):
                    eligible.append(die)
            if not eligible:
                continue
            self._gc_capture = True
            try:
                if config.superblock:
                    stripe = ftl.pick_striped_victim(eligible)
                    if stripe is None:
                        continue
                    for die, victim in zip(eligible, stripe):
                        gc = ftl.shards[die].gc
                        if gc.collect_block(victim) is not None:
                            gc.stats.background_collections += 1
                else:
                    for die in eligible:
                        gc = ftl.shards[die].gc
                        victim = gc.pick_victim()
                        if victim is None:
                            continue
                        if gc.collect_block(victim) is not None:
                            gc.stats.background_collections += 1
            finally:
                self._gc_capture = False
