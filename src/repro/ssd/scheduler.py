"""DES-driven SSD command scheduler over a phase/resource model.

Commands are no longer two opaque scalars: each :class:`DieCommand`
carries (or derives) an explicit sequence of
:class:`~repro.nand.timing.CommandPhase` stages, and the scheduler
executes those phases against four kinds of serially-reusable resource:

* **array planes** — sense / ISPP program / erase busy time.  One worker
  process per plane drains that plane's queue, so multi-plane commands
  overlap ISPP (and sensing) inside one die;
* **channel buses** — page transfers.  Each bus arbitrates among the
  dies it serves through a :class:`~repro.sim.engine.Signal` wake-up;
* **per-channel ECC engines** — BCH encode / decode.  A pipelined engine
  is held only for its initiation interval (``CommandPhase.hold_s``)
  while the page still takes the full duration end to end;
* **per-plane cache registers** — the double buffer behind cache reads:
  after sensing, a page parks in the cache register and streams out
  while the plane already senses the next page.

Which overlaps are allowed is governed by :class:`PipelineConfig`:

* ``PipelineConfig()`` (all pipelining off) is the **paper-faithful**
  single-page-buffer controller FSM — every command serialises sense /
  (transfer + ECC as one fused bus section) per die, reproducing the
  PR 3 scheduler's timelines *exactly* (same completion order, same
  clock);
* ``cache_read`` lets reads sense page i+1 under the transfer of page i;
* ``multi_plane`` lets array phases of different planes overlap;
* ``pipelined_ecc`` splits the fused bus section: the bus is held only
  for the transfer while the ECC engine decodes page i as the bus
  streams page i+1, lifting the per-channel read ceiling.

The execution machinery is an **incremental** resource-reservation
core (:class:`SchedulerCore`): resident per-(die, plane) workers parked
on daemon wake-up signals accept :meth:`SchedulerCore.enqueue` calls at
any simulation time, while earlier commands are still in flight — the
substrate behind the open-loop :class:`~repro.ssd.session.SsdSession`.
:class:`CommandScheduler` is the classic closed-batch view: `run()`
spawns a fresh core plus a queue-depth-bounded admission process (the
NVMe-style host queue) and drains it to the batch makespan.  Everything
is deterministic: the same command list, topology, pipeline config and
queue depth produce the same completion order and the same final clock.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from heapq import heappop, heappush

import numpy as np

from repro.errors import SimulationError
from repro.nand.timing import CommandPhase, PhaseResource
from repro.sim.engine import Process, SimEngine, Signal
from repro.ssd.topology import SsdTopology


class CommandKind(enum.Enum):
    """Host-visible NAND command classes."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class PipelineConfig:
    """Which overlaps the command pipeline may exploit.

    The default (everything off) is the paper's non-pipelined
    single-page-buffer controller; :meth:`full` enables every overlap a
    MT29F-class part plus a section-pipelined BCH engine offers.
    """

    cache_read: bool = False
    multi_plane: bool = False
    pipelined_ecc: bool = False

    @classmethod
    def serial(cls) -> "PipelineConfig":
        """Paper-faithful non-pipelined configuration."""
        return cls()

    @classmethod
    def full(cls) -> "PipelineConfig":
        """Every modelled overlap enabled."""
        return cls(cache_read=True, multi_plane=True, pipelined_ecc=True)

    def describe(self) -> str:
        """Short label, e.g. ``serial`` or ``cache+ecc``."""
        parts = [
            name
            for name, on in (
                ("cache", self.cache_read),
                ("mplane", self.multi_plane),
                ("ecc", self.pipelined_ecc),
            )
            if on
        ]
        return "+".join(parts) if parts else "serial"


@dataclass(frozen=True)
class DieCommand:
    """One scheduled command against one die.

    ``die_s`` is the array-busy phase (sense, program or erase time from
    :class:`~repro.nand.timing.NandTimingModel`); ``channel_s`` is the
    channel-section occupancy (page transfer plus the channel ECC
    engine's encode/decode, zero for erases).  ``tag`` is the host's
    submission index — completions map back to host operations through
    it.  ``plane`` is the array plane the command lands on, and
    ``phases`` optionally carries the full stage decomposition; commands
    built from the two scalars get the classic decomposition (one fused
    channel section) via :meth:`phase_plan`.
    """

    kind: CommandKind
    die: int
    tag: int
    die_s: float
    channel_s: float = 0.0
    plane: int = 0
    phases: tuple[CommandPhase, ...] | None = None
    cache_busy_s: float = 0.0

    def __post_init__(self) -> None:
        if self.die_s < 0 or self.channel_s < 0:
            raise SimulationError("command phase durations must be non-negative")
        if self.plane < 0:
            raise SimulationError("plane must be non-negative")
        if self.cache_busy_s < 0:
            raise SimulationError("cache busy time must be non-negative")

    @classmethod
    def from_phases(
        cls,
        kind: CommandKind,
        die: int,
        tag: int,
        phases: tuple[CommandPhase, ...],
        plane: int = 0,
        cache_busy_s: float = 0.0,
    ) -> "DieCommand":
        """Build a command from an explicit phase sequence.

        The scalar ``die_s``/``channel_s`` views are derived as the
        summed plane and channel-section durations, so phase-built
        commands stay interchangeable with scalar-built ones under the
        serial (non-pipelined) configuration.
        """
        die_s = sum(
            p.duration_s for p in phases if p.resource is PhaseResource.PLANE
        )
        channel_s = sum(
            p.duration_s for p in phases if p.resource is not PhaseResource.PLANE
        )
        return cls(
            kind=kind, die=die, tag=tag, die_s=die_s, channel_s=channel_s,
            plane=plane, phases=tuple(phases), cache_busy_s=cache_busy_s,
        )

    def phase_plan(self) -> tuple[CommandPhase, ...]:
        """Explicit phases, deriving the classic decomposition if absent."""
        if self.phases is not None:
            return self.phases
        if self.kind is CommandKind.READ:
            return (
                CommandPhase(PhaseResource.PLANE, self.die_s),
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
            )
        if self.kind is CommandKind.PROGRAM:
            return (
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
                CommandPhase(PhaseResource.PLANE, self.die_s),
            )
        return (CommandPhase(PhaseResource.PLANE, self.die_s),)


@dataclass(frozen=True)
class CommandCompletion:
    """Timestamped completion of one command.

    ``submit_s`` is when the host handed the command to the session
    (submission-queue time); ``admit_s`` is when the in-flight window
    admitted (dispatched) it.  Closed-batch schedules submit everything
    at the batch start, so for them ``admit_s - submit_s`` is exactly
    the queue-depth admission wait.
    """

    tag: int
    die: int
    channel: int
    admit_s: float
    done_s: float
    submit_s: float | None = None

    @property
    def latency_s(self) -> float:
        """Dispatch-to-completion latency (queueing behind the die/bus)."""
        return self.done_s - self.admit_s

    @property
    def queue_s(self) -> float:
        """Submission-to-dispatch wait in the host queue."""
        return 0.0 if self.submit_s is None else self.admit_s - self.submit_s

    @property
    def total_latency_s(self) -> float:
        """Submission-to-completion latency, host queueing included."""
        base = self.admit_s if self.submit_s is None else self.submit_s
        return self.done_s - base


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run."""

    completions: list[CommandCompletion] = field(default_factory=list)
    makespan_s: float = 0.0
    die_busy_s: list[float] = field(default_factory=list)
    channel_busy_s: list[float] = field(default_factory=list)
    ecc_busy_s: list[float] = field(default_factory=list)

    def latency_by_tag(self) -> dict[int, float]:
        """Per-command latency keyed by submission tag."""
        return {c.tag: c.latency_s for c in self.completions}

    def queue_by_tag(self) -> dict[int, float]:
        """Submission-to-dispatch wait keyed by submission tag."""
        return {c.tag: c.queue_s for c in self.completions}

    def completion_order(self) -> list[int]:
        """Submission tags in completion order."""
        return [c.tag for c in self.completions]

    def channel_utilisation(self) -> list[float]:
        """Busy fraction of each channel bus over the makespan.

        Under the serial configuration the ECC encode/decode occupies the
        bus (fused section) and is counted here; under ``pipelined_ecc``
        it is accounted separately in :attr:`ecc_busy_s`.
        """
        if self.makespan_s <= 0:
            return [0.0 for _ in self.channel_busy_s]
        return [busy / self.makespan_s for busy in self.channel_busy_s]

    def latencies(self) -> list[float]:
        """Per-command latencies in completion order."""
        return [c.latency_s for c in self.completions]


class _Lock:
    """Serially-reusable resource guarded by a wake-up signal.

    ``freed`` is a *handoff* signal: every waiter sits in a
    ``while busy: yield freed`` re-check loop, the one discipline for
    which waking only the head waiter is observably identical to waking
    all of them (see the engine module's determinism contract) — so
    releasing a contended bus no longer schedules a no-op wake-up for
    every other queued worker.
    """

    __slots__ = ("busy", "freed")

    def __init__(self, engine: SimEngine):
        self.busy = False
        self.freed = engine.signal(handoff=True)


@lru_cache(maxsize=4096)
def _split_plan(
    plan: tuple[CommandPhase, ...],
) -> tuple[tuple[float, ...], tuple[tuple[bool, float, float], ...], float]:
    """Pre-decompose a phase plan for the worker hot loop.

    Returns ``(array_durations, section_ops, fused_s)``: the plane
    (array) phase durations, the channel-section phases flattened to
    ``(is_channel, duration_s, occupancy_s)`` triples (so the worker
    loop touches plain floats, not dataclass attributes), and the fused
    section total used by the non-pipelined configuration — summed in
    phase order, so it is the bit-identical float the per-command
    ``sum()`` used to produce.

    Cached: the pages of a die-striped batch overwhelmingly share
    identical phase tuples, so the split (and its tuple allocations)
    happens once per distinct plan instead of once per command.
    """
    array = tuple(
        p.duration_s for p in plan if p.resource is PhaseResource.PLANE
    )
    channel = tuple(
        p for p in plan if p.resource is not PhaseResource.PLANE
    )
    ops = tuple(
        (p.resource is PhaseResource.CHANNEL, p.duration_s, p.occupancy_s)
        for p in channel
    )
    fused = sum(p.duration_s for p in channel)
    return array, ops, fused


#: Identity front-cache for :func:`_split_plan`.  ``lru_cache`` hashes
#: the whole phase tuple (three generated dataclass ``__hash__`` calls
#: per lookup) on every command; commands built by the striped FTL share
#: literal tuple objects, so an ``id()`` probe answers most lookups with
#: one dict hit.  Entries keep the plan alive, so a live entry's ``id``
#: cannot be recycled; after an eviction the ``is`` check rejects any
#: stale match.
_split_memo: dict[int, tuple] = {}


def _split_plan_fast(plan: tuple[CommandPhase, ...]):
    """`_split_plan` behind an identity probe (see ``_split_memo``)."""
    entry = _split_memo.get(id(plan))
    if entry is not None and entry[0] is plan:
        return entry[1]
    split = _split_plan(plan)
    if len(_split_memo) >= 4096:
        _split_memo.clear()
    _split_memo[id(plan)] = (plan, split)
    return split


def validate_batch(
    topology: SsdTopology,
    commands: list[DieCommand],
    queue_depth: int | None,
) -> None:
    """Reject out-of-range dies, duplicate tags and bad queue depths.

    Duplicate submission tags would silently corrupt the completion map,
    so they are an error within one scheduled batch.
    """
    seen_tags: set[int] = set()
    for command in commands:
        if not 0 <= command.die < topology.dies:
            raise SimulationError(
                f"command die {command.die} outside topology "
                f"({topology.dies} dies)"
            )
        if command.tag in seen_tags:
            raise SimulationError(
                f"duplicate command tag {command.tag}: tags must be "
                "unique within one scheduled batch"
            )
        seen_tags.add(command.tag)
    if queue_depth is not None and queue_depth < 1:
        raise SimulationError("queue depth must be >= 1")


def closed_admission(
    core: "SchedulerCore",
    commands: list[DieCommand],
    queue_depth: int | None,
    wake_workers: bool = False,
) -> Process:
    """Admit a closed batch through a bounded in-flight window.

    ``queue_depth`` bounds how many commands are in flight at once
    (``None`` admits everything immediately — an infinitely deep
    queue).  Commands are admitted in list order.  ``wake_workers``
    is required when the core's workers are already resident (parked):
    the initial in-flight window is queued with wake-ups suppressed,
    then :meth:`SchedulerCore.wake_workers` resumes the workers that
    actually received work in (die, plane) order — the same
    deterministic order as a fresh core's worker start-up, without
    scheduling a no-op wake for every idle plane.
    """
    limit = len(commands) if queue_depth is None else queue_depth
    submit_s = core.engine.now_s  # the whole batch is submitted up front
    index = 0
    if wake_workers:
        for command in commands:
            if core.in_flight >= limit:
                break
            core.enqueue(command, submit_s=submit_s, wake=False)
            index += 1
        core.wake_workers()
    for command in commands[index:]:
        while core.in_flight >= limit:
            yield core.completed
        core.enqueue(command, submit_s=submit_s)


# -- batched stripe-reservation fast path -----------------------------------
#
# Die-striped read_many/write_many emit *homogeneous* batches: every
# command the same CommandKind under one PipelineConfig.  For those, the
# generator machinery (32 resident coroutines round-tripping through the
# engine per page at 4ch x 4die x 2plane) is pure interpretation
# overhead: the control flow per command is fixed.  _run_fast_batch
# replays the exact same schedule as a flat mini-DES — tuple events,
# integer program counters, handoff locks as 4-slot lists — after one
# numpy pass extracts the stripe's phase durations.  It is a
# *transliteration*, not an approximation: every generator ``yield``
# becomes one scheduled tuple event, every signal fire/park keeps its
# order and its sequence-allocation position, and the busy accounters
# are accumulated in the same float addition order, so completions,
# busy times and the makespan are bit-exact against the generator path
# (equivalence-tested on randomized streams in tests/ssd).

# Worker/drain program counters (resume points after a scheduled event
# or a lock park).
_P_POP = 0        # fetch the next queued command (or park on the work signal)
_P_ARRAY = 1      # an array phase's busy time just elapsed
_P_CACHEQ = 2     # woken on a cache register's freed signal: re-check
_P_TRCBSY = 3     # the tRCBSY cache-handoff busy time just elapsed
_P_SECTION = 4    # enter the channel section (drain frames start here)
_P_BUSQ = 5       # woken on a bus's freed signal: re-check
_P_BUSREL = 6     # the bus hold just elapsed: release and account
_P_ECCQ = 7       # woken on an ECC engine's freed signal: re-check
_P_ECCREL = 8     # the ECC occupancy just elapsed: release and account
_P_ECCDRAIN = 9   # the ECC post-occupancy drain just elapsed

# Frame layout (plain lists — the mini-DES analogue of a coroutine):
# [0] pc  [1] die  [2] slot  [3] channel  [4] queue (deque of command
# indices; None for drain frames)  [5] parked-on-work-signal flag
# [6] current command index  [7] array phase cursor  [8] channel phase
# cursor  [9] cache lock to release mid-section (drain frames), or None
#
# Lock layout (the handoff Signal transliterated):
# [0] busy  [1] waiters (frames, park order)  [2] pending woken head
# [3] waiters left behind the pending head at fire time


def _fast_eligible(commands: list[DieCommand]) -> bool:
    """The stripe fast path covers homogeneous (single-kind) batches."""
    if not commands:
        return False
    kind = commands[0].kind
    return all(command.kind is kind for command in commands)


def _fast_decompose(
    plan: tuple[CommandPhase, ...],
) -> tuple[tuple[float, ...], tuple[tuple[bool, float, float], ...], float]:
    """(array durations, (is_channel, duration, occupancy) section, fused total)."""
    array = tuple(
        p.duration_s for p in plan if p.resource is PhaseResource.PLANE
    )
    chan = tuple(
        (p.resource is PhaseResource.CHANNEL, p.duration_s, p.occupancy_s)
        for p in plan
        if p.resource is not PhaseResource.PLANE
    )
    fused = sum(
        p.duration_s for p in plan if p.resource is not PhaseResource.PLANE
    )
    return array, chan, fused


def _run_fast_batch(
    core: "SchedulerCore",
    commands: list[DieCommand],
    queue_depth: int | None,
    resident: bool,
) -> float:
    """Drain one homogeneous closed batch without coroutines.

    Mutates ``core`` exactly as the generator path would (completions
    appended in completion order, busy accounters accumulated in the
    same addition order, ``on_finish`` callbacks invoked at their
    completion instants with ``engine.now_s`` advanced) and returns the
    batch makespan.  ``resident=True`` replays the
    ``closed_admission(wake_workers=True)`` start-up of a parked
    resident core; ``resident=False`` replays a fresh
    :class:`CommandScheduler` run (admission spawned before the worker
    start-up events).  The core's real generator workers are never
    woken — their queues are never touched.
    """
    engine = core.engine
    topology = core.topology
    planes = core.planes
    n = len(commands)
    limit = n if queue_depth is None else queue_depth
    t0 = engine.now_s
    kind = commands[0].kind
    is_read = kind is CommandKind.READ
    is_program = kind is CommandKind.PROGRAM
    cache_mode = core.pipeline.cache_read and is_read
    pipelined_ecc = core.pipeline.pipelined_ecc
    dies = topology.dies
    channel_of = [topology.channel_of(die) for die in range(dies)]

    # ---- one numpy pass: stripe routing + phase durations ------------------
    cmd_tag = [command.tag for command in commands]
    cmd_die = np.fromiter(
        (command.die for command in commands), np.intp, n
    ).tolist()
    cmd_slot = (
        np.fromiter((command.plane for command in commands), np.intp, n)
        % planes
    ).tolist()
    if any(command.phases is not None for command in commands):
        split: dict = {}
        cmd_array = []
        cmd_chan = []
        cmd_fused = []
        for command in commands:
            entry = split.get(command.phases)
            if entry is None:
                entry = _fast_decompose(command.phase_plan())
                split[command.phases] = entry
            cmd_array.append(entry[0])
            cmd_chan.append(entry[1])
            cmd_fused.append(entry[2])
    else:
        die_s = np.fromiter(
            (command.die_s for command in commands), np.float64, n
        ).tolist()
        cmd_array = [(d,) for d in die_s]
        if kind is CommandKind.ERASE:
            cmd_chan = [()] * n
            cmd_fused = [0.0] * n
        else:
            # Classic decomposition: one fused CHANNEL phase.
            cmd_fused = np.fromiter(
                (command.channel_s for command in commands), np.float64, n
            ).tolist()
            cmd_chan = [((True, s, s),) for s in cmd_fused]
    cmd_cachebusy = (
        np.fromiter(
            (command.cache_busy_s for command in commands), np.float64, n
        ).tolist()
        if cache_mode
        else None
    )

    # ---- mini-DES state ----------------------------------------------------
    buses = [[False, [], None, 0] for _ in range(topology.channels)]
    eccs = [[False, [], None, 0] for _ in range(topology.channels)]
    caches = (
        [[[False, [], None, 0] for _ in range(planes)] for _ in range(dies)]
        if cache_mode
        else None
    )
    workers = [
        [
            [_P_POP, die, slot, channel_of[die], deque(), resident, -1, 0, 0, None]
            for slot in range(planes)
        ]
        for die in range(dies)
    ]
    completions = core.completions
    die_busy = core.die_busy_s
    channel_busy = core.channel_busy_s
    ecc_busy = core.ecc_busy_s
    on_finish = core.on_finish
    admit_s = [t0] * n
    in_flight = 0
    admitted = 0          # next command index the admission process admits
    admit_parked = False  # admission parked on core.completed
    initial_fill = resident
    admit_frame = [None]  # sentinel identity for admission's wake events

    events: list = []
    seq = 1
    heappush(events, (t0, 0, admit_frame))
    if not resident:
        # Fresh core: start() spawns every worker after the admission
        # process, (die, plane) order — including idle planes, whose
        # single no-op run the generator path performs too.
        for die in range(dies):
            for slot in range(planes):
                heappush(events, (t0, seq, workers[die][slot]))
                seq += 1
    now = t0

    def lock_fire(lock: list) -> None:
        """Signal.fire, handoff discipline: wake the head waiter."""
        nonlocal seq
        waiters = lock[1]
        if waiters:
            head = waiters.pop(0)
            lock[2] = head
            lock[3] = len(waiters)
            heappush(events, (now, seq, head))
            seq += 1

    def lock_park(lock: list, frame: list) -> None:
        """Signal._park, including the woken head's re-park splice."""
        if lock[2] is frame:
            lock[2] = None
            rest = lock[3]
            waiters = lock[1]
            if rest:
                wave = waiters[:rest]
                del waiters[:rest]
                waiters.append(frame)
                waiters.extend(wave)
            else:
                waiters.append(frame)
        else:
            lock[1].append(frame)

    def mini_enqueue(index: int, wake: bool) -> None:
        """SchedulerCore.enqueue against the mini worker frames."""
        nonlocal in_flight, seq
        in_flight += 1
        core.in_flight = in_flight
        admit_s[index] = now
        frame = workers[cmd_die[index]][cmd_slot[index]]
        frame[4].append(index)
        if wake and frame[5]:
            frame[5] = False
            heappush(events, (now, seq, frame))
            seq += 1

    def admit() -> None:
        """The closed_admission process body (one resumption)."""
        nonlocal admitted, admit_parked, initial_fill, seq
        if initial_fill:
            # Resident start-up: queue the initial window silently, then
            # wake exactly the workers that received work, (die, plane)
            # order — closed_admission(wake_workers=True) transliterated.
            initial_fill = False
            while admitted < n and in_flight < limit:
                mini_enqueue(admitted, wake=False)
                admitted += 1
            for die in range(dies):
                for slot in range(planes):
                    frame = workers[die][slot]
                    if frame[4] and frame[5]:
                        frame[5] = False
                        heappush(events, (now, seq, frame))
                        seq += 1
        while admitted < n:
            if in_flight >= limit:
                admit_parked = True
                return
            mini_enqueue(admitted, wake=True)
            admitted += 1

    def finish(frame: list) -> None:
        """SchedulerCore._finish: complete frame's current command."""
        nonlocal in_flight, seq, admit_parked
        index = frame[6]
        completion = CommandCompletion(
            tag=cmd_tag[index],
            die=frame[1],
            channel=frame[3],
            admit_s=admit_s[index],
            done_s=now,
            submit_s=t0,
        )
        completions.append(completion)
        in_flight -= 1
        core.in_flight = in_flight
        if admit_parked:  # completed.fire()
            admit_parked = False
            heappush(events, (now, seq, admit_frame))
            seq += 1
        if on_finish:
            engine.now_s = now
            for callback in on_finish:
                callback(completion)

    # ---- event loop --------------------------------------------------------
    while events:
        now, _, frame = heappop(events)
        if frame is admit_frame:
            admit()
            continue
        pc = frame[0]
        while True:
            if pc == _P_POP:
                queue = frame[4]
                if not queue:
                    frame[0] = _P_POP
                    frame[5] = True  # park on the work signal
                    break
                index = queue.popleft()
                frame[6] = index
                if is_program:
                    frame[9] = None
                    frame[8] = 0
                    pc = _P_SECTION
                    continue
                # READ / ERASE: array phases first.
                array = cmd_array[index]
                if array:
                    frame[7] = 0
                    frame[0] = _P_ARRAY
                    heappush(events, (now + array[0], seq, frame))
                    seq += 1
                    break
                pc = _P_ARRAY  # empty array: fall through to after-array
                frame[7] = 0
                # (no busy time to account; handled below by cursor == end)
            if pc == _P_ARRAY:
                index = frame[6]
                array = cmd_array[index]
                cursor = frame[7]
                if cursor < len(array):
                    die_busy[frame[1]] += array[cursor]
                    cursor += 1
                    frame[7] = cursor
                    if cursor < len(array):
                        frame[0] = _P_ARRAY
                        heappush(events, (now + array[cursor], seq, frame))
                        seq += 1
                        break
                # Array phases done.
                if not is_read:  # PROGRAM after section, or ERASE
                    finish(frame)
                    if frame[4] is None:
                        break  # drain frames run once
                    pc = _P_POP
                    continue
                chan = cmd_chan[index]
                if cache_mode and chan:
                    cache = caches[frame[1]][frame[2]]
                    if cache[0]:
                        frame[0] = _P_CACHEQ
                        lock_park(cache, frame)
                        break
                    cache[0] = True
                    # acquired without waiting (no yield in the generator)
                    trcbsy = cmd_cachebusy[index]
                    if trcbsy > 0.0:
                        frame[0] = _P_TRCBSY
                        heappush(events, (now + trcbsy, seq, frame))
                        seq += 1
                        break
                    # zero handoff: spawn the drain and move on
                    drain = [
                        _P_SECTION, frame[1], frame[2], frame[3],
                        None, False, index, 0, 0, cache,
                    ]
                    heappush(events, (now, seq, drain))
                    seq += 1
                    pc = _P_POP
                    continue
                frame[9] = None
                frame[8] = 0
                pc = _P_SECTION
                continue
            if pc == _P_CACHEQ:
                cache = caches[frame[1]][frame[2]]
                if cache[0]:
                    lock_park(cache, frame)
                    break
                cache[0] = True
                index = frame[6]
                trcbsy = cmd_cachebusy[index]
                if trcbsy > 0.0:
                    frame[0] = _P_TRCBSY
                    heappush(events, (now + trcbsy, seq, frame))
                    seq += 1
                    break
                drain = [
                    _P_SECTION, frame[1], frame[2], frame[3],
                    None, False, index, 0, 0, cache,
                ]
                heappush(events, (now, seq, drain))
                seq += 1
                pc = _P_POP
                continue
            if pc == _P_TRCBSY:
                index = frame[6]
                die_busy[frame[1]] += cmd_cachebusy[index]
                drain = [
                    _P_SECTION, frame[1], frame[2], frame[3],
                    None, False, index, 0, 0,
                    caches[frame[1]][frame[2]],
                ]
                heappush(events, (now, seq, drain))
                seq += 1
                pc = _P_POP
                continue
            if pc == _P_SECTION:
                index = frame[6]
                if not pipelined_ecc:
                    # Fused section: one bus hold for the summed total
                    # (taken even for an empty section, as the generator
                    # path's _hold(bus, 0.0) does).
                    bus = buses[frame[3]]
                    if bus[0]:
                        frame[0] = _P_BUSQ
                        lock_park(bus, frame)
                        break
                    bus[0] = True
                    frame[0] = _P_BUSREL
                    heappush(events, (now + cmd_fused[index], seq, frame))
                    seq += 1
                    break
                chan = cmd_chan[index]
                cursor = frame[8]
                if cursor < len(chan):
                    is_channel, duration, occupancy = chan[cursor]
                    if is_channel:
                        bus = buses[frame[3]]
                        if bus[0]:
                            frame[0] = _P_BUSQ
                            lock_park(bus, frame)
                            break
                        bus[0] = True
                        frame[0] = _P_BUSREL
                        heappush(events, (now + duration, seq, frame))
                        seq += 1
                        break
                    ecc = eccs[frame[3]]
                    if ecc[0]:
                        frame[0] = _P_ECCQ
                        lock_park(ecc, frame)
                        break
                    ecc[0] = True
                    frame[0] = _P_ECCREL
                    heappush(events, (now + occupancy, seq, frame))
                    seq += 1
                    break
                # Section exhausted: free a still-held cache register.
                cache = frame[9]
                if cache is not None:
                    cache[0] = False
                    lock_fire(cache)
                    frame[9] = None
                if is_program:
                    array = cmd_array[index]
                    if array:
                        frame[7] = 0
                        frame[0] = _P_ARRAY
                        heappush(events, (now + array[0], seq, frame))
                        seq += 1
                        break
                    frame[7] = 0
                    pc = _P_ARRAY
                    continue
                finish(frame)
                if frame[4] is None:
                    break
                pc = _P_POP
                continue
            if pc == _P_BUSQ:
                bus = buses[frame[3]]
                if bus[0]:
                    lock_park(bus, frame)
                    break
                bus[0] = True
                index = frame[6]
                if not pipelined_ecc:
                    duration = cmd_fused[index]
                else:
                    duration = cmd_chan[index][frame[8]][1]
                frame[0] = _P_BUSREL
                heappush(events, (now + duration, seq, frame))
                seq += 1
                break
            if pc == _P_BUSREL:
                bus = buses[frame[3]]
                bus[0] = False
                lock_fire(bus)
                index = frame[6]
                if not pipelined_ecc:
                    channel_busy[frame[3]] += cmd_fused[index]
                    cache = frame[9]
                    if cache is not None:
                        cache[0] = False
                        lock_fire(cache)
                        frame[9] = None
                    # Fused section complete.
                    if is_program:
                        array = cmd_array[index]
                        if array:
                            frame[7] = 0
                            frame[0] = _P_ARRAY
                            heappush(events, (now + array[0], seq, frame))
                            seq += 1
                            break
                        frame[7] = 0
                        pc = _P_ARRAY
                        continue
                    finish(frame)
                    if frame[4] is None:
                        break
                    pc = _P_POP
                    continue
                channel_busy[frame[3]] += cmd_chan[index][frame[8]][1]
                cache = frame[9]
                if cache is not None:
                    cache[0] = False
                    lock_fire(cache)
                    frame[9] = None
                frame[8] += 1
                pc = _P_SECTION
                continue
            if pc == _P_ECCQ:
                ecc = eccs[frame[3]]
                if ecc[0]:
                    lock_park(ecc, frame)
                    break
                ecc[0] = True
                occupancy = cmd_chan[frame[6]][frame[8]][2]
                frame[0] = _P_ECCREL
                heappush(events, (now + occupancy, seq, frame))
                seq += 1
                break
            if pc == _P_ECCREL:
                ecc = eccs[frame[3]]
                ecc[0] = False
                lock_fire(ecc)
                phase = cmd_chan[frame[6]][frame[8]]
                ecc_busy[frame[3]] += phase[2]
                remainder = phase[1] - phase[2]
                if remainder > 0:
                    frame[0] = _P_ECCDRAIN
                    heappush(events, (now + remainder, seq, frame))
                    seq += 1
                    break
                frame[8] += 1
                pc = _P_SECTION
                continue
            if pc == _P_ECCDRAIN:
                frame[8] += 1
                pc = _P_SECTION
                continue
            raise SimulationError(f"fast batch: invalid state {pc}")

    engine.now_s = now
    return now


class SchedulerCore:
    """Incremental resource-reservation core over one topology.

    Owns the serially-reusable resources (planes, channel buses, ECC
    engines, per-plane cache registers) and one resident dispatch worker
    per (die, plane), parked on a daemon wake-up signal while idle.
    :meth:`enqueue` accepts a command at any simulation time — including
    while earlier commands are still in flight — making the core the
    substrate for both the classic closed-batch
    :class:`CommandScheduler` and the open-loop
    :class:`~repro.ssd.session.SsdSession`.

    Completions are appended to :attr:`completions`; :attr:`completed`
    fires once per completion, and synchronous ``on_finish`` callbacks
    (called after the fire) let a session route completions without a
    reaper process of its own.
    """

    def __init__(
        self,
        engine: SimEngine,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
    ):
        self.engine = engine
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()
        self.planes = (
            topology.geometry.planes if self.pipeline.multi_plane else 1
        )
        self.completions: list[CommandCompletion] = []
        self.die_busy_s = [0.0] * topology.dies
        self.channel_busy_s = [0.0] * topology.channels
        self.ecc_busy_s = [0.0] * topology.channels
        self.completed = engine.signal()
        self.on_finish: list = []
        self.in_flight = 0
        self._buses = [_Lock(engine) for _ in range(topology.channels)]
        self._engines = [_Lock(engine) for _ in range(topology.channels)]
        self._caches = [
            [_Lock(engine) for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._queues: list[list[deque[DieCommand]]] = [
            [deque() for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._work = [
            [engine.signal(daemon=True) for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        #: In-flight bookkeeping: tag -> (admit_s, submit_s).  One dict
        #: (one hash per enqueue / one per finish) also doubles as the
        #: live-tag set for duplicate detection.
        self._meta: dict[int, tuple[float, float | None]] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the resident dispatch workers ((die, plane) order)."""
        if self._started:
            raise SimulationError("scheduler core already started")
        self._started = True
        for die in range(self.topology.dies):
            for plane in range(self.planes):
                self.engine.spawn(self._worker(die, plane))

    @property
    def idle(self) -> bool:
        """True when no command is queued or executing."""
        return self.in_flight == 0

    def wake_workers(self) -> None:
        """Fire the wake-up of every worker with queued work, (die, plane) order.

        Before admitting a closed batch into a resident core, this puts
        the workers' resume events in the same deterministic order as a
        fresh core's start-up, so batch timelines are reproducible
        regardless of which worker went idle last.  Workers with empty
        queues stay parked — their wake would be a no-op event (resume,
        find nothing, re-park) and cannot be observed by the batch.
        """
        for die_queues, die_signals in zip(self._queues, self._work):
            for queue, signal in zip(die_queues, die_signals):
                if queue:
                    signal.fire()

    def reset_accounting(self) -> None:
        """Zero the busy accumulators (only legal while idle)."""
        if not self.idle:
            raise SimulationError(
                "cannot reset accounting with commands in flight"
            )
        self.die_busy_s = [0.0] * self.topology.dies
        self.channel_busy_s = [0.0] * self.topology.channels
        self.ecc_busy_s = [0.0] * self.topology.channels

    # -- submission --------------------------------------------------------------

    def enqueue(
        self,
        command: DieCommand,
        submit_s: float | None = None,
        wake: bool = True,
    ) -> None:
        """Admit one command into the in-flight set at the current time.

        ``submit_s`` optionally records when the host originally
        submitted the command (for queueing-time accounting); the admit
        (dispatch) time is always the current simulation time.  The tag
        must be unique among commands currently in flight.
        ``wake=False`` suppresses the worker wake-up — used by
        :func:`closed_admission` to queue a resident batch's initial
        window before waking the non-idle workers in one ordered pass.
        """
        if not 0 <= command.die < self.topology.dies:
            raise SimulationError(
                f"command die {command.die} outside topology "
                f"({self.topology.dies} dies)"
            )
        if command.tag in self._meta:
            raise SimulationError(
                f"duplicate command tag {command.tag}: tags must be "
                "unique among in-flight commands"
            )
        self.in_flight += 1
        self._meta[command.tag] = (self.engine.now_s, submit_s)
        slot = command.plane % self.planes
        self._queues[command.die][slot].append(command)
        if wake:
            self._work[command.die][slot].fire()

    # -- internals ---------------------------------------------------------------

    def _finish(self, command: DieCommand, die: int, channel: int) -> None:
        tag = command.tag
        admit_s, submit_s = self._meta.pop(tag)
        completion = CommandCompletion(
            tag=tag,
            die=die,
            channel=channel,
            admit_s=admit_s,
            done_s=self.engine.now_s,
            submit_s=submit_s,
        )
        self.completions.append(completion)
        self.in_flight -= 1
        self.completed.fire()
        for callback in self.on_finish:
            callback(completion)

    # The channel-section body is spelled out inline in both
    # `_channel_section` and `_read_drain` (and `_channel_section` is
    # itself delegated to from `_worker` at top level only): every
    # `yield from` level adds one frame each `send()` must traverse for
    # every event, and the section loop is the hottest code in the
    # simulator.  The acquire/hold/release pattern is the `_Lock`
    # handoff discipline: `while busy: yield freed` re-check, holder
    # sets `busy`, releases and fires.

    def _channel_section(
        self,
        ops: tuple[tuple[bool, float, float], ...],
        fused_s: float,
        channel: int,
    ) -> Process:
        """Run a command's channel/ECC section (no cache register)."""
        bus = self._buses[channel]
        if not self.pipeline.pipelined_ecc:
            # Paper-faithful fused section: transfer + encode/decode
            # occupy the bus as one non-pipelined unit (the structural
            # hazard of the single-page-buffer controller FSM).
            while bus.busy:
                yield bus.freed
            bus.busy = True
            yield fused_s
            bus.busy = False
            bus.freed.fire()
            self.channel_busy_s[channel] += fused_s
            return
        ecc = self._engines[channel]
        for is_channel, duration, occupancy in ops:
            if is_channel:
                while bus.busy:
                    yield bus.freed
                bus.busy = True
                yield duration
                bus.busy = False
                bus.freed.fire()
                self.channel_busy_s[channel] += duration
            else:  # ECC: held for the initiation interval only.
                while ecc.busy:
                    yield ecc.freed
                ecc.busy = True
                yield occupancy
                ecc.busy = False
                ecc.freed.fire()
                self.ecc_busy_s[channel] += occupancy
                drain = duration - occupancy
                if drain > 0:
                    yield drain

    def _read_drain(
        self,
        command: DieCommand,
        die: int,
        channel: int,
        cache: _Lock,
        ops: tuple[tuple[bool, float, float], ...],
        fused_s: float,
    ) -> Process:
        """Stream a cached page out and complete its command.

        Identical to `_channel_section` except the cache register is
        freed the moment the data leaves it (fused section done, or
        first bus transfer under pipelined ECC).
        """
        bus = self._buses[channel]
        if not self.pipeline.pipelined_ecc:
            while bus.busy:
                yield bus.freed
            bus.busy = True
            yield fused_s
            bus.busy = False
            bus.freed.fire()
            self.channel_busy_s[channel] += fused_s
            cache.busy = False
            cache.freed.fire()
            self._finish(command, die, channel)
            return
        ecc = self._engines[channel]
        held = cache
        for is_channel, duration, occupancy in ops:
            if is_channel:
                while bus.busy:
                    yield bus.freed
                bus.busy = True
                yield duration
                bus.busy = False
                bus.freed.fire()
                self.channel_busy_s[channel] += duration
                if held is not None:
                    held.busy = False
                    held.freed.fire()
                    held = None
            else:
                while ecc.busy:
                    yield ecc.freed
                ecc.busy = True
                yield occupancy
                ecc.busy = False
                ecc.freed.fire()
                self.ecc_busy_s[channel] += occupancy
                drain = duration - occupancy
                if drain > 0:
                    yield drain
        if held is not None:  # no transfer phase: free on exit
            held.busy = False
            held.freed.fire()
        self._finish(command, die, channel)

    def _worker(self, die: int, plane: int) -> Process:
        channel = self.topology.channel_of(die)
        queue = self._queues[die][plane]
        work = self._work[die][plane]
        cache_read = self.pipeline.cache_read
        while True:
            while not queue:
                yield work
            command = queue.popleft()
            array, ops, fused = _split_plan_fast(command.phase_plan())
            if command.kind is CommandKind.READ:
                # Sense into the plane's page buffer, then stream out.
                for duration in array:
                    yield duration
                    self.die_busy_s[die] += duration
                if cache_read and ops:
                    # Hand the page to the cache register and sense on.
                    cache = self._caches[die][plane]
                    while cache.busy:
                        yield cache.freed
                    cache.busy = True
                    if command.cache_busy_s > 0:  # tRCBSY handoff
                        yield command.cache_busy_s
                        self.die_busy_s[die] += command.cache_busy_s
                    self.engine.spawn(self._read_drain(
                        command, die, channel, cache, ops, fused
                    ))
                    continue  # completion happens in the drain
                yield from self._channel_section(ops, fused, channel)
            elif command.kind is CommandKind.PROGRAM:
                # Encode + stream in (bus frees for siblings), then
                # busy the plane with the ISPP.
                yield from self._channel_section(ops, fused, channel)
                for duration in array:
                    yield duration
                    self.die_busy_s[die] += duration
            else:  # ERASE: array-only, no data on the bus.
                for duration in array:
                    yield duration
                    self.die_busy_s[die] += duration
            self._finish(command, die, channel)


class CommandScheduler:
    """Dispatches die commands over the topology on one DES run."""

    def __init__(
        self,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
        fast_batch: bool = True,
    ):
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()
        self.fast_batch = fast_batch

    def run(
        self,
        commands: list[DieCommand],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Schedule a closed batch of commands; returns the full timeline.

        A thin run-to-drain wrapper over a fresh :class:`SchedulerCore`:
        ``queue_depth`` bounds how many commands are in flight at once
        (``None`` admits everything immediately), per-plane service is
        FIFO, and buses / ECC engines arbitrate among their dies in
        wake-up order.  Homogeneous (single-kind) batches take the
        batched stripe-reservation fast path — bit-exact with the
        generator machinery; ``fast_batch=False`` at construction forces
        the generator path (the equivalence oracle).  For a persistent
        queue that accepts submissions while earlier commands are in
        flight, use :class:`~repro.ssd.session.SsdSession` instead.
        """
        validate_batch(self.topology, commands, queue_depth)
        engine = SimEngine()
        core = SchedulerCore(engine, self.topology, self.pipeline)
        if self.fast_batch and _fast_eligible(commands):
            makespan = _run_fast_batch(
                core, commands, queue_depth, resident=False
            )
        else:
            engine.spawn(closed_admission(core, commands, queue_depth))
            core.start()
            makespan = engine.run()
        if len(core.completions) != len(commands):
            raise SimulationError(
                f"scheduler completed {len(core.completions)} of "
                f"{len(commands)} commands"
            )
        return ScheduleResult(
            completions=core.completions,
            makespan_s=makespan,
            die_busy_s=core.die_busy_s,
            channel_busy_s=core.channel_busy_s,
            ecc_busy_s=core.ecc_busy_s,
        )
