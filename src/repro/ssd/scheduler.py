"""DES-driven SSD command scheduler over a phase/resource model.

Commands are no longer two opaque scalars: each :class:`DieCommand`
carries (or derives) an explicit sequence of
:class:`~repro.nand.timing.CommandPhase` stages, and the scheduler
executes those phases against four kinds of serially-reusable resource:

* **array planes** — sense / ISPP program / erase busy time.  One worker
  process per plane drains that plane's queue, so multi-plane commands
  overlap ISPP (and sensing) inside one die;
* **channel buses** — page transfers.  Each bus arbitrates among the
  dies it serves through a :class:`~repro.sim.engine.Signal` wake-up;
* **per-channel ECC engines** — BCH encode / decode.  A pipelined engine
  is held only for its initiation interval (``CommandPhase.hold_s``)
  while the page still takes the full duration end to end;
* **per-plane cache registers** — the double buffer behind cache reads:
  after sensing, a page parks in the cache register and streams out
  while the plane already senses the next page.

Which overlaps are allowed is governed by :class:`PipelineConfig`:

* ``PipelineConfig()`` (all pipelining off) is the **paper-faithful**
  single-page-buffer controller FSM — every command serialises sense /
  (transfer + ECC as one fused bus section) per die, reproducing the
  PR 3 scheduler's timelines *exactly* (same completion order, same
  clock);
* ``cache_read`` lets reads sense page i+1 under the transfer of page i;
* ``multi_plane`` lets array phases of different planes overlap;
* ``pipelined_ecc`` splits the fused bus section: the bus is held only
  for the transfer while the ECC engine decodes page i as the bus
  streams page i+1, lifting the per-channel read ceiling.

The execution machinery is an **incremental** resource-reservation
core (:class:`SchedulerCore`): resident per-(die, plane) workers parked
on daemon wake-up signals accept :meth:`SchedulerCore.enqueue` calls at
any simulation time, while earlier commands are still in flight — the
substrate behind the open-loop :class:`~repro.ssd.session.SsdSession`.
:class:`CommandScheduler` is the classic closed-batch view: `run()`
spawns a fresh core plus a queue-depth-bounded admission process (the
NVMe-style host queue) and drains it to the batch makespan.  Everything
is deterministic: the same command list, topology, pipeline config and
queue depth produce the same completion order and the same final clock.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.nand.timing import CommandPhase, PhaseResource
from repro.sim.engine import Process, SimEngine, Signal
from repro.ssd.topology import SsdTopology


class CommandKind(enum.Enum):
    """Host-visible NAND command classes."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class PipelineConfig:
    """Which overlaps the command pipeline may exploit.

    The default (everything off) is the paper's non-pipelined
    single-page-buffer controller; :meth:`full` enables every overlap a
    MT29F-class part plus a section-pipelined BCH engine offers.
    """

    cache_read: bool = False
    multi_plane: bool = False
    pipelined_ecc: bool = False

    @classmethod
    def serial(cls) -> "PipelineConfig":
        """Paper-faithful non-pipelined configuration."""
        return cls()

    @classmethod
    def full(cls) -> "PipelineConfig":
        """Every modelled overlap enabled."""
        return cls(cache_read=True, multi_plane=True, pipelined_ecc=True)

    def describe(self) -> str:
        """Short label, e.g. ``serial`` or ``cache+ecc``."""
        parts = [
            name
            for name, on in (
                ("cache", self.cache_read),
                ("mplane", self.multi_plane),
                ("ecc", self.pipelined_ecc),
            )
            if on
        ]
        return "+".join(parts) if parts else "serial"


@dataclass(frozen=True)
class DieCommand:
    """One scheduled command against one die.

    ``die_s`` is the array-busy phase (sense, program or erase time from
    :class:`~repro.nand.timing.NandTimingModel`); ``channel_s`` is the
    channel-section occupancy (page transfer plus the channel ECC
    engine's encode/decode, zero for erases).  ``tag`` is the host's
    submission index — completions map back to host operations through
    it.  ``plane`` is the array plane the command lands on, and
    ``phases`` optionally carries the full stage decomposition; commands
    built from the two scalars get the classic decomposition (one fused
    channel section) via :meth:`phase_plan`.
    """

    kind: CommandKind
    die: int
    tag: int
    die_s: float
    channel_s: float = 0.0
    plane: int = 0
    phases: tuple[CommandPhase, ...] | None = None
    cache_busy_s: float = 0.0

    def __post_init__(self) -> None:
        if self.die_s < 0 or self.channel_s < 0:
            raise SimulationError("command phase durations must be non-negative")
        if self.plane < 0:
            raise SimulationError("plane must be non-negative")
        if self.cache_busy_s < 0:
            raise SimulationError("cache busy time must be non-negative")

    @classmethod
    def from_phases(
        cls,
        kind: CommandKind,
        die: int,
        tag: int,
        phases: tuple[CommandPhase, ...],
        plane: int = 0,
        cache_busy_s: float = 0.0,
    ) -> "DieCommand":
        """Build a command from an explicit phase sequence.

        The scalar ``die_s``/``channel_s`` views are derived as the
        summed plane and channel-section durations, so phase-built
        commands stay interchangeable with scalar-built ones under the
        serial (non-pipelined) configuration.
        """
        die_s = sum(
            p.duration_s for p in phases if p.resource is PhaseResource.PLANE
        )
        channel_s = sum(
            p.duration_s for p in phases if p.resource is not PhaseResource.PLANE
        )
        return cls(
            kind=kind, die=die, tag=tag, die_s=die_s, channel_s=channel_s,
            plane=plane, phases=tuple(phases), cache_busy_s=cache_busy_s,
        )

    def phase_plan(self) -> tuple[CommandPhase, ...]:
        """Explicit phases, deriving the classic decomposition if absent."""
        if self.phases is not None:
            return self.phases
        if self.kind is CommandKind.READ:
            return (
                CommandPhase(PhaseResource.PLANE, self.die_s),
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
            )
        if self.kind is CommandKind.PROGRAM:
            return (
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
                CommandPhase(PhaseResource.PLANE, self.die_s),
            )
        return (CommandPhase(PhaseResource.PLANE, self.die_s),)


@dataclass(frozen=True)
class CommandCompletion:
    """Timestamped completion of one command.

    ``submit_s`` is when the host handed the command to the session
    (submission-queue time); ``admit_s`` is when the in-flight window
    admitted (dispatched) it.  Closed-batch schedules submit everything
    at the batch start, so for them ``admit_s - submit_s`` is exactly
    the queue-depth admission wait.
    """

    tag: int
    die: int
    channel: int
    admit_s: float
    done_s: float
    submit_s: float | None = None

    @property
    def latency_s(self) -> float:
        """Dispatch-to-completion latency (queueing behind the die/bus)."""
        return self.done_s - self.admit_s

    @property
    def queue_s(self) -> float:
        """Submission-to-dispatch wait in the host queue."""
        return 0.0 if self.submit_s is None else self.admit_s - self.submit_s

    @property
    def total_latency_s(self) -> float:
        """Submission-to-completion latency, host queueing included."""
        base = self.admit_s if self.submit_s is None else self.submit_s
        return self.done_s - base


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run."""

    completions: list[CommandCompletion] = field(default_factory=list)
    makespan_s: float = 0.0
    die_busy_s: list[float] = field(default_factory=list)
    channel_busy_s: list[float] = field(default_factory=list)
    ecc_busy_s: list[float] = field(default_factory=list)

    def latency_by_tag(self) -> dict[int, float]:
        """Per-command latency keyed by submission tag."""
        return {c.tag: c.latency_s for c in self.completions}

    def queue_by_tag(self) -> dict[int, float]:
        """Submission-to-dispatch wait keyed by submission tag."""
        return {c.tag: c.queue_s for c in self.completions}

    def completion_order(self) -> list[int]:
        """Submission tags in completion order."""
        return [c.tag for c in self.completions]

    def channel_utilisation(self) -> list[float]:
        """Busy fraction of each channel bus over the makespan.

        Under the serial configuration the ECC encode/decode occupies the
        bus (fused section) and is counted here; under ``pipelined_ecc``
        it is accounted separately in :attr:`ecc_busy_s`.
        """
        if self.makespan_s <= 0:
            return [0.0 for _ in self.channel_busy_s]
        return [busy / self.makespan_s for busy in self.channel_busy_s]

    def latencies(self) -> list[float]:
        """Per-command latencies in completion order."""
        return [c.latency_s for c in self.completions]


class _Lock:
    """Serially-reusable resource guarded by a wake-up signal."""

    def __init__(self, engine: SimEngine):
        self.busy = False
        self.freed = engine.signal()


def validate_batch(
    topology: SsdTopology,
    commands: list[DieCommand],
    queue_depth: int | None,
) -> None:
    """Reject out-of-range dies, duplicate tags and bad queue depths.

    Duplicate submission tags would silently corrupt the completion map,
    so they are an error within one scheduled batch.
    """
    seen_tags: set[int] = set()
    for command in commands:
        if not 0 <= command.die < topology.dies:
            raise SimulationError(
                f"command die {command.die} outside topology "
                f"({topology.dies} dies)"
            )
        if command.tag in seen_tags:
            raise SimulationError(
                f"duplicate command tag {command.tag}: tags must be "
                "unique within one scheduled batch"
            )
        seen_tags.add(command.tag)
    if queue_depth is not None and queue_depth < 1:
        raise SimulationError("queue depth must be >= 1")


def closed_admission(
    core: "SchedulerCore",
    commands: list[DieCommand],
    queue_depth: int | None,
    wake_workers: bool = False,
) -> Process:
    """Admit a closed batch through a bounded in-flight window.

    ``queue_depth`` bounds how many commands are in flight at once
    (``None`` admits everything immediately — an infinitely deep
    queue).  Commands are admitted in list order.  ``wake_workers``
    pre-fires every worker's wake-up in (die, plane) order before the
    first admission — required when the core's workers are already
    resident (parked), so they resume in the same deterministic order
    as a fresh core's worker start-up.
    """
    limit = len(commands) if queue_depth is None else queue_depth
    submit_s = core.engine.now_s  # the whole batch is submitted up front
    if wake_workers:
        core.wake_workers()
    for command in commands:
        while core.in_flight >= limit:
            yield core.completed
        core.enqueue(command, submit_s=submit_s)


class SchedulerCore:
    """Incremental resource-reservation core over one topology.

    Owns the serially-reusable resources (planes, channel buses, ECC
    engines, per-plane cache registers) and one resident dispatch worker
    per (die, plane), parked on a daemon wake-up signal while idle.
    :meth:`enqueue` accepts a command at any simulation time — including
    while earlier commands are still in flight — making the core the
    substrate for both the classic closed-batch
    :class:`CommandScheduler` and the open-loop
    :class:`~repro.ssd.session.SsdSession`.

    Completions are appended to :attr:`completions`; :attr:`completed`
    fires once per completion, and synchronous ``on_finish`` callbacks
    (called after the fire) let a session route completions without a
    reaper process of its own.
    """

    def __init__(
        self,
        engine: SimEngine,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
    ):
        self.engine = engine
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()
        self.planes = (
            topology.geometry.planes if self.pipeline.multi_plane else 1
        )
        self.completions: list[CommandCompletion] = []
        self.die_busy_s = [0.0] * topology.dies
        self.channel_busy_s = [0.0] * topology.channels
        self.ecc_busy_s = [0.0] * topology.channels
        self.completed = engine.signal()
        self.on_finish: list = []
        self.in_flight = 0
        self._buses = [_Lock(engine) for _ in range(topology.channels)]
        self._engines = [_Lock(engine) for _ in range(topology.channels)]
        self._caches = [
            [_Lock(engine) for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._queues: list[list[deque[DieCommand]]] = [
            [deque() for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._work = [
            [engine.signal(daemon=True) for _ in range(self.planes)]
            for _ in range(topology.dies)
        ]
        self._admit_s: dict[int, float] = {}
        self._submit_s: dict[int, float | None] = {}
        self._live_tags: set[int] = set()
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the resident dispatch workers ((die, plane) order)."""
        if self._started:
            raise SimulationError("scheduler core already started")
        self._started = True
        for die in range(self.topology.dies):
            for plane in range(self.planes):
                self.engine.spawn(self._worker(die, plane))

    @property
    def idle(self) -> bool:
        """True when no command is queued or executing."""
        return self.in_flight == 0

    def wake_workers(self) -> None:
        """Fire every parked worker's wake-up in (die, plane) order.

        Before admitting a closed batch into a resident core, this puts
        the workers' resume events in the same deterministic order as a
        fresh core's start-up, so batch timelines are reproducible
        regardless of which worker went idle last.
        """
        for die_signals in self._work:
            for signal in die_signals:
                signal.fire()

    def reset_accounting(self) -> None:
        """Zero the busy accumulators (only legal while idle)."""
        if not self.idle:
            raise SimulationError(
                "cannot reset accounting with commands in flight"
            )
        self.die_busy_s = [0.0] * self.topology.dies
        self.channel_busy_s = [0.0] * self.topology.channels
        self.ecc_busy_s = [0.0] * self.topology.channels

    # -- submission --------------------------------------------------------------

    def enqueue(
        self, command: DieCommand, submit_s: float | None = None
    ) -> None:
        """Admit one command into the in-flight set at the current time.

        ``submit_s`` optionally records when the host originally
        submitted the command (for queueing-time accounting); the admit
        (dispatch) time is always the current simulation time.  The tag
        must be unique among commands currently in flight.
        """
        if not 0 <= command.die < self.topology.dies:
            raise SimulationError(
                f"command die {command.die} outside topology "
                f"({self.topology.dies} dies)"
            )
        if command.tag in self._live_tags:
            raise SimulationError(
                f"duplicate command tag {command.tag}: tags must be "
                "unique among in-flight commands"
            )
        self._live_tags.add(command.tag)
        self.in_flight += 1
        self._admit_s[command.tag] = self.engine.now_s
        self._submit_s[command.tag] = submit_s
        slot = command.plane % self.planes
        self._queues[command.die][slot].append(command)
        self._work[command.die][slot].fire()

    # -- internals ---------------------------------------------------------------

    def _finish(self, command: DieCommand, die: int, channel: int) -> None:
        tag = command.tag
        completion = CommandCompletion(
            tag=tag,
            die=die,
            channel=channel,
            admit_s=self._admit_s.pop(tag),
            done_s=self.engine.now_s,
            submit_s=self._submit_s.pop(tag),
        )
        self.completions.append(completion)
        self._live_tags.discard(tag)
        self.in_flight -= 1
        self.completed.fire()
        for callback in self.on_finish:
            callback(completion)

    def _hold(self, lock: _Lock, duration_s: float) -> Process:
        """Acquire a resource, hold it for ``duration_s``, release."""
        while lock.busy:
            yield lock.freed
        lock.busy = True
        yield duration_s
        lock.busy = False
        lock.freed.fire()

    def _channel_section(
        self,
        phases: list[CommandPhase],
        channel: int,
        cache: _Lock | None,
    ) -> Process:
        """Run a command's channel/ECC phases, freeing ``cache`` once
        the data has left the cache register (bus transfer done)."""
        bus, ecc = self._buses[channel], self._engines[channel]
        if not self.pipeline.pipelined_ecc:
            # Paper-faithful fused section: transfer + encode/decode
            # occupy the bus as one non-pipelined unit (the structural
            # hazard of the single-page-buffer controller FSM).
            total = sum(p.duration_s for p in phases)
            yield from self._hold(bus, total)
            self.channel_busy_s[channel] += total
            if cache is not None:
                cache.busy = False
                cache.freed.fire()
            return
        for phase in phases:
            if phase.resource is PhaseResource.CHANNEL:
                yield from self._hold(bus, phase.duration_s)
                self.channel_busy_s[channel] += phase.duration_s
                if cache is not None:
                    cache.busy = False
                    cache.freed.fire()
                    cache = None
            else:  # ECC: held for the initiation interval only.
                yield from self._hold(ecc, phase.occupancy_s)
                self.ecc_busy_s[channel] += phase.occupancy_s
                drain = phase.duration_s - phase.occupancy_s
                if drain > 0:
                    yield drain
        if cache is not None:  # no transfer phase: free on exit
            cache.busy = False
            cache.freed.fire()

    def _read_drain(
        self,
        command: DieCommand,
        die: int,
        channel: int,
        cache: _Lock,
        phases: list[CommandPhase],
    ) -> Process:
        """Stream a cached page out and complete its command."""
        yield from self._channel_section(phases, channel, cache)
        self._finish(command, die, channel)

    def _worker(self, die: int, plane: int) -> Process:
        channel = self.topology.channel_of(die)
        queue = self._queues[die][plane]
        work = self._work[die][plane]
        while True:
            while not queue:
                yield work
            command = queue.popleft()
            plan = command.phase_plan()
            array = [
                p for p in plan if p.resource is PhaseResource.PLANE
            ]
            channel_phases = [
                p for p in plan if p.resource is not PhaseResource.PLANE
            ]
            if command.kind is CommandKind.READ:
                # Sense into the plane's page buffer, then stream out.
                for phase in array:
                    yield phase.duration_s
                    self.die_busy_s[die] += phase.duration_s
                if self.pipeline.cache_read and channel_phases:
                    # Hand the page to the cache register and sense on.
                    cache = self._caches[die][plane]
                    while cache.busy:
                        yield cache.freed
                    cache.busy = True
                    if command.cache_busy_s > 0:  # tRCBSY handoff
                        yield command.cache_busy_s
                        self.die_busy_s[die] += command.cache_busy_s
                    self.engine.spawn(self._read_drain(
                        command, die, channel, cache, channel_phases
                    ))
                    continue  # completion happens in the drain
                yield from self._channel_section(channel_phases, channel, None)
            elif command.kind is CommandKind.PROGRAM:
                # Encode + stream in (bus frees for siblings), then
                # busy the plane with the ISPP.
                yield from self._channel_section(channel_phases, channel, None)
                for phase in array:
                    yield phase.duration_s
                    self.die_busy_s[die] += phase.duration_s
            else:  # ERASE: array-only, no data on the bus.
                for phase in array:
                    yield phase.duration_s
                    self.die_busy_s[die] += phase.duration_s
            self._finish(command, die, channel)


class CommandScheduler:
    """Dispatches die commands over the topology on one DES run."""

    def __init__(
        self,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
    ):
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()

    def run(
        self,
        commands: list[DieCommand],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Schedule a closed batch of commands; returns the full timeline.

        A thin run-to-drain wrapper over a fresh :class:`SchedulerCore`:
        ``queue_depth`` bounds how many commands are in flight at once
        (``None`` admits everything immediately), per-plane service is
        FIFO, and buses / ECC engines arbitrate among their dies in
        wake-up order.  For a persistent queue that accepts submissions
        while earlier commands are in flight, use
        :class:`~repro.ssd.session.SsdSession` instead.
        """
        validate_batch(self.topology, commands, queue_depth)
        engine = SimEngine()
        core = SchedulerCore(engine, self.topology, self.pipeline)
        engine.spawn(closed_admission(core, commands, queue_depth))
        core.start()
        makespan = engine.run()
        if len(core.completions) != len(commands):
            raise SimulationError(
                f"scheduler completed {len(core.completions)} of "
                f"{len(commands)} commands"
            )
        return ScheduleResult(
            completions=core.completions,
            makespan_s=makespan,
            die_busy_s=core.die_busy_s,
            channel_busy_s=core.channel_busy_s,
            ecc_busy_s=core.ecc_busy_s,
        )
