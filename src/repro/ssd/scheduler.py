"""DES-driven SSD command scheduler over a phase/resource model.

Commands are no longer two opaque scalars: each :class:`DieCommand`
carries (or derives) an explicit sequence of
:class:`~repro.nand.timing.CommandPhase` stages, and the scheduler
executes those phases against four kinds of serially-reusable resource:

* **array planes** — sense / ISPP program / erase busy time.  One worker
  process per plane drains that plane's queue, so multi-plane commands
  overlap ISPP (and sensing) inside one die;
* **channel buses** — page transfers.  Each bus arbitrates among the
  dies it serves through a :class:`~repro.sim.engine.Signal` wake-up;
* **per-channel ECC engines** — BCH encode / decode.  A pipelined engine
  is held only for its initiation interval (``CommandPhase.hold_s``)
  while the page still takes the full duration end to end;
* **per-plane cache registers** — the double buffer behind cache reads:
  after sensing, a page parks in the cache register and streams out
  while the plane already senses the next page.

Which overlaps are allowed is governed by :class:`PipelineConfig`:

* ``PipelineConfig()`` (all pipelining off) is the **paper-faithful**
  single-page-buffer controller FSM — every command serialises sense /
  (transfer + ECC as one fused bus section) per die, reproducing the
  PR 3 scheduler's timelines *exactly* (same completion order, same
  clock);
* ``cache_read`` lets reads sense page i+1 under the transfer of page i;
* ``multi_plane`` lets array phases of different planes overlap;
* ``pipelined_ecc`` splits the fused bus section: the bus is held only
  for the transfer while the ECC engine decodes page i as the bus
  streams page i+1, lifting the per-channel read ceiling.

An admission process bounds in-flight commands at ``queue_depth`` (the
NVMe-style host queue).  Everything is deterministic: the same command
list, topology, pipeline config and queue depth produce the same
completion order and the same final clock.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.nand.timing import CommandPhase, PhaseResource
from repro.sim.engine import Process, SimEngine, Signal
from repro.ssd.topology import SsdTopology


class CommandKind(enum.Enum):
    """Host-visible NAND command classes."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class PipelineConfig:
    """Which overlaps the command pipeline may exploit.

    The default (everything off) is the paper's non-pipelined
    single-page-buffer controller; :meth:`full` enables every overlap a
    MT29F-class part plus a section-pipelined BCH engine offers.
    """

    cache_read: bool = False
    multi_plane: bool = False
    pipelined_ecc: bool = False

    @classmethod
    def serial(cls) -> "PipelineConfig":
        """Paper-faithful non-pipelined configuration."""
        return cls()

    @classmethod
    def full(cls) -> "PipelineConfig":
        """Every modelled overlap enabled."""
        return cls(cache_read=True, multi_plane=True, pipelined_ecc=True)

    def describe(self) -> str:
        """Short label, e.g. ``serial`` or ``cache+ecc``."""
        parts = [
            name
            for name, on in (
                ("cache", self.cache_read),
                ("mplane", self.multi_plane),
                ("ecc", self.pipelined_ecc),
            )
            if on
        ]
        return "+".join(parts) if parts else "serial"


@dataclass(frozen=True)
class DieCommand:
    """One scheduled command against one die.

    ``die_s`` is the array-busy phase (sense, program or erase time from
    :class:`~repro.nand.timing.NandTimingModel`); ``channel_s`` is the
    channel-section occupancy (page transfer plus the channel ECC
    engine's encode/decode, zero for erases).  ``tag`` is the host's
    submission index — completions map back to host operations through
    it.  ``plane`` is the array plane the command lands on, and
    ``phases`` optionally carries the full stage decomposition; commands
    built from the two scalars get the classic decomposition (one fused
    channel section) via :meth:`phase_plan`.
    """

    kind: CommandKind
    die: int
    tag: int
    die_s: float
    channel_s: float = 0.0
    plane: int = 0
    phases: tuple[CommandPhase, ...] | None = None
    cache_busy_s: float = 0.0

    def __post_init__(self) -> None:
        if self.die_s < 0 or self.channel_s < 0:
            raise SimulationError("command phase durations must be non-negative")
        if self.plane < 0:
            raise SimulationError("plane must be non-negative")
        if self.cache_busy_s < 0:
            raise SimulationError("cache busy time must be non-negative")

    @classmethod
    def from_phases(
        cls,
        kind: CommandKind,
        die: int,
        tag: int,
        phases: tuple[CommandPhase, ...],
        plane: int = 0,
        cache_busy_s: float = 0.0,
    ) -> "DieCommand":
        """Build a command from an explicit phase sequence.

        The scalar ``die_s``/``channel_s`` views are derived as the
        summed plane and channel-section durations, so phase-built
        commands stay interchangeable with scalar-built ones under the
        serial (non-pipelined) configuration.
        """
        die_s = sum(
            p.duration_s for p in phases if p.resource is PhaseResource.PLANE
        )
        channel_s = sum(
            p.duration_s for p in phases if p.resource is not PhaseResource.PLANE
        )
        return cls(
            kind=kind, die=die, tag=tag, die_s=die_s, channel_s=channel_s,
            plane=plane, phases=tuple(phases), cache_busy_s=cache_busy_s,
        )

    def phase_plan(self) -> tuple[CommandPhase, ...]:
        """Explicit phases, deriving the classic decomposition if absent."""
        if self.phases is not None:
            return self.phases
        if self.kind is CommandKind.READ:
            return (
                CommandPhase(PhaseResource.PLANE, self.die_s),
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
            )
        if self.kind is CommandKind.PROGRAM:
            return (
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
                CommandPhase(PhaseResource.PLANE, self.die_s),
            )
        return (CommandPhase(PhaseResource.PLANE, self.die_s),)


@dataclass(frozen=True)
class CommandCompletion:
    """Timestamped completion of one command."""

    tag: int
    die: int
    channel: int
    admit_s: float
    done_s: float

    @property
    def latency_s(self) -> float:
        """Host-visible latency including queueing behind the die/bus."""
        return self.done_s - self.admit_s


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run."""

    completions: list[CommandCompletion] = field(default_factory=list)
    makespan_s: float = 0.0
    die_busy_s: list[float] = field(default_factory=list)
    channel_busy_s: list[float] = field(default_factory=list)
    ecc_busy_s: list[float] = field(default_factory=list)

    def latency_by_tag(self) -> dict[int, float]:
        """Per-command latency keyed by submission tag."""
        return {c.tag: c.latency_s for c in self.completions}

    def completion_order(self) -> list[int]:
        """Submission tags in completion order."""
        return [c.tag for c in self.completions]

    def channel_utilisation(self) -> list[float]:
        """Busy fraction of each channel bus over the makespan.

        Under the serial configuration the ECC encode/decode occupies the
        bus (fused section) and is counted here; under ``pipelined_ecc``
        it is accounted separately in :attr:`ecc_busy_s`.
        """
        if self.makespan_s <= 0:
            return [0.0 for _ in self.channel_busy_s]
        return [busy / self.makespan_s for busy in self.channel_busy_s]

    def latencies(self) -> list[float]:
        """Per-command latencies in completion order."""
        return [c.latency_s for c in self.completions]


class _Lock:
    """Serially-reusable resource guarded by a wake-up signal."""

    def __init__(self, engine: SimEngine):
        self.busy = False
        self.freed = engine.signal()


class CommandScheduler:
    """Dispatches die commands over the topology on one DES run."""

    def __init__(
        self,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
    ):
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()

    def run(
        self,
        commands: list[DieCommand],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Schedule a closed batch of commands; returns the full timeline.

        ``queue_depth`` bounds how many commands are in flight at once
        (``None`` admits everything immediately — an infinitely deep
        queue).  Commands are admitted in list order; per-plane service
        is FIFO; buses and ECC engines arbitrate among their dies in
        wake-up order.  Duplicate submission tags are rejected — they
        would silently corrupt the completion map.
        """
        topology = self.topology
        config = self.pipeline
        seen_tags: set[int] = set()
        for command in commands:
            if not 0 <= command.die < topology.dies:
                raise SimulationError(
                    f"command die {command.die} outside topology "
                    f"({topology.dies} dies)"
                )
            if command.tag in seen_tags:
                raise SimulationError(
                    f"duplicate command tag {command.tag}: tags must be "
                    "unique within one scheduled batch"
                )
            seen_tags.add(command.tag)
        if queue_depth is not None and queue_depth < 1:
            raise SimulationError("queue depth must be >= 1")

        planes = topology.geometry.planes if config.multi_plane else 1
        engine = SimEngine()
        result = ScheduleResult(
            die_busy_s=[0.0] * topology.dies,
            channel_busy_s=[0.0] * topology.channels,
            ecc_busy_s=[0.0] * topology.channels,
        )
        buses = [_Lock(engine) for _ in range(topology.channels)]
        engines = [_Lock(engine) for _ in range(topology.channels)]
        caches = [
            [_Lock(engine) for _ in range(planes)]
            for _ in range(topology.dies)
        ]
        queues: list[list[deque[DieCommand]]] = [
            [deque() for _ in range(planes)] for _ in range(topology.dies)
        ]
        work = [
            [engine.signal() for _ in range(planes)]
            for _ in range(topology.dies)
        ]
        completed = engine.signal()
        state = {"in_flight": 0, "closed": False}
        admit_s: dict[int, float] = {}

        def finish(command: DieCommand, die: int, channel: int) -> None:
            result.completions.append(CommandCompletion(
                tag=command.tag,
                die=die,
                channel=channel,
                admit_s=admit_s[command.tag],
                done_s=engine.now_s,
            ))
            state["in_flight"] -= 1
            completed.fire()

        def hold(lock: _Lock, duration_s: float) -> Process:
            """Acquire a resource, hold it for ``duration_s``, release."""
            while lock.busy:
                yield lock.freed
            lock.busy = True
            yield duration_s
            lock.busy = False
            lock.freed.fire()

        def channel_section(
            phases: list[CommandPhase],
            channel: int,
            cache: _Lock | None,
        ) -> Process:
            """Run a command's channel/ECC phases, freeing ``cache`` once
            the data has left the cache register (bus transfer done)."""
            bus, ecc = buses[channel], engines[channel]
            if not config.pipelined_ecc:
                # Paper-faithful fused section: transfer + encode/decode
                # occupy the bus as one non-pipelined unit (the structural
                # hazard of the single-page-buffer controller FSM).
                total = sum(p.duration_s for p in phases)
                yield from hold(bus, total)
                result.channel_busy_s[channel] += total
                if cache is not None:
                    cache.busy = False
                    cache.freed.fire()
                return
            for phase in phases:
                if phase.resource is PhaseResource.CHANNEL:
                    yield from hold(bus, phase.duration_s)
                    result.channel_busy_s[channel] += phase.duration_s
                    if cache is not None:
                        cache.busy = False
                        cache.freed.fire()
                        cache = None
                else:  # ECC: held for the initiation interval only.
                    yield from hold(ecc, phase.occupancy_s)
                    result.ecc_busy_s[channel] += phase.occupancy_s
                    drain = phase.duration_s - phase.occupancy_s
                    if drain > 0:
                        yield drain
            if cache is not None:  # no transfer phase: free on exit
                cache.busy = False
                cache.freed.fire()

        def read_drain(
            command: DieCommand,
            die: int,
            channel: int,
            cache: _Lock,
            phases: list[CommandPhase],
        ) -> Process:
            """Stream a cached page out and complete its command."""
            yield from channel_section(phases, channel, cache)
            finish(command, die, channel)

        def admission() -> Process:
            limit = len(commands) if queue_depth is None else queue_depth
            for command in commands:
                while state["in_flight"] >= limit:
                    yield completed
                state["in_flight"] += 1
                admit_s[command.tag] = engine.now_s
                slot = command.plane % planes
                queues[command.die][slot].append(command)
                work[command.die][slot].fire()
            state["closed"] = True
            for die_signals in work:
                for signal in die_signals:
                    signal.fire()

        def worker(die: int, plane: int) -> Process:
            channel = topology.channel_of(die)
            queue = queues[die][plane]
            while True:
                while not queue:
                    if state["closed"]:
                        return
                    yield work[die][plane]
                command = queue.popleft()
                plan = command.phase_plan()
                array = [
                    p for p in plan if p.resource is PhaseResource.PLANE
                ]
                channel_phases = [
                    p for p in plan if p.resource is not PhaseResource.PLANE
                ]
                if command.kind is CommandKind.READ:
                    # Sense into the plane's page buffer, then stream out.
                    for phase in array:
                        yield phase.duration_s
                        result.die_busy_s[die] += phase.duration_s
                    if config.cache_read and channel_phases:
                        # Hand the page to the cache register and sense on.
                        cache = caches[die][plane]
                        while cache.busy:
                            yield cache.freed
                        cache.busy = True
                        if command.cache_busy_s > 0:  # tRCBSY handoff
                            yield command.cache_busy_s
                            result.die_busy_s[die] += command.cache_busy_s
                        engine.spawn(read_drain(
                            command, die, channel, cache, channel_phases
                        ))
                        continue  # completion happens in the drain
                    yield from channel_section(channel_phases, channel, None)
                elif command.kind is CommandKind.PROGRAM:
                    # Encode + stream in (bus frees for siblings), then
                    # busy the plane with the ISPP.
                    yield from channel_section(channel_phases, channel, None)
                    for phase in array:
                        yield phase.duration_s
                        result.die_busy_s[die] += phase.duration_s
                else:  # ERASE: array-only, no data on the bus.
                    for phase in array:
                        yield phase.duration_s
                        result.die_busy_s[die] += phase.duration_s
                finish(command, die, channel)

        engine.spawn(admission())
        for die in range(topology.dies):
            for plane in range(planes):
                engine.spawn(worker(die, plane))
        result.makespan_s = engine.run()
        if len(result.completions) != len(commands):
            raise SimulationError(
                f"scheduler completed {len(result.completions)} of "
                f"{len(commands)} commands"
            )
        return result
