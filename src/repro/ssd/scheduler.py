"""DES-driven SSD command scheduler over a phase/resource model.

Commands are no longer two opaque scalars: each :class:`DieCommand`
carries (or derives) an explicit sequence of
:class:`~repro.nand.timing.CommandPhase` stages, and the scheduler
executes those phases against four kinds of serially-reusable resource:

* **array planes** — sense / ISPP program / erase busy time.  One worker
  process per plane drains that plane's queue, so multi-plane commands
  overlap ISPP (and sensing) inside one die;
* **channel buses** — page transfers.  Each bus arbitrates among the
  dies it serves through a :class:`~repro.sim.engine.Signal` wake-up;
* **per-channel ECC engines** — BCH encode / decode.  A pipelined engine
  is held only for its initiation interval (``CommandPhase.hold_s``)
  while the page still takes the full duration end to end;
* **per-plane cache registers** — the double buffer behind cache reads:
  after sensing, a page parks in the cache register and streams out
  while the plane already senses the next page.

Which overlaps are allowed is governed by :class:`PipelineConfig`:

* ``PipelineConfig()`` (all pipelining off) is the **paper-faithful**
  single-page-buffer controller FSM — every command serialises sense /
  (transfer + ECC as one fused bus section) per die, reproducing the
  PR 3 scheduler's timelines *exactly* (same completion order, same
  clock);
* ``cache_read`` lets reads sense page i+1 under the transfer of page i;
* ``multi_plane`` lets array phases of different planes overlap;
* ``pipelined_ecc`` splits the fused bus section: the bus is held only
  for the transfer while the ECC engine decodes page i as the bus
  streams page i+1, lifting the per-channel read ceiling.

The execution machinery is an **incremental** resource-reservation
core (:class:`SchedulerCore`): resident per-(die, plane) dispatchers
accept :meth:`SchedulerCore.enqueue` calls at any simulation time,
while earlier commands are still in flight — the substrate behind the
open-loop :class:`~repro.ssd.session.SsdSession`.  The dispatchers come
in two bit-exact implementations: generator workers parked on daemon
wake-up signals (``flat=False``, the readable oracle) and the **flat
dispatch core** (``flat=True``, the default everywhere performance
matters) — coroutine-free state-machine frames scheduled directly on
the engine's event list and advanced by a burst handler (see the
"flat dispatch core" section below).  :class:`CommandScheduler` is the
classic closed-batch view: `run()` spawns a fresh core plus a
queue-depth-bounded admission process (the NVMe-style host queue) and
drains it to the batch makespan.  Everything is deterministic: the same
command list, topology, pipeline config and queue depth produce the
same completion order and the same final clock.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from heapq import heappop, heappush
from math import inf
from typing import NamedTuple

from repro.errors import SimulationError
from repro.nand.timing import CommandPhase, PhaseResource
from repro.obs.trace import TRACK_BUS, TRACK_ECC, TRACK_PLANE, TRACK_QUEUE
from repro.sim.engine import Process, SimEngine
from repro.ssd.topology import SsdTopology


class CommandKind(enum.Enum):
    """Host-visible NAND command classes."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


class CommandOrigin(enum.Enum):
    """Who issued a command — its scheduling priority class.

    ``HOST`` commands carry host I/O; ``GC`` commands are garbage
    collection's migration reads/programs and victim erases placed on
    the same timeline.  A core constructed with ``host_priority=True``
    lets a queued host command jump queued GC work on its plane (GC
    stays strictly background); origins also split the trace-span kind
    space, so Perfetto shows GC-vs-host plane contention directly.
    """

    HOST = "host"
    GC = "gc"


@dataclass(frozen=True)
class PipelineConfig:
    """Which overlaps the command pipeline may exploit.

    The default (everything off) is the paper's non-pipelined
    single-page-buffer controller; :meth:`full` enables every overlap a
    MT29F-class part plus a section-pipelined BCH engine offers.
    """

    cache_read: bool = False
    multi_plane: bool = False
    pipelined_ecc: bool = False
    #: Tiered read-ahead: give each plane's cache register a second
    #: buffer, so a plane may sense two pages ahead of the bus across
    #: sequential same-plane reads (requires ``cache_read``).  Opt-in
    #: — deliberately *not* part of :meth:`full`, whose timelines are
    #: equivalence-locked across the benchmark trajectory.
    read_ahead: bool = False

    @classmethod
    def serial(cls) -> "PipelineConfig":
        """Paper-faithful non-pipelined configuration."""
        return cls()

    @classmethod
    def full(cls) -> "PipelineConfig":
        """Every modelled overlap enabled (read-ahead stays opt-in)."""
        return cls(cache_read=True, multi_plane=True, pipelined_ecc=True)

    def describe(self) -> str:
        """Short label, e.g. ``serial`` or ``cache+ecc``."""
        parts = [
            name
            for name, on in (
                ("cache", self.cache_read),
                ("mplane", self.multi_plane),
                ("ecc", self.pipelined_ecc),
                ("ra", self.read_ahead),
            )
            if on
        ]
        return "+".join(parts) if parts else "serial"


@dataclass(frozen=True)
class DieCommand:
    """One scheduled command against one die.

    ``die_s`` is the array-busy phase (sense, program or erase time from
    :class:`~repro.nand.timing.NandTimingModel`); ``channel_s`` is the
    channel-section occupancy (page transfer plus the channel ECC
    engine's encode/decode, zero for erases).  ``tag`` is the host's
    submission index — completions map back to host operations through
    it.  ``plane`` is the array plane the command lands on, and
    ``phases`` optionally carries the full stage decomposition; commands
    built from the two scalars get the classic decomposition (one fused
    channel section) via :meth:`phase_plan`.
    """

    kind: CommandKind
    die: int
    tag: int
    die_s: float
    channel_s: float = 0.0
    plane: int = 0
    phases: tuple[CommandPhase, ...] | None = None
    cache_busy_s: float = 0.0
    #: Priority class (see :class:`CommandOrigin`): GC-origin commands
    #: yield to queued host work on a ``host_priority`` core and emit
    #: ``gc-*`` trace-span kinds.
    origin: CommandOrigin = CommandOrigin.HOST

    def __post_init__(self) -> None:
        if self.die_s < 0 or self.channel_s < 0:
            raise SimulationError("command phase durations must be non-negative")
        if self.plane < 0:
            raise SimulationError("plane must be non-negative")
        if self.cache_busy_s < 0:
            raise SimulationError("cache busy time must be non-negative")

    @classmethod
    def from_phases(
        cls,
        kind: CommandKind,
        die: int,
        tag: int,
        phases: tuple[CommandPhase, ...],
        plane: int = 0,
        cache_busy_s: float = 0.0,
        origin: CommandOrigin = CommandOrigin.HOST,
    ) -> "DieCommand":
        """Build a command from an explicit phase sequence.

        The scalar ``die_s``/``channel_s`` views are derived as the
        summed plane and channel-section durations, so phase-built
        commands stay interchangeable with scalar-built ones under the
        serial (non-pipelined) configuration.
        """
        die_s = sum(
            p.duration_s for p in phases if p.resource is PhaseResource.PLANE
        )
        channel_s = sum(
            p.duration_s for p in phases if p.resource is not PhaseResource.PLANE
        )
        return cls(
            kind=kind, die=die, tag=tag, die_s=die_s, channel_s=channel_s,
            plane=plane, phases=tuple(phases), cache_busy_s=cache_busy_s,
            origin=origin,
        )

    def phase_plan(self) -> tuple[CommandPhase, ...]:
        """Explicit phases, deriving the classic decomposition if absent."""
        if self.phases is not None:
            return self.phases
        if self.kind is CommandKind.READ:
            return (
                CommandPhase(PhaseResource.PLANE, self.die_s),
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
            )
        if self.kind is CommandKind.PROGRAM:
            return (
                CommandPhase(PhaseResource.CHANNEL, self.channel_s),
                CommandPhase(PhaseResource.PLANE, self.die_s),
            )
        return (CommandPhase(PhaseResource.PLANE, self.die_s),)


class CommandCompletion(NamedTuple):
    """Timestamped completion of one command.

    ``submit_s`` is when the host handed the command to the session
    (submission-queue time); ``admit_s`` is when the in-flight window
    admitted (dispatched) it.  Closed-batch schedules submit everything
    at the batch start, so for them ``admit_s - submit_s`` is exactly
    the queue-depth admission wait.

    A named tuple rather than a dataclass: the flat dispatch core
    constructs one per command on its hottest path, and tuple
    construction skips ``__init__``/``__setattr__`` entirely.
    """

    tag: int
    die: int
    channel: int
    admit_s: float
    done_s: float
    submit_s: float | None = None

    @property
    def latency_s(self) -> float:
        """Dispatch-to-completion latency (queueing behind the die/bus)."""
        return self.done_s - self.admit_s

    @property
    def queue_s(self) -> float:
        """Submission-to-dispatch wait in the host queue."""
        return 0.0 if self.submit_s is None else self.admit_s - self.submit_s

    @property
    def total_latency_s(self) -> float:
        """Submission-to-completion latency, host queueing included."""
        base = self.admit_s if self.submit_s is None else self.submit_s
        return self.done_s - base


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run."""

    completions: list[CommandCompletion] = field(default_factory=list)
    makespan_s: float = 0.0
    die_busy_s: list[float] = field(default_factory=list)
    channel_busy_s: list[float] = field(default_factory=list)
    ecc_busy_s: list[float] = field(default_factory=list)

    def latency_by_tag(self) -> dict[int, float]:
        """Per-command latency keyed by submission tag."""
        return {c.tag: c.latency_s for c in self.completions}

    def queue_by_tag(self) -> dict[int, float]:
        """Submission-to-dispatch wait keyed by submission tag."""
        return {c.tag: c.queue_s for c in self.completions}

    def completion_order(self) -> list[int]:
        """Submission tags in completion order."""
        return [c.tag for c in self.completions]

    def channel_utilisation(self) -> list[float]:
        """Busy fraction of each channel bus over the makespan.

        Under the serial configuration the ECC encode/decode occupies the
        bus (fused section) and is counted here; under ``pipelined_ecc``
        it is accounted separately in :attr:`ecc_busy_s`.
        """
        if self.makespan_s <= 0:
            return [0.0 for _ in self.channel_busy_s]
        return [busy / self.makespan_s for busy in self.channel_busy_s]

    def latencies(self) -> list[float]:
        """Per-command latencies in completion order."""
        return [c.latency_s for c in self.completions]


class _Lock:
    """Serially-reusable resource guarded by a wake-up signal.

    ``freed`` is a *handoff* signal: every waiter sits in a
    ``while busy: yield freed`` re-check loop, the one discipline for
    which waking only the head waiter is observably identical to waking
    all of them (see the engine module's determinism contract) — so
    releasing a contended bus no longer schedules a no-op wake-up for
    every other queued worker.

    ``busy`` is a boolean for buses and ECC engines; cache-register
    locks treat it as a small occupancy count (``False == 0``), so a
    double-buffered register under ``PipelineConfig.read_ahead`` holds
    two pages.  At capacity 1 the counting discipline (``+= 1`` /
    ``-= 1``, wait while ``busy >= cap``) is value-for-value identical
    to the boolean one — the equivalence lock for read-ahead off.
    """

    __slots__ = ("busy", "freed")

    def __init__(self, engine: SimEngine):
        self.busy = False
        self.freed = engine.signal(handoff=True)


class _CheckedLock:
    """`_Lock` with sanitizer-validated ``busy`` transitions.

    Constructed instead of `_Lock` when the core's engine carries an
    armed :class:`~repro.sim.sanitizer.DesSanitizer`.  Scheduling
    behaviour is identical — same ``busy`` values, same handoff
    ``freed`` signal, no extra events — so armed generator runs stay
    bit-exact; the only difference is that an invalid transition
    (double acquire, double release, counting past ``capacity``) raises
    :class:`~repro.sim.sanitizer.SanitizerError` at the offending site
    instead of silently corrupting the schedule.
    """

    __slots__ = ("_busy", "freed", "_san", "_key", "_capacity")

    def __init__(self, engine: SimEngine, san, key, capacity: int = 1):
        self._busy = False
        self.freed = engine.signal(handoff=True)
        self._san = san
        self._key = key
        self._capacity = capacity
        san.register_lock(key, capacity)

    @property
    def busy(self):
        return self._busy

    @busy.setter
    def busy(self, value):
        self._san.transition(self._key, self._busy, value, self._capacity)
        self._busy = value


@lru_cache(maxsize=4096)
def _split_plan(
    plan: tuple[CommandPhase, ...],
) -> tuple[tuple[float, ...], tuple[tuple[bool, float, float], ...], float]:
    """Pre-decompose a phase plan for the worker hot loop.

    Returns ``(array_durations, section_ops, fused_s)``: the plane
    (array) phase durations, the channel-section phases flattened to
    ``(is_channel, duration_s, occupancy_s)`` triples (so the worker
    loop touches plain floats, not dataclass attributes), and the fused
    section total used by the non-pipelined configuration — summed in
    phase order, so it is the bit-identical float the per-command
    ``sum()`` used to produce.

    Cached: the pages of a die-striped batch overwhelmingly share
    identical phase tuples, so the split (and its tuple allocations)
    happens once per distinct plan instead of once per command.
    """
    array = tuple(
        p.duration_s for p in plan if p.resource is PhaseResource.PLANE
    )
    channel = tuple(
        p for p in plan if p.resource is not PhaseResource.PLANE
    )
    ops = tuple(
        (p.resource is PhaseResource.CHANNEL, p.duration_s, p.occupancy_s)
        for p in channel
    )
    fused = sum(p.duration_s for p in channel)
    return array, ops, fused


#: Identity front-cache for :func:`_split_plan`.  ``lru_cache`` hashes
#: the whole phase tuple (three generated dataclass ``__hash__`` calls
#: per lookup) on every command; commands built by the striped FTL share
#: literal tuple objects, so an ``id()`` probe answers most lookups with
#: one dict hit.  Entries keep the plan alive, so a live entry's ``id``
#: cannot be recycled; after an eviction the ``is`` check rejects any
#: stale match.
_split_memo: dict[int, tuple] = {}


def _split_plan_fast(plan: tuple[CommandPhase, ...]):
    """`_split_plan` behind an identity probe (see ``_split_memo``)."""
    entry = _split_memo.get(id(plan))
    if entry is not None and entry[0] is plan:
        return entry[1]
    split = _split_plan(plan)
    if len(_split_memo) >= 4096:
        _split_memo.clear()
    _split_memo[id(plan)] = (plan, split)
    return split


def validate_batch(
    topology: SsdTopology,
    commands: list[DieCommand],
    queue_depth: int | None,
) -> None:
    """Reject out-of-range dies, duplicate tags and bad queue depths.

    Duplicate submission tags would silently corrupt the completion map,
    so they are an error within one scheduled batch.
    """
    seen_tags: set[int] = set()
    for command in commands:
        if not 0 <= command.die < topology.dies:
            raise SimulationError(
                f"command die {command.die} outside topology "
                f"({topology.dies} dies)"
            )
        if command.tag in seen_tags:
            raise SimulationError(
                f"duplicate command tag {command.tag}: tags must be "
                "unique within one scheduled batch"
            )
        seen_tags.add(command.tag)
    if queue_depth is not None and queue_depth < 1:
        raise SimulationError("queue depth must be >= 1")


def closed_admission(
    core: "SchedulerCore",
    commands: list[DieCommand],
    queue_depth: int | None,
    wake_workers: bool = False,
) -> Process:
    """Admit a closed batch through a bounded in-flight window.

    ``queue_depth`` bounds how many commands are in flight at once
    (``None`` admits everything immediately — an infinitely deep
    queue).  Commands are admitted in list order.  ``wake_workers``
    is required when the core's workers are already resident (parked):
    the initial in-flight window is queued with wake-ups suppressed,
    then :meth:`SchedulerCore.wake_workers` resumes the workers that
    actually received work in (die, plane) order — the same
    deterministic order as a fresh core's worker start-up, without
    scheduling a no-op wake for every idle plane.
    """
    limit = len(commands) if queue_depth is None else queue_depth
    submit_s = core.engine.now_s  # the whole batch is submitted up front
    index = 0
    if wake_workers:
        for command in commands:
            if core.in_flight >= limit:
                break
            core.enqueue(command, submit_s=submit_s, wake=False)
            index += 1
        core.wake_workers()
    for command in commands[index:]:
        while core.in_flight >= limit:
            yield core.completed
        core.enqueue(command, submit_s=submit_s)


# -- flat dispatch core ------------------------------------------------------
#
# The steady-state control flow per command is fixed: pop, array
# phases, channel section, finish.  Running it as 32 resident
# coroutines (4ch x 4die x 2plane) round-tripping through the engine
# and Signal park/fire per phase is pure interpretation overhead.  The
# flat dispatch core replays the *exact same schedule* coroutine-free:
# each (die, plane) dispatcher is a plain-list frame scheduled directly
# on the engine's shared event list, advanced by a burst handler
# (:meth:`SchedulerCore._flat_burst`) that the engine invokes for
# list-type events and that keeps draining consecutive flat events with
# its locals bound.  It is a *transliteration*, not an approximation:
# every generator ``yield`` becomes one scheduled tuple event, every
# handoff-signal fire/park keeps its order and its sequence-allocation
# position on the engine's shared counter, and the busy accounters are
# accumulated in the same float addition order — so completions, busy
# times and makespans are bit-exact against the generator path for
# mixed command kinds, closed batches and open-loop mid-flight
# admission alike (equivalence-tested on randomized streams in
# tests/ssd).  Generator workers remain as the bit-exactness oracle
# (``flat=False``).

# Dispatcher/drain program counters (resume points after a scheduled
# event or a lock park).
_P_POP = 0        # fetch the next queued command (or park until woken)
_P_ARRAY = 1      # an array phase's busy time just elapsed
_P_CACHEQ = 2     # woken on a cache register's freed lock: re-check
_P_TRCBSY = 3     # the tRCBSY cache-handoff busy time just elapsed
_P_SECTION = 4    # enter the channel section (drain frames start here)
_P_BUSQ = 5       # woken on a bus's freed lock: re-check
_P_BUSREL = 6     # the bus hold just elapsed: release and account
_P_ECCQ = 7       # woken on an ECC engine's freed lock: re-check
_P_ECCREL = 8     # the ECC occupancy just elapsed: release and account
_P_ECCDRAIN = 9   # the ECC post-occupancy drain just elapsed
_P_ADMIT = 10     # admission frame: admit the next command of a stream

# Dispatcher/drain frame layout (plain lists — the flat analogue of a
# worker coroutine):
# [0] pc  [1] die  [2] slot  [3] channel  [4] queue (deque of
# DieCommand; None for one-shot drain frames)  [5] parked-idle flag
# [6] current command  [7] array phase cursor  [8] channel phase cursor
# [9] cache lock to release mid-section (drain frames), or None
# [10] array durations  [11] section ops (is_channel, duration,
# occupancy)  [12] fused section total  [13] is-read  [14] is-program
# [15] channel bus lock  [16] channel ECC lock  [17] plane cache lock
# [18] len(array)  [19] len(ops)  [20] span kind code (KIND_NAMES
# index, +3 for GC-origin commands; refreshed per pop)
#
# Admission frame layout (an open-loop arrival process, flattened):
# [0] pc (_P_ADMIT)  [1] next command index  [2] command list  [3] list
# length  [4] in-flight window limit  [5] parked-on-completed flag
# [6] inter-arrival pacing (seconds)
#
# Lock layout (the handoff Signal transliterated):
# [0] busy  [1] waiters (frames, park order)  [2] pending woken head
# [3] waiters left behind the pending head at fire time
#
# Lock fires are inlined in the burst handler (they mirror the handoff
# ``Signal.fire``: wake the head waiter only, allocate no sequence
# number on an uncontended release); parking goes through
# :func:`_flat_lock_park` below, with the caller accounting the park
# toward the engine's deadlock counter.


def _flat_lock_park(lock: list, frame: list) -> None:
    """``Signal._park``, including the woken head's re-park splice.

    The caller adds the park to the engine's deadlock counter, so
    parked frames count exactly like generator workers parked on a
    non-daemon freed signal.
    """
    if lock[2] is frame:
        lock[2] = None
        rest = lock[3]
        waiters = lock[1]
        if rest:
            wave = waiters[:rest]
            del waiters[:rest]
            waiters.append(frame)
            waiters.extend(wave)
        else:
            waiters.append(frame)
    else:
        lock[1].append(frame)


def open_admission(
    core: "SchedulerCore",
    commands: list[DieCommand],
    window: int | None,
    arrival_s: float,
) -> Process:
    """Open-loop arrival process: paced submissions through a window.

    Admits ``commands`` in order, one every ``arrival_s`` simulated
    seconds, stalling while ``window`` commands are in flight (``None``
    leaves the stream unwindowed).  The generator form — the oracle
    behind the flat admission frame installed by
    :meth:`SchedulerCore.submit_stream`, which replays the exact same
    schedule without a generator resume per arrival.
    """
    limit = len(commands) if window is None else window
    for command in commands:
        while core.in_flight >= limit:
            yield core.completed
        core.enqueue(command, submit_s=core.engine.now_s)
        yield arrival_s


class SchedulerCore:
    """Incremental resource-reservation core over one topology.

    Owns the serially-reusable resources (planes, channel buses, ECC
    engines, per-plane cache registers) and one resident dispatch worker
    per (die, plane), parked on a daemon wake-up signal while idle.
    :meth:`enqueue` accepts a command at any simulation time — including
    while earlier commands are still in flight — making the core the
    substrate for both the classic closed-batch
    :class:`CommandScheduler` and the open-loop
    :class:`~repro.ssd.session.SsdSession`.

    Completions are appended to :attr:`completions`; :attr:`completed`
    fires once per completion, and synchronous ``on_finish`` callbacks
    (called after the fire) let a session route completions without a
    reaper process of its own.

    ``flat=True`` swaps the resident generator workers for the flat
    dispatch core: one plain-list frame per (die, plane) living directly
    on the engine's event list, advanced by the burst handler the core
    attaches via :meth:`SimEngine.attach_flat`.  The external surface
    (``enqueue`` / ``completed`` / ``on_finish`` / busy accounting) and
    every observable timestamp are identical; only the interpretation
    machinery differs.  :attr:`fast_commands` / :attr:`fallback_commands`
    count which path each admitted command took.
    """

    def __init__(
        self,
        engine: SimEngine,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
        flat: bool = False,
        recorder=None,
        host_priority: bool = False,
    ):
        self.engine = engine
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()
        self.planes = (
            topology.geometry.planes if self.pipeline.multi_plane else 1
        )
        self.completions: list[CommandCompletion] = []
        self.die_busy_s = [0.0] * topology.dies
        self.channel_busy_s = [0.0] * topology.channels
        self.ecc_busy_s = [0.0] * topology.channels
        self.completed = engine.signal()
        self.on_finish: list = []
        self.in_flight = 0
        #: Per-die enqueued-but-incomplete command counts.  A die with
        #: zero is idle (no queued or executing work on any plane) —
        #: the admission-frame idleness signal background GC keys off.
        self.die_inflight = [0] * topology.dies
        #: When set, a plane's pop prefers the first queued HOST-origin
        #: command over queued GC work (see :class:`CommandOrigin`).
        #: Off by default — pure FIFO pop, the historical order.
        self.host_priority = host_priority
        self.flat = flat
        #: Optional :class:`~repro.obs.trace.TraceRecorder`.  Every
        #: trace hook sits behind a ``recorder is None`` check on a
        #: local, and recording changes no event ordering, sequence
        #: allocation or float arithmetic — traced runs are
        #: bit-identical to untraced ones (the span intervals are read
        #: off the same accounting the busy accumulators already do).
        self.recorder = recorder
        if recorder is not None:
            recorder.attach(self)
        #: Armed :class:`~repro.sim.sanitizer.DesSanitizer` inherited
        #: from the engine, or None.  Same zero-cost-off discipline as
        #: the recorder: every hook sits behind an ``is None`` check on
        #: a local, and armed runs stay bit-identical.
        self._san = getattr(engine, "sanitizer", None)
        #: Commands dispatched by the flat core vs the generator workers
        #: (a per-core lifetime tally; a core is all-flat or all-generator,
        #: so one of the two stays zero).
        self.fast_commands = 0
        self.fallback_commands = 0
        if flat:
            channels = topology.channels
            self._flat_buses = [[False, [], None, 0] for _ in range(channels)]
            self._flat_eccs = [[False, [], None, 0] for _ in range(channels)]
            self._flat_caches = [
                [[False, [], None, 0] for _ in range(self.planes)]
                for _ in range(topology.dies)
            ]
            self._frames = [
                [
                    [
                        _P_POP, die, slot, topology.channel_of(die),
                        deque(), False, None, 0, 0, None,
                        (), (), 0.0, False, False,
                        self._flat_buses[topology.channel_of(die)],
                        self._flat_eccs[topology.channel_of(die)],
                        self._flat_caches[die][slot],
                        0, 0, 0,
                    ]
                    for slot in range(self.planes)
                ]
                for die in range(topology.dies)
            ]
            self._admit: list | None = None
            engine.attach_flat(self._flat_burst)
        elif self._san is None:
            self._buses = [_Lock(engine) for _ in range(topology.channels)]
            self._engines = [_Lock(engine) for _ in range(topology.channels)]
            self._caches = [
                [_Lock(engine) for _ in range(self.planes)]
                for _ in range(topology.dies)
            ]
            self._queues = [
                [deque() for _ in range(self.planes)]
                for _ in range(topology.dies)
            ]
            self._work = [
                [engine.signal(daemon=True) for _ in range(self.planes)]
                for _ in range(topology.dies)
            ]
        else:
            san = self._san
            cache_cap = 2 if (
                self.pipeline.cache_read and self.pipeline.read_ahead
            ) else 1
            self._buses = [
                _CheckedLock(engine, san, ("bus", ch))
                for ch in range(topology.channels)
            ]
            self._engines = [
                _CheckedLock(engine, san, ("ecc", ch))
                for ch in range(topology.channels)
            ]
            self._caches = [
                [
                    _CheckedLock(engine, san, ("cache", die, slot), cache_cap)
                    for slot in range(self.planes)
                ]
                for die in range(topology.dies)
            ]
            self._queues: list[list[deque[DieCommand]]] = [
                [deque() for _ in range(self.planes)]
                for _ in range(topology.dies)
            ]
            self._work = [
                [engine.signal(daemon=True) for _ in range(self.planes)]
                for _ in range(topology.dies)
            ]
        #: In-flight bookkeeping: tag -> (admit_s, submit_s).  One dict
        #: (one hash per enqueue / one per finish) also doubles as the
        #: live-tag set for duplicate detection.
        self._meta: dict[int, tuple[float, float | None]] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the resident dispatchers ((die, plane) order).

        Generator mode spawns one worker coroutine per (die, plane);
        flat mode schedules each frame's start event at the current
        instant in the same order, so the two paths allocate identical
        start-up sequence numbers — each frame's first run pops queued
        work or parks idle, exactly like a worker's first resume.
        """
        if self._started:
            raise SimulationError("scheduler core already started")
        self._started = True
        if self.flat:
            now = self.engine.now_s
            for die_frames in self._frames:
                for frame in die_frames:
                    self.engine.schedule_at(now, frame)
            return
        for die in range(self.topology.dies):
            for plane in range(self.planes):
                self.engine.spawn(self._worker(die, plane))

    @property
    def idle(self) -> bool:
        """True when no command is queued or executing."""
        return self.in_flight == 0

    def wake_workers(self) -> None:
        """Fire the wake-up of every worker with queued work, (die, plane) order.

        Before admitting a closed batch into a resident core, this puts
        the workers' resume events in the same deterministic order as a
        fresh core's start-up, so batch timelines are reproducible
        regardless of which worker went idle last.  Workers with empty
        queues stay parked — their wake would be a no-op event (resume,
        find nothing, re-park) and cannot be observed by the batch.
        """
        if self.flat:
            engine = self.engine
            push = engine._queue.push
            now = engine.now_s
            for die_frames in self._frames:
                for frame in die_frames:
                    if frame[4] and frame[5]:
                        frame[5] = False
                        seq = engine._seq
                        engine._seq = seq + 1
                        push((now, seq, frame))
            return
        for die_queues, die_signals in zip(self._queues, self._work):
            for queue, signal in zip(die_queues, die_signals):
                if queue:
                    signal.fire()

    def reset_accounting(self) -> None:
        """Zero the busy accumulators (only legal while idle)."""
        if not self.idle:
            raise SimulationError(
                "cannot reset accounting with commands in flight"
            )
        self.die_busy_s = [0.0] * self.topology.dies
        self.channel_busy_s = [0.0] * self.topology.channels
        self.ecc_busy_s = [0.0] * self.topology.channels

    # -- submission --------------------------------------------------------------

    def enqueue(
        self,
        command: DieCommand,
        submit_s: float | None = None,
        wake: bool = True,
    ) -> None:
        """Admit one command into the in-flight set at the current time.

        ``submit_s`` optionally records when the host originally
        submitted the command (for queueing-time accounting); the admit
        (dispatch) time is always the current simulation time.  The tag
        must be unique among commands currently in flight.
        ``wake=False`` suppresses the worker wake-up — used by
        :func:`closed_admission` to queue a resident batch's initial
        window before waking the non-idle workers in one ordered pass.
        """
        if not 0 <= command.die < self.topology.dies:
            raise SimulationError(
                f"command die {command.die} outside topology "
                f"({self.topology.dies} dies)"
            )
        if command.tag in self._meta:
            raise SimulationError(
                f"duplicate command tag {command.tag}: tags must be "
                "unique among in-flight commands"
            )
        if self._san is not None:
            self._san.check_command(command)
        self.in_flight += 1
        self.die_inflight[command.die] += 1
        self._meta[command.tag] = (self.engine.now_s, submit_s)
        slot = command.plane % self.planes
        if self.flat:
            self.fast_commands += 1
            frame = self._frames[command.die][slot]
            frame[4].append(command)
            if wake and frame[5]:
                # The frame is parked idle: schedule its wake at the
                # current instant.  Mirrors the daemon work signal's
                # fire-on-parked-worker — same single sequence number,
                # and a no-op (non-parked) fire allocates none.
                frame[5] = False
                engine = self.engine
                seq = engine._seq
                engine._seq = seq + 1
                engine._queue.push((engine.now_s, seq, frame))
            return
        self.fallback_commands += 1
        self._queues[command.die][slot].append(command)
        if wake:
            self._work[command.die][slot].fire()

    def submit_stream(
        self,
        commands: list[DieCommand],
        window: int | None = None,
        arrival_s: float = 0.0,
    ) -> None:
        """Install an open-loop arrival stream (see :func:`open_admission`).

        On a generator core this spawns the :func:`open_admission`
        process; on a flat core it installs the equivalent admission
        frame, which is advanced inside the burst handler — no
        generator resume, no ``Signal`` park/fire per arrival, same
        schedule bit-for-bit.  A flat core runs one stream at a time
        (streams may be installed back to back once the previous one
        has fully admitted); the generator form may be spawned freely.
        """
        if not self.flat:
            self.engine.spawn(
                open_admission(self, commands, window, arrival_s)
            )
            return
        admit = self._admit
        if admit is not None and admit[1] < admit[3]:
            raise SimulationError(
                "flat cores admit one stream at a time: the previous "
                "submit_stream is still admitting"
            )
        if self._san is not None:
            # The flat admission frame inlines enqueue, so phase plans
            # are validated up front (the generator path checks inside
            # enqueue itself).
            for command in commands:
                self._san.check_command(command)
        n = len(commands)
        limit = n if window is None else window
        frame = [_P_ADMIT, 0, list(commands), n, limit, False, arrival_s]
        self._admit = frame
        self.engine.schedule_at(self.engine.now_s, frame)

    # -- internals ---------------------------------------------------------------

    def _finish(self, command: DieCommand, die: int, channel: int) -> None:
        tag = command.tag
        admit_s, submit_s = self._meta.pop(tag)
        completion = CommandCompletion(
            tag=tag,
            die=die,
            channel=channel,
            admit_s=admit_s,
            done_s=self.engine.now_s,
            submit_s=submit_s,
        )
        self.completions.append(completion)
        self.in_flight -= 1
        self.die_inflight[die] -= 1
        self.completed.fire()
        for callback in self.on_finish:
            callback(completion)

    # The channel-section body is spelled out inline in both
    # `_channel_section` and `_read_drain` (and `_channel_section` is
    # itself delegated to from `_worker` at top level only): every
    # `yield from` level adds one frame each `send()` must traverse for
    # every event, and the section loop is the hottest code in the
    # simulator.  The acquire/hold/release pattern is the `_Lock`
    # handoff discipline: `while busy: yield freed` re-check, holder
    # sets `busy`, releases and fires.

    def _channel_section(
        self,
        ops: tuple[tuple[bool, float, float], ...],
        fused_s: float,
        channel: int,
        command: DieCommand,
        kc: int = 0,
    ) -> Process:
        """Run a command's channel/ECC section (no cache register).

        ``kc`` is the span kind code the worker computed at pop (the
        :data:`~repro.obs.trace.KIND_NAMES` index, +3 for GC origin).
        """
        bus = self._buses[channel]
        rec = self.recorder
        span = None if rec is None else rec._spans.append
        if not self.pipeline.pipelined_ecc:
            # Paper-faithful fused section: transfer + encode/decode
            # occupy the bus as one non-pipelined unit (the structural
            # hazard of the single-page-buffer controller FSM).
            while bus.busy:
                yield bus.freed
            bus.busy = True
            yield fused_s
            bus.busy = False
            bus.freed.fire()
            self.channel_busy_s[channel] += fused_s
            if span is not None:
                now = self.engine.now_s
                span((TRACK_BUS, channel, 0,
                      now - fused_s, now, command.tag, kc))
            return
        ecc = self._engines[channel]
        for is_channel, duration, occupancy in ops:
            if is_channel:
                while bus.busy:
                    yield bus.freed
                bus.busy = True
                yield duration
                bus.busy = False
                bus.freed.fire()
                self.channel_busy_s[channel] += duration
                if span is not None:
                    now = self.engine.now_s
                    span((TRACK_BUS, channel, 0,
                          now - duration, now, command.tag, kc))
            else:  # ECC: held for the initiation interval only.
                while ecc.busy:
                    yield ecc.freed
                ecc.busy = True
                yield occupancy
                ecc.busy = False
                ecc.freed.fire()
                self.ecc_busy_s[channel] += occupancy
                if span is not None:
                    now = self.engine.now_s
                    span((TRACK_ECC, channel, 0,
                          now - occupancy, now, command.tag, kc))
                drain = duration - occupancy
                if drain > 0:
                    yield drain

    def _read_drain(
        self,
        command: DieCommand,
        die: int,
        channel: int,
        cache: _Lock,
        ops: tuple[tuple[bool, float, float], ...],
        fused_s: float,
        kc: int = 0,
    ) -> Process:
        """Stream a cached page out and complete its command.

        Identical to `_channel_section` except the cache register is
        freed the moment the data leaves it (fused section done, or
        first bus transfer under pipelined ECC).  Cache releases use
        the counting discipline (see :class:`_Lock`) so a
        double-buffered register frees one slot at a time.
        """
        bus = self._buses[channel]
        rec = self.recorder
        span = None if rec is None else rec._spans.append
        if not self.pipeline.pipelined_ecc:
            while bus.busy:
                yield bus.freed
            bus.busy = True
            yield fused_s
            bus.busy = False
            bus.freed.fire()
            self.channel_busy_s[channel] += fused_s
            if span is not None:
                now = self.engine.now_s
                span((TRACK_BUS, channel, 0,
                      now - fused_s, now, command.tag, kc))
            cache.busy -= 1
            cache.freed.fire()
            self._finish(command, die, channel)
            return
        ecc = self._engines[channel]
        held = cache
        for is_channel, duration, occupancy in ops:
            if is_channel:
                while bus.busy:
                    yield bus.freed
                bus.busy = True
                yield duration
                bus.busy = False
                bus.freed.fire()
                self.channel_busy_s[channel] += duration
                if span is not None:
                    now = self.engine.now_s
                    span((TRACK_BUS, channel, 0,
                          now - duration, now, command.tag, kc))
                if held is not None:
                    held.busy -= 1
                    held.freed.fire()
                    held = None
            else:
                while ecc.busy:
                    yield ecc.freed
                ecc.busy = True
                yield occupancy
                ecc.busy = False
                ecc.freed.fire()
                self.ecc_busy_s[channel] += occupancy
                if span is not None:
                    now = self.engine.now_s
                    span((TRACK_ECC, channel, 0,
                          now - occupancy, now, command.tag, kc))
                drain = duration - occupancy
                if drain > 0:
                    yield drain
        if held is not None:  # no transfer phase: free on exit
            held.busy -= 1
            held.freed.fire()
        self._finish(command, die, channel)

    def _worker(self, die: int, plane: int) -> Process:
        channel = self.topology.channel_of(die)
        queue = self._queues[die][plane]
        work = self._work[die][plane]
        cache_read = self.pipeline.cache_read
        cache_cap = 2 if (cache_read and self.pipeline.read_ahead) else 1
        host_prio = self.host_priority
        gc_origin = CommandOrigin.GC
        rec = self.recorder
        span = None if rec is None else rec._spans.append
        while True:
            while not queue:
                yield work
            command = queue.popleft()
            if host_prio and command.origin is gc_origin:
                # Host-priority pop: a queued host command jumps the
                # GC work ahead of it; the GC command keeps its place
                # at the head for the next pop.
                for index, candidate in enumerate(queue):
                    if candidate.origin is not gc_origin:
                        del queue[index]
                        queue.appendleft(command)
                        command = candidate
                        break
            kind = command.kind
            kc = 0 if kind is CommandKind.READ else (
                1 if kind is CommandKind.PROGRAM else 2
            )
            if command.origin is gc_origin:
                kc += 3
            if span is not None:
                span((TRACK_QUEUE, die, plane,
                      self._meta[command.tag][0], self.engine.now_s,
                      command.tag, kc))
            array, ops, fused = _split_plan_fast(command.phase_plan())
            if kind is CommandKind.READ:
                # Sense into the plane's page buffer, then stream out.
                for duration in array:
                    yield duration
                    self.die_busy_s[die] += duration
                    if span is not None:
                        now = self.engine.now_s
                        span((TRACK_PLANE, die, plane,
                              now - duration, now, command.tag, kc))
                if cache_read and ops:
                    # Hand the page to the cache register and sense on.
                    cache = self._caches[die][plane]
                    while cache.busy >= cache_cap:
                        yield cache.freed
                    cache.busy += 1
                    if command.cache_busy_s > 0:  # tRCBSY handoff
                        yield command.cache_busy_s
                        self.die_busy_s[die] += command.cache_busy_s
                        if span is not None:
                            now = self.engine.now_s
                            span((TRACK_PLANE, die, plane,
                                  now - command.cache_busy_s, now,
                                  command.tag, kc))
                    self.engine.spawn(self._read_drain(
                        command, die, channel, cache, ops, fused, kc
                    ))
                    continue  # completion happens in the drain
                yield from self._channel_section(
                    ops, fused, channel, command, kc
                )
            elif kind is CommandKind.PROGRAM:
                # Encode + stream in (bus frees for siblings), then
                # busy the plane with the ISPP.
                yield from self._channel_section(
                    ops, fused, channel, command, kc
                )
                for duration in array:
                    yield duration
                    self.die_busy_s[die] += duration
                    if span is not None:
                        now = self.engine.now_s
                        span((TRACK_PLANE, die, plane,
                              now - duration, now, command.tag, kc))
            else:  # ERASE: array-only, no data on the bus.
                for duration in array:
                    yield duration
                    self.die_busy_s[die] += duration
                    if span is not None:
                        now = self.engine.now_s
                        span((TRACK_PLANE, die, plane,
                              now - duration, now, command.tag, kc))
            self._finish(command, die, channel)

    # -- flat dispatch -----------------------------------------------------------

    def _flat_burst(self, event, until_s):
        """Advance flat frames; the engine's list-event handler.

        Runs the state machine for ``event``'s frame, then keeps running
        consecutive flat events with all hot state bound as locals — one
        handler call can retire thousands of events without touching the
        engine loop.  Returns ``(leftover, count)`` where ``leftover``
        is the first event the burst must hand back (a generator event,
        or any event beyond ``until_s``) and ``count`` is the number of
        flat events consumed.

        The body is `_worker` / `_channel_section` / `_read_drain` /
        `_finish` / :func:`open_admission` transliterated onto integer
        program counters; see the layout comments above
        :func:`_flat_lock_park`.  The engine's sequence counter,
        deadlock counter and clock live in locals (``seq`` / ``parked``
        / ``now``) and are written back only around calls that re-enter
        engine machinery — a ``completed.fire()`` with real generator
        waiters, the ``on_finish`` callbacks — and at burst exit.

        Two queue-elision paths keep bit-exactness while skipping the
        event list, both resting on the same invariant: sequence
        numbers are allocated in strictly increasing order, so events
        already queued at the current instant always order before
        anything allocated now, and relative order among deferred
        allocations is their allocation order.

        * ``nxt_t`` — a timed self-transition (the last allocation of
          its turn).  If it is strictly earlier than every queued event
          it is the unique global minimum — by time alone, before
          tie-breaks — and runs inline without a push/pop round-trip.
        * ``dws`` — same-instant wakes (lock handoffs, drain spawns,
          admission wakes).  They are FIFO in allocation order and
          order after every queued event at ``now`` (all of which hold
          smaller sequence numbers), so they drain inline once the
          queue's head moves strictly past ``now``.  The deque is
          flushed into the real queue before any external call or
          burst exit, so code outside this method never observes it.

        Every turn — queued, deferred or inline — bumps ``count``, so
        ``events_processed`` stays identical to the generator path's.
        """
        engine = self.engine
        queue = engine._queue
        pop = queue.pop
        push = queue.push
        heap = getattr(queue, "_heap", None)
        if heap is None:  # calendar backend: peek/push/pop via the head cell
            chead = queue._head
            corder = queue._order
            cbuckets = queue._buckets
            cinv = queue._inv_width
            cheappush = heappush
            cheappop = heappop
        die_busy = self.die_busy_s
        channel_busy = self.channel_busy_s
        ecc_busy = self.ecc_busy_s
        split = _split_plan_fast
        memo_get = _split_memo.get
        lock_park = _flat_lock_park
        meta = self._meta
        meta_pop = meta.pop
        completions_append = self.completions.append
        completion_cls = CommandCompletion
        tuple_new = tuple.__new__
        completed = self.completed
        completed_waiters = completed._waiters
        on_finish = self.on_finish
        frames = self._frames
        planes = self.planes
        dies = self.topology.dies
        cache_mode = self.pipeline.cache_read
        cache_cap = 2 if (cache_mode and self.pipeline.read_ahead) else 1
        pipelined_ecc = self.pipeline.pipelined_ecc
        host_prio = self.host_priority
        die_inflight = self.die_inflight
        READ = CommandKind.READ
        PROGRAM = CommandKind.PROGRAM
        GC_ORIGIN = CommandOrigin.GC
        P_POP = _P_POP
        P_ARRAY = _P_ARRAY
        P_CACHEQ = _P_CACHEQ
        P_TRCBSY = _P_TRCBSY
        P_SECTION = _P_SECTION
        P_BUSQ = _P_BUSQ
        P_BUSREL = _P_BUSREL
        P_ECCQ = _P_ECCQ
        P_ECCREL = _P_ECCREL
        P_ECCDRAIN = _P_ECCDRAIN
        P_ADMIT = _P_ADMIT
        horizon = inf if until_s is None else until_s
        seq = engine._seq
        parked = engine._parked
        count = 0
        in_flight = self.in_flight
        fast_commands = self.fast_commands
        nxt_t = -1.0
        dws = deque()
        dws_append = dws.append
        dws_popleft = dws.popleft
        admit_frame = self._admit
        recorder = self.recorder
        # Sanitizer hooks cover the release arms only: every flat
        # acquire site is dominated by an explicit `if lock[0]` park
        # check a few lines above it (the DET107 static walk verifies
        # the structure), so double-acquires cannot be expressed here,
        # while a double-release would silently wake a second waiter.
        san = self._san
        # Span hooks ride the same accounting points as the busy
        # accumulators; `rspan is None` on a local keeps the disabled
        # path free of attribute loads.
        rspan = None if recorder is None else recorder._spans.append
        if san is not None and event[0] < engine.now_s:
            san.backwards_time(event[0], engine.now_s)
        now, _, frame = event
        while True:
            count += 1
            pc = frame[0]
            if pc == P_ADMIT:
                index = frame[1]
                if index < frame[3]:
                    if in_flight >= frame[4]:
                        # Window full: park on the completion wake (a
                        # re-park allocates nothing, exactly like the
                        # generator's repeated `yield core.completed`).
                        frame[5] = True
                        parked += 1
                    else:
                        command = frame[2][index]
                        die = command.die
                        tag = command.tag
                        if 0 <= die < dies and tag not in meta:
                            # `enqueue(command, submit_s=now)` inlined.
                            in_flight += 1
                            die_inflight[die] += 1
                            fast_commands += 1
                            meta[tag] = (now, now)
                            target = frames[die][command.plane % planes]
                            target[4].append(command)
                            if target[5]:
                                target[5] = False
                                dws_append(target)
                        else:
                            while dws:
                                push((now, seq, dws_popleft()))
                                seq += 1
                            engine._seq = seq
                            engine._parked = parked
                            engine.now_s = now
                            self.in_flight = in_flight
                            self.fast_commands = fast_commands
                            self.enqueue(command, submit_s=now)  # raises
                        frame[1] = index + 1
                        # The generator's trailing `yield arrival_s`,
                        # scheduled after every admit, the last included
                        # (that resume is where the stream ends).
                        nxt_t = now + frame[6]
                # index == length: the stream is done — the generator
                # raises StopIteration here; the frame goes inert.
            else:
                while True:
                    if pc == P_SECTION:
                        if not pipelined_ecc:
                            # Fused section: one bus hold for the summed
                            # total (taken even for an empty section, as
                            # the generator's `yield fused_s` does).
                            bus = frame[15]
                            if bus[0]:
                                frame[0] = P_BUSQ
                                if bus[2] is frame:
                                    lock_park(bus, frame)
                                else:
                                    bus[1].append(frame)
                                parked += 1
                                break
                            bus[0] = True
                            frame[0] = P_BUSREL
                            nxt_t = now + frame[12]
                            break
                        ops = frame[11]
                        cursor = frame[8]
                        if cursor < frame[19]:
                            is_channel, duration, occupancy = ops[cursor]
                            if is_channel:
                                bus = frame[15]
                                if bus[0]:
                                    frame[0] = P_BUSQ
                                    if bus[2] is frame:
                                        lock_park(bus, frame)
                                    else:
                                        bus[1].append(frame)
                                    parked += 1
                                    break
                                bus[0] = True
                                frame[0] = P_BUSREL
                                nxt_t = now + duration
                                break
                            ecc = frame[16]
                            if ecc[0]:
                                frame[0] = P_ECCQ
                                if ecc[2] is frame:
                                    lock_park(ecc, frame)
                                else:
                                    ecc[1].append(frame)
                                parked += 1
                                break
                            ecc[0] = True
                            frame[0] = P_ECCREL
                            nxt_t = now + occupancy
                            break
                        # Section exhausted: free a still-held cache
                        # register (the no-transfer-phase drain exit).
                        cache = frame[9]
                        if cache is not None:
                            if san is not None:
                                san.release_check(
                                    ("cache", frame[1], frame[2]), cache[0]
                                )
                            cache[0] = cache[0] - 1
                            waiters = cache[1]
                            if waiters:
                                head = waiters.pop(0)
                                cache[2] = head
                                cache[3] = len(waiters)
                                dws_append(head)
                                parked -= 1
                            frame[9] = None
                        if frame[14]:  # PROGRAM: array phase follows
                            array = frame[10]
                            frame[7] = 0
                            if array:
                                frame[0] = P_ARRAY
                                nxt_t = now + array[0]
                                break
                            pc = P_ARRAY
                            continue
                        # `_finish` inlined (the read completed).
                        command = frame[6]
                        tag = command.tag
                        rec = meta_pop(tag)
                        completion = tuple_new(
                            completion_cls,
                            (tag, frame[1], frame[3], rec[0], now, rec[1]),
                        )
                        completions_append(completion)
                        in_flight -= 1
                        die_inflight[frame[1]] -= 1
                        if admit_frame is not None and admit_frame[5]:
                            # A window-parked flat stream wakes exactly
                            # where `completed.fire()` would have
                            # allocated its resume.
                            admit_frame[5] = False
                            dws_append(admit_frame)
                            parked -= 1
                        if completed_waiters:
                            while dws:
                                push((now, seq, dws_popleft()))
                                seq += 1
                            engine._seq = seq
                            engine._parked = parked
                            engine.now_s = now
                            completed.fire()
                            seq = engine._seq
                            parked = engine._parked
                        if on_finish:
                            while dws:
                                push((now, seq, dws_popleft()))
                                seq += 1
                            engine._seq = seq
                            engine._parked = parked
                            engine.now_s = now
                            self.in_flight = in_flight
                            self.fast_commands = fast_commands
                            for callback in on_finish:
                                callback(completion)
                            seq = engine._seq
                            parked = engine._parked
                            in_flight = self.in_flight
                            fast_commands = self.fast_commands
                            admit_frame = self._admit
                        if frame[4] is None:
                            break  # drain frames run once
                        pc = P_POP
                        continue
                    elif pc == P_POP:
                        cqueue = frame[4]
                        if not cqueue:
                            frame[0] = P_POP
                            frame[5] = True  # park idle (daemon: uncounted)
                            break
                        command = cqueue.popleft()
                        if host_prio and command.origin is GC_ORIGIN:
                            # Host-priority pop: promote the first queued
                            # host command past GC work; the GC command
                            # returns to the head for the next pop.
                            for index, candidate in enumerate(cqueue):
                                if candidate.origin is not GC_ORIGIN:
                                    del cqueue[index]
                                    cqueue.appendleft(command)
                                    command = candidate
                                    break
                        plan = command.phases
                        if plan is None:
                            plan = command.phase_plan()
                        entry = memo_get(id(plan))
                        if entry is not None and entry[0] is plan:
                            array, ops, fused = entry[1]
                        else:
                            array, ops, fused = split(plan)
                        frame[6] = command
                        frame[10] = array
                        frame[11] = ops
                        frame[12] = fused
                        frame[18] = len(array)
                        frame[19] = len(ops)
                        kind = command.kind
                        kc = 0 if kind is READ else (
                            1 if kind is PROGRAM else 2
                        )
                        if command.origin is GC_ORIGIN:
                            kc += 3
                        frame[20] = kc
                        if rspan is not None:
                            rspan((3, frame[1], frame[2],
                                   meta[command.tag][0], now, command.tag,
                                   kc))
                        frame[13] = kind is READ
                        if kind is PROGRAM:
                            frame[14] = True
                            frame[9] = None
                            frame[8] = 0
                            pc = P_SECTION
                            continue
                        frame[14] = False
                        frame[7] = 0
                        if array:
                            frame[0] = P_ARRAY
                            nxt_t = now + array[0]
                            break
                        pc = P_ARRAY  # empty array: straight through
                        continue
                    elif pc == P_ARRAY:
                        array = frame[10]
                        cursor = frame[7]
                        if cursor < frame[18]:
                            die_busy[frame[1]] += array[cursor]
                            if rspan is not None:
                                rspan((0, frame[1], frame[2],
                                       now - array[cursor], now,
                                       frame[6].tag, frame[20]))
                            cursor += 1
                            frame[7] = cursor
                            if cursor < frame[18]:
                                frame[0] = P_ARRAY
                                nxt_t = now + array[cursor]
                                break
                        # Array phases done.
                        if not frame[13]:  # PROGRAM after section, or ERASE
                            # `_finish` inlined (worker frames only:
                            # drains never run array phases).
                            command = frame[6]
                            tag = command.tag
                            rec = meta_pop(tag)
                            completion = tuple_new(
                                completion_cls,
                                (tag, frame[1], frame[3], rec[0], now, rec[1]),
                            )
                            completions_append(completion)
                            in_flight -= 1
                            die_inflight[frame[1]] -= 1
                            if admit_frame is not None and admit_frame[5]:
                                admit_frame[5] = False
                                dws_append(admit_frame)
                                parked -= 1
                            if completed_waiters:
                                while dws:
                                    push((now, seq, dws_popleft()))
                                    seq += 1
                                engine._seq = seq
                                engine._parked = parked
                                engine.now_s = now
                                completed.fire()
                                seq = engine._seq
                                parked = engine._parked
                            if on_finish:
                                while dws:
                                    push((now, seq, dws_popleft()))
                                    seq += 1
                                engine._seq = seq
                                engine._parked = parked
                                engine.now_s = now
                                self.in_flight = in_flight
                                self.fast_commands = fast_commands
                                for callback in on_finish:
                                    callback(completion)
                                seq = engine._seq
                                parked = engine._parked
                                in_flight = self.in_flight
                                fast_commands = self.fast_commands
                                admit_frame = self._admit
                            pc = P_POP
                            continue
                        ops = frame[11]
                        if cache_mode and ops:
                            cache = frame[17]
                            if cache[0] >= cache_cap:
                                frame[0] = P_CACHEQ
                                if cache[2] is frame:
                                    lock_park(cache, frame)
                                else:
                                    cache[1].append(frame)
                                parked += 1
                                break
                            cache[0] = cache[0] + 1
                            # acquired without waiting (no yield, no seq)
                            trcbsy = frame[6].cache_busy_s
                            if trcbsy > 0.0:
                                frame[0] = P_TRCBSY
                                nxt_t = now + trcbsy
                                break
                            # zero handoff: spawn the drain and move on
                            drain = [
                                P_SECTION, frame[1], frame[2], frame[3],
                                None, False, frame[6], 0, 0, cache,
                                frame[10], frame[11], frame[12], True,
                                False, frame[15], frame[16], None,
                                frame[18], frame[19], frame[20],
                            ]
                            dws_append(drain)
                            pc = P_POP
                            continue
                        frame[9] = None
                        frame[8] = 0
                        pc = P_SECTION
                        continue
                    elif pc == P_BUSREL:
                        bus = frame[15]
                        if san is not None:
                            san.release_check(("bus", frame[3]), bus[0])
                        bus[0] = False
                        waiters = bus[1]
                        if waiters:
                            head = waiters.pop(0)
                            bus[2] = head
                            bus[3] = len(waiters)
                            dws_append(head)
                            parked -= 1
                        if not pipelined_ecc:
                            channel_busy[frame[3]] += frame[12]
                            if rspan is not None:
                                rspan((1, frame[3], 0, now - frame[12],
                                       now, frame[6].tag, frame[20]))
                            cache = frame[9]
                            if cache is not None:
                                if san is not None:
                                    san.release_check(
                                        ("cache", frame[1], frame[2]),
                                        cache[0],
                                    )
                                cache[0] = cache[0] - 1
                                cwaiters = cache[1]
                                if cwaiters:
                                    head = cwaiters.pop(0)
                                    cache[2] = head
                                    cache[3] = len(cwaiters)
                                    dws_append(head)
                                    parked -= 1
                                frame[9] = None
                            # Fused section complete.
                            if frame[14]:
                                array = frame[10]
                                frame[7] = 0
                                if array:
                                    frame[0] = P_ARRAY
                                    nxt_t = now + array[0]
                                    break
                                pc = P_ARRAY
                                continue
                            # `_finish` inlined (fused read done).
                            command = frame[6]
                            tag = command.tag
                            rec = meta_pop(tag)
                            completion = tuple_new(
                                completion_cls,
                                (tag, frame[1], frame[3], rec[0], now, rec[1]),
                            )
                            completions_append(completion)
                            in_flight -= 1
                            die_inflight[frame[1]] -= 1
                            if admit_frame is not None and admit_frame[5]:
                                admit_frame[5] = False
                                dws_append(admit_frame)
                                parked -= 1
                            if completed_waiters:
                                while dws:
                                    push((now, seq, dws_popleft()))
                                    seq += 1
                                engine._seq = seq
                                engine._parked = parked
                                engine.now_s = now
                                completed.fire()
                                seq = engine._seq
                                parked = engine._parked
                            if on_finish:
                                while dws:
                                    push((now, seq, dws_popleft()))
                                    seq += 1
                                engine._seq = seq
                                engine._parked = parked
                                engine.now_s = now
                                self.in_flight = in_flight
                                self.fast_commands = fast_commands
                                for callback in on_finish:
                                    callback(completion)
                                seq = engine._seq
                                parked = engine._parked
                                in_flight = self.in_flight
                                fast_commands = self.fast_commands
                                admit_frame = self._admit
                            if frame[4] is None:
                                break
                            pc = P_POP
                            continue
                        channel_busy[frame[3]] += frame[11][frame[8]][1]
                        if rspan is not None:
                            duration = frame[11][frame[8]][1]
                            rspan((1, frame[3], 0, now - duration, now,
                                   frame[6].tag, frame[20]))
                        cache = frame[9]
                        if cache is not None:
                            if san is not None:
                                san.release_check(
                                    ("cache", frame[1], frame[2]), cache[0]
                                )
                            cache[0] = cache[0] - 1
                            cwaiters = cache[1]
                            if cwaiters:
                                head = cwaiters.pop(0)
                                cache[2] = head
                                cache[3] = len(cwaiters)
                                dws_append(head)
                                parked -= 1
                            frame[9] = None
                        frame[8] += 1
                        pc = P_SECTION
                        continue
                    elif pc == P_ECCREL:
                        ecc = frame[16]
                        if san is not None:
                            san.release_check(("ecc", frame[3]), ecc[0])
                        ecc[0] = False
                        waiters = ecc[1]
                        if waiters:
                            head = waiters.pop(0)
                            ecc[2] = head
                            ecc[3] = len(waiters)
                            dws_append(head)
                            parked -= 1
                        phase = frame[11][frame[8]]
                        ecc_busy[frame[3]] += phase[2]
                        if rspan is not None:
                            rspan((2, frame[3], 0, now - phase[2], now,
                                   frame[6].tag, frame[20]))
                        remainder = phase[1] - phase[2]
                        if remainder > 0:
                            frame[0] = P_ECCDRAIN
                            nxt_t = now + remainder
                            break
                        frame[8] += 1
                        pc = P_SECTION
                        continue
                    elif pc == P_BUSQ:
                        bus = frame[15]
                        if bus[0]:
                            if bus[2] is frame:
                                lock_park(bus, frame)
                            else:
                                bus[1].append(frame)
                            parked += 1
                            break
                        bus[0] = True
                        if not pipelined_ecc:
                            duration = frame[12]
                        else:
                            duration = frame[11][frame[8]][1]
                        frame[0] = P_BUSREL
                        nxt_t = now + duration
                        break
                    elif pc == P_ECCDRAIN:
                        frame[8] += 1
                        pc = P_SECTION
                        continue
                    elif pc == P_TRCBSY:
                        die_busy[frame[1]] += frame[6].cache_busy_s
                        if rspan is not None:
                            rspan((0, frame[1], frame[2],
                                   now - frame[6].cache_busy_s, now,
                                   frame[6].tag, frame[20]))
                        drain = [
                            P_SECTION, frame[1], frame[2], frame[3],
                            None, False, frame[6], 0, 0, frame[17],
                            frame[10], frame[11], frame[12], True,
                            False, frame[15], frame[16], None,
                            frame[18], frame[19], frame[20],
                        ]
                        dws_append(drain)
                        pc = P_POP
                        continue
                    elif pc == P_CACHEQ:
                        cache = frame[17]
                        if cache[0] >= cache_cap:
                            if cache[2] is frame:
                                lock_park(cache, frame)
                            else:
                                cache[1].append(frame)
                            parked += 1
                            break
                        cache[0] = cache[0] + 1
                        trcbsy = frame[6].cache_busy_s
                        if trcbsy > 0.0:
                            frame[0] = P_TRCBSY
                            nxt_t = now + trcbsy
                            break
                        drain = [
                            P_SECTION, frame[1], frame[2], frame[3],
                            None, False, frame[6], 0, 0, cache,
                            frame[10], frame[11], frame[12], True,
                            False, frame[15], frame[16], None,
                            frame[18], frame[19], frame[20],
                        ]
                        dws_append(drain)
                        pc = P_POP
                        continue
                    elif pc == P_ECCQ:
                        ecc = frame[16]
                        if ecc[0]:
                            if ecc[2] is frame:
                                lock_park(ecc, frame)
                            else:
                                ecc[1].append(frame)
                            parked += 1
                            break
                        ecc[0] = True
                        frame[0] = P_ECCREL
                        nxt_t = now + frame[11][frame[8]][2]
                        break
                    else:
                        while dws:
                            push((now, seq, dws_popleft()))
                            seq += 1
                        engine._seq = seq
                        engine._parked = parked
                        engine.now_s = now
                        self.in_flight = in_flight
                        self.fast_commands = fast_commands
                        raise SimulationError(
                            f"flat dispatch: invalid state {pc}"
                        )
            # ---- tail: pick the next turn's (now, frame) ----
            # Resolve the deferred timed self-transition first: it was
            # the turn's last allocation, so its sequence number is
            # larger than any deferred wake's or queued event's at the
            # same time — append/push keeps exact order, and the inline
            # run is only taken when it is the strict global minimum.
            if nxt_t >= 0.0:
                t = nxt_t
                nxt_t = -1.0
                if dws:
                    # `t` is `now + 0.0`-class arithmetic from this very
                    # turn; equality detects the same-instant transition
                    # the deferred-wake FIFO elides, never a tolerance.
                    if t == now:  # lint-ok: DET105
                        dws_append(frame)
                    elif heap is not None:
                        push((t, seq, frame))
                        seq += 1
                    else:
                        index = int(t * cinv)
                        if index == chead[0]:
                            cheappush(chead[1], (t, seq, frame))
                        else:
                            # index > head: t >= now and now's bucket
                            # is never behind the head cell in-burst.
                            bucket = cbuckets.get(index)
                            if bucket is None:
                                cbuckets[index] = [(t, seq, frame)]
                                cheappush(corder, index)
                            else:
                                cheappush(bucket, (t, seq, frame))
                        seq += 1
                else:
                    if heap is not None:
                        m = heap[0][0] if heap else inf
                    else:
                        hb = chead[1]
                        if hb:
                            m = hb[0][0]
                        elif corder:
                            m = cbuckets[corder[0]][0][0]
                        else:
                            m = inf
                    if t < m:
                        seq += 1
                        if t > horizon:
                            engine._seq = seq
                            engine._parked = parked
                            engine.now_s = now
                            self.in_flight = in_flight
                            self.fast_commands = fast_commands
                            return (t, seq - 1, frame), count
                        now = t  # frame unchanged: rerun it inline
                        continue
                    if heap is not None:
                        push((t, seq, frame))
                    else:
                        index = int(t * cinv)
                        if index == chead[0]:
                            cheappush(chead[1], (t, seq, frame))
                        else:
                            bucket = cbuckets.get(index)
                            if bucket is None:
                                cbuckets[index] = [(t, seq, frame)]
                                cheappush(corder, index)
                            else:
                                cheappush(bucket, (t, seq, frame))
                    seq += 1
            # Deferred same-instant wakes drain inline once the queue
            # head is strictly past `now`; a queued event still at
            # `now` holds a smaller sequence number and goes first.
            if dws:
                if heap is not None:
                    m = heap[0][0] if heap else inf
                else:
                    hb = chead[1]
                    if hb:
                        m = hb[0][0]
                    elif corder:
                        m = cbuckets[corder[0]][0][0]
                    else:
                        m = inf
                if m > now:
                    frame = dws_popleft()
                    continue
            if heap is None:
                # Inline calendar pop: the steady-state case is a
                # non-empty head bucket, one C heappop away.
                bucket = chead[1]
                if not bucket:
                    if not corder:
                        engine._seq = seq
                        engine._parked = parked
                        engine.now_s = now
                        self.in_flight = in_flight
                        self.fast_commands = fast_commands
                        return None, count
                    index = cheappop(corder)
                    bucket = cbuckets.pop(index)
                    chead[0] = index
                    chead[1] = bucket
                event = cheappop(bucket)
            else:
                try:
                    event = pop()
                except IndexError:
                    engine._seq = seq
                    engine._parked = parked
                    engine.now_s = now
                    self.in_flight = in_flight
                    self.fast_commands = fast_commands
                    return None, count
            if type(event[2]) is not list or event[0] > horizon:
                while dws:
                    push((now, seq, dws_popleft()))
                    seq += 1
                engine._seq = seq
                engine._parked = parked
                engine.now_s = now
                self.in_flight = in_flight
                self.fast_commands = fast_commands
                return event, count
            if san is not None and event[0] < now:
                engine._seq = seq
                engine._parked = parked
                engine.now_s = now
                self.in_flight = in_flight
                self.fast_commands = fast_commands
                san.backwards_time(event[0], now)
            now, _, frame = event


class CommandScheduler:
    """Dispatches die commands over the topology on one DES run."""

    def __init__(
        self,
        topology: SsdTopology,
        pipeline: PipelineConfig | None = None,
        fast_batch: bool = True,
        recorder=None,
    ):
        self.topology = topology
        self.pipeline = pipeline or PipelineConfig()
        self.fast_batch = fast_batch
        self.recorder = recorder

    def run(
        self,
        commands: list[DieCommand],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Schedule a closed batch of commands; returns the full timeline.

        A thin run-to-drain wrapper over a fresh :class:`SchedulerCore`:
        ``queue_depth`` bounds how many commands are in flight at once
        (``None`` admits everything immediately), per-plane service is
        FIFO, and buses / ECC engines arbitrate among their dies in
        wake-up order.  By default the core runs the flat dispatch
        machinery (mixed kinds included) — bit-exact with the generator
        workers; ``fast_batch=False`` at construction forces the
        generator path (the equivalence oracle).  For a persistent
        queue that accepts submissions while earlier commands are in
        flight, use :class:`~repro.ssd.session.SsdSession` instead.
        """
        validate_batch(self.topology, commands, queue_depth)
        engine = SimEngine()
        core = SchedulerCore(
            engine, self.topology, self.pipeline, flat=self.fast_batch,
            recorder=self.recorder,
        )
        engine.spawn(closed_admission(core, commands, queue_depth))
        core.start()
        makespan = engine.run()
        if len(core.completions) != len(commands):
            raise SimulationError(
                f"scheduler completed {len(core.completions)} of "
                f"{len(commands)} commands"
            )
        if engine.sanitizer is not None:
            engine.sanitizer.check_drain(core, makespan)
        return ScheduleResult(
            completions=core.completions,
            makespan_s=makespan,
            die_busy_s=core.die_busy_s,
            channel_busy_s=core.channel_busy_s,
            ecc_busy_s=core.ecc_busy_s,
        )
