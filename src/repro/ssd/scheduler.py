"""DES-driven SSD command scheduler: per-channel buses, per-die busy time.

Runs on the existing :class:`~repro.sim.engine.SimEngine`.  Three kinds
of actor cooperate through :class:`~repro.sim.engine.Signal` wake-ups:

* an **admission process** feeds host commands to the per-die queues in
  submission order, holding at most ``queue_depth`` commands in flight —
  the NVMe-style host queue;
* one **die process** per die drains its queue, occupying the die for
  the array phase (sense / program / erase from the NAND timing model)
  and arbitrating for its channel's bus for the transfer phase;
* each **channel bus** is a serially-reusable resource: the transfer
  plus the channel ECC engine's encode/decode occupy it as one
  non-pipelined section, the structural hazard of the paper's
  single-page-buffer controller FSM.

Reads sense on the die first, then stream out over the bus; programs
stream in over the bus first, then busy the die — so while one die
programs or senses, its channel is free for siblings.  That phase order
is exactly where multi-die throughput comes from.

Everything is deterministic: same command list, topology and queue depth
produce the same completion order and the same final clock (processes
waking at one instant resume in park order).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.engine import Process, SimEngine, Signal
from repro.ssd.topology import SsdTopology


class CommandKind(enum.Enum):
    """Host-visible NAND command classes."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class DieCommand:
    """One scheduled command against one die.

    ``die_s`` is the array-busy phase (sense, program or erase time from
    :class:`~repro.nand.timing.NandTimingModel`); ``channel_s`` is the
    bus occupancy (page transfer plus the channel ECC engine's
    encode/decode, zero for erases).  ``tag`` is the host's submission
    index — completions map back to host operations through it.
    """

    kind: CommandKind
    die: int
    tag: int
    die_s: float
    channel_s: float = 0.0

    def __post_init__(self) -> None:
        if self.die_s < 0 or self.channel_s < 0:
            raise SimulationError("command phase durations must be non-negative")


@dataclass(frozen=True)
class CommandCompletion:
    """Timestamped completion of one command."""

    tag: int
    die: int
    channel: int
    admit_s: float
    done_s: float

    @property
    def latency_s(self) -> float:
        """Host-visible latency including queueing behind the die/bus."""
        return self.done_s - self.admit_s


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run."""

    completions: list[CommandCompletion] = field(default_factory=list)
    makespan_s: float = 0.0
    die_busy_s: list[float] = field(default_factory=list)
    channel_busy_s: list[float] = field(default_factory=list)

    def latency_by_tag(self) -> dict[int, float]:
        """Per-command latency keyed by submission tag."""
        return {c.tag: c.latency_s for c in self.completions}

    def completion_order(self) -> list[int]:
        """Submission tags in completion order."""
        return [c.tag for c in self.completions]

    def channel_utilisation(self) -> list[float]:
        """Busy fraction of each channel bus over the makespan."""
        if self.makespan_s <= 0:
            return [0.0 for _ in self.channel_busy_s]
        return [busy / self.makespan_s for busy in self.channel_busy_s]


class _ChannelBus:
    """Serially-reusable channel bus guarded by a wake-up signal."""

    def __init__(self, engine: SimEngine):
        self.busy = False
        self.freed = engine.signal()


class CommandScheduler:
    """Dispatches die commands over the topology on one DES run."""

    def __init__(self, topology: SsdTopology):
        self.topology = topology

    def run(
        self,
        commands: list[DieCommand],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Schedule a closed batch of commands; returns the full timeline.

        ``queue_depth`` bounds how many commands are in flight at once
        (``None`` admits everything immediately — an infinitely deep
        queue).  Commands are admitted in list order; per-die service is
        FIFO; channel buses arbitrate among their dies in wake-up order.
        """
        topology = self.topology
        for command in commands:
            if not 0 <= command.die < topology.dies:
                raise SimulationError(
                    f"command die {command.die} outside topology "
                    f"({topology.dies} dies)"
                )
        if queue_depth is not None and queue_depth < 1:
            raise SimulationError("queue depth must be >= 1")

        engine = SimEngine()
        result = ScheduleResult(
            die_busy_s=[0.0] * topology.dies,
            channel_busy_s=[0.0] * topology.channels,
        )
        buses = [_ChannelBus(engine) for _ in range(topology.channels)]
        queues: list[deque[DieCommand]] = [deque() for _ in range(topology.dies)]
        work = [engine.signal() for _ in range(topology.dies)]
        completed = engine.signal()
        state = {"in_flight": 0, "closed": False}
        admit_s: dict[int, float] = {}

        def admission() -> Process:
            limit = len(commands) if queue_depth is None else queue_depth
            for command in commands:
                while state["in_flight"] >= limit:
                    yield completed
                state["in_flight"] += 1
                admit_s[command.tag] = engine.now_s
                queues[command.die].append(command)
                work[command.die].fire()
            state["closed"] = True
            for signal in work:
                signal.fire()

        def die_process(die: int) -> Process:
            channel = topology.channel_of(die)
            bus = buses[channel]
            while True:
                while not queues[die]:
                    if state["closed"]:
                        return
                    yield work[die]
                command = queues[die].popleft()
                if command.kind is CommandKind.READ:
                    # Sense into the die's page buffer, then stream out.
                    yield command.die_s
                    result.die_busy_s[die] += command.die_s
                    yield from self._hold_bus(bus, command.channel_s)
                    result.channel_busy_s[channel] += command.channel_s
                elif command.kind is CommandKind.PROGRAM:
                    # Stream in (bus frees for siblings), then program.
                    yield from self._hold_bus(bus, command.channel_s)
                    result.channel_busy_s[channel] += command.channel_s
                    yield command.die_s
                    result.die_busy_s[die] += command.die_s
                else:  # ERASE: array-only, no data on the bus.
                    yield command.die_s
                    result.die_busy_s[die] += command.die_s
                result.completions.append(CommandCompletion(
                    tag=command.tag,
                    die=die,
                    channel=channel,
                    admit_s=admit_s[command.tag],
                    done_s=engine.now_s,
                ))
                state["in_flight"] -= 1
                completed.fire()

        engine.spawn(admission())
        for die in range(topology.dies):
            engine.spawn(die_process(die))
        result.makespan_s = engine.run()
        if len(result.completions) != len(commands):
            raise SimulationError(
                f"scheduler completed {len(result.completions)} of "
                f"{len(commands)} commands"
            )
        return result

    @staticmethod
    def _hold_bus(bus: _ChannelBus, duration_s: float) -> Process:
        """Acquire the channel bus, hold it for ``duration_s``, release."""
        while bus.busy:
            yield bus.freed
        bus.busy = True
        yield duration_s
        bus.busy = False
        bus.freed.fire()
