"""Die-striped FTL: logical pages round-robined across every die.

One :class:`~repro.ftl.ftl.FlashTranslationLayer` shard per die (each
with its own mapping, allocator and garbage collector over that die's
block partition) behind an LPN router: logical page ``L`` lives on die
``L % dies`` as shard page ``L // dies``.  Because die indices enumerate
channel-first, consecutive logical pages alternate channels before
stacking dies behind one bus.

``read_many``/``write_many`` keep the exact single-die data semantics —
each shard batch runs through the controller's vectorized ECC datapath —
while *timing* comes from the DES command scheduler: every page's stage
latencies are rebuilt as explicit
:class:`~repro.nand.timing.CommandPhase` sequences (sense on the array
plane of its physical block, transfer on the channel, decode/encode on
the channel ECC engine with its pipelined initiation interval) and
replayed as an interleaved multi-die timeline, so a batch's makespan
reflects real die/plane parallelism and channel contention instead of a
serial sum.  Under the SSD's
:class:`~repro.ssd.scheduler.PipelineConfig` the same commands overlap
further: cache reads hide sensing, multi-plane placement (see
``plane_interleave``) overlaps ISPP programs, and the pipelined ECC
engine decodes page i while page i+1 streams.

The surface mirrors :class:`~repro.ftl.ftl.FlashTranslationLayer`
(write/read/trim/write_many/read_many/stats/apply_config), so namespaces
in :class:`~repro.ftl.service.DifferentiatedStorage` can be backed by
either a single-die partition or a striped SSD span.

Timing is executed by the device's persistent
:class:`~repro.ssd.session.SsdSession` rather than a fresh run-to-drain
scheduler per batch: ``read_many``/``write_many`` drain a closed batch
through :meth:`~repro.ssd.session.SsdSession.execute` (bit-exact with
the classic scheduler), while :meth:`stage_reads`/:meth:`stage_writes`
expose the same data-path + command-building step per submission so the
session's open-loop ``submit()`` stream reuses one code path.  Every
striped FTL over one :class:`~repro.ssd.device.SsdDevice` shares that
device's session by default, so namespaces contend in one device-wide
queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.controller.controller import ReadReport, WriteReport
from repro.errors import ControllerError
from repro.ftl.ftl import FlashTranslationLayer, FtlStats
from repro.ftl.gc import GcMigration, GcStats
from repro.nand.ispp import IsppAlgorithm
from repro.nand.timing import NandTimingModel
from repro.ssd.device import SsdDevice
from repro.ssd.scheduler import (
    CommandKind,
    CommandOrigin,
    DieCommand,
    ScheduleResult,
)
from repro.ssd.topology import group_indices_by_die

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session uses striped)
    from repro.ssd.session import SsdSession


@dataclass(frozen=True)
class StripedLocation:
    """Where one logical page lives: (die, shard-local LPN)."""

    die: int
    shard_lpn: int


class DieStripedFtl:
    """A striped logical block device across every die of an SSD."""

    def __init__(
        self,
        ssd: SsdDevice,
        blocks: list[int] | None = None,
        queue_depth: int | None = None,
        plane_interleave: bool = False,
        session: "SsdSession | None" = None,
    ):
        """Stripe over ``blocks`` of every die (the whole die by default).

        ``queue_depth`` is the default host-queue window for batch calls
        (``None`` keeps the queue as deep as the batch).
        ``plane_interleave`` makes each shard's allocator rotate open
        blocks across the die's array planes, so consecutive writes land
        on alternating planes — the placement policy that lets the
        scheduler's ``multi_plane`` pipeline overlap ISPP phases.
        ``session`` overrides the queue pair batches execute on; by
        default the device-wide :attr:`SsdDevice.session` is shared, so
        every span over one SSD queues on one timeline.
        """
        self.ssd = ssd
        self._session = session
        if blocks is None:
            blocks = list(range(ssd.geometry.blocks))
        self.blocks = list(blocks)
        self.queue_depth = queue_depth
        self.shards = [
            FlashTranslationLayer(
                controller, list(blocks), plane_interleave=plane_interleave
            )
            for controller in ssd.controllers
        ]
        self.logical_capacity = self.dies * min(
            shard.logical_capacity for shard in self.shards
        )
        self.last_schedule: ScheduleResult | None = None

    @property
    def session(self) -> "SsdSession":
        """The queue pair this FTL's commands execute on.

        Defaults to the device-wide session so independent spans (e.g.
        service-class namespaces) share one queue and one timeline.
        """
        if self._session is None:
            self._session = self.ssd.session
        return self._session

    @property
    def dies(self) -> int:
        """Stripe width."""
        return self.ssd.topology.dies

    @property
    def geometry(self):
        """Per-die NAND geometry."""
        return self.ssd.geometry

    # -- LPN routing -----------------------------------------------------------

    def route(self, lpn: int) -> StripedLocation:
        """Die and shard-local LPN of one logical page."""
        if not 0 <= lpn < self.logical_capacity:
            raise ControllerError(
                f"LPN {lpn} outside logical capacity {self.logical_capacity}"
            )
        return StripedLocation(die=lpn % self.dies, shard_lpn=lpn // self.dies)

    # -- host interface --------------------------------------------------------------

    def write(self, lpn: int, data: bytes) -> float:
        """Write (or update) a logical page; returns the latency."""
        return self.write_many([(lpn, data)])[0]

    def read(self, lpn: int) -> tuple[bytes, float]:
        """Read a logical page; returns (data, latency)."""
        return self.read_many([lpn])[0]

    def write_many(
        self, items: list[tuple[int, bytes]], queue_depth: int | None = None
    ) -> list[float]:
        """Write a batch striped across dies; returns per-page latencies.

        Each die's sub-batch runs through its shard FTL (one allocation
        pass + ``write_batch`` per die); the per-page stage latencies are
        then scheduled as PROGRAM commands — channel transfer + encode,
        then die program — and the returned latency of each page is its
        scheduled completion minus admission (queueing included).  The
        full timeline is kept in :attr:`last_schedule`.
        """
        commands = self.stage_writes(items)
        return self._schedule(commands, len(items), queue_depth)

    def read_many(
        self, lpns: list[int], queue_depth: int | None = None
    ) -> list[tuple[bytes, float]]:
        """Read a batch striped across dies; returns (data, latency) pairs.

        Data and error statistics are byte-identical to issuing each
        die's sub-batch straight at its shard (same controllers, same RNG
        streams); latency per page comes from the scheduled READ timeline
        (die sense, then channel transfer + decode).
        """
        datas, commands = self.stage_reads(lpns)
        latencies = self._schedule(commands, len(lpns), queue_depth)
        return list(zip(datas, latencies))

    def stage_writes(
        self,
        items: list[tuple[int, bytes]],
        tags: "Sequence[int] | None" = None,
    ) -> list[DieCommand]:
        """Run the write data path and build (untimed) PROGRAM commands.

        ``tags`` names each command's submission tag (defaults to the
        item index); the commands are returned in tag order, ready for
        :meth:`~repro.ssd.session.SsdSession.execute` or a per-command
        :meth:`~repro.ssd.session.SsdSession.submit`.
        """
        if tags is None:
            tags = range(len(items))
        routes = [self.route(lpn) for lpn, _ in items]
        per_die = self._group(routes)
        commands: list[DieCommand] = []
        for die, indices in per_die.items():
            reports = self.shards[die].write_many_reports(
                [(routes[i].shard_lpn, items[i][1]) for i in indices]
            )
            commands.extend(
                self._program_command(die, tags[index], report)
                for index, report in zip(indices, reports)
            )
        commands.sort(key=lambda command: command.tag)
        return commands

    def stage_reads(
        self,
        lpns: list[int],
        tags: "Sequence[int] | None" = None,
    ) -> tuple[list[bytes], list[DieCommand]]:
        """Run the read data path and build (untimed) READ commands.

        Returns the decoded page data (submission order) and the
        commands in tag order; see :meth:`stage_writes` for ``tags``.
        """
        if tags is None:
            tags = range(len(lpns))
        routes = [self.route(lpn) for lpn in lpns]
        per_die = self._group(routes)
        datas: list[bytes | None] = [None] * len(lpns)
        commands: list[DieCommand] = []
        for die, indices in per_die.items():
            reads = self.shards[die].read_many_reports(
                [routes[i].shard_lpn for i in indices]
            )
            for index, (data, report) in zip(indices, reads):
                datas[index] = data
                commands.append(self._read_command(die, tags[index], report))
        commands.sort(key=lambda command: command.tag)
        return datas, commands

    def trim(self, lpn: int) -> None:
        """Discard a logical page."""
        location = self.route(lpn)
        self.shards[location.die].trim(location.shard_lpn)

    def is_mapped(self, lpn: int) -> bool:
        """Whether a logical page currently holds data."""
        location = self.route(lpn)
        return self.shards[location.die].is_mapped(location.shard_lpn)

    # -- configuration / telemetry ---------------------------------------------------

    def apply_config(self, algorithm: IsppAlgorithm, ecc_t: int) -> None:
        """Program the cross-layer knobs on every die's controller."""
        for shard in self.shards:
            shard.apply_config(algorithm, ecc_t)

    @property
    def stats(self) -> FtlStats:
        """Aggregate host-visible accounting across every shard."""
        total = FtlStats()
        for shard in self.shards:
            total.host_writes += shard.stats.host_writes
            total.host_reads += shard.stats.host_reads
            total.trims += shard.stats.trims
            total.write_time_s += shard.stats.write_time_s
            total.read_time_s += shard.stats.read_time_s
            total.corrected_bits += shard.stats.corrected_bits
        return total

    @property
    def gc_stats(self) -> GcStats:
        """Aggregate garbage-collection accounting across every shard."""
        total = GcStats()
        for shard in self.shards:
            total.collections += shard.gc.stats.collections
            total.pages_migrated += shard.gc.stats.pages_migrated
            total.blocks_erased += shard.gc.stats.blocks_erased
            total.migration_time_s += shard.gc.stats.migration_time_s
            total.background_collections += (
                shard.gc.stats.background_collections
            )
            total.scheduled_busy_s += shard.gc.stats.scheduled_busy_s
        return total

    def populate_counters(self, registry) -> None:
        """Add host-op, GC and write-amplification counters to a registry.

        Write amplification here is the logical page ratio
        ``(host writes + GC migrations) / host writes`` — the FTL-level
        view; the media-level view falls out of the device's
        ``media_page_programs`` counter.
        """
        stats = self.stats
        gc = self.gc_stats
        registry.add("host_reads", stats.host_reads, "pages")
        registry.add("host_writes", stats.host_writes, "pages")
        registry.add("host_trims", stats.trims, "ops")
        registry.add("gc_collections", gc.collections, "runs")
        registry.add("gc_pages_migrated", gc.pages_migrated, "pages")
        registry.add("gc_blocks_erased", gc.blocks_erased, "blocks")
        registry.add(
            "gc_background_collections", gc.background_collections, "runs"
        )
        registry.add("gc_scheduled_busy_s", gc.scheduled_busy_s, "s")
        for shard in self.shards:
            registry.append(
                "gc_free_blocks",
                shard.allocator.free_block_count,
                "blocks",
            )
        host_writes = registry.get("host_writes")
        if host_writes:
            registry.set(
                "write_amplification",
                (host_writes + registry.get("gc_pages_migrated"))
                / host_writes,
                "x",
            )

    # -- internals -------------------------------------------------------------------

    def _group(self, routes: list[StripedLocation]) -> dict[int, list[int]]:
        """Submission indices grouped by die, host order preserved."""
        return group_indices_by_die([location.die for location in routes])

    def _plane_of(self, report: ReadReport | WriteReport) -> int:
        """Array plane of the physical block a report names (0 if unknown)."""
        if report.block < 0:
            return 0
        return self.geometry.plane_of_block(report.block)

    def _read_command(
        self,
        die: int,
        tag: int,
        report: ReadReport,
        origin: CommandOrigin = CommandOrigin.HOST,
    ) -> DieCommand:
        latencies = report.latencies
        codec = self.shards[die].controller.codec
        device = self.shards[die].controller.device
        phases = NandTimingModel.read_phases(
            sense_s=latencies.read_array_s,
            transfer_s=latencies.transfer_s,
            decode_s=latencies.decode_s,
            decode_hold_s=codec.decode_interval_s(report.ecc_t),
        )
        return DieCommand.from_phases(
            CommandKind.READ, die, tag, phases,
            plane=self._plane_of(report),
            cache_busy_s=device.timing.cache_busy_s(),
            origin=origin,
        )

    def _program_command(
        self,
        die: int,
        tag: int,
        report: WriteReport,
        origin: CommandOrigin = CommandOrigin.HOST,
    ) -> DieCommand:
        latencies = report.latencies
        codec = self.shards[die].controller.codec
        phases = NandTimingModel.program_phases(
            program_s=latencies.program_s,
            transfer_s=latencies.transfer_s,
            encode_s=latencies.encode_s,
            encode_hold_s=codec.encode_interval_s(report.ecc_t),
        )
        return DieCommand.from_phases(
            CommandKind.PROGRAM, die, tag, phases,
            plane=self._plane_of(report),
            origin=origin,
        )

    def gc_commands(
        self, die: int, migration: GcMigration, tags: Sequence[int]
    ) -> list[DieCommand]:
        """Replay one shard collection as GC-origin die commands.

        The migration's data path already ran (reads decoded, programs
        bound, victim erased in the wear model) — what remains is its
        *time*: every live-page read, every rewrite program, and the
        victim erase become tagged commands that contend for this die's
        planes, channel bus and ECC engine on the session timeline.
        ``tags`` must provide ``len(reads) + len(writes) + 1`` entries.
        """
        expected = len(migration.reads) + len(migration.writes) + 1
        if len(tags) != expected:
            raise ControllerError(
                f"gc_commands needs {expected} tags, got {len(tags)}"
            )
        gc = CommandOrigin.GC
        commands: list[DieCommand] = []
        cursor = 0
        for report in migration.reads:
            commands.append(
                self._read_command(die, tags[cursor], report, origin=gc)
            )
            cursor += 1
        for report in migration.writes:
            commands.append(
                self._program_command(die, tags[cursor], report, origin=gc)
            )
            cursor += 1
        erase = NandTimingModel.erase_phases(migration.erase_s)
        commands.append(DieCommand.from_phases(
            CommandKind.ERASE, die, tags[cursor], erase,
            plane=self.geometry.plane_of_block(migration.victim),
            origin=gc,
        ))
        return commands

    def pick_striped_victim(self, dies: Sequence[int]) -> list[int] | None:
        """Superblock-striped victim: the same block index on every die.

        Scores each candidate block number by summing the shard GC
        policy's :meth:`~repro.ftl.gc.GarbageCollector.victim_score`
        across the given dies (shards where the block is open, free or
        clean contribute nothing), then returns ``[block] * len(dies)``
        aligned with ``dies`` for the best-scoring stripe — one logical
        collection that erases the same block everywhere and therefore
        runs die-parallel on the timeline.  ``None`` when no block is
        collectable on any die.
        """
        if not dies:
            return None
        best_key: tuple[float, int, int] | None = None
        best_block = -1
        for block in self.blocks:
            total = 0.0
            shards_in = 0
            for die in dies:
                score = self.shards[die].gc.victim_score(block)
                if score is not None:
                    total += score
                    shards_in += 1
            if shards_in == 0:
                continue
            key = (total, shards_in, -block)
            if best_key is None or key > best_key:
                best_key = key
                best_block = block
        if best_key is None:
            return None
        return [best_block] * len(dies)

    def _schedule(
        self,
        commands: list[DieCommand],
        count: int,
        queue_depth: int | None,
    ) -> list[float]:
        """Drain the batch on the device session; per-tag latencies.

        Uses :meth:`~repro.ssd.session.SsdSession.execute`, which is
        bit-exact with a fresh run-to-drain
        :class:`~repro.ssd.scheduler.CommandScheduler` — the session
        merely keeps its workers (and any sibling namespaces' traffic)
        on one persistent timeline.
        """
        if queue_depth is None:
            queue_depth = self.queue_depth
        self.last_schedule = self.session.execute(commands, queue_depth)
        by_tag = self.last_schedule.latency_by_tag()
        return [by_tag[tag] for tag in range(count)]
