"""Multi-die SSD device: one NAND controller per die, shared policy.

Replicates the paper's characterised unit — one NAND die behind one BCH
channel — across the topology.  Every die gets its own
:class:`~repro.nand.device.NandFlashDevice` (independent, reproducible
RNG stream) wrapped in its own :class:`~repro.controller.NandController`,
all driven by one cross-layer policy so a mode change reconfigures the
whole SSD.  Raw device-level batch I/O fans out through the device's
persistent :class:`~repro.ssd.session.SsdSession` (one queue pair per
device, shared by every striped FTL over it), which turns per-die
sub-batches into an interleaved DES timeline on the resident
:class:`~repro.ssd.scheduler.SchedulerCore`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.controller.controller import ControllerConfig, NandController
from repro.controller.ocp import OcpParams
from repro.core.modes import OperatingMode
from repro.core.policy import CrossLayerPolicy
from repro.errors import ConfigurationError
from repro.nand.ispp import IsppAlgorithm
from repro.nand.timing import NandTimingModel
from repro.ssd.scheduler import (
    CommandKind,
    CommandScheduler,
    DieCommand,
    PipelineConfig,
    ScheduleResult,
)
from repro.ssd.topology import (
    SsdTopology,
    group_indices_by_die,
    spawn_die_rngs,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session uses device)
    from repro.ssd.session import SsdSession

#: A device-level page address: (die, block, page).
DiePageAddress = tuple[int, int, int]


class SsdDevice:
    """A farm of per-die controllers behind one command scheduler."""

    def __init__(
        self,
        topology: SsdTopology | None = None,
        policy: CrossLayerPolicy | None = None,
        controller_config: ControllerConfig | None = None,
        ocp_params: OcpParams | None = None,
        seed: int | None = None,
        rngs: list[np.random.Generator] | None = None,
        pipeline: PipelineConfig | None = None,
    ):
        self.topology = topology or SsdTopology()
        self.policy = policy or CrossLayerPolicy()
        self.pipeline = pipeline or PipelineConfig()
        if rngs is None:
            rngs = spawn_die_rngs(seed, self.topology.dies)
        if len(rngs) != self.topology.dies:
            raise ConfigurationError(
                f"{len(rngs)} RNG streams for {self.topology.dies} dies"
            )
        self.controllers = [
            NandController(
                self.topology.geometry,
                config=controller_config,
                policy=self.policy,
                ocp_params=ocp_params,
                rng=rng,
            )
            for rng in rngs
        ]
        self.scheduler = CommandScheduler(self.topology, self.pipeline)
        self._session: "SsdSession | None" = None

    @property
    def session(self) -> "SsdSession":
        """The device-wide queue pair (created on first use).

        All striped FTLs (and raw batch I/O) over this device share it,
        so their commands contend on one persistent timeline.
        """
        if self._session is None:
            from repro.ssd.session import SsdSession

            self._session = SsdSession(ssd=self)
        return self._session

    # -- topology-wide configuration -------------------------------------------

    @property
    def geometry(self):
        """Per-die NAND geometry."""
        return self.topology.geometry

    @property
    def mode(self) -> OperatingMode:
        """Active operating mode (uniform across dies)."""
        return self.controllers[0].mode

    def controller(self, die: int) -> NandController:
        """The controller in front of one die."""
        self.topology._check_die(die)
        return self.controllers[die]

    def set_mode(
        self, mode: OperatingMode, pe_reference: float | None = None
    ) -> None:
        """Select a service level on every die's controller."""
        if pe_reference is None:
            pe_reference = float(self.max_wear())
        for controller in self.controllers:
            controller.set_mode(mode, pe_reference)

    def apply_config(self, algorithm: IsppAlgorithm, ecc_t: int) -> None:
        """Program the cross-layer knobs on every die's controller."""
        for controller in self.controllers:
            controller.apply_config(algorithm, ecc_t)

    def max_wear(self) -> int:
        """Highest block wear across every die."""
        return max(
            controller.device.array.max_wear()
            for controller in self.controllers
        )

    # -- raw device-level batch I/O ------------------------------------------------

    def program_pages(
        self,
        addresses: list[DiePageAddress],
        datas: list[bytes],
        queue_depth: int | None = None,
    ) -> ScheduleResult:
        """Program a batch across dies; returns the scheduled timeline.

        Data lands through each die's batched
        :meth:`~repro.nand.device.NandFlashDevice.program_pages` (so a
        1x1 topology is byte-identical to the single-device path); the
        schedule overlaps per-die program phases behind the channel
        transfers.
        """
        if len(addresses) != len(datas):
            raise ConfigurationError(
                f"{len(addresses)} addresses for {len(datas)} data buffers"
            )
        per_die = self._group_by_die(addresses)
        transfer_s = self.topology.channel_timing.transfer_time_s(
            self.geometry.page_bytes
        )
        commands: list[DieCommand] = []
        for die, indices in per_die.items():
            device = self.controllers[die].device
            reports = device.program_pages(
                [addresses[i][1:] for i in indices],
                [datas[i] for i in indices],
            )
            commands.extend(
                DieCommand.from_phases(
                    CommandKind.PROGRAM,
                    die,
                    index,
                    NandTimingModel.program_phases(
                        program_s=report.latency_s, transfer_s=transfer_s
                    ),
                    plane=self.geometry.plane_of_block(addresses[index][1]),
                )
                for index, report in zip(indices, reports)
            )
        commands.sort(key=lambda command: command.tag)
        return self.session.execute(commands, queue_depth)

    def read_pages(
        self,
        addresses: list[DiePageAddress],
        queue_depth: int | None = None,
    ) -> tuple[np.ndarray, ScheduleResult]:
        """Read a batch across dies: raw rows in submission order + timeline.

        Each die senses its sub-batch through the batched device datapath
        (vectorized RBER and error injection, per-die RNG stream), so the
        1x1 topology returns bytes identical to a standalone
        :class:`~repro.nand.device.NandFlashDevice` seeded with the same
        stream.
        """
        per_die = self._group_by_die(addresses)
        transfer_s = self.topology.channel_timing.transfer_time_s(
            self.geometry.page_bytes
        )
        rows = np.empty(
            (len(addresses), self.geometry.page_bytes), dtype=np.uint8
        )
        commands: list[DieCommand] = []
        for die, indices in per_die.items():
            device = self.controllers[die].device
            raw, report = device.read_pages([addresses[i][1:] for i in indices])
            rows[indices] = raw
            commands.extend(
                DieCommand.from_phases(
                    CommandKind.READ,
                    die,
                    index,
                    NandTimingModel.read_phases(
                        sense_s=report.latency_s, transfer_s=transfer_s
                    ),
                    plane=self.geometry.plane_of_block(addresses[index][1]),
                    cache_busy_s=device.timing.cache_busy_s(),
                )
                for index in indices
            )
        commands.sort(key=lambda command: command.tag)
        return rows, self.session.execute(commands, queue_depth)

    def erase_blocks(
        self, blocks: list[tuple[int, int]], queue_depth: int | None = None
    ) -> ScheduleResult:
        """Erase (die, block) pairs across the topology."""
        commands = []
        for index, (die, block) in enumerate(blocks):
            report = self.controller(die).device.erase_block(block)
            commands.append(DieCommand.from_phases(
                CommandKind.ERASE,
                die,
                index,
                NandTimingModel.erase_phases(report.latency_s),
                plane=self.geometry.plane_of_block(block),
            ))
        return self.session.execute(commands, queue_depth)

    # -- helpers -------------------------------------------------------------------

    def _group_by_die(
        self, addresses: list[DiePageAddress]
    ) -> dict[int, list[int]]:
        """Submission indices grouped by die, dies validated."""
        dies = [die for die, _, _ in addresses]
        for die in dies:
            self.topology._check_die(die)
        return group_indices_by_die(dies)
