"""repro — cross-layer reliability/performance trade-offs in MLC NAND flash.

A production-quality reproduction of Zambelli et al., "A Cross-Layer
Approach for New Reliability-Performance Trade-Offs in MLC NAND Flash
Memories" (DATE 2012).

Quick start
-----------
>>> from repro import NandController, OperatingMode
>>> controller = NandController()
>>> controller.set_mode(OperatingMode.MAX_READ_THROUGHPUT)
>>> report = controller.write(block=0, page=0, data=bytes(4096))
>>> data, read_report = controller.read(block=0, page=0)

Layers
------
* :mod:`repro.gf` / :mod:`repro.bch` — GF(2^m) arithmetic and the adaptive
  BCH codec (architecture layer, paper section 4);
* :mod:`repro.nand` / :mod:`repro.hv` — MLC cell physics, ISPP-SV/DV
  programming and the high-voltage subsystem (physical layer, section 5);
* :mod:`repro.controller` — the advanced memory controller (section 3);
* :mod:`repro.core` — the cross-layer policies and trade-off analysis
  (section 6.3, the paper's contribution);
* :mod:`repro.ssd` — multi-channel / multi-die topology with a DES
  command scheduler and die-striped FTL (system-level scale-out);
* :mod:`repro.analysis.experiments` — one runner per paper figure.
"""

from repro.bch import AdaptiveBCHCodec, BCHDecoder, BCHEncoder, design_code
from repro.controller import NandController
from repro.core import (
    CrossLayerConfig,
    CrossLayerPolicy,
    OperatingMode,
    TradeoffAnalyzer,
)
from repro.ftl import DifferentiatedStorage, FlashTranslationLayer, ServiceClass
from repro.nand import (
    IsppAlgorithm,
    LifetimeRberModel,
    NandFlashDevice,
    PageProgrammer,
)
from repro.ssd import DieStripedFtl, SsdDevice, SsdTopology

__version__ = "1.0.0"

__all__ = [
    "AdaptiveBCHCodec",
    "BCHEncoder",
    "BCHDecoder",
    "design_code",
    "NandController",
    "OperatingMode",
    "CrossLayerConfig",
    "CrossLayerPolicy",
    "TradeoffAnalyzer",
    "IsppAlgorithm",
    "PageProgrammer",
    "LifetimeRberModel",
    "NandFlashDevice",
    "FlashTranslationLayer",
    "DifferentiatedStorage",
    "ServiceClass",
    "SsdTopology",
    "SsdDevice",
    "DieStripedFtl",
    "__version__",
]
