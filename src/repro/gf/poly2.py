"""Polynomials over GF(2) represented as Python integers.

Bit ``i`` of the integer is the coefficient of ``x^i``.  Python's arbitrary
precision integers make this representation both compact and fast for the
very high degree polynomials BCH needs (the t = 65 generator polynomial has
degree 1040), since XOR/shift on big ints run in C.
"""

from __future__ import annotations

from repro.gf.field import GF2m


def poly2_deg(p: int) -> int:
    """Degree of the polynomial; the zero polynomial has degree -1."""
    return p.bit_length() - 1


def poly2_add(a: int, b: int) -> int:
    """Addition over GF(2) (XOR)."""
    return a ^ b


def poly2_mul(a: int, b: int) -> int:
    """Carry-less multiplication of two GF(2) polynomials."""
    if a == 0 or b == 0:
        return 0
    # Iterate over the sparser operand's set bits.
    if a.bit_count() > b.bit_count():
        a, b = b, a
    result = 0
    shift = 0
    while a:
        if a & 1:
            result ^= b << shift
        # Skip runs of zero bits in one step.
        a >>= 1
        shift += 1
    return result


def poly2_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of GF(2) polynomial division."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = poly2_deg(b)
    quotient = 0
    remainder = a
    deg_r = poly2_deg(remainder)
    while deg_r >= deg_b:
        shift = deg_r - deg_b
        quotient |= 1 << shift
        remainder ^= b << shift
        deg_r = poly2_deg(remainder)
    return quotient, remainder


def poly2_mod(a: int, b: int) -> int:
    """Remainder of GF(2) polynomial division."""
    return poly2_divmod(a, b)[1]


def poly2_to_coeff_list(p: int, length: int | None = None) -> list[int]:
    """Expand to a 0/1 coefficient list, low-order first.

    ``length`` pads (or validates) the output size; by default the list has
    ``deg(p) + 1`` entries (empty for the zero polynomial).
    """
    coeffs = [(p >> i) & 1 for i in range(p.bit_length())]
    if length is not None:
        if len(coeffs) > length:
            raise ValueError(f"polynomial degree {len(coeffs) - 1} exceeds length {length}")
        coeffs.extend([0] * (length - len(coeffs)))
    return coeffs


def poly2_eval_in_field(p: int, point: int, field: GF2m) -> int:
    """Evaluate a GF(2) polynomial at a GF(2^m) point (Horner scheme)."""
    acc = 0
    for i in range(poly2_deg(p), -1, -1):
        acc = field.mul(acc, point)
        if (p >> i) & 1:
            acc ^= 1
    return acc
