"""Cyclotomic cosets and minimal polynomials over GF(2).

The BCH generator polynomial is the least common multiple of the minimal
polynomials of alpha, alpha^2, ..., alpha^(2t); because conjugates share a
minimal polynomial, the LCM reduces to a product over distinct cyclotomic
cosets (Micheloni et al., "Error Correction Codes for Non-Volatile
Memories", ch. 3).
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import GaloisFieldError
from repro.gf.field import GF2m
from repro.gf.polygf import GFPoly


def cyclotomic_coset(i: int, m: int) -> tuple[int, ...]:
    """The 2-cyclotomic coset of ``i`` modulo ``2^m - 1``, sorted."""
    n = (1 << m) - 1
    i %= n
    coset = set()
    j = i
    while j not in coset:
        coset.add(j)
        j = (j * 2) % n
    return tuple(sorted(coset))


def cyclotomic_cosets(m: int, up_to: int | None = None) -> list[tuple[int, ...]]:
    """All distinct cosets with representative <= ``up_to`` (default: all)."""
    n = (1 << m) - 1
    limit = n - 1 if up_to is None else up_to
    seen: set[int] = set()
    cosets = []
    for i in range(1, limit + 1):
        if i % n in seen:
            continue
        coset = cyclotomic_coset(i, m)
        seen.update(coset)
        cosets.append(coset)
    return cosets


@lru_cache(maxsize=None)
def _minimal_polynomial_cached(i: int, m: int, primitive_poly: int) -> int:
    field = GF2m(m, primitive_poly)
    coset = cyclotomic_coset(i, m)
    roots = [field.alpha_pow(j) for j in coset]
    poly = GFPoly.from_roots(field, roots)
    # A minimal polynomial over GF(2) must have 0/1 coefficients.
    mask = 0
    for degree, coeff in enumerate(poly.coeffs):
        if coeff not in (0, 1):
            raise GaloisFieldError(
                f"minimal polynomial of alpha^{i} has non-binary coefficient {coeff}"
            )
        if coeff:
            mask |= 1 << degree
    return mask


def minimal_polynomial(field: GF2m, i: int) -> int:
    """Minimal polynomial of alpha^i over GF(2), as an integer bit mask.

    The returned integer encodes the polynomial with bit ``d`` equal to the
    coefficient of ``x^d``; it always has degree dividing ``m``.
    """
    return _minimal_polynomial_cached(i % field.order, field.m, field.primitive_poly)
