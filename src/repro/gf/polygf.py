"""Dense polynomials over GF(2^m).

Coefficients are stored low-order first in a plain list of field elements.
This class backs the Berlekamp-Massey machine and the error-locator algebra;
the performance-critical Chien evaluation goes through the vectorized
:meth:`repro.gf.field.GF2m.eval_poly_vec` instead.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import GaloisFieldError
from repro.gf.field import GF2m


class GFPoly:
    """A polynomial with coefficients in GF(2^m)."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF2m, coeffs: Iterable[int] = ()):
        self.field = field
        trimmed = list(coeffs)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        for c in trimmed:
            if not 0 <= c < field.q:
                raise GaloisFieldError(f"coefficient {c} outside GF(2^{field.m})")
        self.coeffs = trimmed

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, field: GF2m) -> "GFPoly":
        """The zero polynomial."""
        return cls(field, [])

    @classmethod
    def one(cls, field: GF2m) -> "GFPoly":
        """The constant polynomial 1."""
        return cls(field, [1])

    @classmethod
    def monomial(cls, field: GF2m, degree: int, coeff: int = 1) -> "GFPoly":
        """``coeff * x**degree``."""
        if degree < 0:
            raise GaloisFieldError("monomial degree must be non-negative")
        return cls(field, [0] * degree + [coeff])

    @classmethod
    def from_roots(cls, field: GF2m, roots: Sequence[int]) -> "GFPoly":
        """Monic polynomial with the given roots: prod (x - r)."""
        poly = cls.one(field)
        for r in roots:
            poly = poly * cls(field, [r, 1])  # (x + r) == (x - r) over GF(2^m)
        return poly

    # -- basic queries ---------------------------------------------------------

    @property
    def degree(self) -> int:
        """Polynomial degree (-1 for the zero polynomial)."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    def coeff(self, i: int) -> int:
        """Coefficient of x^i (0 beyond the stored degree)."""
        if 0 <= i < len(self.coeffs):
            return self.coeffs[i]
        return 0

    def leading_coeff(self) -> int:
        """Coefficient of the highest-degree term (0 for zero polynomial)."""
        return self.coeffs[-1] if self.coeffs else 0

    # -- arithmetic -------------------------------------------------------------

    def _check_field(self, other: "GFPoly") -> None:
        if other.field != self.field:
            raise GaloisFieldError("mixed-field polynomial arithmetic")

    def __add__(self, other: "GFPoly") -> "GFPoly":
        self._check_field(other)
        n = max(len(self.coeffs), len(other.coeffs))
        coeffs = [self.coeff(i) ^ other.coeff(i) for i in range(n)]
        return GFPoly(self.field, coeffs)

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "GFPoly") -> "GFPoly":
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return GFPoly.zero(self.field)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        mul = self.field.mul
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    out[i + j] ^= mul(a, b)
        return GFPoly(self.field, out)

    def scale(self, c: int) -> "GFPoly":
        """Multiply every coefficient by the scalar ``c``."""
        mul = self.field.mul
        return GFPoly(self.field, [mul(c, a) for a in self.coeffs])

    def shift(self, k: int) -> "GFPoly":
        """Multiply by x^k."""
        if self.is_zero():
            return self
        return GFPoly(self.field, [0] * k + self.coeffs)

    def divmod(self, other: "GFPoly") -> tuple["GFPoly", "GFPoly"]:
        """Euclidean division: returns (quotient, remainder)."""
        self._check_field(other)
        if other.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        field = self.field
        rem = list(self.coeffs)
        divisor = other.coeffs
        ddeg = other.degree
        inv_lead = field.inv(other.leading_coeff())
        qdeg = len(rem) - 1 - ddeg
        if qdeg < 0:
            return GFPoly.zero(field), GFPoly(field, rem)
        quot = [0] * (qdeg + 1)
        for i in range(len(rem) - 1, ddeg - 1, -1):
            coeff = rem[i]
            if coeff == 0:
                continue
            factor = field.mul(coeff, inv_lead)
            quot[i - ddeg] = factor
            offset = i - ddeg
            for j, d in enumerate(divisor):
                if d:
                    rem[offset + j] ^= field.mul(factor, d)
        return GFPoly(field, quot), GFPoly(field, rem)

    # -- evaluation ----------------------------------------------------------

    def __call__(self, point: int) -> int:
        """Horner evaluation at a field element."""
        acc = 0
        mul = self.field.mul
        for c in reversed(self.coeffs):
            acc = mul(acc, point) ^ c
        return acc

    def formal_derivative(self) -> "GFPoly":
        """Formal derivative; over GF(2^m) even-power terms vanish."""
        coeffs = [
            self.coeffs[i] if i % 2 == 1 else 0 for i in range(1, len(self.coeffs))
        ]
        return GFPoly(self.field, coeffs)

    def roots(self) -> list[int]:
        """Brute-force root search over the whole field (small fields only)."""
        return [x for x in range(self.field.q) if self(x) == 0]

    # -- dunder -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFPoly)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, tuple(self.coeffs)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GFPoly(GF(2^{self.field.m}), {self.coeffs})"
