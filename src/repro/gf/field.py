"""Binary extension fields GF(2^m) with log/antilog tables.

The field is built from a primitive polynomial p(x) of degree m; elements
are integers in [0, 2^m) whose bits are polynomial coefficients.  A full
exponentiation table of the primitive element alpha is precomputed, which
makes scalar multiplication two table lookups and allows numpy-vectorized
bulk arithmetic (used heavily by the Chien search).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import GaloisFieldError

#: Default primitive polynomials (bit i = coefficient of x^i), one per degree.
#: These are the standard choices used by BCH/CRC hardware generators.
_PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
    15: 0b1000000000000011,
    16: 0b10001000000001011,
}


def default_primitive_poly(m: int) -> int:
    """Return the library's default primitive polynomial for GF(2^m)."""
    try:
        return _PRIMITIVE_POLYS[m]
    except KeyError:
        raise GaloisFieldError(f"no default primitive polynomial for m={m}") from None


class GF2m:
    """The finite field GF(2^m).

    Parameters
    ----------
    m:
        Field degree; the field has ``2**m`` elements.
    primitive_poly:
        Optional primitive polynomial as an integer bit mask including the
        x^m term.  Defaults to the standard polynomial for the degree.

    Notes
    -----
    Construction verifies primitivity: the powers of alpha = x must cycle
    through all 2^m - 1 nonzero elements.
    """

    __slots__ = ("m", "q", "order", "primitive_poly", "exp", "log", "_exp2")

    def __init__(self, m: int, primitive_poly: int | None = None):
        if not 2 <= m <= 16:
            raise GaloisFieldError(f"supported degrees are 2..16, got {m}")
        if primitive_poly is None:
            primitive_poly = default_primitive_poly(m)
        if primitive_poly >> m != 1:
            raise GaloisFieldError(
                f"primitive polynomial 0x{primitive_poly:x} does not have degree {m}"
            )
        self.m = m
        self.q = 1 << m
        self.order = self.q - 1
        self.primitive_poly = primitive_poly

        exp = np.zeros(self.order, dtype=np.int64)
        log = np.full(self.q, -1, dtype=np.int64)
        value = 1
        for i in range(self.order):
            exp[i] = value
            if log[value] != -1:
                raise GaloisFieldError(
                    f"polynomial 0x{primitive_poly:x} is not primitive for m={m}"
                )
            log[value] = i
            value <<= 1
            if value & self.q:
                value ^= primitive_poly
        if value != 1:
            raise GaloisFieldError(
                f"polynomial 0x{primitive_poly:x} is not primitive for m={m}"
            )
        self.exp = exp
        self.log = log
        # Doubled exponent table: avoids the modulo reduction in scalar mul.
        self._exp2 = np.concatenate([exp, exp])

    # -- scalar operations -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (carry-less XOR)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp2[self.log[a] + self.log[b]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises on division by zero."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self.exp[(self.log[a] - self.log[b]) % self.order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return int(self.exp[(self.order - self.log[a]) % self.order])

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation ``a**e`` (negative exponents allowed)."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("zero has no negative powers")
            return 0
        return int(self.exp[(self.log[a] * e) % self.order])

    def alpha_pow(self, e: int) -> int:
        """Power ``alpha**e`` of the primitive element."""
        return int(self.exp[e % self.order])

    def element_order(self, a: int) -> int:
        """Multiplicative order of a nonzero element."""
        if a == 0:
            raise GaloisFieldError("zero has no multiplicative order")
        loga = int(self.log[a])
        from math import gcd

        return self.order // gcd(self.order, loga)

    # -- vectorized operations ---------------------------------------------

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication of two integer arrays."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = (a != 0) & (b != 0)
        av, bv = np.broadcast_arrays(a, b)
        out[nz] = self._exp2[self.log[av[nz]] + self.log[bv[nz]]]
        return out

    def pow_alpha_vec(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorized ``alpha**e`` for an array of integer exponents."""
        exponents = np.asarray(exponents, dtype=np.int64) % self.order
        return self.exp[exponents]

    def eval_poly_vec(self, coeffs: np.ndarray, points_log: np.ndarray) -> np.ndarray:
        """Evaluate a polynomial at many field points simultaneously.

        Parameters
        ----------
        coeffs:
            Polynomial coefficients, low-order first (``coeffs[i]`` is the
            coefficient of x^i).
        points_log:
            Discrete logs of the (nonzero) evaluation points.

        Returns
        -------
        numpy.ndarray
            ``poly(point)`` for every point, as field elements.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        points_log = np.asarray(points_log, dtype=np.int64)
        acc = np.zeros(points_log.shape, dtype=np.int64)
        for i, c in enumerate(coeffs):
            c = int(c)
            if c == 0:
                continue
            exps = (int(self.log[c]) + i * points_log) % self.order
            acc ^= self.exp[exps]
        return acc

    # -- dunder helpers ------------------------------------------------------

    def __contains__(self, a: int) -> bool:
        return 0 <= a < self.q

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GF2m(m={self.m}, primitive_poly=0x{self.primitive_poly:x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))


@lru_cache(maxsize=None)
def get_field(m: int, primitive_poly: int | None = None) -> GF2m:
    """Memoized field constructor (table building for m=16 is not free)."""
    return GF2m(m, primitive_poly)
