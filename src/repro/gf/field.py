"""Binary extension fields GF(2^m) with log/antilog tables.

The field is built from a primitive polynomial p(x) of degree m; elements
are integers in [0, 2^m) whose bits are polynomial coefficients.  A full
exponentiation table of the primitive element alpha is precomputed, which
makes scalar multiplication two table lookups and allows numpy-vectorized
bulk arithmetic (used heavily by the Chien search).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import GaloisFieldError

#: Default primitive polynomials (bit i = coefficient of x^i), one per degree.
#: These are the standard choices used by BCH/CRC hardware generators.
_PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
    15: 0b1000000000000011,
    16: 0b10001000000001011,
}


def default_primitive_poly(m: int) -> int:
    """Return the library's default primitive polynomial for GF(2^m)."""
    try:
        return _PRIMITIVE_POLYS[m]
    except KeyError:
        raise GaloisFieldError(f"no default primitive polynomial for m={m}") from None


class GF2m:
    """The finite field GF(2^m).

    Parameters
    ----------
    m:
        Field degree; the field has ``2**m`` elements.
    primitive_poly:
        Optional primitive polynomial as an integer bit mask including the
        x^m term.  Defaults to the standard polynomial for the degree.

    Notes
    -----
    Construction verifies primitivity: the powers of alpha = x must cycle
    through all 2^m - 1 nonzero elements.
    """

    __slots__ = (
        "m", "q", "order", "primitive_poly", "exp", "log", "_exp2",
        "_exp2_u16", "_exp2_list", "_log_list",
    )

    def __init__(self, m: int, primitive_poly: int | None = None):
        if not 2 <= m <= 16:
            raise GaloisFieldError(f"supported degrees are 2..16, got {m}")
        if primitive_poly is None:
            primitive_poly = default_primitive_poly(m)
        if primitive_poly >> m != 1:
            raise GaloisFieldError(
                f"primitive polynomial 0x{primitive_poly:x} does not have degree {m}"
            )
        self.m = m
        self.q = 1 << m
        self.order = self.q - 1
        self.primitive_poly = primitive_poly

        exp = np.zeros(self.order, dtype=np.int64)
        log = np.full(self.q, -1, dtype=np.int64)
        value = 1
        for i in range(self.order):
            exp[i] = value
            if log[value] != -1:
                raise GaloisFieldError(
                    f"polynomial 0x{primitive_poly:x} is not primitive for m={m}"
                )
            log[value] = i
            value <<= 1
            if value & self.q:
                value ^= primitive_poly
        if value != 1:
            raise GaloisFieldError(
                f"polynomial 0x{primitive_poly:x} is not primitive for m={m}"
            )
        self.exp = exp
        self.log = log
        # Doubled exponent table: avoids the modulo reduction in scalar mul.
        self._exp2 = np.concatenate([exp, exp])
        # Lazily-built variants for hot paths (see the accessors below).
        self._exp2_u16 = None
        self._exp2_list = None
        self._log_list = None

    # -- scalar operations -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (carry-less XOR)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp2[self.log[a] + self.log[b]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises on division by zero."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self.exp[(self.log[a] - self.log[b]) % self.order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return int(self.exp[(self.order - self.log[a]) % self.order])

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation ``a**e`` (negative exponents allowed)."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("zero has no negative powers")
            return 0
        return int(self.exp[(self.log[a] * e) % self.order])

    def alpha_pow(self, e: int) -> int:
        """Power ``alpha**e`` of the primitive element."""
        return int(self.exp[e % self.order])

    def element_order(self, a: int) -> int:
        """Multiplicative order of a nonzero element."""
        if a == 0:
            raise GaloisFieldError("zero has no multiplicative order")
        loga = int(self.log[a])
        from math import gcd

        return self.order // gcd(self.order, loga)

    # -- hot-path table accessors --------------------------------------------

    @property
    def exp2_u16(self) -> np.ndarray:
        """Doubled antilog table as uint16 (halves gather traffic; m <= 16)."""
        if self._exp2_u16 is None:
            self._exp2_u16 = self._exp2.astype(np.uint16)
        return self._exp2_u16

    @property
    def exp2_list(self) -> list[int]:
        """Doubled antilog table as a plain list (fast scalar indexing)."""
        if self._exp2_list is None:
            self._exp2_list = self._exp2.tolist()
        return self._exp2_list

    @property
    def log_list(self) -> list[int]:
        """Log table as a plain list (fast scalar indexing; log[0] = -1)."""
        if self._log_list is None:
            self._log_list = self.log.tolist()
        return self._log_list

    # -- vectorized operations ---------------------------------------------

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication of two integer arrays."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = (a != 0) & (b != 0)
        av, bv = np.broadcast_arrays(a, b)
        out[nz] = self._exp2[self.log[av[nz]] + self.log[bv[nz]]]
        return out

    def pow_alpha_vec(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorized ``alpha**e`` for an array of integer exponents."""
        exponents = np.asarray(exponents, dtype=np.int64) % self.order
        return self.exp[exponents]

    def square_vec(self, a: np.ndarray) -> np.ndarray:
        """Element-wise field squaring (used for even BCH syndromes)."""
        a = np.asarray(a, dtype=np.int64)
        out = np.zeros(a.shape, dtype=np.int64)
        nz = a != 0
        # 2*log < 2*order, so the doubled table needs no modulo reduction.
        out[nz] = self._exp2[2 * self.log[a[nz]]]
        return out

    def eval_poly_vec(self, coeffs: np.ndarray, points_log: np.ndarray) -> np.ndarray:
        """Evaluate a polynomial at many field points simultaneously.

        Parameters
        ----------
        coeffs:
            Polynomial coefficients, low-order first (``coeffs[i]`` is the
            coefficient of x^i).
        points_log:
            Discrete logs of the (nonzero) evaluation points.

        Returns
        -------
        numpy.ndarray
            ``poly(point)`` for every point, as field elements.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        points_log = np.asarray(points_log, dtype=np.int64)
        acc16 = np.zeros(points_log.shape, dtype=np.uint16)
        nz = np.flatnonzero(coeffs)
        if nz.size == 0:
            return acc16.astype(np.int64)
        # All nonzero-coefficient logs in one table pass (no per-item int()).
        coeff_logs = self.log[coeffs[nz]].astype(np.int32)
        last = int(nz[-1])
        order = np.int32(self.order)
        exp2 = self.exp2_u16
        # Walk i*points_log mod order incrementally: one add plus one
        # conditional subtract per degree beats a full modulo per
        # coefficient, and the two buffers are reused across the loop.
        pl32 = (points_log % self.order).astype(np.int32)
        ipl = np.zeros(pl32.shape, dtype=np.int32)
        scratch = np.empty(pl32.shape, dtype=np.int32)
        pos = 0
        for i in range(last + 1):
            if pos < nz.size and nz[pos] == i:
                np.add(ipl, coeff_logs[pos], out=scratch)
                acc16 ^= exp2[scratch]
                pos += 1
            if i < last:
                ipl += pl32
                np.subtract(ipl, order, out=ipl, where=ipl >= order)
        return acc16.astype(np.int64)

    # -- dunder helpers ------------------------------------------------------

    def __contains__(self, a: int) -> bool:
        return 0 <= a < self.q

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GF2m(m={self.m}, primitive_poly=0x{self.primitive_poly:x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))


@lru_cache(maxsize=None)
def get_field(m: int, primitive_poly: int | None = None) -> GF2m:
    """Memoized field constructor (table building for m=16 is not free)."""
    return GF2m(m, primitive_poly)
