"""Galois-field arithmetic substrate.

Provides binary-extension fields GF(2^m) with table-driven scalar and
vectorized (numpy) arithmetic, polynomials over GF(2) represented as Python
integers (bit i = coefficient of x^i), dense polynomials over GF(2^m), and
minimal-polynomial / cyclotomic-coset machinery used by the BCH code
designer.
"""

from repro.gf.field import GF2m, default_primitive_poly
from repro.gf.poly2 import (
    poly2_add,
    poly2_deg,
    poly2_divmod,
    poly2_eval_in_field,
    poly2_mod,
    poly2_mul,
    poly2_to_coeff_list,
)
from repro.gf.polygf import GFPoly
from repro.gf.minpoly import cyclotomic_coset, cyclotomic_cosets, minimal_polynomial

__all__ = [
    "GF2m",
    "default_primitive_poly",
    "GFPoly",
    "poly2_add",
    "poly2_deg",
    "poly2_divmod",
    "poly2_eval_in_field",
    "poly2_mod",
    "poly2_mul",
    "poly2_to_coeff_list",
    "cyclotomic_coset",
    "cyclotomic_cosets",
    "minimal_polynomial",
]
