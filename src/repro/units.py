"""Small unit-conversion helpers.

All internal library quantities are SI (seconds, volts, watts, joules,
hertz).  These helpers make call sites read like the paper text, e.g.
``us(75)`` for the 75 microsecond array read time.
"""

from __future__ import annotations

#: One kibibyte in bytes.
KIB = 1024

#: Bits per byte.
BITS_PER_BYTE = 8


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def to_us(seconds: float) -> float:
    """Seconds to microseconds."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds * 1e3


def mv(value: float) -> float:
    """Millivolts to volts."""
    return value * 1e-3


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return value * 1e-3


def to_mw(watts: float) -> float:
    """Watts to milliwatts."""
    return watts * 1e3


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * 1e6


def mb_per_s(bytes_per_second: float) -> float:
    """Bytes/second to megabytes/second (decimal MB, as in datasheets)."""
    return bytes_per_second / 1e6


def kib_page(n_kib: int) -> int:
    """Page size in bytes for an ``n_kib`` KiB page."""
    return n_kib * KIB
