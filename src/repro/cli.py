"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``list``
    Show every available experiment with its title.
``run <exp_id> [...]``
    Run one or more experiments (``all`` for the full suite) and print the
    same rows/series the paper's figures report.
``status``
    Print the canonical device/code parameters and calibration anchors.
``lint [paths ...]``
    Run the determinism lint (see :mod:`repro.analysis.lint`) against
    the committed baseline; ``--write-baseline`` regenerates it.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import params as canon


def _runners(suite) -> dict[str, tuple[str, callable]]:
    return {
        "fig03": ("MLC threshold-voltage distributions", suite.run_fig03),
        "fig04": ("compact-model fit (ISPP staircase)", suite.run_fig04),
        "fig05": ("RBER vs P/E cycles (SV vs DV)", suite.run_fig05),
        "fig06": ("program power per pattern", suite.run_fig06),
        "fig07": ("UBER vs RBER per capability", suite.run_fig07),
        "fig08": ("ECC latency over the lifetime", suite.run_fig08),
        "fig09": ("write-throughput loss", suite.run_fig09),
        "fig10": ("UBER improvement (min-UBER mode)", suite.run_fig10),
        "fig11": ("read-throughput gain (max-read mode)", suite.run_fig11),
        "abl_blocksize": ("ECC block-size ablation", suite.run_ablation_blocksize),
        "abl_chien": ("Chien parallelism ablation", suite.run_ablation_chien),
        "abl_tworound": ("two-round load mitigation", suite.run_ablation_tworound),
        "abl_pareto": ("operating-point Pareto analysis", suite.run_ablation_pareto),
        "abl_retention": ("retention x cycling ablation", suite.run_ablation_retention),
        "sys_des": ("discrete-event system simulation", suite.run_system_des),
        "sys_services": ("differentiated storage services", suite.run_system_services),
        "sys_ssd": ("multi-die SSD scaling (command scheduler)", suite.run_system_ssd),
        "sys_pipeline": ("command-pipeline modes (phase scheduler)",
                         suite.run_system_pipeline),
        "sys_openloop": ("open-loop arrival sweep (session queue pair)",
                         suite.run_system_openloop),
        "sys_observe": ("device telemetry (trace + utilization + SMART)",
                        suite.run_system_observe),
        "sys_sustained": ("sustained-write steady state (session GC modes)",
                          suite.run_system_sustained),
        "uber_mc": ("Monte-Carlo UBER sweep (process pool)", suite.run_uber_mc),
    }


def _cmd_list(suite: ExperimentSuite) -> int:
    for exp_id, (title, _) in _runners(suite).items():
        print(f"{exp_id:<14s} {title}")
    return 0


def _cmd_run(suite: ExperimentSuite, exp_ids: list[str]) -> int:
    runners = _runners(suite)
    if "all" in exp_ids:
        exp_ids = list(runners)
    unknown = [e for e in exp_ids if e not in runners]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(runners)} (or 'all')", file=sys.stderr)
        return 2
    for exp_id in exp_ids:
        _, runner = runners[exp_id]
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{exp_id} regenerated in {elapsed:.2f} s]\n")
    return 0


def _cmd_status(suite: ExperimentSuite) -> int:
    from repro.nand.ispp import IsppAlgorithm

    model = suite.rber_model
    print("canonical configuration")
    print(f"  page:               {canon.PAGE_DATA_BYTES} B data "
          f"+ {canon.PAGE_SPARE_BYTES} B spare")
    print(f"  BCH:                GF(2^{canon.GF_DEGREE}), t = 1..{canon.T_MAX}, "
          f"UBER target {canon.UBER_TARGET:.0e}")
    print(f"  ECC clock:          {canon.ECC_CLOCK_HZ / 1e6:.0f} MHz, "
          f"p = {canon.LFSR_PARALLELISM}, "
          f"Chien budget {canon.CHIEN_MULTIPLIER_BUDGET} multipliers")
    print(f"  ISPP:               {canon.VPP_START:.0f}-{canon.VPP_END:.0f} V, "
          f"delta {canon.DELTA_ISPP * 1e3:.0f} mV")
    print(f"  rated endurance:    {canon.RATED_PE_CYCLES:.0e} P/E cycles")
    print("calibration anchors")
    for n in (0.0, 1e3, 1e5):
        t_sv = suite.policy.required_t_for(IsppAlgorithm.SV, n)
        t_dv = suite.policy.required_t_for(IsppAlgorithm.DV, n)
        print(f"  N = {n:>8.0f}: RBER SV {model.rber_sv(n):.3e} (t={t_sv}), "
              f"DV {model.rber_dv(n):.3e} (t={t_dv})")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import lint

    violations = lint.lint_paths(args.paths)
    fresh = lint.counts_of(violations)
    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(lint.format_baseline(fresh))
        print(f"wrote {args.baseline}: {sum(fresh.values())} grandfathered "
              f"violation(s) across {len(fresh)} (file, rule) pair(s)")
        return 0
    if args.no_baseline:
        baseline = lint.parse_baseline("")
    else:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = lint.parse_baseline(handle.read())
        except FileNotFoundError:
            baseline = lint.parse_baseline("")
    new, stale = lint.diff_against(fresh, baseline)
    if new:
        failing = {(path, code) for path, code, _, _ in new}
        for violation in violations:
            if (violation.path, violation.code) in failing:
                print(violation.render())
        for path, code, have, allowed in new:
            print(f"{path}: {code} x{have} exceeds baseline ({allowed} "
                  "grandfathered)", file=sys.stderr)
        print(f"lint: {len(new)} (file, rule) pair(s) over baseline",
              file=sys.stderr)
        return 1
    for path, code, have, allowed in stale:
        print(f"note: stale baseline entry {path} {code} (baseline "
              f"{allowed}, found {have}) — rerun with --write-baseline",
              file=sys.stderr)
    total = sum(fresh.values())
    grandfathered = f" ({total} grandfathered)" if total else ""
    print(f"lint: clean{grandfathered}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-layer MLC NAND trade-offs (DATE 2012 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2012,
                        help="experiment suite seed (default 2012)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("experiments", nargs="+")
    sub.add_parser("status", help="print canonical parameters and anchors")
    lint_p = sub.add_parser(
        "lint", help="run the determinism lint (DET101-DET107)"
    )
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--baseline", default="lint-baseline.txt",
                        help="baseline file (default: lint-baseline.txt)")
    lint_p.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from this run")
    lint_p.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report every violation)")

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    from repro.analysis.experiments import ExperimentSuite

    suite = ExperimentSuite(seed=args.seed)
    if args.command == "list":
        return _cmd_list(suite)
    if args.command == "run":
        return _cmd_run(suite, args.experiments)
    return _cmd_status(suite)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
