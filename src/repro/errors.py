"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or out-of-range parameters."""


class GaloisFieldError(ReproError):
    """Invalid Galois-field construction or operand."""


class CodeDesignError(ReproError):
    """A BCH code with the requested parameters cannot be constructed."""


class DecodingFailure(ReproError):
    """The BCH decoder detected more errors than it can correct.

    Attributes
    ----------
    detected:
        Number of errors claimed by the error-locator polynomial degree,
        when available (``None`` if the failure was detected earlier).
    """

    def __init__(self, message: str, detected: int | None = None):
        super().__init__(message)
        self.detected = detected


class NandOperationError(ReproError):
    """Illegal NAND command sequence (e.g. programming a non-erased page)."""


class ControllerError(ReproError):
    """Memory-controller protocol violation."""


class SimulationError(ReproError, RuntimeError):
    """Discrete-event simulation engine misuse.

    Also a :class:`RuntimeError` so generic runtime guards (e.g. the
    ``max_events`` exhaustion check) surface to callers that only catch
    the builtin hierarchy.
    """
