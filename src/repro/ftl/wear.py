"""Wear-aware physical block allocation.

Writes append into one open block at a time; when a new block must be
opened, the allocator picks the erased block with the least wear, keeping
the P/E distribution flat — which matters here because the device RBER
(and therefore the required t) is driven by per-block wear.
"""

from __future__ import annotations

from repro.errors import ControllerError
from repro.ftl.mapping import PhysicalLocation
from repro.nand.device import NandFlashDevice


class WearAwareAllocator:
    """Sequential page allocation with min-wear block selection."""

    def __init__(self, device: NandFlashDevice, blocks: list[int]):
        if not blocks:
            raise ControllerError("allocator needs at least one block")
        self.device = device
        self.blocks = list(blocks)
        self._free_blocks: set[int] = set(blocks)
        self._open_block: int | None = None
        self._next_page = 0

    @property
    def pages_per_block(self) -> int:
        """Pages in each erase block."""
        return self.device.geometry.pages_per_block

    @property
    def free_blocks(self) -> list[int]:
        """Blocks with no programmed pages, available for opening."""
        return sorted(self._free_blocks)

    @property
    def open_block(self) -> int | None:
        """The block currently accepting appends."""
        return self._open_block

    def free_pages(self) -> int:
        """Programmable pages remaining without a garbage collection."""
        free = len(self._free_blocks) * self.pages_per_block
        if self._open_block is not None:
            free += self.pages_per_block - self._next_page
        return free

    def allocate(self) -> PhysicalLocation:
        """Next physical page to program (opens a new block as needed)."""
        if self._open_block is None or self._next_page >= self.pages_per_block:
            self._open_next_block()
        assert self._open_block is not None
        location = PhysicalLocation(self._open_block, self._next_page)
        self._next_page += 1
        return location

    def reclaim(self, block: int) -> None:
        """Return an erased block to the free pool (after GC)."""
        if block not in self.blocks:
            raise ControllerError(f"block {block} is not managed")
        if block == self._open_block:
            raise ControllerError("cannot reclaim the open block")
        self._free_blocks.add(block)

    def _open_next_block(self) -> None:
        if not self._free_blocks:
            raise ControllerError("out of free blocks; garbage collection needed")
        chosen = min(self._free_blocks, key=lambda b: self.device.array.wear(b))
        self._free_blocks.remove(chosen)
        self._open_block = chosen
        self._next_page = 0

    def wear_spread(self) -> int:
        """Max minus min wear across managed blocks (levelling metric)."""
        wears = [self.device.array.wear(b) for b in self.blocks]
        return max(wears) - min(wears)
