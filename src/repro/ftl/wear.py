"""Wear-aware physical block allocation.

Writes append into one open block at a time; when a new block must be
opened, the allocator picks the erased block with the least wear, keeping
the P/E distribution flat — which matters here because the device RBER
(and therefore the required t) is driven by per-block wear.

With ``plane_interleave`` enabled the allocator keeps one open block per
array plane and rotates planes round-robin on successive allocations, so
consecutive pages land on alternating planes.  That placement is what
lets the SSD scheduler's multi-plane pipeline overlap ISPP program (and
sense) phases inside one die; wear-aware block selection still applies
within each plane's free pool.
"""

from __future__ import annotations

from repro.errors import ControllerError
from repro.ftl.mapping import PhysicalLocation
from repro.nand.device import NandFlashDevice


class _OpenBlock:
    """Append cursor of one open block."""

    __slots__ = ("block", "next_page")

    def __init__(self, block: int):
        self.block = block
        self.next_page = 0


class WearAwareAllocator:
    """Sequential page allocation with min-wear block selection."""

    def __init__(
        self,
        device: NandFlashDevice,
        blocks: list[int],
        plane_interleave: bool = False,
    ):
        if not blocks:
            raise ControllerError("allocator needs at least one block")
        self.device = device
        self.blocks = list(blocks)
        self.plane_interleave = plane_interleave
        self._planes = device.geometry.planes if plane_interleave else 1
        self._free_blocks: set[int] = set(blocks)
        self._open: list[_OpenBlock | None] = [None] * self._planes
        self._last_slot = 0

    @property
    def pages_per_block(self) -> int:
        """Pages in each erase block."""
        return self.device.geometry.pages_per_block

    @property
    def plane_slots(self) -> int:
        """How many blocks may be open at once (one per interleaved plane)."""
        return self._planes

    @property
    def free_blocks(self) -> list[int]:
        """Blocks with no programmed pages, available for opening."""
        return sorted(self._free_blocks)

    @property
    def free_block_count(self) -> int:
        """How many fully-erased blocks remain (O(1) watermark probe).

        Background GC compares this against its low/high free-block
        watermarks on every completion, so it must not sort the pool
        the way :attr:`free_blocks` does.
        """
        return len(self._free_blocks)

    def is_free(self, block: int) -> bool:
        """Whether a block sits in the free pool (O(1))."""
        return block in self._free_blocks

    @property
    def open_block(self) -> int | None:
        """The block that most recently accepted an append."""
        current = self._open[self._last_slot]
        return None if current is None else current.block

    @property
    def open_blocks(self) -> set[int]:
        """Every block currently accepting appends (one per plane slot)."""
        return {
            cursor.block for cursor in self._open if cursor is not None
        }

    def free_pages(self) -> int:
        """Programmable pages remaining without a garbage collection."""
        free = len(self._free_blocks) * self.pages_per_block
        for cursor in self._open:
            if cursor is not None:
                free += self.pages_per_block - cursor.next_page
        return free

    def allocate(self) -> PhysicalLocation:
        """Next physical page to program (opens a new block as needed).

        In plane-interleaved mode, planes are tried round-robin starting
        after the previously used one; a plane with neither room in its
        open block nor a free block to open is skipped.
        """
        for offset in range(1, self._planes + 1):
            slot = (self._last_slot + offset) % self._planes
            cursor = self._ensure_open(slot)
            if cursor is None:
                continue
            self._last_slot = slot
            location = PhysicalLocation(cursor.block, cursor.next_page)
            cursor.next_page += 1
            if self.plane_interleave and cursor.next_page >= self.pages_per_block:
                # Close eagerly: an interleaved cursor must never shield
                # its full block from garbage collection (a starved plane
                # might not replace it for a long time).
                self._open[slot] = None
            return location
        raise ControllerError("out of free blocks; garbage collection needed")

    def reclaim(self, block: int) -> None:
        """Return an erased block to the free pool (after GC)."""
        if block not in self.blocks:
            raise ControllerError(f"block {block} is not managed")
        if block in self.open_blocks:
            raise ControllerError("cannot reclaim an open block")
        self._free_blocks.add(block)

    def _ensure_open(self, slot: int) -> _OpenBlock | None:
        """Open block with room on the given plane slot (None if starved).

        A full cursor is closed here (not merely replaced): leaving it in
        ``_open`` would shield the full block from garbage collection for
        as long as its plane has no free block to succeed it, wedging the
        partition.
        """
        cursor = self._open[slot]
        if cursor is not None:
            if cursor.next_page < self.pages_per_block:
                return cursor
            self._open[slot] = None
        candidates = [
            block for block in self._free_blocks
            if not self.plane_interleave
            or self.device.geometry.plane_of_block(block) == slot
        ]
        if not candidates:
            return None
        chosen = min(candidates, key=lambda b: (self.device.array.wear(b), b))
        self._free_blocks.remove(chosen)
        self._open[slot] = _OpenBlock(chosen)
        return self._open[slot]

    def wear_spread(self) -> int:
        """Max minus min wear across managed blocks (levelling metric)."""
        wears = [self.device.array.wear(b) for b in self.blocks]
        return max(wears) - min(wears)
